//! Execution traces and SM-occupancy timelines.
//!
//! Runtimes can record scheduling events — launches, drains, resizes,
//! transfers — into a [`Trace`]. Besides serving as a debugging artefact,
//! the trace renders an ASCII Gantt chart of SM occupancy over time, which
//! makes Slate's spatial sharing and dynamic resizing directly visible:
//!
//! ```text
//! SM 29 |AAAAAAAAAAAABBBBBBBBBB........|
//!   ...
//! SM 15 |AAAAAAAAAAAABBBBBBBBBB........|
//! SM 14 |BBBBBBBBBBBBBBBBBBBBBB........|
//!   ...
//! SM  0 |BBBBBBBBBBBBBBBBBBBBBB........|
//! ```

use crate::device::SmRange;
use serde::{Deserialize, Serialize};

/// A recorded scheduling event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A kernel slice began occupying an SM range.
    Launch {
        /// Attribution tag (process / kernel instance).
        tag: u64,
        /// Occupied range.
        range: SmRange,
        /// Blocks in the slice.
        blocks: u64,
    },
    /// A kernel slice left the device (drained or torn down for a resize).
    Stop {
        /// Attribution tag.
        tag: u64,
        /// Blocks completed by the slice.
        done: u64,
    },
    /// A resize decision: `tag` moves from `from` to `to`.
    Resize {
        /// Attribution tag.
        tag: u64,
        /// Previous range.
        from: SmRange,
        /// New range.
        to: SmRange,
    },
    /// A host-device transfer started (`h2d` true for host-to-device).
    TransferStart {
        /// Attribution tag.
        tag: u64,
        /// Direction.
        h2d: bool,
        /// Payload bytes.
        bytes: u64,
    },
    /// A transfer completed.
    TransferEnd {
        /// Attribution tag.
        tag: u64,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulated time in seconds.
    pub t: f64,
    /// What happened.
    pub kind: TraceKind,
}

/// An append-only scheduling trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event at time `t`.
    pub fn record(&mut self, t: f64, kind: TraceKind) {
        debug_assert!(
            self.events.last().is_none_or(|e| e.t <= t + 1e-12),
            "trace must be recorded in time order"
        );
        self.events.push(TraceEvent { t, kind });
    }

    /// All events, in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Occupancy intervals per tag: `(tag, range, start, end)` for every
    /// period a slice occupied SMs. Open intervals are closed at the last
    /// event time.
    pub fn occupancy_intervals(&self) -> Vec<(u64, SmRange, f64, f64)> {
        let mut open: Vec<(u64, SmRange, f64)> = Vec::new();
        let mut out = Vec::new();
        let end_time = self.events.last().map_or(0.0, |e| e.t);
        for ev in &self.events {
            match &ev.kind {
                TraceKind::Launch { tag, range, .. } => {
                    open.push((*tag, *range, ev.t));
                }
                TraceKind::Stop { tag, .. } => {
                    // Close the oldest open interval of this tag.
                    if let Some(pos) = open.iter().position(|(t, _, _)| t == tag) {
                        let (tag, range, start) = open.remove(pos);
                        out.push((tag, range, start, ev.t));
                    }
                }
                _ => {}
            }
        }
        for (tag, range, start) in open {
            out.push((tag, range, start, end_time));
        }
        out
    }

    /// Renders an ASCII Gantt chart: one row per SM (top = highest id),
    /// `width` time buckets across the full trace span. Each tag renders as
    /// a letter (`A`, `B`, ...); idle cells as `.`; cells where multiple
    /// tags *truly* overlap in time (never under correct scheduling) as
    /// `#`. Each bucket samples its midpoint against the exact interval
    /// times, so back-to-back hand-offs never alias into false overlap.
    pub fn gantt(&self, num_sms: u32, width: usize) -> String {
        assert!(width >= 1);
        let intervals = self.occupancy_intervals();
        let t0 = self.events.first().map_or(0.0, |e| e.t);
        let t1 = self.events.last().map_or(0.0, |e| e.t);
        let span = (t1 - t0).max(1e-12);
        let mut grid = vec![vec![b'.'; width]; num_sms as usize];
        for (c, row_time) in (0..width).map(|c| (c, t0 + (c as f64 + 0.5) / width as f64 * span)) {
            for (tag, range, start, end) in &intervals {
                // Half-open [start, end): a hand-off at time t belongs to
                // the successor.
                if row_time < *start || row_time >= *end {
                    continue;
                }
                let glyph = b'A' + (tag % 26) as u8;
                for sm in range.lo..=range.hi.min(num_sms - 1) {
                    let cell = &mut grid[sm as usize][c];
                    *cell = if *cell == b'.' || *cell == glyph {
                        glyph
                    } else {
                        b'#'
                    };
                }
            }
        }
        let mut s = String::new();
        s.push_str(&format!(
            "SM occupancy over {:.3}s ({} events)\n",
            span,
            self.events.len()
        ));
        for sm in (0..num_sms).rev() {
            s.push_str(&format!("SM {sm:>2} |"));
            s.push_str(std::str::from_utf8(&grid[sm as usize]).unwrap());
            s.push_str("|\n");
        }
        s
    }

    /// Total SM-seconds occupied per tag.
    pub fn sm_seconds(&self, tag: u64) -> f64 {
        self.occupancy_intervals()
            .iter()
            .filter(|(t, _, _, _)| *t == tag)
            .map(|(_, r, s, e)| r.len() as f64 * (e - s))
            .sum()
    }

    /// Number of resize events recorded for a tag.
    pub fn resizes(&self, tag: u64) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(&e.kind, TraceKind::Resize { tag: t, .. } if *t == tag))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut tr = Trace::new();
        tr.record(
            0.0,
            TraceKind::Launch {
                tag: 0,
                range: SmRange::new(0, 29),
                blocks: 100,
            },
        );
        tr.record(1.0, TraceKind::Stop { tag: 0, done: 60 });
        tr.record(
            1.0,
            TraceKind::Resize {
                tag: 0,
                from: SmRange::new(0, 29),
                to: SmRange::new(0, 14),
            },
        );
        tr.record(
            1.0,
            TraceKind::Launch {
                tag: 0,
                range: SmRange::new(0, 14),
                blocks: 40,
            },
        );
        tr.record(
            1.0,
            TraceKind::Launch {
                tag: 1,
                range: SmRange::new(15, 29),
                blocks: 50,
            },
        );
        tr.record(2.0, TraceKind::Stop { tag: 0, done: 40 });
        tr.record(3.0, TraceKind::Stop { tag: 1, done: 50 });
        tr
    }

    #[test]
    fn intervals_reconstruct_occupancy() {
        let tr = sample();
        let iv = tr.occupancy_intervals();
        assert_eq!(iv.len(), 3);
        assert_eq!(iv[0], (0, SmRange::new(0, 29), 0.0, 1.0));
        assert_eq!(iv[1], (0, SmRange::new(0, 14), 1.0, 2.0));
        assert_eq!(iv[2], (1, SmRange::new(15, 29), 1.0, 3.0));
    }

    #[test]
    fn sm_seconds_accounting() {
        let tr = sample();
        // tag 0: 30 SMs x 1s + 15 SMs x 1s = 45.
        assert!((tr.sm_seconds(0) - 45.0).abs() < 1e-9);
        // tag 1: 15 SMs x 2s = 30.
        assert!((tr.sm_seconds(1) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn gantt_shows_partition_without_overlap() {
        let tr = sample();
        let g = tr.gantt(30, 30);
        assert!(!g.contains('#'), "no overlapping occupancy:\n{g}");
        // First third: A everywhere. Later: B on top rows only.
        let lines: Vec<&str> = g.lines().collect();
        let top = lines[1]; // SM 29
        let bottom = lines.last().unwrap(); // SM 0
        assert!(top.contains('A') && top.contains('B'), "{top}");
        assert!(bottom.contains('A') && !bottom.contains('B'), "{bottom}");
    }

    #[test]
    fn resize_count() {
        let tr = sample();
        assert_eq!(tr.resizes(0), 1);
        assert_eq!(tr.resizes(1), 0);
    }

    #[test]
    fn empty_trace_renders() {
        let tr = Trace::new();
        assert!(tr.is_empty());
        let g = tr.gantt(4, 10);
        assert!(g.contains("SM  0"));
    }
}
