//! Client–daemon protocol (paper §IV-A).
//!
//! Slate uses two communication channels per client: a *command pipe* for
//! API instructions (modelled by a crossbeam channel pair) and *shared
//! buffers* for bulk kernel IO (modelled by [`bytes::Bytes`], whose
//! reference-counted storage moves between processes without copying —
//! exactly the property the paper wants from shared memory for gigabyte
//! payloads).
//!
//! Clients never see device pointers: they hold opaque [`SlatePtr`]s which
//! the daemon maps to real device allocations in its per-session hash table
//! ("records in a hash table the mapping between the shared buffer address
//! and the GPU pointer").
//!
//! Under overload the daemon sheds requests instead of queueing them
//! unboundedly: the reply is a [`Response::Err`] wiring
//! [`SlateError::Overloaded`] with a `retry_after_ms` hint
//! ([`Response::is_overloaded`] spots these without unwrapping). For
//! asynchronous launches the shed reply is delivered, like any launch
//! error, at the client's next `Sync`.

use crate::error::SlateError;
use bytes::Bytes;
use slate_gpu_sim::buffer::GpuBuffer;
use slate_kernels::kernel::GpuKernel;
use std::sync::Arc;

/// Opaque client-side handle to a device allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlatePtr(pub u64);

/// Builds the user kernel once the daemon has resolved the client's
/// [`SlatePtr`]s to device buffers (in the same order they were passed).
pub type KernelFactory =
    Box<dyn FnOnce(Vec<Arc<GpuBuffer>>) -> Arc<dyn GpuKernel> + Send + 'static>;

/// A kernel launch command.
pub struct LaunchCmd {
    /// Client-assigned launch id, unique and monotonic per session. The
    /// daemon logs it with the admission and completion records, which is
    /// what lets a resumed client blindly resubmit unacknowledged
    /// launches: ids the daemon has already completed (or adopted from a
    /// crash scene) are deduplicated server-side instead of re-executed.
    pub launch_id: u64,
    /// Device allocations the kernel binds, in factory order.
    pub ptrs: Vec<SlatePtr>,
    /// Kernel constructor, invoked daemon-side after pointer resolution.
    pub factory: KernelFactory,
    /// `SLATE_ITERS` for this launch.
    pub task_size: u32,
    /// Optional CUDA source for the injection pipeline (exercises the
    /// scanner/injector and populates the compilation cache).
    pub source: Option<String>,
    /// Run this kernel solo, never co-scheduled (`#pragma slate solo`).
    pub pinned_solo: bool,
    /// CUDA stream the launch is ordered on. Stream 0 is the default
    /// stream; launches on distinct non-zero streams may execute
    /// concurrently (the paper builds "a queue for each process and CUDA
    /// stream").
    pub stream: u32,
    /// Watchdog deadline for this kernel, in milliseconds. Past it the
    /// daemon evicts the kernel through the retreat flag and replies
    /// `SlateError::Timeout`. `None` defers to the daemon's default
    /// deadline (which may also be unset — no watchdog).
    pub deadline_ms: Option<u64>,
}

/// Requests a client sends over the command pipe.
pub enum Request {
    /// `slateMalloc(bytes)`.
    Malloc(u64),
    /// `slateFree(ptr)`.
    Free(SlatePtr),
    /// `slateMemcpy` host-to-device through a shared buffer.
    MemcpyH2D {
        /// Destination allocation.
        ptr: SlatePtr,
        /// Byte offset into the allocation (word-aligned).
        offset: usize,
        /// Payload, handed over without copying.
        data: Bytes,
    },
    /// `slateMemcpy` device-to-host.
    MemcpyD2H {
        /// Source allocation.
        ptr: SlatePtr,
        /// Byte offset into the allocation (word-aligned).
        offset: usize,
        /// Bytes to read.
        len: usize,
    },
    /// `slateLaunchKernel` — asynchronous, like CUDA launches.
    Launch(LaunchCmd),
    /// `slateDeviceSynchronize` — replies once all prior launches finished.
    Sync,
    /// Session teardown.
    Disconnect,
}

/// Daemon replies.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// New allocation handle.
    Ptr(SlatePtr),
    /// Device-to-host payload.
    Data(Bytes),
    /// Success without payload.
    Ok,
    /// Failure description.
    Err(String),
}

impl Response {
    /// Unwraps an expected `Ptr` response.
    pub fn expect_ptr(self) -> Result<SlatePtr, SlateError> {
        match self {
            Response::Ptr(p) => Ok(p),
            Response::Err(e) => Err(SlateError::from_wire(&e)),
            other => Err(SlateError::Other(format!("expected Ptr, got {other:?}"))),
        }
    }

    /// Unwraps an expected `Data` response.
    pub fn expect_data(self) -> Result<Bytes, SlateError> {
        match self {
            Response::Data(d) => Ok(d),
            Response::Err(e) => Err(SlateError::from_wire(&e)),
            other => Err(SlateError::Other(format!("expected Data, got {other:?}"))),
        }
    }

    /// Whether this reply is an admission shed
    /// ([`SlateError::Overloaded`]) — the signal backpressure-aware
    /// clients branch on without consuming the response.
    pub fn is_overloaded(&self) -> bool {
        matches!(self, Response::Err(e)
            if matches!(SlateError::from_wire(e), SlateError::Overloaded { .. }))
    }

    /// Unwraps an expected `Ok` response.
    pub fn expect_ok(self) -> Result<(), SlateError> {
        match self {
            Response::Ok => Ok(()),
            Response::Err(e) => Err(SlateError::from_wire(&e)),
            other => Err(SlateError::Other(format!("expected Ok, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_unwrapping() {
        assert_eq!(Response::Ptr(SlatePtr(3)).expect_ptr(), Ok(SlatePtr(3)));
        assert!(Response::Ok.expect_ptr().is_err());
        assert_eq!(
            Response::Err("boom".into()).expect_ok().unwrap_err(),
            SlateError::Other("boom".into())
        );
        assert_eq!(
            Response::Err(SlateError::OutOfMemory { requested: 9 }.to_wire())
                .expect_ok()
                .unwrap_err(),
            SlateError::OutOfMemory { requested: 9 }
        );
        assert_eq!(
            Response::Data(Bytes::from_static(b"xy"))
                .expect_data()
                .unwrap(),
            Bytes::from_static(b"xy")
        );
        assert!(Response::Ok.expect_ok().is_ok());
    }

    #[test]
    fn overload_replies_are_recognizable() {
        let shed = Response::Err(SlateError::Overloaded { retry_after_ms: 7 }.to_wire());
        assert!(shed.is_overloaded());
        assert!(!Response::Ok.is_overloaded());
        assert!(!Response::Err("E_SHUTDOWN".into()).is_overloaded());
        assert_eq!(
            shed.expect_ok().unwrap_err(),
            SlateError::Overloaded { retry_after_ms: 7 }
        );
    }

    #[test]
    fn bytes_are_shared_not_copied() {
        let payload = Bytes::from(vec![1u8; 1 << 20]);
        let clone = payload.clone();
        // Same backing storage: cloning a Bytes is refcount-only.
        assert_eq!(clone.as_ptr(), payload.as_ptr());
    }
}
