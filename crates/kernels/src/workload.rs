//! The paper's benchmark suite and application workload descriptions.
//!
//! [`Benchmark`] enumerates the five Table II applications; [`AppSpec`]
//! describes one application *process* the way the evaluation runs it: a
//! host setup phase, input transfer, a repetition loop of kernel launches
//! sized so the solo CUDA run takes ~30 seconds (paper §V-A3), and an
//! output transfer. All three runtimes (CUDA, MPS, Slate) consume the same
//! [`AppSpec`]s.

use crate::{blackscholes, gaussian, quasirandom, sgemm, transpose};
use serde::{Deserialize, Serialize};
use slate_gpu_sim::perf::KernelPerf;

/// Workload intensity level, as used by Table II's profile labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Intensity {
    /// Low intensity.
    Low,
    /// Medium intensity.
    Med,
    /// High intensity.
    High,
}

impl std::fmt::Display for Intensity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Intensity::Low => "Low",
            Intensity::Med => "Med",
            Intensity::High => "High",
        })
    }
}

/// The five applications of the paper's evaluation (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// BlackScholes (BS) — Med compute / Med memory.
    BS,
    /// Gaussian elimination (GS) — Low compute / Med memory.
    GS,
    /// SGEMM (MM) — High compute / Med memory.
    MM,
    /// QuasiRandomGenerator (RG) — Low compute / Low memory.
    RG,
    /// Transpose (TR) — Low compute / High memory.
    TR,
}

impl Benchmark {
    /// All five benchmarks, in Table II order.
    pub const ALL: [Benchmark; 5] = [
        Benchmark::BS,
        Benchmark::GS,
        Benchmark::MM,
        Benchmark::RG,
        Benchmark::TR,
    ];

    /// Two-letter abbreviation used throughout the paper.
    pub fn abbrev(&self) -> &'static str {
        match self {
            Benchmark::BS => "BS",
            Benchmark::GS => "GS",
            Benchmark::MM => "MM",
            Benchmark::RG => "RG",
            Benchmark::TR => "TR",
        }
    }

    /// Full benchmark name.
    pub fn full_name(&self) -> &'static str {
        match self {
            Benchmark::BS => "BlackScholes",
            Benchmark::GS => "Gaussian",
            Benchmark::MM => "SGEMM",
            Benchmark::RG => "QuasiRandomGenerator",
            Benchmark::TR => "Transpose",
        }
    }

    /// Table II intensity labels: (compute, memory).
    pub fn intensity(&self) -> (Intensity, Intensity) {
        match self {
            Benchmark::BS => (Intensity::Med, Intensity::Med),
            Benchmark::GS => (Intensity::Low, Intensity::Med),
            Benchmark::MM => (Intensity::High, Intensity::Med),
            Benchmark::RG => (Intensity::Low, Intensity::Low),
            Benchmark::TR => (Intensity::Low, Intensity::High),
        }
    }

    /// Table II reference figures from the paper: (GFLOP/s, GB/s) measured
    /// solo under CUDA on the authors' Titan Xp.
    pub fn paper_reference(&self) -> (f64, f64) {
        match self {
            Benchmark::BS => (161.3, 401.49),
            Benchmark::GS => (19.6, 340.9),
            Benchmark::MM => (1525.0, 403.5),
            Benchmark::RG => (4.2, 71.6),
            Benchmark::TR => (0.0, 568.6),
        }
    }

    /// Calibrated performance profile at the paper problem size.
    pub fn perf(&self) -> KernelPerf {
        match self {
            Benchmark::BS => blackscholes::paper_perf(),
            Benchmark::GS => gaussian::paper_perf(),
            Benchmark::MM => sgemm::paper_perf(),
            Benchmark::RG => quasirandom::paper_perf(),
            Benchmark::TR => transpose::paper_perf(),
        }
    }

    /// The application workload the evaluation runs: a ~30-second solo-CUDA
    /// repetition loop at the paper problem size.
    pub fn app(&self) -> AppSpec {
        match self {
            // BlackScholes: 40M options, 2 ms per launch under CUDA; 15000
            // real launches batched 10x for simulation granularity.
            Benchmark::BS => AppSpec {
                bench: *self,
                perf: self.perf(),
                launches: 1500,
                blocks_per_launch: blackscholes::paper_blocks() * 10,
                batch: 10,
                real_launches: 15_000,
                task_size: 10,
                h2d_bytes: 480_000_000,
                d2h_bytes: 320_000_000,
                host_setup_s: 2.0,
                kernel_sources: 1,
                fixed_cost_scale: 1.0,
                pinned_solo: false,
            },
            // Gaussian: 112 solves of a 2048x2048 system; each solve is
            // 2*(n-1) = 4094 real launches dominated by Fan2 blocks.
            Benchmark::GS => AppSpec {
                bench: *self,
                perf: self.perf(),
                launches: 112,
                blocks_per_launch: gaussian::paper_blocks(),
                batch: 1,
                real_launches: 112 * 4094,
                task_size: 10,
                h2d_bytes: 112 * 2 * 2048 * 2048 * 4,
                d2h_bytes: 112 * 2048 * 4,
                host_setup_s: 2.5,
                kernel_sources: 2,
                fixed_cost_scale: 1.0,
                pinned_solo: false,
            },
            // SGEMM: 2048^3, ~11 ms per launch; 2660 real launches batched.
            Benchmark::MM => AppSpec {
                bench: *self,
                perf: self.perf(),
                launches: 665,
                blocks_per_launch: sgemm::paper_blocks() * 4,
                batch: 4,
                real_launches: 2660,
                task_size: 10,
                h2d_bytes: 3 * 2048 * 2048 * 4,
                d2h_bytes: 2048 * 2048 * 4,
                host_setup_s: 1.5,
                kernel_sources: 1,
                fixed_cost_scale: 1.0,
                pinned_solo: false,
            },
            // QuasiRandom: 40M points per launch across 3 dimensions;
            // 13450 real launches batched 10x.
            Benchmark::RG => AppSpec {
                bench: *self,
                perf: self.perf(),
                launches: 1345,
                blocks_per_launch: quasirandom::paper_blocks() * 10,
                batch: 10,
                real_launches: 13_450,
                task_size: 10,
                h2d_bytes: 1_000_000,
                d2h_bytes: 160_000_000,
                host_setup_s: 1.0,
                kernel_sources: 1,
                fixed_cost_scale: 1.0,
                pinned_solo: false,
            },
            // Transpose: 16384^2 floats, ~3.8 ms per launch; 7940 real
            // launches batched 8x.
            Benchmark::TR => AppSpec {
                bench: *self,
                perf: self.perf(),
                launches: 992,
                blocks_per_launch: transpose::paper_blocks() * 8,
                batch: 8,
                real_launches: 7_940,
                task_size: 10,
                h2d_bytes: 16_384 * 16_384 * 4,
                d2h_bytes: 16_384 * 16_384 * 4,
                host_setup_s: 2.0,
                kernel_sources: 1,
                fixed_cost_scale: 1.0,
                pinned_solo: false,
            },
        }
    }

    /// All 15 pairings the paper evaluates (10 distinct pairs + 5 self
    /// pairs), in a stable order.
    pub fn all_pairings() -> Vec<(Benchmark, Benchmark)> {
        let mut v = Vec::with_capacity(15);
        for (i, &a) in Self::ALL.iter().enumerate() {
            for &b in &Self::ALL[i..] {
                v.push((a, b));
            }
        }
        v
    }
}

/// One application process as the evaluation runs it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppSpec {
    /// Which benchmark this is.
    pub bench: Benchmark,
    /// Kernel performance profile.
    pub perf: KernelPerf,
    /// Simulated launches (repetitions may be batched into one simulated
    /// launch for event-count economy; timing is unaffected apart from the
    /// negligible per-launch latency).
    pub launches: u32,
    /// Thread blocks per simulated launch.
    pub blocks_per_launch: u64,
    /// Real launches collapsed into one simulated launch
    /// (`blocks_per_launch` covers `batch` real launches).
    pub batch: u32,
    /// Real API-level kernel launches the application performs (drives
    /// client-daemon communication accounting).
    pub real_launches: u64,
    /// Slate task size (`SLATE_ITERS`) for this application.
    pub task_size: u32,
    /// Input bytes transferred host-to-device over the app lifetime.
    pub h2d_bytes: u64,
    /// Output bytes transferred device-to-host.
    pub d2h_bytes: u64,
    /// Host-side setup time (allocation, input generation) in seconds.
    pub host_setup_s: f64,
    /// Distinct kernel sources Slate must inject and compile.
    pub kernel_sources: u32,
    /// Scale factor applied to one-time fixed costs (session setup,
    /// injection/compilation). 1.0 for real runs; `scaled_down` divides it
    /// so that scaled test workloads keep the full run's proportions.
    pub fixed_cost_scale: f64,
    /// Marks a heavily optimized (library) kernel that Slate must run solo
    /// and never co-schedule (paper §IV-A1 future work; `#pragma slate
    /// solo`).
    pub pinned_solo: bool,
}

impl AppSpec {
    /// Total thread blocks the app executes.
    pub fn total_blocks(&self) -> u64 {
        self.launches as u64 * self.blocks_per_launch
    }

    /// A scaled-down copy (launches, transfers and host setup all divided by
    /// `factor`) for fast tests. Per-launch shape is preserved, so paired
    /// scaled apps still contend for the device the way full apps do.
    pub fn scaled_down(&self, factor: u32) -> AppSpec {
        let mut s = self.clone();
        s.launches = (s.launches / factor).max(1);
        s.real_launches = (s.real_launches / factor as u64).max(1);
        s.h2d_bytes /= factor as u64;
        s.d2h_bytes /= factor as u64;
        s.host_setup_s /= factor as f64;
        s.fixed_cost_scale /= factor as f64;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slate_gpu_sim::device::DeviceConfig;

    #[test]
    fn all_pairings_count_is_15() {
        let p = Benchmark::all_pairings();
        assert_eq!(p.len(), 15);
        // 5 self-pairs.
        assert_eq!(p.iter().filter(|(a, b)| a == b).count(), 5);
    }

    #[test]
    fn profiles_validate() {
        for b in Benchmark::ALL {
            b.perf().validate().unwrap_or_else(|e| panic!("{b:?}: {e}"));
        }
    }

    #[test]
    fn intensity_labels_match_table2() {
        use Intensity::*;
        assert_eq!(Benchmark::BS.intensity(), (Med, Med));
        assert_eq!(Benchmark::GS.intensity(), (Low, Med));
        assert_eq!(Benchmark::MM.intensity(), (High, Med));
        assert_eq!(Benchmark::RG.intensity(), (Low, Low));
        assert_eq!(Benchmark::TR.intensity(), (Low, High));
    }

    /// Each app's solo kernel time under the simulated hardware scheduler
    /// should be in the vicinity of the paper's ~30 s looping target.
    #[test]
    fn solo_cuda_kernel_time_near_30s() {
        let d = DeviceConfig::titan_xp();
        for b in Benchmark::ALL {
            let app = b.app();
            let p = &app.perf;
            let per_sm = slate_gpu_sim::occupancy::blocks_per_sm(&d, p) as f64;
            let useful = match p.max_concurrent_blocks {
                Some(c) => (c as f64 / per_sm).min(d.num_sms as f64),
                None => d.num_sms as f64,
            };
            let util =
                (per_sm * p.threads_per_block as f64 / d.threads_for_peak_per_sm as f64).min(1.0);
            let r_comp =
                useful * d.clock_hz * util / (p.compute_cycles_per_block + d.block_setup_cycles);
            let r_mem = d.dram_bw.min(useful * d.per_sm_mem_bw) / p.dram_bytes_scattered.max(1e-9);
            let r = r_comp.min(r_mem);
            let t = app.total_blocks() as f64 / r;
            assert!(
                (24.0..40.0).contains(&t),
                "{b:?}: solo kernel time {t:.1}s out of range"
            );
        }
    }

    #[test]
    fn scaled_down_reduces_work() {
        let app = Benchmark::BS.app();
        let s = app.scaled_down(100);
        assert!(s.launches >= 1 && s.launches < app.launches);
        assert!(s.total_blocks() < app.total_blocks());
    }
}
