//! The paper's benchmark suite and application workload descriptions.
//!
//! [`Benchmark`] enumerates the five Table II applications; [`AppSpec`]
//! describes one application *process* the way the evaluation runs it: a
//! host setup phase, input transfer, a repetition loop of kernel launches
//! sized so the solo CUDA run takes ~30 seconds (paper §V-A3), and an
//! output transfer. All three runtimes (CUDA, MPS, Slate) consume the same
//! [`AppSpec`]s.

use crate::{blackscholes, decode, gaussian, prefill, quasirandom, sgemm, transpose};
use serde::{Deserialize, Serialize};
use slate_gpu_sim::perf::KernelPerf;

/// Service-level objective class of a session, the scheduling dimension
/// the LLM serving workload family introduces: latency-critical work
/// (decode steps a user is waiting on) may preempt best-effort work
/// (prefill, batch jobs) within the arbiter's preemption bound.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SloClass {
    /// Tail-latency-sensitive: dispatched ahead of best-effort work, may
    /// trigger a bounded preemption of a best-effort resident.
    LatencyCritical,
    /// Throughput-oriented: yields to latency-critical arrivals but still
    /// ages to promotion under the starvation bound.
    #[default]
    BestEffort,
}

impl std::fmt::Display for SloClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SloClass::LatencyCritical => "latency-critical",
            SloClass::BestEffort => "best-effort",
        })
    }
}

/// Workload intensity level, as used by Table II's profile labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Intensity {
    /// Low intensity.
    Low,
    /// Medium intensity.
    Med,
    /// High intensity.
    High,
}

impl std::fmt::Display for Intensity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Intensity::Low => "Low",
            Intensity::Med => "Med",
            Intensity::High => "High",
        })
    }
}

/// The five applications of the paper's evaluation (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// BlackScholes (BS) — Med compute / Med memory.
    BS,
    /// Gaussian elimination (GS) — Low compute / Med memory.
    GS,
    /// SGEMM (MM) — High compute / Med memory.
    MM,
    /// QuasiRandomGenerator (RG) — Low compute / Low memory.
    RG,
    /// Transpose (TR) — Low compute / High memory.
    TR,
    /// LLM prefill (PF) — High compute / Low memory. Not part of the
    /// paper's Table II suite (`ALL`): the throughput half of the LLM
    /// serving family.
    PF,
    /// LLM decode (DC) — Med compute / High memory. Not part of the
    /// paper's Table II suite (`ALL`): the latency-critical half of the
    /// LLM serving family.
    DC,
}

impl Benchmark {
    /// All five benchmarks, in Table II order.
    pub const ALL: [Benchmark; 5] = [
        Benchmark::BS,
        Benchmark::GS,
        Benchmark::MM,
        Benchmark::RG,
        Benchmark::TR,
    ];

    /// Two-letter abbreviation used throughout the paper.
    pub fn abbrev(&self) -> &'static str {
        match self {
            Benchmark::BS => "BS",
            Benchmark::GS => "GS",
            Benchmark::MM => "MM",
            Benchmark::RG => "RG",
            Benchmark::TR => "TR",
            Benchmark::PF => "PF",
            Benchmark::DC => "DC",
        }
    }

    /// Full benchmark name.
    pub fn full_name(&self) -> &'static str {
        match self {
            Benchmark::BS => "BlackScholes",
            Benchmark::GS => "Gaussian",
            Benchmark::MM => "SGEMM",
            Benchmark::RG => "QuasiRandomGenerator",
            Benchmark::TR => "Transpose",
            Benchmark::PF => "LlmPrefill",
            Benchmark::DC => "LlmDecode",
        }
    }

    /// Table II intensity labels: (compute, memory).
    pub fn intensity(&self) -> (Intensity, Intensity) {
        match self {
            Benchmark::BS => (Intensity::Med, Intensity::Med),
            Benchmark::GS => (Intensity::Low, Intensity::Med),
            Benchmark::MM => (Intensity::High, Intensity::Med),
            Benchmark::RG => (Intensity::Low, Intensity::Low),
            Benchmark::TR => (Intensity::Low, Intensity::High),
            Benchmark::PF => (Intensity::High, Intensity::Low),
            Benchmark::DC => (Intensity::Med, Intensity::High),
        }
    }

    /// Table II reference figures from the paper: (GFLOP/s, GB/s) measured
    /// solo under CUDA on the authors' Titan Xp.
    pub fn paper_reference(&self) -> (f64, f64) {
        match self {
            Benchmark::BS => (161.3, 401.49),
            Benchmark::GS => (19.6, 340.9),
            Benchmark::MM => (1525.0, 403.5),
            Benchmark::RG => (4.2, 71.6),
            Benchmark::TR => (0.0, 568.6),
            // PF/DC are not Table II rows; these are the calibration
            // targets of their simulated profiles.
            Benchmark::PF => (1500.0, 94.0),
            Benchmark::DC => (250.0, 535.0),
        }
    }

    /// Calibrated performance profile at the paper problem size.
    pub fn perf(&self) -> KernelPerf {
        match self {
            Benchmark::BS => blackscholes::paper_perf(),
            Benchmark::GS => gaussian::paper_perf(),
            Benchmark::MM => sgemm::paper_perf(),
            Benchmark::RG => quasirandom::paper_perf(),
            Benchmark::TR => transpose::paper_perf(),
            Benchmark::PF => prefill::paper_perf(),
            Benchmark::DC => decode::paper_perf(),
        }
    }

    /// The application workload the evaluation runs: a ~30-second solo-CUDA
    /// repetition loop at the paper problem size.
    pub fn app(&self) -> AppSpec {
        match self {
            // BlackScholes: 40M options, 2 ms per launch under CUDA; 15000
            // real launches batched 10x for simulation granularity.
            Benchmark::BS => AppSpec {
                bench: *self,
                perf: self.perf(),
                launches: 1500,
                blocks_per_launch: blackscholes::paper_blocks() * 10,
                batch: 10,
                real_launches: 15_000,
                task_size: 10,
                h2d_bytes: 480_000_000,
                d2h_bytes: 320_000_000,
                host_setup_s: 2.0,
                kernel_sources: 1,
                fixed_cost_scale: 1.0,
                pinned_solo: false,
                slo: SloClass::BestEffort,
            },
            // Gaussian: 112 solves of a 2048x2048 system; each solve is
            // 2*(n-1) = 4094 real launches dominated by Fan2 blocks.
            Benchmark::GS => AppSpec {
                bench: *self,
                perf: self.perf(),
                launches: 112,
                blocks_per_launch: gaussian::paper_blocks(),
                batch: 1,
                real_launches: 112 * 4094,
                task_size: 10,
                h2d_bytes: 112 * 2 * 2048 * 2048 * 4,
                d2h_bytes: 112 * 2048 * 4,
                host_setup_s: 2.5,
                kernel_sources: 2,
                fixed_cost_scale: 1.0,
                pinned_solo: false,
                slo: SloClass::BestEffort,
            },
            // SGEMM: 2048^3, ~11 ms per launch; 2660 real launches batched.
            Benchmark::MM => AppSpec {
                bench: *self,
                perf: self.perf(),
                launches: 665,
                blocks_per_launch: sgemm::paper_blocks() * 4,
                batch: 4,
                real_launches: 2660,
                task_size: 10,
                h2d_bytes: 3 * 2048 * 2048 * 4,
                d2h_bytes: 2048 * 2048 * 4,
                host_setup_s: 1.5,
                kernel_sources: 1,
                fixed_cost_scale: 1.0,
                pinned_solo: false,
                slo: SloClass::BestEffort,
            },
            // QuasiRandom: 40M points per launch across 3 dimensions;
            // 13450 real launches batched 10x.
            Benchmark::RG => AppSpec {
                bench: *self,
                perf: self.perf(),
                launches: 1345,
                blocks_per_launch: quasirandom::paper_blocks() * 10,
                batch: 10,
                real_launches: 13_450,
                task_size: 10,
                h2d_bytes: 1_000_000,
                d2h_bytes: 160_000_000,
                host_setup_s: 1.0,
                kernel_sources: 1,
                fixed_cost_scale: 1.0,
                pinned_solo: false,
                slo: SloClass::BestEffort,
            },
            // Transpose: 16384^2 floats, ~3.8 ms per launch; 7940 real
            // launches batched 8x.
            Benchmark::TR => AppSpec {
                bench: *self,
                perf: self.perf(),
                launches: 992,
                blocks_per_launch: transpose::paper_blocks() * 8,
                batch: 8,
                real_launches: 7_940,
                task_size: 10,
                h2d_bytes: 16_384 * 16_384 * 4,
                d2h_bytes: 16_384 * 16_384 * 4,
                host_setup_s: 2.0,
                kernel_sources: 1,
                fixed_cost_scale: 1.0,
                pinned_solo: false,
                slo: SloClass::BestEffort,
            },
            // LLM prefill: ~46 ms attention-score launches, one per layer
            // batch; a ~30 s best-effort throughput loop.
            Benchmark::PF => AppSpec {
                bench: *self,
                perf: self.perf(),
                launches: 660,
                blocks_per_launch: prefill::paper_blocks(),
                batch: 1,
                real_launches: 660,
                task_size: 10,
                h2d_bytes: 2 * 4096 * 2048 * 4,
                d2h_bytes: 4096 * 4096 * 4,
                host_setup_s: 1.5,
                kernel_sources: 1,
                fixed_cost_scale: 1.0,
                pinned_solo: false,
                slo: SloClass::BestEffort,
            },
            // LLM decode: ~0.5 ms batched token steps, 8 real steps per
            // simulated launch; latency-critical by definition.
            Benchmark::DC => AppSpec {
                bench: *self,
                perf: self.perf(),
                launches: 2000,
                blocks_per_launch: decode::paper_blocks() * 8,
                batch: 8,
                real_launches: 16_000,
                task_size: 10,
                h2d_bytes: 50_000_000,
                d2h_bytes: 50_000_000,
                host_setup_s: 0.5,
                kernel_sources: 1,
                fixed_cost_scale: 1.0,
                pinned_solo: false,
                slo: SloClass::LatencyCritical,
            },
        }
    }

    /// All 15 pairings the paper evaluates (10 distinct pairs + 5 self
    /// pairs), in a stable order.
    pub fn all_pairings() -> Vec<(Benchmark, Benchmark)> {
        let mut v = Vec::with_capacity(15);
        for (i, &a) in Self::ALL.iter().enumerate() {
            for &b in &Self::ALL[i..] {
                v.push((a, b));
            }
        }
        v
    }
}

/// One application process as the evaluation runs it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppSpec {
    /// Which benchmark this is.
    pub bench: Benchmark,
    /// Kernel performance profile.
    pub perf: KernelPerf,
    /// Simulated launches (repetitions may be batched into one simulated
    /// launch for event-count economy; timing is unaffected apart from the
    /// negligible per-launch latency).
    pub launches: u32,
    /// Thread blocks per simulated launch.
    pub blocks_per_launch: u64,
    /// Real launches collapsed into one simulated launch
    /// (`blocks_per_launch` covers `batch` real launches).
    pub batch: u32,
    /// Real API-level kernel launches the application performs (drives
    /// client-daemon communication accounting).
    pub real_launches: u64,
    /// Slate task size (`SLATE_ITERS`) for this application.
    pub task_size: u32,
    /// Input bytes transferred host-to-device over the app lifetime.
    pub h2d_bytes: u64,
    /// Output bytes transferred device-to-host.
    pub d2h_bytes: u64,
    /// Host-side setup time (allocation, input generation) in seconds.
    pub host_setup_s: f64,
    /// Distinct kernel sources Slate must inject and compile.
    pub kernel_sources: u32,
    /// Scale factor applied to one-time fixed costs (session setup,
    /// injection/compilation). 1.0 for real runs; `scaled_down` divides it
    /// so that scaled test workloads keep the full run's proportions.
    pub fixed_cost_scale: f64,
    /// Marks a heavily optimized (library) kernel that Slate must run solo
    /// and never co-schedule (paper §IV-A1 future work; `#pragma slate
    /// solo`).
    pub pinned_solo: bool,
    /// Service-level objective class of the session running this app.
    /// Defaults to best-effort; absent in logs recorded before the SLO
    /// dimension existed.
    #[serde(default)]
    pub slo: SloClass,
}

impl AppSpec {
    /// Total thread blocks the app executes.
    pub fn total_blocks(&self) -> u64 {
        self.launches as u64 * self.blocks_per_launch
    }

    /// A scaled-down copy (launches, transfers and host setup all divided by
    /// `factor`) for fast tests. Per-launch shape is preserved, so paired
    /// scaled apps still contend for the device the way full apps do.
    pub fn scaled_down(&self, factor: u32) -> AppSpec {
        let mut s = self.clone();
        s.launches = (s.launches / factor).max(1);
        s.real_launches = (s.real_launches / factor as u64).max(1);
        s.h2d_bytes /= factor as u64;
        s.d2h_bytes /= factor as u64;
        s.host_setup_s /= factor as f64;
        s.fixed_cost_scale /= factor as f64;
        s
    }
}

/// Parameters of the seeded open-loop LLM serving trace: bursts of
/// latency-critical decode sessions arriving over a background of
/// best-effort prefill loops. Everything is derived from `seed` by a
/// xorshift generator, so the same config always yields the same trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LlmTraceCfg {
    /// PRNG seed for arrival jitter.
    pub seed: u64,
    /// Best-effort prefill sessions running throughout the trace.
    pub prefill_sessions: u32,
    /// Latency-critical decode sessions arriving in bursts.
    pub decode_sessions: u32,
    /// Decode arrivals per burst.
    pub burst: u32,
    /// Gap between the starts of consecutive bursts, seconds.
    pub inter_burst_s: f64,
    /// Maximum in-burst arrival jitter, seconds.
    pub jitter_s: f64,
    /// Simulated decode launches (token-step groups) per decode session.
    pub decode_launches: u32,
    /// `scaled_down` factor applied to the app bodies.
    pub scale: u32,
}

impl LlmTraceCfg {
    /// A paper-scale serving mix: two prefill loops, decode bursts of four
    /// every 200 ms.
    pub fn paper(seed: u64) -> Self {
        Self {
            seed,
            prefill_sessions: 2,
            decode_sessions: 24,
            burst: 4,
            inter_burst_s: 0.2,
            jitter_s: 0.01,
            decode_launches: 3,
            scale: 1,
        }
    }
}

/// Deterministic xorshift64 step, the workspace's seeded-PRNG idiom.
fn xorshift64(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Builds the open-loop mixed-SLO trace: prefill sessions first (arriving
/// near t=0, staggered), then decode sessions in arrival order. Arrival
/// offsets ride on `host_setup_s`, which is exactly the pre-start delay the
/// runtimes model before a session opens.
pub fn llm_trace(cfg: &LlmTraceCfg) -> Vec<AppSpec> {
    let mut rng = cfg.seed | 1;
    let mut apps = Vec::with_capacity((cfg.prefill_sessions + cfg.decode_sessions) as usize);
    for i in 0..cfg.prefill_sessions {
        let mut app = Benchmark::PF.app().scaled_down(cfg.scale);
        // Stagger prefill starts slightly so their launch boundaries don't
        // stay phase-locked.
        app.host_setup_s = 0.05 * i as f64;
        app.slo = SloClass::BestEffort;
        apps.push(app);
    }
    for i in 0..cfg.decode_sessions {
        let mut app = Benchmark::DC.app().scaled_down(cfg.scale);
        let burst_idx = (i / cfg.burst.max(1)) as f64;
        let jitter = if cfg.jitter_s > 0.0 {
            (xorshift64(&mut rng) % 1_000_000) as f64 / 1e6 * cfg.jitter_s
        } else {
            0.0
        };
        app.host_setup_s = burst_idx * cfg.inter_burst_s + jitter;
        app.launches = cfg.decode_launches.max(1);
        app.real_launches = app.launches as u64 * app.batch as u64;
        app.slo = SloClass::LatencyCritical;
        apps.push(app);
    }
    apps
}

#[cfg(test)]
mod tests {
    use super::*;
    use slate_gpu_sim::device::DeviceConfig;

    #[test]
    fn all_pairings_count_is_15() {
        let p = Benchmark::all_pairings();
        assert_eq!(p.len(), 15);
        // 5 self-pairs.
        assert_eq!(p.iter().filter(|(a, b)| a == b).count(), 5);
    }

    #[test]
    fn profiles_validate() {
        for b in Benchmark::ALL {
            b.perf().validate().unwrap_or_else(|e| panic!("{b:?}: {e}"));
        }
    }

    #[test]
    fn intensity_labels_match_table2() {
        use Intensity::*;
        assert_eq!(Benchmark::BS.intensity(), (Med, Med));
        assert_eq!(Benchmark::GS.intensity(), (Low, Med));
        assert_eq!(Benchmark::MM.intensity(), (High, Med));
        assert_eq!(Benchmark::RG.intensity(), (Low, Low));
        assert_eq!(Benchmark::TR.intensity(), (Low, High));
    }

    /// Each app's solo kernel time under the simulated hardware scheduler
    /// should be in the vicinity of the paper's ~30 s looping target.
    #[test]
    fn solo_cuda_kernel_time_near_30s() {
        let d = DeviceConfig::titan_xp();
        for b in Benchmark::ALL {
            let app = b.app();
            let p = &app.perf;
            let per_sm = slate_gpu_sim::occupancy::blocks_per_sm(&d, p) as f64;
            let useful = match p.max_concurrent_blocks {
                Some(c) => (c as f64 / per_sm).min(d.num_sms as f64),
                None => d.num_sms as f64,
            };
            let util =
                (per_sm * p.threads_per_block as f64 / d.threads_for_peak_per_sm as f64).min(1.0);
            let r_comp =
                useful * d.clock_hz * util / (p.compute_cycles_per_block + d.block_setup_cycles);
            let r_mem = d.dram_bw.min(useful * d.per_sm_mem_bw) / p.dram_bytes_scattered.max(1e-9);
            let r = r_comp.min(r_mem);
            let t = app.total_blocks() as f64 / r;
            assert!(
                (24.0..40.0).contains(&t),
                "{b:?}: solo kernel time {t:.1}s out of range"
            );
        }
    }

    #[test]
    fn scaled_down_reduces_work() {
        let app = Benchmark::BS.app();
        let s = app.scaled_down(100);
        assert!(s.launches >= 1 && s.launches < app.launches);
        assert!(s.total_blocks() < app.total_blocks());
    }

    #[test]
    fn llm_family_is_outside_the_table2_suite() {
        assert!(!Benchmark::ALL.contains(&Benchmark::PF));
        assert!(!Benchmark::ALL.contains(&Benchmark::DC));
        Benchmark::PF.perf().validate().unwrap();
        Benchmark::DC.perf().validate().unwrap();
        assert_eq!(Benchmark::PF.app().slo, SloClass::BestEffort);
        assert_eq!(Benchmark::DC.app().slo, SloClass::LatencyCritical);
    }

    #[test]
    fn slo_class_defaults_to_best_effort() {
        assert_eq!(SloClass::default(), SloClass::BestEffort);
        for b in Benchmark::ALL {
            assert_eq!(b.app().slo, SloClass::BestEffort);
        }
    }

    #[test]
    fn llm_trace_is_deterministic_and_bursty() {
        let cfg = LlmTraceCfg::paper(0xC0FFEE);
        let a = llm_trace(&cfg);
        let b = llm_trace(&cfg);
        assert_eq!(a.len(), b.len());
        assert_eq!(
            a.len(),
            (cfg.prefill_sessions + cfg.decode_sessions) as usize
        );
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.host_setup_s, y.host_setup_s, "same seed, same trace");
        }
        let decodes: Vec<&AppSpec> = a.iter().filter(|s| s.bench == Benchmark::DC).collect();
        assert_eq!(decodes.len(), cfg.decode_sessions as usize);
        assert!(decodes.iter().all(|d| d.slo == SloClass::LatencyCritical));
        // Arrivals within one burst are close; across bursts they are
        // separated by roughly the inter-burst gap.
        let first_burst = &decodes[..cfg.burst as usize];
        for d in first_burst {
            assert!(d.host_setup_s <= cfg.jitter_s);
        }
        assert!(decodes[cfg.burst as usize].host_setup_s >= cfg.inter_burst_s);
        // A different seed moves the jitter.
        let other = llm_trace(&LlmTraceCfg {
            seed: 0x5EED,
            ..cfg.clone()
        });
        assert!(a
            .iter()
            .zip(&other)
            .any(|(x, y)| x.host_setup_s != y.host_setup_s));
    }
}
