//! Concurrent kernel selection (paper §III-B, Fig. 4).
//!
//! When kernel `J_k` is active and others wait, Slate examines the waiting
//! queue in order for a kernel whose workload class is complementary to the
//! active one under the heuristic policy (Table I); if none is found, `J_k`
//! runs solo on the whole device. The complementarity criterion is ANTT:
//! co-running wins when `max(T'_k, T'_{k+1}) < T_k + T_{k+1}`.

use crate::classify::WorkloadClass;
use crate::policy::{should_corun, should_corun_aged};
use std::cmp::Reverse;

/// ANTT of consecutive solo executions (the CUDA default): `T_k + T_{k+1}`.
pub fn antt_consecutive(t_a: f64, t_b: f64) -> f64 {
    t_a + t_b
}

/// ANTT of concurrent execution: `max(T'_k, T'_{k+1})`.
pub fn antt_concurrent(t_a_corun: f64, t_b_corun: f64) -> f64 {
    t_a_corun.max(t_b_corun)
}

/// The paper's complementarity criterion: concurrent execution must beat
/// consecutive execution.
pub fn corun_is_profitable(t_a: f64, t_b: f64, t_a_corun: f64, t_b_corun: f64) -> bool {
    antt_concurrent(t_a_corun, t_b_corun) < antt_consecutive(t_a, t_b)
}

/// Margin used when deriving a policy from measurements: a co-run must beat
/// consecutive execution by at least this fraction to be worth the
/// scheduling risk (break-even pairs default to solo).
pub const PROFIT_MARGIN: f64 = 0.02;

/// The policy-derivation criterion: concurrent execution must clearly beat
/// consecutive execution (by [`PROFIT_MARGIN`]).
pub fn corun_clearly_profitable(t_a: f64, t_b: f64, t_a_corun: f64, t_b_corun: f64) -> bool {
    antt_concurrent(t_a_corun, t_b_corun) < antt_consecutive(t_a, t_b) * (1.0 - PROFIT_MARGIN)
}

/// Scans `waiting` (in queue order, starting at `cursor` for round-robin
/// fairness) for the first kernel complementary to `active`; returns its
/// index into `waiting`.
pub fn find_partner(
    active: WorkloadClass,
    waiting: &[WorkloadClass],
    cursor: usize,
) -> Option<usize> {
    let n = waiting.len();
    (0..n)
        .map(|k| (cursor + k) % n.max(1))
        .find(|&i| should_corun(active, waiting[i]))
}

/// A waiting kernel as seen by the wait-aware selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartnerCandidate {
    /// The candidate's workload class.
    pub class: WorkloadClass,
    /// How long the candidate has waited in the queue, in seconds.
    pub waited_s: f64,
    /// Stable arrival order (lower = arrived earlier). This is the
    /// deterministic tie-break when wait times compare equal.
    pub order: u64,
}

/// Deterministic, wait-aware partner choice: among candidates complementary
/// to `active` (Table I symmetric closure), pick the one that has waited
/// longest; break exact wait-time ties by stable arrival order. Returns the
/// index into `candidates`.
///
/// This replaces the round-robin-cursor scan of [`find_partner`] for
/// callers that track per-kernel wait times — the cursor scan picks
/// whichever complementary candidate the cursor happens to land on, which
/// is nondeterministic across runs when the cursor state differs.
pub fn select_partner(active: WorkloadClass, candidates: &[PartnerCandidate]) -> Option<usize> {
    candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| should_corun(active, c.class))
        .max_by(|(_, a), (_, b)| {
            a.waited_s
                .total_cmp(&b.waited_s)
                .then_with(|| Reverse(a.order).cmp(&Reverse(b.order)))
        })
        .map(|(i, _)| i)
}

/// Outcome of an aging-aware selection round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartnerChoice {
    /// Co-run the candidate at this index with the active kernel.
    Corun(usize),
    /// The candidate at this index has starved past the bound: dispatch it
    /// solo as soon as the device frees, ahead of any co-run pairing.
    PromoteSolo(usize),
    /// No candidate is eligible; the active kernel keeps the device.
    NoPartner,
}

/// Wait-aware selection with starvation aging. A candidate whose wait
/// meets or exceeds `bound_s` is *starved*: it refuses co-running
/// ([`should_corun_aged`]) and is promoted to a solo dispatch instead —
/// the longest-starved first, ties broken by arrival order. Without
/// starved candidates this reduces to [`select_partner`]. `bound_s = None`
/// disables aging entirely.
pub fn select_partner_aged(
    active: WorkloadClass,
    candidates: &[PartnerCandidate],
    bound_s: Option<f64>,
) -> PartnerChoice {
    if let Some(bound) = bound_s {
        let starved = candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.waited_s >= bound)
            .max_by(|(_, a), (_, b)| {
                a.waited_s
                    .total_cmp(&b.waited_s)
                    .then_with(|| Reverse(a.order).cmp(&Reverse(b.order)))
            });
        if let Some((i, c)) = starved {
            debug_assert!(!should_corun_aged(active, c.class, true));
            return PartnerChoice::PromoteSolo(i);
        }
    }
    match select_partner(active, candidates) {
        Some(i) => PartnerChoice::Corun(i),
        None => PartnerChoice::NoPartner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::WorkloadClass::*;

    #[test]
    fn antt_criterion_matches_paper_definition() {
        // Solo 10s each; corun stretches both to 12s: 12 < 20 -> profitable.
        assert!(corun_is_profitable(10.0, 10.0, 12.0, 12.0));
        // Corun doubles both: 20 == 20 -> not profitable (strict).
        assert!(!corun_is_profitable(10.0, 10.0, 20.0, 20.0));
        // Asymmetric: the slower co-runner decides.
        assert!(!corun_is_profitable(10.0, 10.0, 21.0, 5.0));
        assert!(corun_is_profitable(10.0, 10.0, 19.0, 5.0));
    }

    #[test]
    fn margin_criterion_rejects_break_even() {
        assert!(corun_is_profitable(10.0, 10.0, 19.9, 19.9));
        assert!(!corun_clearly_profitable(10.0, 10.0, 19.9, 19.9));
        assert!(corun_clearly_profitable(10.0, 10.0, 15.0, 15.0));
    }

    #[test]
    fn finds_first_complementary_in_queue_order() {
        // Active M_M: M_M no, H_M no, L_C yes.
        let waiting = [MM, HM, LC];
        assert_eq!(find_partner(MM, &waiting, 0), Some(2));
    }

    #[test]
    fn returns_none_when_nothing_complementary() {
        let waiting = [MM, HM, HM];
        assert_eq!(find_partner(MM, &waiting, 0), None);
        assert_eq!(find_partner(MM, &[], 0), None);
    }

    #[test]
    fn cursor_rotates_the_scan() {
        // Two complementary candidates; the cursor picks fairly.
        let waiting = [LC, MM, LC];
        assert_eq!(find_partner(MM, &waiting, 0), Some(0));
        assert_eq!(find_partner(MM, &waiting, 1), Some(2));
        assert_eq!(find_partner(MM, &waiting, 2), Some(2));
    }

    fn cand(class: WorkloadClass, waited_s: f64, order: u64) -> PartnerCandidate {
        PartnerCandidate {
            class,
            waited_s,
            order,
        }
    }

    #[test]
    fn select_partner_prefers_longest_wait() {
        let cands = [cand(LC, 0.5, 0), cand(MM, 9.0, 1), cand(LC, 2.0, 2)];
        // Active MM: MM candidate is not complementary despite its wait.
        assert_eq!(select_partner(MM, &cands), Some(2));
    }

    #[test]
    fn equal_scores_tie_break_deterministically_by_arrival_order() {
        // Regression: the cursor scan returned whichever complementary
        // candidate the rotating cursor landed on. With identical waits the
        // earliest arrival must win, every time.
        let cands = [cand(LC, 1.0, 7), cand(LC, 1.0, 3), cand(LC, 1.0, 5)];
        for _ in 0..16 {
            assert_eq!(select_partner(MM, &cands), Some(1));
        }
        // Reordering the slice cannot change which *kernel* wins.
        let swapped = [cands[2], cands[0], cands[1]];
        assert_eq!(select_partner(MM, &swapped), Some(2));
        assert_eq!(swapped[2].order, 3);
    }

    #[test]
    fn select_partner_none_when_nothing_complementary() {
        assert_eq!(
            select_partner(MM, &[cand(MM, 4.0, 0), cand(HM, 2.0, 1)]),
            None
        );
        assert_eq!(select_partner(MM, &[]), None);
    }

    #[test]
    fn aging_promotes_starved_candidate_over_profitable_corun() {
        // A fresh LC would be a profitable partner for the active MM, but
        // the MM candidate has starved past the bound: it is promoted solo.
        let cands = [cand(LC, 0.1, 0), cand(MM, 5.0, 1)];
        assert_eq!(
            select_partner_aged(MM, &cands, Some(3.0)),
            PartnerChoice::PromoteSolo(1)
        );
        // Below the bound the normal policy applies.
        assert_eq!(
            select_partner_aged(MM, &cands, Some(10.0)),
            PartnerChoice::Corun(0)
        );
        // Aging disabled: identical to select_partner.
        assert_eq!(
            select_partner_aged(MM, &cands, None),
            PartnerChoice::Corun(0)
        );
    }

    #[test]
    fn aging_ties_break_by_arrival_and_fall_through_to_no_partner() {
        let cands = [cand(HM, 4.0, 9), cand(MM, 4.0, 2)];
        assert_eq!(
            select_partner_aged(LC, &cands, Some(4.0)),
            PartnerChoice::PromoteSolo(1)
        );
        assert_eq!(
            select_partner_aged(MM, &[cand(MM, 0.5, 0)], Some(4.0)),
            PartnerChoice::NoPartner
        );
    }
}
