//! [`DispatcherBackend`]: arbiter command execution over real
//! persistent-worker threads, via the dispatch kernel of
//! [`crate::dispatch`].
//!
//! This is the execution substrate of the live
//! [`SlateDaemon`](crate::daemon::SlateDaemon). A dispatched lease is a
//! [`Dispatcher`] running on its own thread; resizes and evictions act on
//! its [`DispatchHandle`] exactly as the daemon's arbiter frontend does —
//! in fact the daemon and this backend share the [`LeaseTable`] that maps
//! arbiter `Resize`/`Evict` commands onto dispatch handles (including the
//! injected-hang token cancel on eviction).

use super::{Backend, Completion, DeviceFault, DeviceHealth, WorkSpec};
use crate::arbiter::Command;
use crate::dispatch::{DispatchHandle, Dispatcher};
use crossbeam::channel::{unbounded, Receiver, Sender};
use slate_gpu_sim::device::{DeviceConfig, SmRange};
use slate_gpu_sim::fault::{FaultKind, FaultPlan, FaultSite, FaultToken};
use std::collections::{BTreeMap, BTreeSet};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The execution-side state of in-flight dispatches: the handles the
/// arbiter's `Resize`/`Evict` commands act on, plus the injected-hang
/// token to cancel on eviction so cooperatively hung workers actually come
/// back. Shared between the daemon's arbiter frontend and
/// [`DispatcherBackend`] — one interpretation of execution commands
/// against dispatch handles.
///
/// Ordered map by rule: any structure on the command/replay path must
/// iterate deterministically, even if today's accesses are keyed lookups.
/// (Dense-slot rule, `DESIGN.md` §17: decision-path tables inside the
/// arbitration core use interned `IdTable` slots instead — but there,
/// any slot iteration whose order can reach output sorts by external id
/// first. This table is keyed-lookup-only and off the per-event hot
/// path, so the ordered map stays.)
#[derive(Debug, Default)]
pub struct LeaseTable {
    entries: BTreeMap<u64, LeaseEntry>,
}

#[derive(Debug)]
struct LeaseEntry {
    handle: DispatchHandle,
    token: Option<FaultToken>,
}

impl LeaseTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the dispatch handle (and optional hang token) of `lease`.
    pub fn register(&mut self, lease: u64, handle: DispatchHandle, token: Option<FaultToken>) {
        self.entries.insert(lease, LeaseEntry { handle, token });
    }

    /// Drops `lease`'s entry; returns whether it was present.
    pub fn release(&mut self, lease: u64) -> bool {
        self.entries.remove(&lease).is_some()
    }

    /// Whether `lease` is registered.
    pub fn contains(&self, lease: u64) -> bool {
        self.entries.contains_key(&lease)
    }

    /// Registered leases.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no lease is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The registered leases, in ascending order. Crash handling walks
    /// this to evict every in-flight dispatch before the scene capture.
    pub fn leases(&self) -> Vec<u64> {
        self.entries.keys().copied().collect()
    }

    /// Absolute `slateIdx` progress of `lease`, if registered.
    pub fn progress(&self, lease: u64) -> Option<u64> {
        self.entries.get(&lease).map(|e| e.handle.progress())
    }

    /// Carries out an execution command against the registered handle:
    /// `Resize` adjusts the SM range mid-flight, `Evict` stops the
    /// dispatch and cancels any hang token. Returns whether a handle was
    /// found and acted on; every other command is a no-op.
    pub fn apply(&self, cmd: &Command) -> bool {
        match cmd {
            Command::Resize { lease, range } => match self.entries.get(lease) {
                Some(e) => {
                    e.handle.resize(*range);
                    true
                }
                None => false,
            },
            Command::Evict { lease } => match self.entries.get(lease) {
                Some(e) => {
                    e.handle.evict();
                    if let Some(t) = &e.token {
                        t.cancel();
                    }
                    true
                }
                None => false,
            },
            _ => false,
        }
    }
}

/// Per-lease job state.
struct Job {
    /// Staged work, consumed by the dispatch.
    spec: Option<WorkSpec>,
    /// Carried progress of the staging (reported before any pull happens).
    start: u64,
    /// The last commanded SM range, once dispatched.
    range: Option<SmRange>,
    /// The dispatch thread, while running or unjoined.
    thread: Option<JoinHandle<()>>,
    /// Final `(progress, ok)` once the completion was polled.
    finished: Option<(u64, bool)>,
}

/// The persistent-worker execution backend.
pub struct DispatcherBackend {
    device: DeviceConfig,
    jobs: BTreeMap<u64, Job>,
    leases: LeaseTable,
    tx: Sender<Completion>,
    rx: Receiver<Completion>,
    /// Whether the device is lost (hard, or flapping until `down_until`).
    lost: bool,
    /// Flap recovery deadline; `None` while hard-lost.
    down_until: Option<Instant>,
    /// Degraded-probe deadline (the dispatcher runs on wall clock, so a
    /// stall is a wall-clock window during which `health()` reports
    /// [`DeviceHealth::Degraded`]).
    degraded_until: Option<Instant>,
    /// Leases evicted by a device loss: their worker completions are
    /// rewritten as lost when they surface through [`Backend::poll`].
    lost_leases: BTreeSet<u64>,
    /// Seeded device-fault schedule, fired on each dispatch.
    device_plan: Option<FaultPlan>,
}

impl DispatcherBackend {
    /// A backend executing on `device` with real worker threads.
    pub fn new(device: DeviceConfig) -> Self {
        let (tx, rx) = unbounded();
        Self {
            device,
            jobs: BTreeMap::new(),
            leases: LeaseTable::new(),
            tx,
            rx,
            lost: false,
            down_until: None,
            degraded_until: None,
            lost_leases: BTreeSet::new(),
            device_plan: None,
        }
    }

    /// Attaches a seeded device-fault schedule: every dispatch fires the
    /// plan's [`FaultSite::Device`] rules.
    pub fn with_device_faults(mut self, plan: FaultPlan) -> Self {
        self.device_plan = Some(plan);
        self
    }

    /// Health as of this instant: flap outages and degraded windows expire
    /// on the wall clock without a state-mutating tick.
    fn current_health(&self) -> DeviceHealth {
        if self.lost && self.down_until.is_none_or(|t| Instant::now() < t) {
            return DeviceHealth::Lost;
        }
        if self.degraded_until.is_some_and(|t| Instant::now() < t) {
            return DeviceHealth::Degraded;
        }
        DeviceHealth::Healthy
    }

    /// Folds an expired flap outage back into the healthy state.
    fn settle(&mut self) {
        if self.lost && self.down_until.is_some_and(|t| Instant::now() >= t) {
            self.lost = false;
            self.down_until = None;
        }
    }

    /// Evicts every in-flight dispatch as a device casualty; their worker
    /// completions surface as lost through [`Backend::poll`].
    fn lose_in_flight(&mut self) {
        let in_flight: Vec<u64> = self
            .jobs
            .iter()
            .filter(|(_, j)| j.thread.is_some() && j.finished.is_none())
            .map(|(&lease, _)| lease)
            .collect();
        for lease in in_flight {
            self.lost_leases.insert(lease);
            self.leases.apply(&Command::Evict { lease });
        }
    }

    /// Notes a completion that arrived on the channel.
    fn note(&mut self, c: Completion) {
        if let Some(job) = self.jobs.get_mut(&c.lease) {
            job.finished = Some((c.progress, c.ok));
            if let Some(t) = job.thread.take() {
                let _ = t.join();
            }
        }
        self.leases.release(c.lease);
    }
}

impl Backend for DispatcherBackend {
    fn name(&self) -> &'static str {
        "dispatcher"
    }

    fn device(&self) -> &DeviceConfig {
        &self.device
    }

    fn stage(&mut self, lease: u64, spec: WorkSpec) {
        debug_assert!(
            self.jobs
                .get(&lease)
                .is_none_or(|j| j.finished.is_some() || j.thread.is_none()),
            "staging over an in-flight lease"
        );
        let start = spec.start;
        self.jobs.insert(
            lease,
            Job {
                spec: Some(spec),
                start,
                range: None,
                thread: None,
                finished: None,
            },
        );
    }

    fn apply(&mut self, cmd: &Command) {
        match cmd {
            Command::Dispatch { lease, range } => {
                self.settle();
                // Each dispatch is one occurrence of the device fault
                // site — the scheduled loss/stall/flap (if any) lands
                // before the work does.
                if let Some(plan) = self.device_plan.as_mut() {
                    match plan.fire(FaultSite::Device, None) {
                        Some(FaultKind::DeviceLoss) => {
                            self.inject_device_fault(DeviceFault::Loss);
                        }
                        Some(FaultKind::DeviceStall { millis }) => {
                            self.inject_device_fault(DeviceFault::Degraded { millis });
                        }
                        Some(FaultKind::DeviceFlap { down_ms }) => {
                            self.inject_device_fault(DeviceFault::Flap { down_ms });
                        }
                        _ => {}
                    }
                }
                let lost = self.current_health() == DeviceHealth::Lost;
                let Some(job) = self.jobs.get_mut(lease) else {
                    return;
                };
                let Some(spec) = job.spec.take() else {
                    return; // duplicate dispatch: already running or done
                };
                if lost {
                    // Dispatch into a dead device: lost on arrival, at
                    // whatever progress the staging carried.
                    let _ = self.tx.send(Completion::device_lost(*lease, spec.start));
                    return;
                }
                // Build the dispatcher directly on the commanded range: no
                // initial-resize race, the first worker launch is confined.
                let d = Dispatcher::resume(
                    self.device.clone(),
                    spec.kernel,
                    spec.task_size,
                    *range,
                    spec.start,
                );
                self.leases.register(*lease, d.handle(), None);
                job.range = Some(*range);
                let tx = self.tx.clone();
                let lease = *lease;
                job.thread = Some(std::thread::spawn(move || {
                    let out = d.run();
                    let _ = tx.send(Completion {
                        lease,
                        progress: out.blocks,
                        ok: !out.evicted,
                        lost: false,
                    });
                }));
            }
            Command::Resize { lease, range } => {
                if self.leases.apply(cmd) {
                    if let Some(job) = self.jobs.get_mut(lease) {
                        job.range = Some(*range);
                    }
                }
            }
            Command::Evict { lease } => {
                if !self.leases.apply(cmd) {
                    // No in-flight handle: evicting a staged-but-parked
                    // lease still consumes the staging and reports the
                    // eviction at its carried progress, exactly as the
                    // simulation backend does — mass evacuation must be
                    // able to move waiters, not just residents.
                    if let Some(job) = self.jobs.get_mut(lease) {
                        if job.spec.take().is_some() {
                            let _ = self.tx.send(Completion::evicted(*lease, job.start));
                        }
                    }
                }
            }
            Command::PromoteStarved { .. }
            | Command::Preempt { .. }
            | Command::Reap { .. }
            | Command::RejectOverloaded { .. } => {}
        }
    }

    fn poll(&mut self) -> Option<Completion> {
        self.settle();
        match self.rx.try_recv() {
            Ok(mut c) => {
                if self.lost_leases.remove(&c.lease) {
                    // The eviction was a device casualty, not a
                    // scheduling decision.
                    c.lost = true;
                    c.ok = false;
                }
                self.note(c);
                Some(c)
            }
            Err(_) => None,
        }
    }

    fn advance(&mut self, millis: u64) {
        std::thread::sleep(std::time::Duration::from_millis(millis));
    }

    fn progress(&self, lease: u64) -> u64 {
        let Some(job) = self.jobs.get(&lease) else {
            return 0;
        };
        if let Some((p, _)) = job.finished {
            return p;
        }
        self.leases.progress(lease).unwrap_or(job.start)
    }

    fn held_range(&self, lease: u64) -> Option<SmRange> {
        let job = self.jobs.get(&lease)?;
        if job.finished.is_some() {
            return None;
        }
        job.range
    }

    fn is_functional(&self) -> bool {
        true
    }

    fn health(&self) -> DeviceHealth {
        self.current_health()
    }

    fn inject_device_fault(&mut self, fault: DeviceFault) -> bool {
        match fault {
            DeviceFault::Loss => {
                self.lose_in_flight();
                self.lost = true;
                self.down_until = None;
            }
            DeviceFault::Degraded { millis } => {
                if self.current_health() != DeviceHealth::Lost {
                    self.degraded_until = Some(Instant::now() + Duration::from_millis(millis));
                }
            }
            DeviceFault::Flap { down_ms } => {
                self.lose_in_flight();
                self.lost = true;
                self.down_until = Some(Instant::now() + Duration::from_millis(down_ms.max(1)));
            }
            DeviceFault::Restore => {
                self.lost = false;
                self.down_until = None;
                self.degraded_until = None;
            }
        }
        true
    }
}
