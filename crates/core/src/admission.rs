//! Admission-control configuration and observability types.
//!
//! The daemon serves kernels from many independent host processes (paper
//! §III); without limits a burst of clients grows unbounded pending-launch
//! queues and wedges the scheduler. [`AdmissionLimits`] configures the
//! bounds — concurrent sessions, pending launches (per session and
//! globally, through [`LaunchGauge`](crate::queue::LaunchGauge)s), and
//! device-memory pressure. The *enforcement* lives in the shared
//! arbitration core ([`crate::arbiter::ArbiterCore`]): over-limit requests
//! are answered with
//! [`Command::RejectOverloaded`](crate::arbiter::Command::RejectOverloaded),
//! which the daemon translates to
//! [`SlateError::Overloaded`](crate::error::SlateError::Overloaded) on the
//! wire.
//!
//! This module keeps the configuration and the stable observability
//! surface: [`AdmissionStats`] and the aggregate [`DaemonMetrics`]
//! snapshot future observability work builds on.

use crate::placement::PlacementStats;
use crate::queue::QueueStats;
use serde::{Deserialize, Serialize};

/// Configurable admission limits. The default is fully permissive —
/// admission control is opt-in and the daemon behaves exactly as before
/// unless a bound is set.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AdmissionLimits {
    /// Maximum concurrently connected sessions; further `connect`s are
    /// shed with [`SlateError::Overloaded`](crate::error::SlateError).
    pub max_sessions: Option<usize>,
    /// Maximum pending (admitted, uncompleted) launches per session.
    pub max_pending_per_session: Option<u64>,
    /// Maximum pending launches across all sessions.
    pub max_pending_global: Option<u64>,
    /// Memory-pressure watermark as a fraction of pool capacity in
    /// `(0, 1]`: an allocation that would push usage past
    /// `watermark * capacity` is shed (distinct from a hard
    /// [`SlateError::OutOfMemory`](crate::error::SlateError), which means
    /// the pool itself refused).
    pub mem_watermark: Option<f64>,
}

/// Fleet-level admission bounds: per-device budgets that scale with the
/// number of *healthy* devices, enforced by the placement layer before
/// any per-device core sees the request. When a device fails or is
/// quarantined the fleet's aggregate capacity shrinks with it, so
/// shedding tightens automatically instead of piling load onto the
/// survivors. The default is fully permissive, like [`AdmissionLimits`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FleetAdmissionConfig {
    /// Maximum routed sessions per healthy device; the fleet bound is
    /// this times the current healthy-device count.
    pub max_sessions_per_device: Option<usize>,
    /// Maximum in-flight launches per healthy device; the fleet bound is
    /// this times the current healthy-device count.
    pub max_pending_per_device: Option<u64>,
}

impl FleetAdmissionConfig {
    /// Whether any fleet bound is set.
    pub fn is_active(&self) -> bool {
        self.max_sessions_per_device.is_some() || self.max_pending_per_device.is_some()
    }
}

/// Point-in-time snapshot of the admission counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Sessions currently connected.
    pub active_sessions: usize,
    /// Sessions admitted since the daemon started.
    pub sessions_admitted: u64,
    /// Sessions shed at the `max_sessions` bound.
    pub sessions_rejected: u64,
    /// Admitted launches that finished successfully.
    pub launches_completed: u64,
    /// Admitted launches that finished with an error (fault, eviction).
    pub launches_failed: u64,
    /// Deadline-carrying launches rejected up front because the estimated
    /// queue wait already exceeded their deadline.
    pub deadline_rejections: u64,
    /// Allocations shed at the memory watermark.
    pub mallocs_shed: u64,
    /// Estimated milliseconds of profiled work currently pending.
    pub pending_est_ms: u64,
}

/// One stable snapshot of everything the daemon can report about itself:
/// queue backlog, admission counters, and the fault-tolerance counters
/// that already existed as individual accessors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaemonMetrics {
    /// Daemon-wide launch-queue snapshot (the global launch gauge).
    pub queue: QueueStats,
    /// Admission counters.
    pub admission: AdmissionStats,
    /// Kernel launches fully served since start.
    pub launches_served: u64,
    /// Live device allocations across all sessions.
    pub live_allocations: usize,
    /// Hardware work-queue lanes registered on the funnelled context.
    pub hyperq_lanes: usize,
    /// Kernels currently resident on the device.
    pub arbiter_residents: usize,
    /// Kernels evicted by the watchdog.
    pub watchdog_evictions: u64,
    /// Sessions torn down because the client vanished.
    pub reaped_sessions: u64,
    /// Starved waiters the arbiter promoted to solo dispatch.
    pub starvation_promotions: u64,
    /// Fault-plan rules that have fired (0 outside injection tests).
    pub faults_fired: usize,
    /// Placement counters: fleet size, routed sessions, rebalances fired
    /// and migrations completed. On a single-device daemon `devices` is 1
    /// and the migration counters stay 0.
    pub placement: PlacementStats,
    /// Poisoned-mutex recoveries across the daemon's shared state: each
    /// count is a lock some thread panicked under that a later locker
    /// recovered instead of cascading the panic.
    pub lock_recoveries: u64,
}
