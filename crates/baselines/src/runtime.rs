//! The common runtime interface all three schedulers implement.
//!
//! A *runtime* takes a set of application processes ([`AppSpec`]s), runs
//! them to completion against the simulated device, and reports per-app
//! results. The paper compares three runtimes (§V-A2):
//!
//! * **vanilla CUDA** — per-process contexts; concurrent processes
//!   time-slice the device with kernel-to-completion granularity;
//! * **NVIDIA MPS** — context funnelling through a daemon plus the hardware
//!   *leftover* policy (effectively consecutive execution for the large
//!   kernels under study);
//! * **Slate** — workload-aware spatial sharing (implemented in
//!   `slate-core`).

use slate_gpu_sim::device::DeviceConfig;
use slate_gpu_sim::metrics::KernelMetrics;
use slate_gpu_sim::trace::Trace;
use slate_kernels::workload::{AppSpec, Benchmark};

/// Result of one application process under some runtime.
#[derive(Debug, Clone)]
pub struct AppResult {
    /// Which benchmark ran.
    pub bench: Benchmark,
    /// Wall-clock end time of the process (all processes start at 0).
    pub end_s: f64,
    /// Total application time (start-to-end).
    pub app_time_s: f64,
    /// Time the app's kernels were executing on the device.
    pub kernel_busy_s: f64,
    /// Wall-clock time the app's first kernel was dispatched.
    pub kernel_start_s: f64,
    /// Wall-clock time the app's last kernel drained.
    pub kernel_end_s: f64,
    /// Client-daemon communication time charged to the app (Slate/MPS).
    pub comm_s: f64,
    /// Code injection and runtime compilation time (Slate only).
    pub inject_s: f64,
    /// Aggregated hardware counters over all the app's launches.
    pub metrics: KernelMetrics,
}

impl AppResult {
    /// Host time: everything outside kernel execution (setup, transfers,
    /// waiting for the device, daemon overheads).
    pub fn host_s(&self) -> f64 {
        (self.app_time_s - self.kernel_busy_s).max(0.0)
    }
}

/// Outcome of running a set of processes under one runtime.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Runtime label ("CUDA", "MPS", "Slate").
    pub runtime: String,
    /// Per-app results, in input order.
    pub apps: Vec<AppResult>,
    /// Time at which the last process finished.
    pub makespan_s: f64,
    /// Scheduling trace (launches, drains, resizes, transfers).
    pub trace: Trace,
}

impl RunOutcome {
    /// Average normalized turnaround time against per-app solo baselines:
    /// `mean(T_i / T_i_solo)` (paper §III-B's throughput criterion
    /// generalised to application granularity, lower is better).
    pub fn antt(&self, solo_times: &[f64]) -> f64 {
        assert_eq!(solo_times.len(), self.apps.len());
        let sum: f64 = self
            .apps
            .iter()
            .zip(solo_times)
            .map(|(a, &s)| a.app_time_s / s)
            .sum();
        sum / self.apps.len() as f64
    }

    /// System throughput relative to another outcome on the same workload:
    /// `other.makespan / self.makespan - 1` (positive = this one is faster).
    pub fn throughput_gain_over(&self, other: &RunOutcome) -> f64 {
        other.makespan_s / self.makespan_s - 1.0
    }
}

/// A GPU multiprocessing runtime.
pub trait Runtime {
    /// Runtime label used in reports.
    fn label(&self) -> &str;
    /// The device this runtime schedules.
    fn device(&self) -> &DeviceConfig;
    /// Runs all `apps` as concurrent processes starting at time 0.
    fn run(&self, apps: &[AppSpec]) -> RunOutcome;

    /// Convenience: solo application time of one app under this runtime.
    fn solo_time(&self, app: &AppSpec) -> f64 {
        self.run(std::slice::from_ref(app)).apps[0].app_time_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(bench: Benchmark, t: f64) -> AppResult {
        AppResult {
            bench,
            end_s: t,
            app_time_s: t,
            kernel_busy_s: t * 0.8,
            kernel_start_s: 0.1,
            kernel_end_s: t * 0.9,
            comm_s: 0.0,
            inject_s: 0.0,
            metrics: KernelMetrics::new("k"),
        }
    }

    #[test]
    fn antt_averages_normalized_times() {
        let out = RunOutcome {
            runtime: "X".into(),
            apps: vec![result(Benchmark::BS, 60.0), result(Benchmark::RG, 30.0)],
            makespan_s: 60.0,
            trace: Trace::new(),
        };
        let antt = out.antt(&[30.0, 30.0]);
        assert!((antt - 1.5).abs() < 1e-12);
    }

    #[test]
    fn throughput_gain_sign() {
        let fast = RunOutcome {
            runtime: "fast".into(),
            apps: vec![],
            makespan_s: 50.0,
            trace: Trace::new(),
        };
        let slow = RunOutcome {
            runtime: "slow".into(),
            apps: vec![],
            makespan_s: 60.0,
            trace: Trace::new(),
        };
        assert!(fast.throughput_gain_over(&slow) > 0.0);
        assert!(slow.throughput_gain_over(&fast) < 0.0);
    }

    #[test]
    fn host_time_is_residual() {
        let r = result(Benchmark::GS, 10.0);
        assert!((r.host_s() - 2.0).abs() < 1e-12);
    }
}
