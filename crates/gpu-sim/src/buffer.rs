//! Functional device memory.
//!
//! Timing comes from the fluid engine; *results* come from running kernels'
//! functional bodies against [`GpuBuffer`]s. A buffer is a word array of
//! `AtomicU32`s accessed with relaxed ordering: GPU global memory is
//! word-granular and racy programs are undefined on real hardware too, so
//! relaxed atomics give us race-freedom in Rust while preserving GPU
//! semantics for the well-formed (block-disjoint-write) kernels we model.
//! This lets functional blocks execute in parallel (rayon) with zero unsafe
//! code.
//!
//! [`DeviceMemoryPool`] is the device-side allocator behind `cudaMalloc`:
//! it hands out opaque [`DevicePtr`]s and tracks capacity, mirroring the
//! address-mapping bookkeeping the Slate daemon performs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Opaque device pointer, as returned by the simulated `cudaMalloc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DevicePtr(pub u64);

/// A device global-memory buffer of 32-bit words.
#[derive(Debug)]
pub struct GpuBuffer {
    words: Box<[AtomicU32]>,
    len_bytes: usize,
}

impl GpuBuffer {
    /// Allocates a zero-initialised buffer of `len_bytes` bytes (rounded up
    /// to a whole number of 32-bit words).
    pub fn new(len_bytes: usize) -> Self {
        let words = len_bytes.div_ceil(4);
        let mut v = Vec::with_capacity(words);
        v.resize_with(words, || AtomicU32::new(0));
        Self {
            words: v.into_boxed_slice(),
            len_bytes,
        }
    }

    /// Buffer length in bytes as requested at allocation.
    pub fn len(&self) -> usize {
        self.len_bytes
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len_bytes == 0
    }

    /// Number of 32-bit words (f32/u32 elements) the buffer holds.
    pub fn len_words(&self) -> usize {
        self.words.len()
    }

    /// Reads the f32 element at word index `idx`.
    pub fn load_f32(&self, idx: usize) -> f32 {
        f32::from_bits(self.words[idx].load(Ordering::Relaxed))
    }

    /// Writes the f32 element at word index `idx`.
    pub fn store_f32(&self, idx: usize, v: f32) {
        self.words[idx].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Reads the u32 element at word index `idx`.
    pub fn load_u32(&self, idx: usize) -> u32 {
        self.words[idx].load(Ordering::Relaxed)
    }

    /// Writes the u32 element at word index `idx`.
    pub fn store_u32(&self, idx: usize, v: u32) {
        self.words[idx].store(v, Ordering::Relaxed);
    }

    /// Atomic add on a u32 element, returning the previous value — the
    /// device-side `atomicAdd` used by task queues.
    pub fn fetch_add_u32(&self, idx: usize, v: u32) -> u32 {
        self.words[idx].fetch_add(v, Ordering::AcqRel)
    }

    /// Copies host bytes into the buffer at a *word-aligned* byte offset
    /// (`offset % 4 == 0`). Trailing partial word is zero-padded.
    pub fn copy_from_host(&self, offset: usize, src: &[u8]) {
        assert!(offset % 4 == 0, "offset must be word-aligned");
        assert!(
            offset + src.len() <= self.words.len() * 4,
            "copy_from_host out of bounds: offset {offset} + {} > {}",
            src.len(),
            self.words.len() * 4
        );
        let mut w = offset / 4;
        let mut chunks = src.chunks_exact(4);
        for c in &mut chunks {
            self.words[w].store(
                u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                Ordering::Relaxed,
            );
            w += 1;
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut b = [0u8; 4];
            b[..rem.len()].copy_from_slice(rem);
            self.words[w].store(u32::from_le_bytes(b), Ordering::Relaxed);
        }
    }

    /// Copies buffer contents out to host bytes from a word-aligned offset.
    pub fn copy_to_host(&self, offset: usize, dst: &mut [u8]) {
        assert!(offset % 4 == 0, "offset must be word-aligned");
        assert!(
            offset + dst.len() <= self.words.len() * 4,
            "copy_to_host out of bounds"
        );
        let mut w = offset / 4;
        let mut chunks = dst.chunks_exact_mut(4);
        for c in &mut chunks {
            c.copy_from_slice(&self.words[w].load(Ordering::Relaxed).to_le_bytes());
            w += 1;
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.words[w].load(Ordering::Relaxed).to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }

    /// Convenience: the whole buffer as a vector of f32.
    pub fn to_f32_vec(&self) -> Vec<f32> {
        (0..self.words.len()).map(|i| self.load_f32(i)).collect()
    }

    /// Convenience: fill word range `[start, start+src.len())` from f32s.
    pub fn write_f32_slice(&self, start: usize, src: &[f32]) {
        for (i, &v) in src.iter().enumerate() {
            self.store_f32(start + i, v);
        }
    }
}

/// Device-side allocator: the model behind `cudaMalloc`/`cudaFree`.
#[derive(Debug)]
pub struct DeviceMemoryPool {
    capacity: u64,
    used: u64,
    next: u64,
    allocations: HashMap<DevicePtr, Arc<GpuBuffer>>,
}

impl DeviceMemoryPool {
    /// Creates a pool with `capacity` bytes of device memory.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            next: 0x1000_0000, // device addresses start away from zero
            allocations: HashMap::new(),
        }
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Total pool capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Allocates `bytes` bytes; fails (like `cudaErrorMemoryAllocation`)
    /// when the pool is exhausted.
    pub fn alloc(&mut self, bytes: u64) -> Result<DevicePtr, String> {
        // checked_add: an absurd request must be a clean OOM, not a wrap
        // past the capacity check (and a panic allocating the backing).
        if self
            .used
            .checked_add(bytes)
            .is_none_or(|n| n > self.capacity)
        {
            return Err(format!(
                "out of device memory: {} used + {} requested > {} capacity",
                self.used, bytes, self.capacity
            ));
        }
        let ptr = DevicePtr(self.next);
        // Keep addresses unique and aligned.
        self.next += bytes.max(1).next_multiple_of(256);
        self.used += bytes;
        self.allocations
            .insert(ptr, Arc::new(GpuBuffer::new(bytes as usize)));
        Ok(ptr)
    }

    /// Frees an allocation; errors on an unknown pointer (double free).
    pub fn free(&mut self, ptr: DevicePtr) -> Result<(), String> {
        match self.allocations.remove(&ptr) {
            Some(buf) => {
                self.used -= buf.len() as u64;
                Ok(())
            }
            None => Err(format!("invalid device pointer {ptr:?}")),
        }
    }

    /// Resolves a device pointer to its buffer.
    pub fn buffer(&self, ptr: DevicePtr) -> Result<Arc<GpuBuffer>, String> {
        self.allocations
            .get(&ptr)
            .cloned()
            .ok_or_else(|| format!("invalid device pointer {ptr:?}"))
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.allocations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absurd_alloc_is_a_clean_oom_not_an_overflow() {
        let mut pool = DeviceMemoryPool::new(1 << 20);
        pool.alloc(512).unwrap();
        // used + u64::MAX would wrap past the capacity check.
        assert!(pool.alloc(u64::MAX).is_err());
        assert!(pool.alloc(u64::MAX - 256).is_err());
        assert_eq!(pool.live_allocations(), 1);
    }

    #[test]
    fn f32_roundtrip() {
        let b = GpuBuffer::new(16);
        b.store_f32(2, 3.5);
        assert_eq!(b.load_f32(2), 3.5);
        assert_eq!(b.load_f32(0), 0.0);
        assert_eq!(b.len(), 16);
        assert_eq!(b.len_words(), 4);
    }

    #[test]
    fn host_copy_roundtrip_unaligned_tail() {
        let b = GpuBuffer::new(11);
        let src: Vec<u8> = (0..11).collect();
        b.copy_from_host(0, &src);
        let mut dst = vec![0u8; 11];
        b.copy_to_host(0, &mut dst);
        assert_eq!(src, dst);
    }

    #[test]
    fn host_copy_with_offset() {
        let b = GpuBuffer::new(32);
        b.copy_from_host(8, &[1, 2, 3, 4]);
        let mut out = vec![0u8; 4];
        b.copy_to_host(8, &mut out);
        assert_eq!(out, vec![1, 2, 3, 4]);
        assert_eq!(b.load_u32(2), u32::from_le_bytes([1, 2, 3, 4]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn host_copy_bounds_checked() {
        let b = GpuBuffer::new(8);
        b.copy_from_host(4, &[0u8; 8]);
    }

    #[test]
    fn fetch_add_matches_atomic_semantics() {
        let b = GpuBuffer::new(4);
        assert_eq!(b.fetch_add_u32(0, 10), 0);
        assert_eq!(b.fetch_add_u32(0, 5), 10);
        assert_eq!(b.load_u32(0), 15);
    }

    #[test]
    fn parallel_disjoint_writes_are_deterministic() {
        use rayon::prelude::*;
        let b = GpuBuffer::new(4096 * 4);
        (0..4096usize).into_par_iter().for_each(|i| {
            b.store_f32(i, i as f32 * 2.0);
        });
        for i in 0..4096 {
            assert_eq!(b.load_f32(i), i as f32 * 2.0);
        }
    }

    #[test]
    fn pool_alloc_free_accounting() {
        let mut p = DeviceMemoryPool::new(1024);
        let a = p.alloc(512).unwrap();
        let bptr = p.alloc(512).unwrap();
        assert_eq!(p.used(), 1024);
        assert!(p.alloc(1).is_err(), "pool exhausted");
        p.free(a).unwrap();
        assert_eq!(p.used(), 512);
        assert!(p.free(a).is_err(), "double free rejected");
        p.free(bptr).unwrap();
        assert_eq!(p.live_allocations(), 0);
    }

    #[test]
    fn pool_pointers_are_distinct_and_resolvable() {
        let mut p = DeviceMemoryPool::new(1 << 20);
        let a = p.alloc(100).unwrap();
        let b = p.alloc(100).unwrap();
        assert_ne!(a, b);
        p.buffer(a).unwrap().store_f32(0, 1.0);
        assert_eq!(p.buffer(a).unwrap().load_f32(0), 1.0);
        assert_eq!(p.buffer(b).unwrap().load_f32(0), 0.0);
        assert!(p.buffer(DevicePtr(0xdead)).is_err());
    }
}
