//! QuasiRandomGenerator (RG) — Niederreiter/Sobol quasirandom sequence
//! generation, from the NVIDIA CUDA samples.
//!
//! Generates low-discrepancy points in `[0,1)` for several dimensions by
//! XOR-combining direction numbers. RG is the paper's *filler* kernel:
//! Low compute / Low memory (Table II: 4.2 GFLOP/s, 71.6 GB/s) with limited
//! useful parallelism, so it cannot exploit the whole device even when it
//! owns it. That makes it complementary to every other kernel — Slate
//! co-runs RG with all of them, producing the paper's biggest wins
//! (BS-RG +30.55%, RG-GS +35% over MPS).

use crate::grid::{BlockCoord, GridDim};
use crate::kernel::GpuKernel;
use slate_gpu_sim::buffer::GpuBuffer;
use slate_gpu_sim::perf::KernelPerf;
use std::sync::Arc;

/// Number of dimensions generated, as in the CUDA sample.
pub const DIMENSIONS: u32 = 3;
/// Threads per block.
pub const THREADS: u32 = 128;
/// Points generated per block (per dimension).
pub const POINTS_PER_BLOCK: u32 = 4167;

/// Paper problem size: points per dimension per launch loop iteration.
pub const PAPER_POINTS_PER_DIM: u64 = 13_333_334;

/// Direction-number table: 32 direction numbers per dimension.
///
/// Dimension 0 is the van der Corput sequence; higher dimensions use Sobol
/// direction numbers derived from small primitive polynomials (x+1 and
/// x^2+x+1), the classic construction the CUDA sample's initialisation
/// computes on the host.
pub fn direction_table() -> [[u32; 32]; DIMENSIONS as usize] {
    let mut v = [[0u32; 32]; DIMENSIONS as usize];
    // dim 0: v_j = 2^(31-j)
    for (j, slot) in v[0].iter_mut().enumerate() {
        *slot = 1u32 << (31 - j);
    }
    // dim 1: polynomial x + 1 (degree 1, a = 0), m_1 = 1.
    {
        let mut m = vec![1u32]; // m_1 = 1
        for j in 1..32 {
            // degree s = 1: m_j = m_{j-1} XOR (2^1 * m_{j-1})
            let prev = m[j - 1];
            m.push((prev << 1) ^ prev);
        }
        for j in 0..32 {
            v[1][j] = m[j] << (31 - j);
        }
    }
    // dim 2: polynomial x^2 + x + 1 (degree 2, a_1 = 1), m_1 = 1, m_2 = 3.
    {
        let mut m = vec![1u32, 3u32];
        for j in 2..32 {
            let s1 = m[j - 1];
            let s2 = m[j - 2];
            // m_j = 2 a_1 m_{j-1} XOR 2^2 m_{j-2} XOR m_{j-2}
            m.push((s1 << 1) ^ (s2 << 2) ^ s2);
        }
        for j in 0..32 {
            v[2][j] = m[j] << (31 - j);
        }
    }
    v
}

/// Generates the `i`-th point of dimension `dim` in `[0, 1)`.
pub fn point(table: &[[u32; 32]; DIMENSIONS as usize], dim: u32, i: u64) -> f32 {
    let mut acc = 0u32;
    let mut bits = i;
    let mut j = 0usize;
    while bits != 0 {
        if bits & 1 == 1 {
            acc ^= table[dim as usize][j];
        }
        bits >>= 1;
        j += 1;
    }
    acc as f32 * (1.0 / 4_294_967_296.0)
}

/// The quasirandom generation kernel. Grid is 2-D: `x` tiles the point
/// index space, `y` is the dimension — the shape that exercises Slate's 2-D
/// grid flattening.
pub struct QuasiRandomKernel {
    n: u64,
    table: [[u32; 32]; DIMENSIONS as usize],
    /// Output layout: `out[dim * n + i]`.
    out: Arc<GpuBuffer>,
}

impl QuasiRandomKernel {
    /// Binds a kernel generating `n` points per dimension into `out`
    /// (which must hold `n * DIMENSIONS` f32 words).
    pub fn new(n: u64, out: Arc<GpuBuffer>) -> Self {
        assert!(
            out.len_words() as u64 >= n * DIMENSIONS as u64,
            "output buffer too small"
        );
        Self {
            n,
            table: direction_table(),
            out,
        }
    }
}

impl GpuKernel for QuasiRandomKernel {
    fn name(&self) -> &str {
        "QuasiRandom"
    }

    fn grid(&self) -> GridDim {
        GridDim::d2(
            (self.n.div_ceil(POINTS_PER_BLOCK as u64)).max(1) as u32,
            DIMENSIONS,
        )
    }

    fn perf(&self) -> KernelPerf {
        paper_perf()
    }

    fn run_block(&self, block: BlockCoord) {
        let dim = block.y;
        let base = block.x as u64 * POINTS_PER_BLOCK as u64;
        let end = (base + POINTS_PER_BLOCK as u64).min(self.n);
        for i in base..end {
            let v = point(&self.table, dim, i);
            self.out.store_f32((dim as u64 * self.n + i) as usize, v);
        }
    }
}

/// Calibrated profile reproducing Table II: ≈4.2 GFLOP/s and ≈72 GB/s when
/// solo — and, crucially, a parallelism cap that saturates at ~15 SMs, the
/// property that makes RG the universal co-run partner.
pub fn paper_perf() -> KernelPerf {
    KernelPerf {
        name: "QuasiRandom".into(),
        threads_per_block: THREADS,
        regs_per_thread: 120, // register-hungry: only 4 resident blocks/SM
        smem_per_block: 0,
        compute_cycles_per_block: 2581.0,
        insts_per_block: 2065.0,
        flops_per_block: 977.0,
        mem_request_bytes_per_block: POINTS_PER_BLOCK as f64 * 4.0,
        dram_bytes_inorder: POINTS_PER_BLOCK as f64 * 4.0,
        dram_bytes_scattered: POINTS_PER_BLOCK as f64 * 4.0,
        l2_footprint_bytes: 0.1e6,
        inject_insts_per_block: 60.0,
        inject_cycles_per_block: 26.0,
        max_concurrent_blocks: Some(60),
    }
}

/// Blocks per launch at the paper problem size.
pub fn paper_blocks() -> u64 {
    PAPER_POINTS_PER_DIM.div_ceil(POINTS_PER_BLOCK as u64) * DIMENSIONS as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{run_parallel, run_reference};

    #[test]
    fn dimension_zero_is_van_der_corput() {
        let t = direction_table();
        assert_eq!(point(&t, 0, 0), 0.0);
        assert_eq!(point(&t, 0, 1), 0.5);
        assert_eq!(point(&t, 0, 2), 0.25);
        assert_eq!(point(&t, 0, 3), 0.75);
        assert_eq!(point(&t, 0, 4), 0.125);
    }

    #[test]
    fn points_lie_in_unit_interval() {
        let t = direction_table();
        for dim in 0..DIMENSIONS {
            for i in 0..4096u64 {
                let p = point(&t, dim, i);
                assert!((0.0..1.0).contains(&p), "dim {dim} i {i}: {p}");
            }
        }
    }

    #[test]
    fn low_discrepancy_beats_uniform_spacing_error() {
        // First 2^k points of each dimension must be distinct and evenly
        // spread: each half of [0,1) gets exactly half the points.
        let t = direction_table();
        for dim in 0..DIMENSIONS {
            let pts: Vec<f32> = (0..1024).map(|i| point(&t, dim, i)).collect();
            let low = pts.iter().filter(|&&p| p < 0.5).count();
            assert_eq!(low, 512, "dim {dim}: {low} points below 0.5");
        }
    }

    #[test]
    fn kernel_fills_all_dimensions() {
        let n = POINTS_PER_BLOCK as u64 * 2 + 100;
        let out = Arc::new(GpuBuffer::new((n * DIMENSIONS as u64) as usize * 4));
        let k = QuasiRandomKernel::new(n, out.clone());
        assert_eq!(k.grid(), GridDim::d2(3, DIMENSIONS));
        run_reference(&k);
        let t = direction_table();
        for dim in 0..DIMENSIONS {
            for i in [0u64, 1, n / 2, n - 1] {
                assert_eq!(
                    out.load_f32((dim as u64 * n + i) as usize),
                    point(&t, dim, i),
                    "dim {dim} i {i}"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_reference() {
        let n = 9000u64;
        let mk = || {
            let out = Arc::new(GpuBuffer::new((n * DIMENSIONS as u64) as usize * 4));
            (QuasiRandomKernel::new(n, out.clone()), out)
        };
        let (k1, o1) = mk();
        run_reference(&k1);
        let (k2, o2) = mk();
        run_parallel(&k2);
        for i in 0..(n * DIMENSIONS as u64) as usize {
            assert_eq!(o1.load_f32(i), o2.load_f32(i));
        }
    }

    #[test]
    fn paper_profile_caps_parallelism() {
        let p = paper_perf();
        p.validate().unwrap();
        assert_eq!(p.max_concurrent_blocks, Some(60));
        // Low occupancy by registers: 4 blocks/SM on the Titan Xp.
        use slate_gpu_sim::{device::DeviceConfig, occupancy};
        assert_eq!(occupancy::blocks_per_sm(&DeviceConfig::titan_xp(), &p), 4);
    }
}
