//! Perfetto trace export and replay-driven config autotuning
//! (DESIGN.md §19).
//!
//! The arbiter and placement logs are complete, deterministic histories
//! of every scheduling decision; this module makes them *inspectable*
//! and *searchable*:
//!
//! - [`model`] — the Chrome trace-event vocabulary with a
//!   byte-deterministic emitter; the output loads in Perfetto's legacy
//!   JSON importer and `chrome://tracing`.
//! - [`export`] — converters from [`EventLog`] / [`PlacementLog`] to a
//!   [`Trace`]: per-device SM-occupancy counters, per-session lease
//!   lifetime slices with SLO-class coloring, preemption/shed instants
//!   and cross-device migration arrows, with the command stream
//!   re-derived by deterministic replay (a stale log is an error, not a
//!   wrong picture).
//! - [`mod@validate`] — structural validation of emitted trace bytes
//!   against a [`TraceSchema`]; CI gates the uploaded artifact on it.
//! - [`metrics`] — latency/throughput extraction shared by the LLM-SLO
//!   harness and the tuner, split into event-derived (describe a
//!   recording) and command-derived (compare configurations) families.
//! - [`tune`] — the offline autotuner: one log replayed under a grid of
//!   config variants in parallel, scored on command-derived tail
//!   metrics, reported as deterministic JSON + markdown.
//!
//! [`EventLog`]: crate::arbiter::replay::EventLog
//! [`PlacementLog`]: crate::placement::replay::PlacementLog

pub mod export;
pub mod metrics;
pub mod model;
pub mod tune;
pub mod validate;

pub use export::{trace_event_log, trace_placement_log};
pub use metrics::{LatencyStats, ReplayMetrics};
pub use model::{ArgValue, Trace, TraceEvent};
pub use tune::{TuneReport, TuneVariant};
pub use validate::{validate, TraceSchema, TraceStats};
