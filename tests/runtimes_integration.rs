//! Cross-runtime integration: the three schedulers over shared workloads,
//! invariants that must hold regardless of calibration, and the ablation
//! switches.

use slate_baselines::{CudaRuntime, MpsRuntime, Runtime};
use slate_core::runtime::{SlateOptions, SlateRuntime};
use slate_gpu_sim::device::DeviceConfig;
use slate_kernels::workload::Benchmark;

fn titan() -> DeviceConfig {
    DeviceConfig::titan_xp()
}

const SCALE: u32 = 30;

#[test]
fn all_runtimes_complete_every_pairing() {
    let cuda = CudaRuntime::new(titan());
    let mps = MpsRuntime::new(titan());
    let slate = SlateRuntime::new(titan());
    for (a, b) in Benchmark::all_pairings() {
        let apps = [a.app().scaled_down(SCALE), b.app().scaled_down(SCALE)];
        for rt in [&cuda as &dyn Runtime, &mps, &slate] {
            let out = rt.run(&apps);
            assert_eq!(out.apps.len(), 2, "{} {a:?}-{b:?}", rt.label());
            for r in &out.apps {
                assert!(r.end_s > 0.0, "{} {:?} never finished", rt.label(), r.bench);
                assert!(
                    r.kernel_busy_s > 0.0,
                    "{} {:?} ran no kernels",
                    rt.label(),
                    r.bench
                );
                assert!(r.end_s <= out.makespan_s + 1e-9);
            }
        }
    }
}

#[test]
fn work_conservation_across_runtimes() {
    // Whatever the scheduler, the same workload executes the same blocks
    // and the same flops.
    let cuda = CudaRuntime::new(titan());
    let slate = SlateRuntime::new(titan());
    let apps = [
        Benchmark::BS.app().scaled_down(SCALE),
        Benchmark::RG.app().scaled_down(SCALE),
    ];
    let oc = cuda.run(&apps);
    let os = slate.run(&apps);
    for (rc, rs) in oc.apps.iter().zip(os.apps.iter()) {
        assert_eq!(
            rc.metrics.blocks_done, rs.metrics.blocks_done,
            "{:?}",
            rc.bench
        );
        let rel = (rc.metrics.flops - rs.metrics.flops).abs() / rc.metrics.flops.max(1.0);
        assert!(rel < 1e-6, "{:?}: flops differ by {rel}", rc.bench);
    }
}

#[test]
fn solo_times_are_loop_scaled() {
    // Doubling the repetition loop roughly doubles the kernel time.
    let cuda = CudaRuntime::new(titan());
    let small = Benchmark::TR.app().scaled_down(64);
    let large = Benchmark::TR.app().scaled_down(32);
    let ts = cuda.run(std::slice::from_ref(&small)).apps[0].kernel_busy_s;
    let tl = cuda.run(std::slice::from_ref(&large)).apps[0].kernel_busy_s;
    let ratio = tl / ts;
    assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
}

#[test]
fn corun_ablation_degrades_complementary_pairs() {
    // Disabling workload-aware co-running must hurt exactly the pairings
    // that profit from it.
    let full = SlateRuntime::new(titan());
    let no_corun = SlateRuntime::with_options(
        titan(),
        SlateOptions {
            enable_corun: false,
            ..SlateOptions::default()
        },
    );
    let apps = [
        Benchmark::BS.app().scaled_down(SCALE),
        Benchmark::RG.app().scaled_down(SCALE),
    ];
    let with = full.run(&apps);
    let without = no_corun.run(&apps);
    assert!(
        without.makespan_s > with.makespan_s * 1.15,
        "corun must buy >15% on BS-RG: {} vs {}",
        with.makespan_s,
        without.makespan_s
    );
    // A solo-policy pair is unaffected by the switch.
    let apps = [
        Benchmark::MM.app().scaled_down(SCALE),
        Benchmark::BS.app().scaled_down(SCALE),
    ];
    let with = full.run(&apps);
    let without = no_corun.run(&apps);
    assert!(
        (without.makespan_s - with.makespan_s).abs() / with.makespan_s < 0.01,
        "MM-BS runs solo either way"
    );
}

#[test]
fn resize_ablation_strands_the_survivor() {
    // Without dynamic resizing, the kernel that outlives its co-runner is
    // stuck on its partition and finishes later.
    let full = SlateRuntime::new(titan());
    let no_resize = SlateRuntime::with_options(
        titan(),
        SlateOptions {
            enable_resize: false,
            ..SlateOptions::default()
        },
    );
    // Give BS one long monolithic launch so the partner's departure lands
    // mid-kernel: without the dispatch kernel's grow-relaunch, BS is
    // stranded on its partition for the remainder of that launch.
    let mut bs = Benchmark::BS.app().scaled_down(20);
    bs.blocks_per_launch *= bs.launches as u64;
    bs.batch *= bs.launches;
    bs.launches = 1;
    let apps = [bs, Benchmark::RG.app().scaled_down(40)];
    let with = full.run(&apps);
    let without = no_resize.run(&apps);
    let bs_with = with.apps[0].app_time_s;
    let bs_without = without.apps[0].app_time_s;
    assert!(
        bs_without > bs_with * 1.05,
        "resize must speed the survivor: {bs_with} vs {bs_without}"
    );
}

#[test]
fn slate_never_slower_than_cuda_by_much_solo() {
    // Solo, Slate's worst case stays within ~10% of CUDA (kernel time).
    let cuda = CudaRuntime::new(titan());
    let slate = SlateRuntime::new(titan());
    for b in Benchmark::ALL {
        let app = b.app().scaled_down(SCALE);
        let tc = cuda.run(std::slice::from_ref(&app)).apps[0].kernel_busy_s;
        let ts = slate.run(std::slice::from_ref(&app)).apps[0].kernel_busy_s;
        assert!(ts < tc * 1.10, "{b:?}: slate kernel time {ts} vs cuda {tc}");
    }
}

#[test]
fn three_way_mix_schedules_sanely() {
    // Three processes: two M_M (solo alternation) plus one L_C (coruns
    // with whichever is resident).
    let slate = SlateRuntime::new(titan());
    let apps = [
        Benchmark::BS.app().scaled_down(SCALE),
        Benchmark::GS.app().scaled_down(15),
        Benchmark::RG.app().scaled_down(SCALE),
    ];
    let out = slate.run(&apps);
    assert_eq!(out.apps.len(), 3);
    for r in &out.apps {
        assert!(r.end_s > 0.0 && r.end_s <= out.makespan_s + 1e-9);
        assert!(r.metrics.blocks_done > 0);
    }
}

#[test]
fn slate_trace_shows_partition_resizes_and_no_overlap() {
    let slate = SlateRuntime::new(titan());
    let apps = [
        Benchmark::BS.app().scaled_down(SCALE),
        Benchmark::RG.app().scaled_down(SCALE),
    ];
    let out = slate.run(&apps);
    let tr = &out.trace;
    assert!(!tr.is_empty());
    // The corun pair must have triggered at least one dynamic resize.
    assert!(
        tr.resizes(0) + tr.resizes(1) >= 1,
        "BS-RG must resize at least once"
    );
    // The rendered occupancy must never show two kernels on one SM at once.
    let gantt = tr.gantt(30, 120);
    assert!(!gantt.contains('#'), "overlapping SM occupancy:\n{gantt}");
    // SM-seconds roughly track kernel busy time x SM share.
    for (i, r) in out.apps.iter().enumerate() {
        let sm_s = tr.sm_seconds(i as u64);
        assert!(sm_s > 0.0, "app {i} ({:?}) occupied no SMs", r.bench);
        assert!(
            sm_s <= r.kernel_busy_s * 30.0 * 1.001 + 1e-6,
            "app {i}: {sm_s} SM-seconds exceeds busy {} x 30",
            r.kernel_busy_s
        );
    }
}

#[test]
fn baseline_trace_serializes_full_device_launches() {
    let cuda = CudaRuntime::new(titan());
    let apps = [
        Benchmark::BS.app().scaled_down(SCALE),
        Benchmark::GS.app().scaled_down(15),
    ];
    let out = cuda.run(&apps);
    let tr = &out.trace;
    // Every occupancy interval spans the whole device, and no two kernel
    // intervals overlap in time (kernel-to-completion serialization).
    let mut intervals = tr.occupancy_intervals();
    intervals.sort_by(|a, b| a.2.total_cmp(&b.2));
    for w in intervals.windows(2) {
        assert!(
            w[1].2 >= w[0].3 - 1e-9,
            "CUDA launches must not overlap: {w:?}"
        );
    }
    for (_, range, _, _) in &intervals {
        assert_eq!(range.len(), 30, "baselines always use the full device");
    }
}

#[test]
fn antt_is_one_for_the_baseline_itself() {
    let cuda = CudaRuntime::new(titan());
    let app = Benchmark::GS.app().scaled_down(SCALE);
    let solo = cuda.solo_time(&app);
    let out = cuda.run(std::slice::from_ref(&app));
    let antt = out.antt(&[solo]);
    assert!((antt - 1.0).abs() < 1e-9, "antt {antt}");
}
