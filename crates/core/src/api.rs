//! The Slate client API (paper §IV-A1).
//!
//! "The *Slate* API acts as a wrapper for basic CUDA functions" — this is
//! the library an application links instead of the CUDA runtime. Every call
//! round-trips the command pipe to the daemon except kernel launches, which
//! are asynchronous exactly like CUDA launches; `synchronize` drains them.
//!
//! | CUDA | Slate |
//! |------|-------|
//! | `cudaMalloc` | [`SlateClient::malloc`] |
//! | `cudaFree` | [`SlateClient::free`] |
//! | `cudaMemcpy(H2D)` | [`SlateClient::memcpy_h2d`] |
//! | `cudaMemcpy(D2H)` | [`SlateClient::memcpy_d2h`] |
//! | `<<<grid, block>>>` | [`SlateClient::launch_with`] |
//! | `cudaDeviceSynchronize` | [`SlateClient::synchronize`] |

use crate::channel::{KernelFactory, LaunchCmd, Request, Response, SlatePtr};
use crate::daemon::Connection;
use crate::error::SlateError;
use bytes::Bytes;
use slate_gpu_sim::buffer::GpuBuffer;
use slate_kernels::kernel::GpuKernel;
use std::sync::Arc;

/// A client connection to the Slate daemon, wrapping the command pipe with
/// the CUDA-like API surface.
pub struct SlateClient {
    conn: Connection,
    pending_launches: std::cell::Cell<u64>,
}

impl SlateClient {
    /// Wraps a daemon connection.
    pub fn new(conn: Connection) -> Self {
        Self {
            conn,
            pending_launches: std::cell::Cell::new(0),
        }
    }

    /// The daemon-assigned session id.
    pub fn session(&self) -> u64 {
        self.conn.session
    }

    fn call(&self, req: Request) -> Result<Response, SlateError> {
        self.conn
            .tx
            .send(req)
            .map_err(|_| SlateError::Disconnected)?;
        self.conn
            .rx
            .recv()
            .map_err(|_| SlateError::Disconnected)
    }

    /// Allocates `bytes` bytes of device memory (`cudaMalloc`).
    pub fn malloc(&self, bytes: u64) -> Result<SlatePtr, SlateError> {
        self.call(Request::Malloc(bytes))?.expect_ptr()
    }

    /// Frees a device allocation (`cudaFree`).
    pub fn free(&self, ptr: SlatePtr) -> Result<(), SlateError> {
        self.call(Request::Free(ptr))?.expect_ok()
    }

    /// Copies host bytes into device memory through a shared buffer.
    /// `offset` must be word-aligned.
    pub fn memcpy_h2d(&self, ptr: SlatePtr, offset: usize, data: Bytes) -> Result<(), SlateError> {
        self.call(Request::MemcpyH2D { ptr, offset, data })?.expect_ok()
    }

    /// Convenience: uploads a slice of f32s.
    pub fn upload_f32(&self, ptr: SlatePtr, data: &[f32]) -> Result<(), SlateError> {
        let bytes: Vec<u8> = data.iter().flat_map(|f| f.to_le_bytes()).collect();
        self.memcpy_h2d(ptr, 0, bytes.into())
    }

    /// Copies device memory back to the host. `offset` must be
    /// word-aligned.
    pub fn memcpy_d2h(&self, ptr: SlatePtr, offset: usize, len: usize) -> Result<Vec<u8>, SlateError> {
        Ok(self
            .call(Request::MemcpyD2H { ptr, offset, len })?
            .expect_data()?
            .to_vec())
    }

    /// Convenience: downloads `n` f32s.
    pub fn download_f32(&self, ptr: SlatePtr, n: usize) -> Result<Vec<f32>, SlateError> {
        let raw = self.memcpy_d2h(ptr, 0, n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Launches a kernel asynchronously. `ptrs` are resolved daemon-side
    /// and handed to `factory` in order; `source` optionally carries the
    /// CUDA text through the injection pipeline.
    pub fn launch_with<F>(
        &self,
        ptrs: Vec<SlatePtr>,
        task_size: u32,
        source: Option<String>,
        factory: F,
    ) -> Result<(), SlateError>
    where
        F: FnOnce(Vec<Arc<GpuBuffer>>) -> Arc<dyn GpuKernel> + Send + 'static,
    {
        self.launch_inner(ptrs, task_size, source, false, 0, Box::new(factory))
    }

    /// Launches a kernel on a CUDA stream. Launches on the same stream are
    /// ordered; launches on different non-zero streams may run
    /// concurrently. [`SlateClient::synchronize`] fences all streams.
    pub fn launch_on_stream<F>(
        &self,
        stream: u32,
        ptrs: Vec<SlatePtr>,
        task_size: u32,
        factory: F,
    ) -> Result<(), SlateError>
    where
        F: FnOnce(Vec<Arc<GpuBuffer>>) -> Arc<dyn GpuKernel> + Send + 'static,
    {
        self.launch_inner(ptrs, task_size, None, false, stream, Box::new(factory))
    }

    /// Like [`SlateClient::launch_with`] but pins the kernel to solo
    /// execution — for heavily optimized library kernels that should never
    /// be co-scheduled (`#pragma slate solo`).
    pub fn launch_solo_with<F>(
        &self,
        ptrs: Vec<SlatePtr>,
        task_size: u32,
        source: Option<String>,
        factory: F,
    ) -> Result<(), SlateError>
    where
        F: FnOnce(Vec<Arc<GpuBuffer>>) -> Arc<dyn GpuKernel> + Send + 'static,
    {
        self.launch_inner(ptrs, task_size, source, true, 0, Box::new(factory))
    }

    fn launch_inner(
        &self,
        ptrs: Vec<SlatePtr>,
        task_size: u32,
        source: Option<String>,
        pinned_solo: bool,
        stream: u32,
        factory: KernelFactory,
    ) -> Result<(), SlateError> {
        let cmd = LaunchCmd {
            ptrs,
            factory,
            task_size,
            source,
            pinned_solo,
            stream,
        };
        self.conn
            .tx
            .send(Request::Launch(cmd))
            .map_err(|_| SlateError::Disconnected)?;
        self.pending_launches.set(self.pending_launches.get() + 1);
        Ok(())
    }

    /// Blocks until every previously launched kernel has completed
    /// (`cudaDeviceSynchronize`). Surfaces any launch error.
    pub fn synchronize(&self) -> Result<(), SlateError> {
        // The session thread serves requests in order, so one round trip
        // fences all prior launches. Failed launches reply with their error
        // ahead of the sync's Ok.
        self.conn
            .tx
            .send(Request::Sync)
            .map_err(|_| SlateError::Disconnected)?;
        let mut result = Ok(());
        loop {
            match self
                .conn
                .rx
                .recv()
                .map_err(|_| SlateError::Disconnected)?
            {
                Response::Ok => break,
                Response::Err(e) => result = Err(SlateError::from_wire(&e)),
                other => {
                    return Err(SlateError::Other(format!(
                        "unexpected sync response {other:?}"
                    )))
                }
            }
        }
        self.pending_launches.set(0);
        result
    }

    /// Ends the session; the daemon frees any leaked allocations.
    pub fn disconnect(self) -> Result<(), SlateError> {
        self.call(Request::Disconnect)?.expect_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::SlateDaemon;
    use slate_gpu_sim::device::DeviceConfig;

    #[test]
    fn upload_download_roundtrip() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1 << 20);
        let c = SlateClient::new(daemon.connect("u"));
        let p = c.malloc(64).unwrap();
        c.upload_f32(p, &[1.5, -2.0, 3.25]).unwrap();
        let back = c.download_f32(p, 3).unwrap();
        assert_eq!(back, vec![1.5, -2.0, 3.25]);
        c.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn out_of_memory_is_reported() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1024);
        let c = SlateClient::new(daemon.connect("u"));
        assert!(c.malloc(512).is_ok());
        let err = c.malloc(4096).unwrap_err();
        assert_eq!(err, SlateError::OutOfMemory { requested: 4096 });
        assert!(err.to_string().contains("out of device memory"), "{err}");
        c.disconnect().unwrap();
        daemon.join();
    }
}
