//! Trace export and autotuner invariants (DESIGN.md §19).
//!
//! The golden fixtures double as trace fixtures: the committed SLO and
//! placement logs must export to schema-valid Perfetto JSON — the same
//! conversion CI runs before uploading the `trace-<sha>` artifact —
//! without regenerating a byte of the fixtures themselves. On top of
//! that: export is deterministic (fresh recording ⇒ same bytes as its
//! JSON-roundtripped log), every lease slice is well-nested per track
//! (proptest over generated arbitration scripts, enforced by the same
//! validator CI uses), and the tuner is exact — identical report bytes
//! regardless of thread count, with the recorded baseline never beaten
//! by itself.

use proptest::prelude::*;
use slate_core::arbiter::replay::{self, replay_under, EventLog};
use slate_core::arbiter::{ArbiterConfig, ArbiterCore, Event};
use slate_core::placement::replay::PlacementLog;
use slate_core::runtime::{SlateOptions, SlateRuntime};
use slate_core::trace::{trace_event_log, trace_placement_log, tune, validate, TraceSchema};
use slate_core::WorkloadClass;
use slate_gpu_sim::device::DeviceConfig;
use slate_kernels::workload::{llm_trace, LlmTraceCfg, SloClass};

const SLO_LOG_JSON: &str = include_str!("data/slo_log.json");
const PLACEMENT_LOG_JSON: &str = include_str!("data/placement_log.json");
const SCHEMA_JSON: &str = include_str!("data/trace_schema.json");

fn ci_schema() -> TraceSchema {
    TraceSchema::from_json(SCHEMA_JSON).expect("checked-in schema parses")
}

#[test]
fn golden_slo_trace_is_schema_valid() {
    let log: EventLog = serde_json::from_str(SLO_LOG_JSON).expect("fixture parses");
    let trace = trace_event_log(&log).expect("golden log replays and exports");
    let stats = validate::validate(&trace.to_json(), &ci_schema())
        .expect("golden SLO trace satisfies the CI schema");
    assert!(stats.slices > 0 && stats.counters > 0);
}

#[test]
fn golden_placement_trace_is_schema_valid() {
    let log: PlacementLog = serde_json::from_str(PLACEMENT_LOG_JSON).expect("fixture parses");
    let trace = trace_placement_log(&log).expect("golden placement log replays and exports");
    let stats = validate::validate(&trace.to_json(), &ci_schema())
        .expect("golden placement trace satisfies the CI schema");
    assert!(stats.processes >= 2, "placement fixture spans devices");
}

/// A fresh recording and its serialize→deserialize roundtrip must export
/// byte-identical traces: the trace is a pure function of the log, with
/// no dependence on in-memory identity, map order, or wall-clock.
#[test]
fn fresh_recording_and_roundtripped_log_export_identically() {
    let slate = SlateRuntime::with_options(
        DeviceConfig::titan_xp(),
        SlateOptions {
            preempt_bound_s: Some(0.02),
            ..SlateOptions::default()
        },
    );
    let mut cfg = LlmTraceCfg::paper(0xACE);
    cfg.scale = 30;
    cfg.decode_sessions = 4;
    cfg.decode_launches = 2;
    let (_, log) = slate.run_recorded(&llm_trace(&cfg));

    let fresh = trace_event_log(&log).expect("fresh log exports").to_json();
    let json = serde_json::to_string(&log).expect("log serializes");
    let reloaded: EventLog = serde_json::from_str(&json).expect("log reloads");
    let replayed = trace_event_log(&reloaded)
        .expect("roundtripped log exports")
        .to_json();
    assert_eq!(fresh, replayed, "trace must be a pure function of the log");
    // And twice over the same log, trivially.
    assert_eq!(fresh, trace_event_log(&log).expect("re-export").to_json());
    validate::validate(&fresh, &TraceSchema::default()).expect("fresh trace validates");
}

/// A tampered log (commands edited after recording) must refuse to
/// export rather than render a picture the scheduler never produced.
#[test]
fn diverged_log_refuses_to_export() {
    let log: EventLog = serde_json::from_str(SLO_LOG_JSON).expect("fixture parses");
    let mut tampered = log.clone();
    for b in tampered.batches.iter_mut().rev() {
        if !b.commands.is_empty() {
            b.commands.pop();
            break;
        }
    }
    let err = trace_event_log(&tampered).expect_err("tampered log must not export");
    assert!(err.contains("diverged"), "unexpected error: {err}");
}

#[test]
fn replay_under_recorded_config_reproduces_the_log() {
    let log: EventLog = serde_json::from_str(SLO_LOG_JSON).expect("fixture parses");
    let counter = replay_under(&log, log.config.clone());
    let exact = replay::replay(&log);
    assert_eq!(counter, exact, "replay_under(recorded config) == replay");
}

#[test]
fn tuner_is_deterministic_and_baseline_is_never_beaten_by_itself() {
    let log: EventLog = serde_json::from_str(SLO_LOG_JSON).expect("fixture parses");
    let grid = tune::default_grid(&log.config);
    assert!(grid.len() >= 8, "smoke grid must have >= 8 variants");
    let serial = tune::tune(&log, &grid, false);
    let parallel = tune::tune(&log, &grid, true);
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "tuner report bytes must not depend on thread scheduling"
    );
    assert_eq!(serial.to_markdown(), parallel.to_markdown());
    assert!(serial.best_not_worse_than_baseline());
    assert!(
        serial.rows.iter().any(|r| r.baseline),
        "baseline is in the grid"
    );
}

#[test]
fn placement_tuner_is_deterministic() {
    let log: PlacementLog = serde_json::from_str(PLACEMENT_LOG_JSON).expect("fixture parses");
    let grid = tune::default_placement_grid(&log.config);
    assert!(grid.len() >= 8);
    let serial = tune::tune_placement(&log, &grid, false);
    let parallel = tune::tune_placement(&log, &grid, true);
    assert_eq!(serial.to_json(), parallel.to_json());
    assert!(serial.best_not_worse_than_baseline());
}

/// Seeded xorshift64, the workspace's PRNG idiom.
fn xorshift64(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Generates a semi-coherent arbitration script from a seed: sessions
/// open and declare SLOs, kernels become ready (several in flight per
/// session, exercising the exporter's lane packing), and finishes retire
/// outstanding leases in varying order.
fn scripted_log(seed: u64, ops: usize) -> EventLog {
    let mut core = ArbiterCore::new(
        DeviceConfig::titan_xp(),
        ArbiterConfig {
            starvation_bound_us: Some(50_000),
            preempt_bound_us: Some(20_000),
            ..ArbiterConfig::default()
        },
    );
    core.start_recording();
    let mut s = seed | 1;
    let mut now = 0u64;
    let mut next_lease = 1u64;
    let mut outstanding: Vec<u64> = Vec::new();
    let classes = [
        WorkloadClass::LC,
        WorkloadClass::MC,
        WorkloadClass::HC,
        WorkloadClass::MM,
        WorkloadClass::HM,
    ];
    for session in 0..4u64 {
        let mut batch = Vec::new();
        if session % 2 == 0 {
            batch.push(Event::SloArrival {
                session,
                class: SloClass::LatencyCritical,
            });
        }
        batch.push(Event::SessionOpened { session });
        core.feed(now, &batch);
        now += 1;
    }
    for _ in 0..ops {
        now += 1 + xorshift64(&mut s) % 5_000;
        let event = match xorshift64(&mut s) % 4 {
            0 | 1 => {
                let lease = next_lease;
                next_lease += 1;
                outstanding.push(lease);
                Event::KernelReady {
                    session: xorshift64(&mut s) % 4,
                    lease,
                    class: classes[(xorshift64(&mut s) % 5) as usize],
                    sm_demand: 1 + (xorshift64(&mut s) % 30) as u32,
                    pinned_solo: false,
                    deadline_ms: None,
                }
            }
            2 if !outstanding.is_empty() => {
                let i = (xorshift64(&mut s) as usize) % outstanding.len();
                let lease = outstanding.swap_remove(i);
                Event::KernelFinished { lease, ok: true }
            }
            _ => Event::DeadlineTick,
        };
        core.feed(now, &[event]);
    }
    // Retire what's left so most episodes close inside the log.
    for lease in outstanding {
        now += 1_000;
        core.feed(now, &[Event::KernelFinished { lease, ok: true }]);
    }
    core.take_log().expect("recording was enabled")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every exported trace — across seeds and script lengths — passes
    /// the structural validator: monotonic timestamps, and every lease
    /// slice well-nested on its track (begin ≤ end, no overlap; the
    /// validator rejects any slice starting before its track's previous
    /// slice ended).
    #[test]
    fn exported_lease_slices_are_well_nested(seed in any::<u64>(), ops in 10usize..80) {
        let log = scripted_log(seed, ops);
        let trace = trace_event_log(&log).expect("scripted log exports");
        let json = trace.to_json();
        let stats = validate::validate(&json, &TraceSchema::default())
            .expect("exported trace validates");
        prop_assert!(stats.slices > 0, "script produced no lease slices");
        // Determinism across exports, for every generated script.
        prop_assert_eq!(json, trace_event_log(&log).expect("re-export").to_json());
    }
}
