//! The write-ahead log: length-framed, checksummed, corruption-tolerant.
//!
//! A WAL segment is an append-only stream of frames:
//!
//! ```text
//! ┌────────────┬────────────┬──────────────────────┐
//! │ len  (u32) │ crc  (u32) │ payload (len bytes)  │   … repeated
//! │ little-end │ little-end │ JSON [`WalRecord`]   │
//! └────────────┴────────────┴──────────────────────┘
//! ```
//!
//! `crc` is the IEEE CRC-32 of the payload bytes, which detects every
//! single-bit error and any torn tail a crash mid-`write` can leave. The
//! reader ([`scan`]) walks frames until the bytes stop making sense and
//! then *stops* — it never panics and never resyncs past a bad frame
//! (frames are not self-delimiting, so anything beyond the first bad byte
//! is untrusted). What it saw, how far the log is provably valid, and why
//! it stopped all come back in a [`WalScan`]; recovery truncates the
//! segment at `valid_len` and replays the prefix.

use crate::placement::PlacementBatch;
use serde::{Deserialize, Serialize};
use slate_kernels::workload::SloClass;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Upper bound on a single frame's payload, protecting the reader from
/// allocating gigabytes off four corrupt length bytes.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Bytes of framing overhead per record (`len` + `crc`).
pub const FRAME_HEADER_LEN: usize = 8;

const CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC-32 (the zlib/PNG polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One durable record. Everything the daemon must be able to reconstruct
/// after a crash is either in here or in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// One fed placement batch — events in, routed commands out. Replaying
    /// these through [`PlacementLayer::feed`](crate::placement::PlacementLayer::feed)
    /// reconstructs the arbitration state deterministically.
    Batch {
        /// The recorded batch.
        batch: PlacementBatch,
    },
    /// A session was opened by `user` and assigned id `session`.
    SessionMeta {
        /// Daemon-assigned session id.
        session: u64,
        /// The connecting user, for re-admission accounting.
        user: String,
        /// The session's declared SLO class. `#[serde(default)]` (best
        /// effort) keeps pre-SLO WALs replayable.
        #[serde(default)]
        slo: SloClass,
    },
    /// The session disconnected cleanly.
    SessionClosed {
        /// The closed session.
        session: u64,
    },
    /// A device allocation succeeded and was mapped.
    Alloc {
        /// Owning session.
        session: u64,
        /// Client-visible slate pointer.
        slate_ptr: u64,
        /// Backing device pointer.
        device_ptr: u64,
        /// Allocation size.
        bytes: u64,
    },
    /// An allocation was freed.
    Free {
        /// Owning session.
        session: u64,
        /// The freed slate pointer.
        slate_ptr: u64,
    },
    /// A launch passed admission and entered execution. Replayed client
    /// launches with an id at or below the session's recorded watermark
    /// are duplicates and are acknowledged without re-execution.
    LaunchAdmitted {
        /// Owning session.
        session: u64,
        /// Client-assigned idempotency id.
        launch_id: u64,
        /// The lease it runs under.
        lease: u64,
    },
    /// The launch ran to completion (its effects are in device memory).
    LaunchDone {
        /// Owning session.
        session: u64,
        /// The completed launch.
        launch_id: u64,
    },
    /// A recovery epoch began: everything before this record was written
    /// by a previous daemon incarnation.
    Epoch {
        /// The new epoch number.
        epoch: u64,
    },
}

/// Why a scan stopped before the end of the bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalIssue {
    /// The log ends mid-frame — the classic crash-during-append tail.
    /// Truncating at the reported offset loses nothing that was ever
    /// acknowledged.
    TornTail {
        /// Byte offset of the incomplete frame.
        offset: usize,
    },
    /// A complete-looking frame failed validation (checksum mismatch,
    /// absurd length, unparseable payload). Data *may* have been lost;
    /// recovery proceeds from the valid prefix and surfaces this.
    Corrupt {
        /// Byte offset of the bad frame.
        offset: usize,
        /// Human-readable cause.
        reason: String,
    },
}

impl WalIssue {
    /// Byte offset at which the log stopped being trustworthy.
    pub fn offset(&self) -> usize {
        match self {
            WalIssue::TornTail { offset } | WalIssue::Corrupt { offset, .. } => *offset,
        }
    }
}

/// The outcome of scanning a segment: every record in the valid prefix,
/// how long that prefix is, and the first problem found (if any).
#[derive(Debug)]
pub struct WalScan {
    /// Decoded records, in append order.
    pub records: Vec<WalRecord>,
    /// Length in bytes of the valid prefix; the segment is truncated here
    /// before the daemon appends again.
    pub valid_len: usize,
    /// Why the scan stopped early, or `None` for a clean log.
    pub issue: Option<WalIssue>,
}

/// Encodes one frame: header plus payload, ready to append.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Scans raw segment bytes into records. Total: any byte string yields a
/// `WalScan`, never a panic — arbitrary truncation, bit flips and garbage
/// all land in `issue`.
pub fn scan(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut off = 0usize;
    let mut issue = None;
    while off < bytes.len() {
        let rest = &bytes[off..];
        if rest.len() < FRAME_HEADER_LEN {
            issue = Some(WalIssue::TornTail { offset: off });
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_FRAME_LEN {
            issue = Some(WalIssue::Corrupt {
                offset: off,
                reason: format!("frame length {len} exceeds cap {MAX_FRAME_LEN}"),
            });
            break;
        }
        let len = len as usize;
        if rest.len() < FRAME_HEADER_LEN + len {
            issue = Some(WalIssue::TornTail { offset: off });
            break;
        }
        let payload = &rest[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
        let actual = crc32(payload);
        if actual != crc {
            issue = Some(WalIssue::Corrupt {
                offset: off,
                reason: format!(
                    "checksum mismatch: frame says {crc:#010x}, payload is {actual:#010x}"
                ),
            });
            break;
        }
        let text = match std::str::from_utf8(payload) {
            Ok(t) => t,
            Err(e) => {
                issue = Some(WalIssue::Corrupt {
                    offset: off,
                    reason: format!("payload is not UTF-8: {e}"),
                });
                break;
            }
        };
        match serde_json::from_str::<WalRecord>(text) {
            Ok(r) => records.push(r),
            Err(e) => {
                issue = Some(WalIssue::Corrupt {
                    offset: off,
                    reason: format!("payload fails to parse: {e}"),
                });
                break;
            }
        }
        off += FRAME_HEADER_LEN + len;
    }
    WalScan {
        records,
        valid_len: off,
        issue,
    }
}

/// Path of WAL segment `k` under `dir`.
pub fn segment_path(dir: &Path, k: u64) -> PathBuf {
    dir.join(format!("wal-{k:08}.log"))
}

/// Path of snapshot `k` under `dir`.
pub fn snapshot_path(dir: &Path, k: u64) -> PathBuf {
    dir.join(format!("snap-{k:08}.json"))
}

fn numbered(dir: &Path, prefix: &str, suffix: &str) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(mid) = name
            .strip_prefix(prefix)
            .and_then(|r| r.strip_suffix(suffix))
        else {
            continue;
        };
        if let Ok(k) = mid.parse::<u64>() {
            out.push((k, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(k, _)| k);
    Ok(out)
}

/// WAL segments under `dir`, ascending by index.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    numbered(dir, "wal-", ".log")
}

/// Snapshots under `dir`, ascending by index.
pub fn list_snapshots(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    numbered(dir, "snap-", ".json")
}

/// Reads and scans one segment file.
pub fn read_segment(path: &Path) -> io::Result<WalScan> {
    Ok(scan(&fs::read(path)?))
}

/// An open, appendable WAL segment. Every append goes straight to the
/// file descriptor (no userspace buffering), so an acknowledged record
/// survives a process crash; [`SegmentWriter::sync`] additionally pushes
/// it through the OS cache for power-failure durability at rotation,
/// snapshot and freeze points.
#[derive(Debug)]
pub struct SegmentWriter {
    file: fs::File,
}

impl SegmentWriter {
    /// Creates (or truncates) segment `k` under `dir` and opens it for
    /// appending.
    pub fn create(dir: &Path, k: u64) -> io::Result<Self> {
        let file = fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(segment_path(dir, k))?;
        Ok(Self { file })
    }

    /// Appends one record as a framed JSON payload.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        let payload = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.file.write_all(&encode_frame(payload.as_bytes()))
    }

    /// Forces written frames through the OS cache to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(session: u64) -> WalRecord {
        WalRecord::SessionMeta {
            session,
            user: format!("u{session}"),
            slo: SloClass::BestEffort,
        }
    }

    fn encode_all(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for r in records {
            bytes.extend_from_slice(&encode_frame(
                serde_json::to_string(r).expect("serialize").as_bytes(),
            ));
        }
        bytes
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn roundtrip_preserves_records_and_reports_clean() {
        let records = vec![rec(1), WalRecord::Epoch { epoch: 3 }, rec(2)];
        let bytes = encode_all(&records);
        let out = scan(&bytes);
        assert_eq!(out.records, records);
        assert_eq!(out.valid_len, bytes.len());
        assert!(out.issue.is_none());
    }

    #[test]
    fn truncation_is_a_torn_tail_at_the_frame_boundary() {
        let records = vec![rec(1), rec(2)];
        let bytes = encode_all(&records);
        let first = encode_all(&records[..1]).len();
        // Any cut inside the second frame keeps exactly the first record.
        for cut in first + 1..bytes.len() {
            let out = scan(&bytes[..cut]);
            assert_eq!(out.records, records[..1]);
            assert_eq!(out.valid_len, first);
            assert_eq!(out.issue, Some(WalIssue::TornTail { offset: first }));
        }
    }

    #[test]
    fn bit_flip_is_detected_and_stops_the_scan() {
        let records = vec![rec(1), rec(2), rec(3)];
        let clean = encode_all(&records);
        let first = encode_all(&records[..1]).len();
        // Flip one bit in the middle frame's payload.
        let mut bytes = clean.clone();
        bytes[first + FRAME_HEADER_LEN + 2] ^= 0x10;
        let out = scan(&bytes);
        assert_eq!(out.records, records[..1]);
        assert_eq!(out.valid_len, first);
        match out.issue {
            Some(WalIssue::Corrupt { offset, .. }) => assert_eq!(offset, first),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn absurd_length_does_not_allocate_or_panic() {
        let mut bytes = u32::MAX.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 4]);
        bytes.extend_from_slice(&[0u8; 64]);
        let out = scan(&bytes);
        assert!(out.records.is_empty());
        assert_eq!(out.valid_len, 0);
        assert!(matches!(
            out.issue,
            Some(WalIssue::Corrupt { offset: 0, .. })
        ));
    }

    #[test]
    fn valid_frame_with_garbage_payload_is_corrupt_not_panic() {
        let bytes = encode_frame(b"not json at all");
        let out = scan(&bytes);
        assert!(out.records.is_empty());
        assert_eq!(out.valid_len, 0);
        assert!(matches!(out.issue, Some(WalIssue::Corrupt { .. })));
    }

    #[test]
    fn segment_writer_appends_scannable_frames() {
        let dir = std::env::temp_dir().join(format!(
            "slate-wal-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut w = SegmentWriter::create(&dir, 7).expect("create");
        w.append(&rec(1)).expect("append");
        w.append(&rec(2)).expect("append");
        w.sync().expect("sync");
        let out = read_segment(&segment_path(&dir, 7)).expect("read");
        assert_eq!(out.records, vec![rec(1), rec(2)]);
        assert!(out.issue.is_none());
        assert_eq!(
            list_segments(&dir).expect("list"),
            vec![(7, segment_path(&dir, 7))]
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
