//! SM partitioning for co-running kernels (paper §III-C).
//!
//! When Slate decides to co-run a pair, it must split the device's SMs
//! between them. The guiding observation (Fig. 1) is that many kernels
//! saturate well before the full device: a memory-bound kernel stops
//! scaling at the bandwidth knee, and a parallelism-limited kernel (RG)
//! stops at its resident-block cap. The partitioner therefore grants the
//! kernel with the *smaller* SM demand its full demand — those SMs are all
//! it can use — and hands everything else to its partner. Surplus beyond
//! both demands goes to the larger-demand kernel, which is the one still
//! scaling.

use slate_gpu_sim::device::{DeviceConfig, SmRange};

/// A split of the device between two co-running kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// SM range for the first (already running) kernel.
    pub a: SmRange,
    /// SM range for the second (incoming) kernel.
    pub b: SmRange,
}

/// Splits `cfg.num_sms` SMs between kernels with SM demands `demand_a` and
/// `demand_b`. Both sides always receive at least one SM.
pub fn partition(cfg: &DeviceConfig, demand_a: u32, demand_b: u32) -> Partition {
    let n = cfg.num_sms;
    assert!(n >= 2, "cannot partition a device with fewer than 2 SMs");
    let da = demand_a.clamp(1, n - 1);
    let db = demand_b.clamp(1, n - 1);
    let a_sms = if da + db <= n {
        // Both demands fit: surplus goes to the kernel still scaling.
        let surplus = n - da - db;
        if da >= db {
            da + surplus
        } else {
            da
        }
    } else {
        // Oversubscribed. A kernel demanding less than half the device is
        // granted in full (it cannot use more); otherwise both are hungry
        // and the split is proportional.
        let half = n / 2;
        if da < half && da <= db {
            da
        } else if db < half && db < da {
            n - db
        } else {
            ((n as f64 * da as f64 / (da + db) as f64).round() as u32).clamp(1, n - 1)
        }
    };
    let a_sms = a_sms.clamp(1, n - 1);
    Partition {
        a: SmRange::new(0, a_sms - 1),
        b: SmRange::new(a_sms, n - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slate_gpu_sim::device::DeviceConfig;

    fn cfg() -> DeviceConfig {
        DeviceConfig::titan_xp()
    }

    #[test]
    fn ranges_are_disjoint_and_cover_the_device() {
        for da in [1u32, 5, 14, 29, 30, 60] {
            for db in [1u32, 5, 14, 29, 30, 60] {
                let p = partition(&cfg(), da, db);
                assert!(!p.a.overlaps(&p.b), "da={da} db={db}: {p:?}");
                assert_eq!(p.a.len() + p.b.len(), 30, "da={da} db={db}");
                assert_eq!(p.a.lo, 0);
                assert_eq!(p.b.hi, 29);
            }
        }
    }

    #[test]
    fn small_demand_kernel_gets_its_demand_when_oversubscribed() {
        // RG (demand ~14) joining BS (demand 30): RG keeps 14, BS gets 16.
        let p = partition(&cfg(), 30, 14);
        assert_eq!(p.b.len(), 14);
        assert_eq!(p.a.len(), 16);
        // Same the other way round.
        let p = partition(&cfg(), 14, 30);
        assert_eq!(p.a.len(), 14);
        assert_eq!(p.b.len(), 16);
    }

    #[test]
    fn surplus_goes_to_the_scaling_kernel() {
        // Demands 9 + 14 = 23 < 30: the 14-demand kernel takes the extra 7.
        let p = partition(&cfg(), 9, 14);
        assert_eq!(p.a.len(), 9);
        assert_eq!(p.b.len(), 21);
        let p = partition(&cfg(), 14, 9);
        assert_eq!(p.a.len(), 21);
        assert_eq!(p.b.len(), 9);
    }

    #[test]
    fn equal_full_demands_split_evenly() {
        let p = partition(&cfg(), 30, 30);
        assert_eq!(p.a.len(), 15);
        assert_eq!(p.b.len(), 15);
    }

    #[test]
    fn exhaustive_pairs_are_disjoint_covers_on_many_device_sizes() {
        // Every demand pair up to twice the device size, on devices from
        // the 2-SM minimum up: the split is always two non-empty,
        // disjoint, contiguous ranges that exactly cover the device.
        for n in [2u32, 3, 4, 5, 8, 16, 30, 64] {
            let mut cfg = DeviceConfig::titan_xp();
            cfg.num_sms = n;
            for da in 0..=2 * n {
                for db in 0..=2 * n {
                    let p = partition(&cfg, da, db);
                    assert!(!p.a.overlaps(&p.b), "n={n} da={da} db={db}: {p:?}");
                    assert_eq!(p.a.len() + p.b.len(), n, "n={n} da={da} db={db}");
                    assert_eq!(p.a.lo, 0, "n={n} da={da} db={db}");
                    assert_eq!(p.a.hi + 1, p.b.lo, "n={n} da={da} db={db}");
                    assert_eq!(p.b.hi, n - 1, "n={n} da={da} db={db}");
                    assert!(
                        !p.a.is_empty() && !p.b.is_empty(),
                        "n={n} da={da} db={db}: a side starved"
                    );
                }
            }
        }
    }

    #[test]
    fn extreme_demands_clamp_rather_than_panic() {
        // Far-overshooting and zero demands clamp into [1, n-1].
        let p = partition(&cfg(), u32::MAX, u32::MAX);
        assert_eq!(p.a.len() + p.b.len(), 30);
        assert_eq!(p.a.len(), 15);
        let p = partition(&cfg(), 0, u32::MAX);
        assert_eq!(p.a.len(), 1, "zero demand clamps to one SM");
        let p = partition(&cfg(), u32::MAX, 0);
        assert_eq!(p.b.len(), 1);
        // The 2-SM minimum device splits 1 + 1 whatever the demands.
        let mut tiny = DeviceConfig::titan_xp();
        tiny.num_sms = 2;
        for (da, db) in [(0, 0), (1, 1), (2, 2), (0, u32::MAX), (7, 3)] {
            let p = partition(&tiny, da, db);
            assert_eq!((p.a.len(), p.b.len()), (1, 1), "da={da} db={db}");
        }
    }

    #[test]
    fn degenerate_demands_still_leave_one_sm_each() {
        let p = partition(&cfg(), 0, 0);
        assert!(!p.a.is_empty() && !p.b.is_empty());
        let p = partition(&cfg(), 100, 1);
        assert_eq!(p.b.len(), 1);
        assert_eq!(p.a.len(), 29);
    }
}
