//! Fig. 7 bench — multiprocess pairings under the three runtimes.
//!
//! Regenerates the full 15-pairing comparison (printed and shape-checked in
//! the setup at a reduced repetition scale) and benchmarks the end-to-end
//! simulation cost of representative pairings per runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slate_baselines::{CudaRuntime, MpsRuntime, Runtime};
use slate_core::SlateRuntime;
use slate_gpu_sim::device::DeviceConfig;
use slate_harness::fig7;
use slate_kernels::workload::Benchmark;

fn bench(c: &mut Criterion) {
    let cfg = DeviceConfig::titan_xp();

    let (_, report) = fig7::run(&cfg, 8);
    println!("{}", report.to_text());
    assert!(report.all_pass(), "Fig. 7 shape regressed");

    let cuda = CudaRuntime::new(cfg.clone());
    let mps = MpsRuntime::new(cfg.clone());
    let slate = SlateRuntime::new(cfg.clone());
    let runtimes: [(&str, &dyn Runtime); 3] = [("cuda", &cuda), ("mps", &mps), ("slate", &slate)];

    let mut g = c.benchmark_group("fig7_pair_simulation");
    g.sample_size(20);
    for (pa, pb) in [
        (Benchmark::BS, Benchmark::RG),
        (Benchmark::GS, Benchmark::GS),
    ] {
        let apps = [pa.app().scaled_down(16), pb.app().scaled_down(16)];
        for (label, rt) in runtimes {
            g.bench_with_input(
                BenchmarkId::new(format!("{}-{}", pa.abbrev(), pb.abbrev()), label),
                &apps,
                |b, apps| {
                    b.iter(|| rt.run(apps));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
