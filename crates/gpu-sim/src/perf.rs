//! Per-kernel performance profiles consumed by the fluid-rate engine.
//!
//! A [`KernelPerf`] describes how much work one *user thread block* of a
//! kernel performs along each hardware dimension: compute cycles,
//! instructions, flops, memory request bytes (what `nvprof` reports as
//! global load/store throughput), and DRAM traffic. DRAM traffic is given
//! twice — for *in-order* block execution (Slate's queue order, which
//! preserves inter-block locality) and *scattered* execution (the hardware
//! scheduler's order) — because the difference between those two figures is
//! precisely the locality effect the paper measures for Gaussian (Table III).

use serde::{Deserialize, Serialize};

/// Block issue order, which determines inter-block data locality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockOrder {
    /// Blocks executed in grid order (Slate's task queue): consecutive
    /// blocks reuse cached data, DRAM traffic is `dram_bytes_inorder`.
    InOrder,
    /// Blocks executed in the hardware scheduler's scattered order:
    /// DRAM traffic is `dram_bytes_scattered`.
    Scattered,
}

/// How thread blocks of a grid slice are driven onto the SMs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExecMode {
    /// Hardware block scheduler: every thread block pays the dispatch/setup
    /// cost, blocks arrive in scattered order, no queue atomics.
    Hardware,
    /// Slate persistent workers: workers pay setup once per (re)launch, pull
    /// `task_size` user blocks per global atomic, execute them in order, and
    /// run the injected scheduling instructions.
    SlateWorkers {
        /// User blocks per task (`SLATE_ITERS`); the paper's default is 10.
        task_size: u32,
    },
}

impl ExecMode {
    /// The block issue order implied by the execution mode.
    pub fn order(&self) -> BlockOrder {
        match self {
            ExecMode::Hardware => BlockOrder::Scattered,
            ExecMode::SlateWorkers { .. } => BlockOrder::InOrder,
        }
    }
}

/// Performance profile of a kernel, per user thread block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelPerf {
    /// Kernel name (for metrics attribution).
    pub name: String,
    /// Threads per block (inner block geometry, unchanged by Slate).
    pub threads_per_block: u32,
    /// Registers per thread (occupancy limit).
    pub regs_per_thread: u32,
    /// Static shared memory per block in bytes (occupancy limit).
    pub smem_per_block: u32,
    /// SM cycles to execute one block's instructions at full issue rate.
    /// Covers both arithmetic and issue-bound work.
    pub compute_cycles_per_block: f64,
    /// Dynamic instructions per block (for IPC reporting).
    pub insts_per_block: f64,
    /// Single-precision flops per block (for GFLOP/s reporting).
    pub flops_per_block: f64,
    /// Global load+store request bytes per block, as seen at L2
    /// (the `gld_throughput + gst_throughput` metric of Table II).
    pub mem_request_bytes_per_block: f64,
    /// DRAM bytes per block when blocks run in grid order.
    pub dram_bytes_inorder: f64,
    /// DRAM bytes per block when blocks run in scattered order.
    /// Must be `>= dram_bytes_inorder`.
    pub dram_bytes_scattered: f64,
    /// Bytes of L2 working set this kernel keeps live while running; used by
    /// the cache-interference model when kernels co-run.
    pub l2_footprint_bytes: f64,
    /// Extra instructions per block injected by Slate's transformation
    /// (Listing 1 gate + Listing 2 loop); ~3% of the kernel's own count for
    /// BlackScholes in the paper.
    pub inject_insts_per_block: f64,
    /// Extra cycles per block spent executing the injected instructions.
    pub inject_cycles_per_block: f64,
    /// Maximum thread blocks the kernel can usefully keep in flight
    /// (`None` = unlimited). Kernels whose grids are smaller than the device
    /// capacity, or that serialize internally, cannot exploit more SMs than
    /// this parallelism allows — the property that makes low-intensity
    /// kernels like QuasiRandomGenerator ideal co-run fillers.
    pub max_concurrent_blocks: Option<u64>,
}

impl KernelPerf {
    /// A convenient synthetic profile builder for tests: a kernel with the
    /// given compute cycles and memory bytes per block, neutral elsewhere.
    pub fn synthetic(name: &str, compute_cycles: f64, dram_bytes: f64) -> Self {
        Self {
            name: name.to_string(),
            threads_per_block: 256,
            regs_per_thread: 32,
            smem_per_block: 0,
            compute_cycles_per_block: compute_cycles,
            insts_per_block: compute_cycles * 2.0,
            flops_per_block: compute_cycles * 4.0,
            mem_request_bytes_per_block: dram_bytes,
            dram_bytes_inorder: dram_bytes,
            dram_bytes_scattered: dram_bytes,
            l2_footprint_bytes: 0.0,
            inject_insts_per_block: compute_cycles * 0.06,
            inject_cycles_per_block: compute_cycles * 0.03,
            max_concurrent_blocks: None,
        }
    }

    /// DRAM bytes per block for a given issue order, before cache
    /// interference adjustments.
    pub fn dram_bytes(&self, order: BlockOrder) -> f64 {
        match order {
            BlockOrder::InOrder => self.dram_bytes_inorder,
            BlockOrder::Scattered => self.dram_bytes_scattered,
        }
    }

    /// Arithmetic intensity in flops per DRAM byte (in-order figure).
    pub fn flops_per_byte(&self) -> f64 {
        if self.dram_bytes_inorder <= 0.0 {
            f64::INFINITY
        } else {
            self.flops_per_block / self.dram_bytes_inorder
        }
    }

    /// Validates internal consistency; returns a description of the first
    /// violated invariant, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.threads_per_block == 0 || self.threads_per_block > 1024 {
            return Err(format!(
                "threads_per_block must be in 1..=1024, got {}",
                self.threads_per_block
            ));
        }
        if self.compute_cycles_per_block <= 0.0 {
            return Err("compute_cycles_per_block must be positive".into());
        }
        if self.dram_bytes_scattered + 1e-9 < self.dram_bytes_inorder {
            return Err(format!(
                "scattered DRAM bytes ({}) below in-order bytes ({})",
                self.dram_bytes_scattered, self.dram_bytes_inorder
            ));
        }
        if self.max_concurrent_blocks == Some(0) {
            return Err("max_concurrent_blocks must be at least 1 when set".into());
        }
        for (label, v) in [
            ("insts_per_block", self.insts_per_block),
            ("flops_per_block", self.flops_per_block),
            (
                "mem_request_bytes_per_block",
                self.mem_request_bytes_per_block,
            ),
            ("dram_bytes_inorder", self.dram_bytes_inorder),
            ("l2_footprint_bytes", self.l2_footprint_bytes),
            ("inject_insts_per_block", self.inject_insts_per_block),
            ("inject_cycles_per_block", self.inject_cycles_per_block),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{label} must be finite and non-negative, got {v}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_mode_order() {
        assert_eq!(ExecMode::Hardware.order(), BlockOrder::Scattered);
        assert_eq!(
            ExecMode::SlateWorkers { task_size: 10 }.order(),
            BlockOrder::InOrder
        );
    }

    #[test]
    fn synthetic_profile_valid() {
        let p = KernelPerf::synthetic("k", 1000.0, 4096.0);
        p.validate().unwrap();
        assert_eq!(p.dram_bytes(BlockOrder::InOrder), 4096.0);
        assert_eq!(p.dram_bytes(BlockOrder::Scattered), 4096.0);
    }

    #[test]
    fn validate_rejects_inverted_locality() {
        let mut p = KernelPerf::synthetic("k", 1000.0, 4096.0);
        p.dram_bytes_inorder = 8192.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_threads() {
        let mut p = KernelPerf::synthetic("k", 1000.0, 4096.0);
        p.threads_per_block = 0;
        assert!(p.validate().is_err());
        p.threads_per_block = 2048;
        assert!(p.validate().is_err());
    }

    #[test]
    fn flops_per_byte_handles_zero_bytes() {
        let mut p = KernelPerf::synthetic("k", 1000.0, 0.0);
        p.dram_bytes_scattered = 0.0;
        p.dram_bytes_inorder = 0.0;
        assert!(p.flops_per_byte().is_infinite());
    }
}
