//! SGEMM (MM) — tiled single-precision matrix multiply, from the NVIDIA
//! CUDA samples (`matrixMul`).
//!
//! `C = A * B` with 16x16 shared-memory tiles. The paper's Table II
//! classifies it High compute / Med memory (1525 GFLOP/s, 403.5 GB/s): it is
//! the only kernel in the suite that keeps the SM pipelines busy, which is
//! why the heuristic policy refuses to co-run it with other memory-medium
//! kernels (the MM-BS pairing is the one case where Slate loses to MPS).

use crate::grid::{BlockCoord, GridDim};
use crate::kernel::GpuKernel;
use slate_gpu_sim::buffer::GpuBuffer;
use slate_gpu_sim::perf::KernelPerf;
use std::sync::Arc;

/// Tile edge (16x16 threads, one output element per thread).
pub const TILE: u32 = 16;

/// Paper problem size: square matrices of this dimension.
pub const PAPER_DIM: u32 = 2048;

/// The tiled SGEMM kernel `C = A * B` for row-major square-ish matrices:
/// `A` is `m x k`, `B` is `k x n`, `C` is `m x n`.
pub struct SgemmKernel {
    m: u32,
    n: u32,
    k: u32,
    a: Arc<GpuBuffer>,
    b: Arc<GpuBuffer>,
    c: Arc<GpuBuffer>,
}

impl SgemmKernel {
    /// Binds the kernel to its matrices. Dimensions must be multiples of
    /// [`TILE`] (as the CUDA sample requires).
    pub fn new(
        m: u32,
        n: u32,
        k: u32,
        a: Arc<GpuBuffer>,
        b: Arc<GpuBuffer>,
        c: Arc<GpuBuffer>,
    ) -> Self {
        assert!(
            m % TILE == 0 && n % TILE == 0 && k % TILE == 0,
            "dimensions must be multiples of {TILE}"
        );
        assert!(a.len_words() >= (m * k) as usize);
        assert!(b.len_words() >= (k * n) as usize);
        assert!(c.len_words() >= (m * n) as usize);
        Self { m, n, k, a, b, c }
    }
}

impl GpuKernel for SgemmKernel {
    fn name(&self) -> &str {
        "SGEMM"
    }

    fn grid(&self) -> GridDim {
        GridDim::d2(self.n / TILE, self.m / TILE)
    }

    fn perf(&self) -> KernelPerf {
        paper_perf()
    }

    fn run_block(&self, block: BlockCoord) {
        let (m, n, k) = (self.m as usize, self.n as usize, self.k as usize);
        let row0 = block.y as usize * TILE as usize;
        let col0 = block.x as usize * TILE as usize;
        // One output tile; accumulate over the K dimension in tile steps,
        // mirroring the shared-memory loop of the CUDA sample.
        let mut acc = [[0.0f32; TILE as usize]; TILE as usize];
        let mut kk = 0;
        while kk < k {
            for (ty, acc_row) in acc.iter_mut().enumerate() {
                let row = row0 + ty;
                if row >= m {
                    continue;
                }
                for t in 0..TILE as usize {
                    let av = self.a.load_f32(row * k + kk + t);
                    for (tx, a) in acc_row.iter_mut().enumerate() {
                        let col = col0 + tx;
                        if col < n {
                            *a += av * self.b.load_f32((kk + t) * n + col);
                        }
                    }
                }
            }
            kk += TILE as usize;
        }
        for (ty, acc_row) in acc.iter().enumerate() {
            let row = row0 + ty;
            if row >= m {
                continue;
            }
            for (tx, &v) in acc_row.iter().enumerate() {
                let col = col0 + tx;
                if col < n {
                    self.c.store_f32(row * n + col, v);
                }
            }
        }
    }
}

/// Calibrated profile reproducing Table II on the simulated device:
/// ≈1525 GFLOP/s, ≈403 GB/s request bandwidth at the paper problem size.
pub fn paper_perf() -> KernelPerf {
    KernelPerf {
        name: "SGEMM".into(),
        threads_per_block: TILE * TILE,
        regs_per_thread: 85, // register-hungry: 3 resident blocks/SM
        smem_per_block: 2 * TILE * TILE * 4,
        compute_cycles_per_block: 22_896.0,
        insts_per_block: 25_000.0,
        // 16x16 outputs x 2*K flops each, K = 2048.
        flops_per_block: 2.0 * (TILE * TILE) as f64 * PAPER_DIM as f64,
        mem_request_bytes_per_block: 277_400.0,
        dram_bytes_inorder: 144_000.0,
        dram_bytes_scattered: 210_000.0,
        l2_footprint_bytes: 1.5e6,
        inject_insts_per_block: 25.0,
        inject_cycles_per_block: 30.0,
        max_concurrent_blocks: None,
    }
}

/// Blocks per launch at the paper problem size (128 x 128 tiles).
pub fn paper_blocks() -> u64 {
    (PAPER_DIM as u64 / TILE as u64).pow(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{run_parallel, run_reference};

    fn matmul_ref(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                for j in 0..n {
                    c[i * n + j] += av * b[p * n + j];
                }
            }
        }
        c
    }

    fn setup(m: u32, n: u32, k: u32) -> (SgemmKernel, Vec<f32>, Arc<GpuBuffer>) {
        let (mu, nu, ku) = (m as usize, n as usize, k as usize);
        let a_host: Vec<f32> = (0..mu * ku)
            .map(|i| ((i * 13) % 17) as f32 * 0.25 - 2.0)
            .collect();
        let b_host: Vec<f32> = (0..ku * nu)
            .map(|i| ((i * 7) % 23) as f32 * 0.125 - 1.0)
            .collect();
        let a = Arc::new(GpuBuffer::new(mu * ku * 4));
        let b = Arc::new(GpuBuffer::new(ku * nu * 4));
        let c = Arc::new(GpuBuffer::new(mu * nu * 4));
        a.write_f32_slice(0, &a_host);
        b.write_f32_slice(0, &b_host);
        let expect = matmul_ref(mu, nu, ku, &a_host, &b_host);
        (SgemmKernel::new(m, n, k, a, b, c.clone()), expect, c)
    }

    #[test]
    fn multiplies_square_matrices() {
        let (kern, expect, c) = setup(64, 64, 64);
        run_reference(&kern);
        for (i, &e) in expect.iter().enumerate() {
            let got = c.load_f32(i);
            assert!(
                (got - e).abs() < 1e-2 * e.abs().max(1.0),
                "c[{i}] {got} vs {e}"
            );
        }
    }

    #[test]
    fn rectangular_matrices() {
        let (kern, expect, c) = setup(32, 80, 48);
        run_parallel(&kern);
        for (i, &e) in expect.iter().enumerate() {
            let got = c.load_f32(i);
            assert!((got - e).abs() < 1e-2 * e.abs().max(1.0), "c[{i}]");
        }
    }

    #[test]
    fn grid_matches_tiling() {
        let (kern, _, _) = setup(64, 96, 32);
        assert_eq!(kern.grid(), GridDim::d2(6, 4));
    }

    #[test]
    #[should_panic(expected = "multiples of 16")]
    fn rejects_unaligned_dims() {
        let a = Arc::new(GpuBuffer::new(4));
        setup_bad(a);
    }

    fn setup_bad(a: Arc<GpuBuffer>) {
        let _ = SgemmKernel::new(17, 16, 16, a.clone(), a.clone(), a);
    }

    #[test]
    fn paper_profile_is_compute_heavy() {
        let p = paper_perf();
        p.validate().unwrap();
        // High arithmetic intensity compared with the streaming kernels.
        assert!(p.flops_per_byte() > 5.0);
        assert_eq!(paper_blocks(), 16384);
    }
}
