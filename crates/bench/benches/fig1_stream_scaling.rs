//! Fig. 1 bench — stream bandwidth vs SM count.
//!
//! Benchmarks the simulated Stream run at the sweep points of the paper's
//! Fig. 1 and reports the achieved bandwidth per point. `cargo bench` time
//! here measures the *simulator's* cost to evaluate each point; the figure
//! itself is regenerated (and checked) by the harness inside the setup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slate_gpu_sim::device::DeviceConfig;
use slate_harness::fig1;

fn bench(c: &mut Criterion) {
    let cfg = DeviceConfig::titan_xp();

    // Regenerate and print the figure once.
    let (points, report) = fig1::run(&cfg, 10);
    println!("{}", report.to_text());
    assert!(report.all_pass(), "Fig. 1 shape regressed");
    let _ = points;

    let mut g = c.benchmark_group("fig1_stream_scaling");
    g.sample_size(20);
    for sms in [1u32, 4, 9, 15, 30] {
        g.bench_with_input(BenchmarkId::from_parameter(sms), &sms, |b, &sms| {
            b.iter(|| fig1::measure(&cfg, sms, 100_000));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
