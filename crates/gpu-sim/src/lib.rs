//! # slate-gpu-sim
//!
//! A calibrated, fluid-rate discrete-event GPU simulator used as the
//! hardware substrate for the Rust reproduction of *Slate: Enabling
//! Workload-Aware Efficient Multiprocessing for Modern GPGPUs* (Allen, Feng,
//! Ge — IPDPS 2019).
//!
//! The paper's prototype runs on a real NVIDIA Titan Xp; this crate stands
//! in for that card. It models the throughput phenomena Slate exploits and
//! measures:
//!
//! * SM-count-dependent memory bandwidth with a per-SM port cap and an
//!   aggregate DRAM cap (the paper's Fig. 1 saturation curve);
//! * occupancy-limited resident thread blocks per SM;
//! * block dispatch/setup cost (what Slate's persistent workers amortise);
//! * serialized global atomics (what bounds Slate's task-queue pull rate);
//! * inter-block locality: in-order vs scattered block execution change a
//!   kernel's DRAM traffic, with L2 working-set interference between
//!   co-runners;
//! * proportional DRAM bandwidth sharing between concurrent grid slices;
//! * PCIe transfers and launch latencies.
//!
//! The central abstraction is the [`engine::Engine`]: schedulers add *grid
//! slices* (kernel × SM range × block count × execution mode), transfers and
//! timers, and consume structural events. Vanilla CUDA, NVIDIA MPS, and
//! Slate runtimes are all built on this one engine (see `slate-baselines`
//! and `slate-core`).
//!
//! Functional results (as opposed to timing) are produced by executing
//! kernels' Rust bodies against [`buffer::GpuBuffer`] device memory.
//!
//! ```
//! use slate_gpu_sim::prelude::*;
//!
//! let mut engine = Engine::new(DeviceConfig::titan_xp());
//! let perf = KernelPerf::synthetic("demo", 10_000.0, 4096.0);
//! let id = engine
//!     .add_slice(SliceSpec {
//!         perf,
//!         sm_range: SmRange::all(30),
//!         blocks: 100_000,
//!         mode: ExecMode::Hardware,
//!         extra_lead_s: 0.0,
//!         batch: 1,
//!         tag: 0,
//!     })
//!     .unwrap();
//! let (t, _) = engine.run_until(|ev| matches!(ev, Event::SliceDrained(_))).unwrap();
//! let report = engine.remove_slice(id);
//! assert!(t > 0.0 && report.drained);
//! ```

#![warn(missing_docs)]

pub mod buffer;
pub mod cache;
pub mod device;
pub mod engine;
pub mod fault;
pub mod membw;
pub mod metrics;
pub mod model;
pub mod occupancy;
pub mod perf;
pub mod trace;
pub mod workqueue;

/// Convenient re-exports of the items almost every consumer needs.
pub mod prelude {
    pub use crate::buffer::{DeviceMemoryPool, DevicePtr, GpuBuffer};
    pub use crate::device::{DeviceConfig, SmRange};
    pub use crate::engine::{Dir, Engine, Event, SliceId, SliceSpec, TimerId, TransferId};
    pub use crate::fault::{FaultKind, FaultPlan, FaultRule, FaultSite, FaultToken};
    pub use crate::metrics::{KernelMetrics, SliceReport};
    pub use crate::perf::{BlockOrder, ExecMode, KernelPerf};
    pub use crate::trace::{Trace, TraceEvent, TraceKind};
}
