//! Stream — the global-memory read benchmark behind the paper's Fig. 1.
//!
//! Each thread streams a contiguous chunk of the input and folds it into a
//! per-block sum (one output word per block). Fig. 1 runs it with a fixed
//! 6 GB problem while varying the number of SMs the kernel may use: the
//! achieved bandwidth climbs linearly and saturates at nine SMs on the
//! Titan Xp — the motivating observation for SM partitioning.

use crate::grid::{BlockCoord, GridDim};
use crate::kernel::GpuKernel;
use slate_gpu_sim::buffer::GpuBuffer;
use slate_gpu_sim::perf::KernelPerf;
use std::sync::Arc;

/// Threads per block.
pub const THREADS: u32 = 256;
/// f32 elements read per thread.
pub const ELEMS_PER_THREAD: u32 = 16;
/// Elements covered by one block.
pub const ELEMS_PER_BLOCK: u32 = THREADS * ELEMS_PER_THREAD;

/// Paper problem size: 6 GB of f32 input.
pub const PAPER_BYTES: u64 = 6_000_000_000;

/// The streaming-read kernel: `sums[b] = Σ input[b*chunk .. (b+1)*chunk)`.
pub struct StreamKernel {
    n: u64,
    input: Arc<GpuBuffer>,
    sums: Arc<GpuBuffer>,
}

impl StreamKernel {
    /// Binds the kernel to `n` input elements and a per-block sum output
    /// (one word per block).
    pub fn new(n: u64, input: Arc<GpuBuffer>, sums: Arc<GpuBuffer>) -> Self {
        assert!(input.len_words() as u64 >= n);
        let blocks = n.div_ceil(ELEMS_PER_BLOCK as u64).max(1);
        assert!(sums.len_words() as u64 >= blocks);
        Self { n, input, sums }
    }
}

impl GpuKernel for StreamKernel {
    fn name(&self) -> &str {
        "Stream"
    }

    fn grid(&self) -> GridDim {
        GridDim::d1(self.n.div_ceil(ELEMS_PER_BLOCK as u64).max(1) as u32)
    }

    fn perf(&self) -> KernelPerf {
        paper_perf()
    }

    fn run_block(&self, block: BlockCoord) {
        let base = block.x as u64 * ELEMS_PER_BLOCK as u64;
        let end = (base + ELEMS_PER_BLOCK as u64).min(self.n);
        let mut acc = 0.0f32;
        for i in base..end {
            acc += self.input.load_f32(i as usize);
        }
        self.sums.store_f32(block.x as usize, acc);
    }
}

/// Calibrated profile: pure streaming reads, memory-limited on even a
/// single SM so the achieved bandwidth is exactly the Fig. 1 envelope
/// `min(sms * per_sm_bw, dram_bw)`.
pub fn paper_perf() -> KernelPerf {
    KernelPerf {
        name: "Stream".into(),
        threads_per_block: THREADS,
        regs_per_thread: 24,
        smem_per_block: 0,
        compute_cycles_per_block: 300.0,
        insts_per_block: 250.0,
        flops_per_block: ELEMS_PER_BLOCK as f64, // one add per element
        mem_request_bytes_per_block: ELEMS_PER_BLOCK as f64 * 4.0,
        dram_bytes_inorder: ELEMS_PER_BLOCK as f64 * 4.0,
        dram_bytes_scattered: ELEMS_PER_BLOCK as f64 * 4.0,
        l2_footprint_bytes: 0.1e6,
        inject_insts_per_block: 15.0,
        inject_cycles_per_block: 12.0,
        max_concurrent_blocks: None,
    }
}

/// Blocks covering the paper's 6 GB problem.
pub fn paper_blocks() -> u64 {
    (PAPER_BYTES / 4).div_ceil(ELEMS_PER_BLOCK as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{run_parallel, run_reference};

    #[test]
    fn sums_each_chunk() {
        let n = ELEMS_PER_BLOCK as u64 * 2 + 37;
        let input = Arc::new(GpuBuffer::new(n as usize * 4));
        for i in 0..n as usize {
            input.store_f32(i, 1.0);
        }
        let sums = Arc::new(GpuBuffer::new(3 * 4));
        let k = StreamKernel::new(n, input, sums.clone());
        run_reference(&k);
        assert_eq!(sums.load_f32(0), ELEMS_PER_BLOCK as f32);
        assert_eq!(sums.load_f32(1), ELEMS_PER_BLOCK as f32);
        assert_eq!(sums.load_f32(2), 37.0, "ragged tail block");
    }

    #[test]
    fn parallel_matches_reference() {
        let n = 100_000u64;
        let mk = || {
            let input = Arc::new(GpuBuffer::new(n as usize * 4));
            for i in 0..n as usize {
                input.store_f32(i, (i % 97) as f32 * 0.5);
            }
            let blocks = n.div_ceil(ELEMS_PER_BLOCK as u64);
            let sums = Arc::new(GpuBuffer::new(blocks as usize * 4));
            (StreamKernel::new(n, input, sums.clone()), sums)
        };
        let (k1, s1) = mk();
        run_reference(&k1);
        let (k2, s2) = mk();
        run_parallel(&k2);
        for i in 0..s1.len_words() {
            assert_eq!(s1.load_f32(i), s2.load_f32(i));
        }
    }

    #[test]
    fn paper_profile_memory_limited_on_one_sm() {
        use slate_gpu_sim::device::DeviceConfig;
        let p = paper_perf();
        p.validate().unwrap();
        let d = DeviceConfig::titan_xp();
        // Compute rate on one SM exceeds what one SM's memory port allows,
        // so bandwidth scales with SMs from the start.
        let r_comp = d.clock_hz / p.compute_cycles_per_block;
        let r_mem = d.per_sm_mem_bw / p.dram_bytes_inorder;
        assert!(r_comp > r_mem, "must be memory-limited per SM");
    }
}
