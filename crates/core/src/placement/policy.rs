//! Deterministic device-choice policies for session admission.
//!
//! A policy answers one question: *which device does a new session land
//! on?* It is consulted exactly once per session — on the first event
//! that names it (normally [`Event::SessionOpened`](crate::arbiter::Event))
//! — and the answer is sticky until the session ends. All policies are
//! pure functions of placement-layer state that mutates identically
//! across replays, so a recorded multi-device run routes the same way
//! when replayed (see [`super::replay`]).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How new sessions are routed to devices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum PlacementPolicy {
    /// Sessions cycle through devices in index order. Ignores load; the
    /// right default when sessions are statistically interchangeable.
    #[default]
    RoundRobin,
    /// Each session lands on the device with the lowest current load
    /// (ProfileTable-estimated pending milliseconds plus weighted
    /// resident/waiter pressure; see
    /// [`PlacementLayer::device_load`](super::PlacementLayer::device_load)).
    /// Ties break toward the device hosting fewer sessions, then the
    /// lowest index — so a burst of opens in one batch still spreads.
    LeastLoaded,
    /// Explicitly pinned sessions go to their pinned device (taken modulo
    /// the device count, so a pin outlives a smaller deployment); unpinned
    /// sessions fall back to round-robin.
    Affinity {
        /// session id → device index pins.
        pins: BTreeMap<u64, usize>,
    },
}

impl PlacementPolicy {
    /// Routes `session` to a device. `loads[i]` is the current load of
    /// device `i`, `sessions[i]` its current session count, and `rr_next`
    /// the layer's round-robin cursor (advanced by the caller only when
    /// the round-robin path was actually taken — the returned `bool`).
    pub(super) fn route(
        &self,
        session: u64,
        loads: &[u64],
        sessions: &[usize],
        rr_next: usize,
    ) -> (usize, bool) {
        let n = loads.len();
        debug_assert!(n > 0, "placement over zero devices");
        match self {
            PlacementPolicy::RoundRobin => (rr_next % n, true),
            PlacementPolicy::LeastLoaded => {
                let mut best = 0usize;
                for i in 1..n {
                    let better = (loads[i], sessions[i], i) < (loads[best], sessions[best], best);
                    if better {
                        best = i;
                    }
                }
                (best, false)
            }
            PlacementPolicy::Affinity { pins } => match pins.get(&session) {
                Some(&d) => (d % n, false),
                None => (rr_next % n, true),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let p = PlacementPolicy::RoundRobin;
        let loads = [0, 0, 0];
        let sessions = [0, 0, 0];
        assert_eq!(p.route(1, &loads, &sessions, 0), (0, true));
        assert_eq!(p.route(2, &loads, &sessions, 1), (1, true));
        assert_eq!(p.route(3, &loads, &sessions, 2), (2, true));
        assert_eq!(p.route(4, &loads, &sessions, 3), (0, true));
    }

    #[test]
    fn least_loaded_prefers_low_load_then_fewer_sessions_then_index() {
        let p = PlacementPolicy::LeastLoaded;
        assert_eq!(p.route(1, &[50, 10, 30], &[0, 0, 0], 0), (1, false));
        // Equal load: fewer sessions wins.
        assert_eq!(p.route(1, &[10, 10], &[3, 1], 0), (1, false));
        // Fully equal: lowest index wins.
        assert_eq!(p.route(1, &[10, 10], &[2, 2], 0), (0, false));
    }

    #[test]
    fn affinity_pins_and_falls_back() {
        let pins = BTreeMap::from([(7u64, 1usize), (8, 5)]);
        let p = PlacementPolicy::Affinity { pins };
        let loads = [0, 0];
        let sessions = [0, 0];
        assert_eq!(p.route(7, &loads, &sessions, 0), (1, false));
        // Pin beyond the device count wraps.
        assert_eq!(p.route(8, &loads, &sessions, 0), (1, false));
        // Unpinned falls back to round-robin.
        assert_eq!(p.route(9, &loads, &sessions, 1), (1, true));
    }
}
