//! Error types for the Slate client/daemon API.
//!
//! Mirrors the CUDA error model: allocation failures, invalid handles,
//! launch failures, and lost connections are distinct, matchable
//! conditions. The daemon transports errors as strings over the command
//! pipe (they cross the "process" boundary); [`SlateError::from_wire`]
//! restores the structured form on the client side.

use std::fmt;

/// Errors surfaced by the Slate API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlateError {
    /// Device memory exhausted (`cudaErrorMemoryAllocation`).
    OutOfMemory {
        /// Bytes requested by the failing allocation.
        requested: u64,
    },
    /// A pointer handle that is not live in this session
    /// (`cudaErrorInvalidDevicePointer`).
    InvalidPointer {
        /// The offending handle value.
        ptr: u64,
    },
    /// A kernel launch was rejected or failed (`cudaErrorLaunchFailure`).
    Launch(String),
    /// A `#pragma slate` directive could not be parsed.
    Pragma(String),
    /// The daemon connection is gone (process teardown).
    Disconnected,
    /// The kernel exceeded its watchdog deadline and was evicted from the
    /// device through the retreat flag.
    Timeout {
        /// Wall-clock milliseconds the kernel ran before eviction.
        elapsed_ms: u64,
    },
    /// The kernel faulted on-device mid-execution
    /// (`cudaErrorLaunchFailure` observed after launch).
    KernelFault(String),
    /// The daemon is shutting down and refuses new work.
    ShuttingDown,
    /// The daemon shed the request because an admission limit (sessions,
    /// pending launches, memory watermark) or a deadline-feasibility check
    /// tripped. The request was *not* performed; retry after roughly
    /// `retry_after_ms` milliseconds (clients should add jitter).
    Overloaded {
        /// Daemon's estimate of when retrying is worthwhile, derived from
        /// the current queue depth and pending-work estimates. Always ≥ 1.
        retry_after_ms: u64,
    },
    /// The device the kernel was running on (or routed to) dropped out
    /// of service (`cudaErrorDeviceUnavailable`) and the work could not
    /// be resumed elsewhere. Transient: the fleet evacuates and the
    /// failure domain heals, so a later retry lands on a serving device.
    DeviceLost {
        /// Placement-layer index of the lost device.
        device: u64,
    },
    /// A session-resumption token was refused: wrong epoch, unknown or
    /// closed session, already redeemed, or the daemon keeps no durable
    /// state. The session cannot be reattached; the client must
    /// reconnect fresh.
    ResumeRejected(String),
    /// Anything else, with the daemon's description.
    Other(String),
}

impl SlateError {
    /// Serializes for the command pipe. The prefix encodes the variant so
    /// the client can restore it.
    pub fn to_wire(&self) -> String {
        match self {
            SlateError::OutOfMemory { requested } => format!("E_OOM:{requested}"),
            SlateError::InvalidPointer { ptr } => format!("E_PTR:{ptr}"),
            SlateError::Launch(m) => format!("E_LAUNCH:{m}"),
            SlateError::Pragma(m) => format!("E_PRAGMA:{m}"),
            SlateError::Disconnected => "E_DISCONNECTED".to_string(),
            SlateError::Timeout { elapsed_ms } => format!("E_TIMEOUT:{elapsed_ms}"),
            SlateError::KernelFault(m) => format!("E_KFAULT:{m}"),
            SlateError::ShuttingDown => "E_SHUTDOWN".to_string(),
            SlateError::Overloaded { retry_after_ms } => {
                format!("E_OVERLOADED:{retry_after_ms}")
            }
            SlateError::DeviceLost { device } => format!("E_DEVLOST:{device}"),
            SlateError::ResumeRejected(m) => format!("E_RESUME:{m}"),
            SlateError::Other(m) => format!("E_OTHER:{m}"),
        }
    }

    /// Restores a structured error from its wire form; unknown strings
    /// become [`SlateError::Other`].
    pub fn from_wire(s: &str) -> SlateError {
        if let Some(rest) = s.strip_prefix("E_OOM:") {
            if let Ok(requested) = rest.parse() {
                return SlateError::OutOfMemory { requested };
            }
        }
        if let Some(rest) = s.strip_prefix("E_PTR:") {
            if let Ok(ptr) = rest.parse() {
                return SlateError::InvalidPointer { ptr };
            }
        }
        if let Some(rest) = s.strip_prefix("E_LAUNCH:") {
            return SlateError::Launch(rest.to_string());
        }
        if let Some(rest) = s.strip_prefix("E_PRAGMA:") {
            return SlateError::Pragma(rest.to_string());
        }
        if s == "E_DISCONNECTED" {
            return SlateError::Disconnected;
        }
        if let Some(rest) = s.strip_prefix("E_TIMEOUT:") {
            if let Ok(elapsed_ms) = rest.parse() {
                return SlateError::Timeout { elapsed_ms };
            }
        }
        if let Some(rest) = s.strip_prefix("E_KFAULT:") {
            return SlateError::KernelFault(rest.to_string());
        }
        if s == "E_SHUTDOWN" {
            return SlateError::ShuttingDown;
        }
        if let Some(rest) = s.strip_prefix("E_OVERLOADED:") {
            if let Ok(retry_after_ms) = rest.parse() {
                return SlateError::Overloaded { retry_after_ms };
            }
        }
        if let Some(rest) = s.strip_prefix("E_DEVLOST:") {
            if let Ok(device) = rest.parse() {
                return SlateError::DeviceLost { device };
            }
        }
        if let Some(rest) = s.strip_prefix("E_RESUME:") {
            return SlateError::ResumeRejected(rest.to_string());
        }
        SlateError::Other(s.strip_prefix("E_OTHER:").unwrap_or(s).to_string())
    }

    /// Whether retrying the same operation later could succeed: the daemon
    /// refused or aborted the work without corrupting session state.
    /// Watchdog evictions, shutdown rejections and admission sheds qualify;
    /// memory-safety errors (bad pointer, OOM for the same size) and
    /// severed connections do not.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SlateError::Timeout { .. }
                | SlateError::ShuttingDown
                | SlateError::Overloaded { .. }
                | SlateError::DeviceLost { .. }
        )
    }

    /// Whether the error signals daemon saturation or shrinkage (an
    /// admission shed, a watchdog eviction under load, or a lost device
    /// taking fleet capacity with it) — the conditions a client-side
    /// circuit breaker counts toward opening.
    pub fn is_overload(&self) -> bool {
        matches!(
            self,
            SlateError::Overloaded { .. }
                | SlateError::Timeout { .. }
                | SlateError::DeviceLost { .. }
        )
    }
}

impl fmt::Display for SlateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlateError::OutOfMemory { requested } => {
                write!(f, "out of device memory ({requested} bytes requested)")
            }
            SlateError::InvalidPointer { ptr } => {
                write!(f, "invalid slate pointer 0x{ptr:x}")
            }
            SlateError::Launch(m) => write!(f, "kernel launch failed: {m}"),
            SlateError::Pragma(m) => write!(f, "pragma error: {m}"),
            SlateError::Disconnected => write!(f, "daemon disconnected"),
            SlateError::Timeout { elapsed_ms } => {
                write!(f, "kernel evicted by watchdog after {elapsed_ms} ms")
            }
            SlateError::KernelFault(m) => write!(f, "kernel fault: {m}"),
            SlateError::ShuttingDown => write!(f, "daemon is shutting down"),
            SlateError::Overloaded { retry_after_ms } => {
                write!(f, "daemon overloaded, retry after {retry_after_ms} ms")
            }
            SlateError::DeviceLost { device } => {
                write!(f, "device {device} was lost while serving the request")
            }
            SlateError::ResumeRejected(m) => write!(f, "session resumption rejected: {m}"),
            SlateError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for SlateError {}

impl From<String> for SlateError {
    fn from(s: String) -> Self {
        SlateError::from_wire(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip_preserves_variants() {
        let cases = [
            SlateError::OutOfMemory { requested: 4096 },
            SlateError::InvalidPointer { ptr: 0xdead },
            SlateError::Launch("bad grid".into()),
            SlateError::Pragma("unknown directive".into()),
            SlateError::Disconnected,
            SlateError::Timeout { elapsed_ms: 1500 },
            SlateError::KernelFault("device fault at block 7".into()),
            SlateError::ShuttingDown,
            SlateError::Overloaded { retry_after_ms: 42 },
            SlateError::DeviceLost { device: 2 },
            SlateError::ResumeRejected("stale epoch".into()),
            SlateError::Other("misc".into()),
        ];
        for e in cases {
            assert_eq!(SlateError::from_wire(&e.to_wire()), e, "{e}");
        }
    }

    #[test]
    fn transience_classification() {
        assert!(SlateError::Timeout { elapsed_ms: 10 }.is_transient());
        assert!(SlateError::ShuttingDown.is_transient());
        assert!(SlateError::Overloaded { retry_after_ms: 5 }.is_transient());
        assert!(
            SlateError::DeviceLost { device: 0 }.is_transient(),
            "the fleet evacuates and heals; a retry lands on a serving device"
        );
        assert!(!SlateError::Disconnected.is_transient());
        assert!(
            !SlateError::ResumeRejected("no".into()).is_transient(),
            "a refused token never becomes valid; reconnect instead"
        );
        assert!(!SlateError::ResumeRejected("no".into()).is_overload());
        assert!(!SlateError::OutOfMemory { requested: 1 }.is_transient());
        assert!(!SlateError::InvalidPointer { ptr: 1 }.is_transient());
        assert!(!SlateError::KernelFault("x".into()).is_transient());
    }

    #[test]
    fn overload_classification() {
        assert!(SlateError::Overloaded { retry_after_ms: 1 }.is_overload());
        assert!(SlateError::Timeout { elapsed_ms: 9 }.is_overload());
        assert!(
            SlateError::DeviceLost { device: 1 }.is_overload(),
            "a lost device shrinks capacity; breakers count it like a shed"
        );
        assert!(!SlateError::ShuttingDown.is_overload());
        assert!(!SlateError::Disconnected.is_overload());
        assert!(!SlateError::OutOfMemory { requested: 8 }.is_overload());
    }

    #[test]
    fn unknown_wire_strings_become_other() {
        assert_eq!(
            SlateError::from_wire("something odd"),
            SlateError::Other("something odd".into())
        );
        // Malformed payloads degrade gracefully.
        assert_eq!(
            SlateError::from_wire("E_OOM:not-a-number"),
            SlateError::Other("E_OOM:not-a-number".into())
        );
        assert_eq!(
            SlateError::from_wire("E_TIMEOUT:soon"),
            SlateError::Other("E_TIMEOUT:soon".into())
        );
        assert_eq!(
            SlateError::from_wire("E_OVERLOADED:later"),
            SlateError::Other("E_OVERLOADED:later".into())
        );
        assert_eq!(
            SlateError::from_wire("E_DEVLOST:gpu3"),
            SlateError::Other("E_DEVLOST:gpu3".into())
        );
    }

    #[test]
    fn display_is_human_readable() {
        let e = SlateError::OutOfMemory { requested: 1024 };
        assert!(e.to_string().contains("1024 bytes"));
        let e = SlateError::InvalidPointer { ptr: 255 };
        assert!(e.to_string().contains("0xff"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SlateError::Disconnected);
    }
}
