//! Property tests for the dense-id interner (`IdTable`) plus a
//! golden-fixture cross-check.
//!
//! The interner sits under every decision-path structure (see
//! `DESIGN.md` §17), so its contract is load-bearing for replay
//! determinism: interning must be a pure function of the operation
//! history (double-run transcript equality), a slot must stay pinned to
//! its id for exactly the live interval (stability), and the dense arena
//! must stay bounded by peak concurrent liveness, not by how many ids
//! ever existed. The properties drive arbitrary intern/release schedules
//! against a `BTreeMap` model; the fixture test replays the checked-in
//! golden arbiter log — whose core now runs on interned ids — and
//! cross-checks an `IdTable` fed from the same event stream against the
//! model.

use proptest::prelude::*;
use slate_core::arbiter::{replay, Event, EventLog, IdTable};
use std::collections::BTreeMap;

/// One schedule step. Ids are drawn from a small space so release hits
/// live ids often and re-intern after release is common.
#[derive(Debug, Clone, Copy)]
enum Op {
    Intern(u64),
    Release(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..32).prop_map(Op::Intern),
        (0u64..32).prop_map(Op::Release),
        any::<u64>().prop_map(Op::Intern),
    ]
}

/// Applies `ops`, checking every step against a `BTreeMap` model, and
/// returns the full `(slot, fresh)` transcript for determinism checks.
fn run_checked(ops: &[Op]) -> Vec<(u32, bool)> {
    let mut t = IdTable::new();
    let mut model: BTreeMap<u64, u32> = BTreeMap::new();
    let mut peak = 0usize;
    let mut transcript = Vec::new();
    for &op in ops {
        match op {
            Op::Intern(id) => {
                let (slot, fresh) = t.intern(id);
                assert_eq!(
                    fresh,
                    !model.contains_key(&id),
                    "fresh iff the id was not live"
                );
                if let Some(&prev) = model.get(&id) {
                    assert_eq!(slot, prev, "re-intern of a live id keeps its slot");
                }
                model.insert(id, slot);
                peak = peak.max(model.len());
                transcript.push((slot, fresh));
            }
            Op::Release(id) => {
                assert_eq!(
                    t.release(id),
                    model.remove(&id),
                    "release returns the live slot, or None when dead"
                );
            }
        }
        // Invariants that must hold after every step.
        assert_eq!(t.len(), model.len());
        assert!(
            t.slot_count() <= peak,
            "arena bounded by peak liveness: {} slots for peak {peak}",
            t.slot_count()
        );
        for (&id, &slot) in &model {
            assert_eq!(t.get(id), Some(slot), "live id {id} resolves");
            assert_eq!(t.ext(slot), id, "slot {slot} resolves back");
        }
    }
    // iter() lists exactly the live pairs (slot order, but the *set*
    // matches the model).
    let mut live: Vec<(u64, u32)> = t.iter().map(|(s, e)| (e, s)).collect();
    live.sort_unstable();
    let expect: Vec<(u64, u32)> = model.into_iter().collect();
    assert_eq!(live, expect);
    transcript
}

proptest! {
    /// Intern/release/re-intern matches the map model at every step, and
    /// the dense arena never outgrows peak concurrent liveness.
    #[test]
    fn schedule_matches_model(ops in prop::collection::vec(arb_op(), 0..200)) {
        run_checked(&ops);
    }

    /// Slot assignment is a pure function of the operation history: two
    /// fresh tables fed the same schedule produce identical `(slot,
    /// fresh)` transcripts. This is what lets a recorded run replay
    /// against a freshly built core.
    #[test]
    fn double_run_transcripts_are_equal(ops in prop::collection::vec(arb_op(), 0..200)) {
        prop_assert_eq!(run_checked(&ops), run_checked(&ops));
    }

    /// A slot handed out for an id is stable until that id is released,
    /// no matter what other ids come and go around it.
    #[test]
    fn live_slot_is_stable_under_churn(
        pinned in any::<u64>(),
        ops in prop::collection::vec(arb_op(), 0..200),
    ) {
        let mut t = IdTable::new();
        let (slot, fresh) = t.intern(pinned);
        prop_assert!(fresh);
        for op in ops {
            match op {
                Op::Intern(id) => {
                    let (s, f) = t.intern(id);
                    if id == pinned {
                        prop_assert_eq!((s, f), (slot, false));
                    } else {
                        prop_assert!(s != slot, "a live slot is never re-issued");
                    }
                }
                Op::Release(id) if id != pinned => {
                    t.release(id);
                }
                Op::Release(_) => {}
            }
            prop_assert_eq!(t.get(pinned), Some(slot));
        }
    }
}

/// Cross-check against the checked-in golden arbiter log: the recorded
/// run verifies byte-identically through the interned core (streaming),
/// and an `IdTable` driven by the log's own session open/close stream
/// agrees with a map model at every batch.
#[test]
fn golden_log_drives_the_interner_consistently() {
    let log: EventLog =
        serde_json::from_str(include_str!("data/arbiter_log.json")).expect("golden log parses");
    let mut v = replay::StreamVerifier::for_log(&log);
    let mut t = IdTable::new();
    let mut model: BTreeMap<u64, u32> = BTreeMap::new();
    for b in &log.batches {
        v.push(b).expect("golden batch verifies byte-identically");
        for e in &b.events {
            match *e {
                Event::SessionOpened { session } => {
                    let (slot, fresh) = t.intern(session);
                    assert_eq!(fresh, !model.contains_key(&session));
                    model.insert(session, slot);
                }
                Event::SessionClosed { session } | Event::SessionSevered { session } => {
                    assert_eq!(t.release(session), model.remove(&session));
                }
                _ => {}
            }
        }
        assert_eq!(t.len(), model.len());
    }
    assert!(v.batches() > 0, "fixture is non-trivial");
}
