//! Table IV — the BS-RG pairing, MPS vs Slate.
//!
//! MPS's leftover policy effectively serializes the pair; Slate identifies
//! RG as complementary (L_C against BS's M_M), partitions the SMs, and
//! co-runs them — raising device-level IPC dramatically (the paper measures
//! +71%) and throughput by ~30%.

use crate::report::{f, pct, Report, Table};
use slate_baselines::{MpsRuntime, RunOutcome, Runtime};
use slate_core::SlateRuntime;
use slate_gpu_sim::device::DeviceConfig;
use slate_kernels::workload::Benchmark;

/// Device-level aggregates over a pair run.
#[derive(Debug, Clone)]
pub struct PairMetrics {
    /// Combined global/L2 request throughput (GB/s) over the kernel phase.
    pub throughput_gbs: f64,
    /// Load/store instructions executed (millions) — derived from request
    /// bytes at one 128-byte transaction per warp-level load/store.
    pub ldst_millions: f64,
    /// Device IPC (both kernels' instructions over device cycles).
    pub ipc: f64,
    /// Pair makespan (s).
    pub makespan_s: f64,
}

fn extract(out: &RunOutcome, cfg: &DeviceConfig) -> PairMetrics {
    let insts: f64 = out.apps.iter().map(|a| a.metrics.insts).sum();
    let req: f64 = out.apps.iter().map(|a| a.metrics.request_bytes).sum();
    // Device window: union of the apps' kernel-activity spans.
    let start = out
        .apps
        .iter()
        .map(|a| a.kernel_start_s)
        .fold(f64::INFINITY, f64::min);
    let end = out
        .apps
        .iter()
        .map(|a| a.kernel_end_s)
        .fold(0.0f64, f64::max);
    let overlap_window = (end - start).max(1e-9);
    PairMetrics {
        throughput_gbs: req / overlap_window / 1e9,
        ldst_millions: req / 128.0 / 1e6,
        ipc: insts / (overlap_window * cfg.clock_hz * cfg.num_sms as f64),
        makespan_s: out.makespan_s,
    }
}

/// Runs the BS-RG pairing under MPS and Slate.
pub fn run(cfg: &DeviceConfig, scale: u32) -> ((PairMetrics, PairMetrics), Report) {
    let apps = [
        Benchmark::BS.app().scaled_down(scale),
        Benchmark::RG.app().scaled_down(scale),
    ];
    let mps_out = MpsRuntime::new(cfg.clone()).run(&apps);
    let slate_out = SlateRuntime::new(cfg.clone()).run(&apps);
    let m = extract(&mps_out, cfg);
    let s = extract(&slate_out, cfg);
    let gain = slate_out.throughput_gain_over(&mps_out);

    let mut report = Report::new(
        "table4",
        "BS-RG pairing, MPS vs Slate",
        "Global/L2 throughput 241 -> 250 GB/s (+3.8%); load/store executed \
         151M -> 140M (-9%); IPC 0.94 -> 1.61 (+71%); Slate's throughput \
         gain over MPS is 30.55%.",
    );
    let mut t = Table::new("BS-RG pair", &["Metric", "MPS", "Slate", "Δ%"]);
    t.row(&[
        "Global/L2 Throughput (GB/s)".into(),
        f(m.throughput_gbs, 0),
        f(s.throughput_gbs, 0),
        pct(s.throughput_gbs / m.throughput_gbs - 1.0),
    ]);
    t.row(&[
        "Load/Store Executed (million)".into(),
        f(m.ldst_millions, 0),
        f(s.ldst_millions, 0),
        pct(s.ldst_millions / m.ldst_millions - 1.0),
    ]);
    t.row(&[
        "Instructions Per Cycle".into(),
        f(m.ipc, 2),
        f(s.ipc, 2),
        pct(s.ipc / m.ipc - 1.0),
    ]);
    t.row(&[
        "Makespan (s)".into(),
        f(m.makespan_s, 2),
        f(s.makespan_s, 2),
        pct(gain),
    ]);
    report.tables.push(t);
    report.note(format!("Throughput gain from Slate: {}", pct(gain)));

    report.check(
        "Slate throughput gain over MPS is large (paper: +30.55%)",
        (0.15..0.60).contains(&gain),
    );
    report.check(
        "device IPC rises sharply under co-running (paper: +71%)",
        s.ipc / m.ipc > 1.3,
    );
    report.check(
        "combined request throughput does not degrade",
        s.throughput_gbs >= m.throughput_gbs * 0.95,
    );
    ((m, s), report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_reproduces() {
        let (_, report) = run(&DeviceConfig::titan_xp(), 10);
        assert!(report.all_pass(), "{}", report.to_text());
    }
}
