//! Durable snapshots: periodic checkpoints that bound WAL replay.
//!
//! A [`DurableSnapshot`] pairs the placement layer's complete serialized
//! state ([`PlacementSnapshot`]) with the daemon-side session metadata
//! ([`DurableMeta`]) that lives *outside* the event-sourced core: who owns
//! which session, the slate→device pointer map, and the launch-id
//! watermarks behind client-side idempotent resumption.
//!
//! Snapshot `k` captures the state as of the start of WAL segment `k`:
//! recovery loads the highest readable snapshot and replays only segments
//! `≥ k`. Snapshots are written to a temp file and renamed into place, so
//! a crash mid-snapshot leaves the previous one intact; a snapshot that
//! fails to parse at recovery time is skipped in favour of an older one
//! (with more replay).

use super::wal::WalRecord;
use crate::placement::PlacementSnapshot;
use serde::{Deserialize, Serialize};
use slate_kernels::workload::SloClass;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// On-disk format version of [`DurableSnapshot`]. Bumped on incompatible
/// layout changes; recovery rejects snapshots from a different format.
pub const SNAPSHOT_FORMAT: u32 = 1;

/// One device allocation, as mirrored into durable metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocMeta {
    /// Backing device pointer (raw address word).
    pub device_ptr: u64,
    /// Allocation size in bytes.
    pub bytes: u64,
}

/// Durable per-session metadata: everything a resumed client needs the
/// daemon to still know after a crash.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SessionMeta {
    /// The connecting user (re-admission accounting).
    pub user: String,
    /// The session's declared SLO class; recovery re-declares it ahead
    /// of the resumed session's replayed work. `#[serde(default)]` (best
    /// effort) keeps pre-SLO snapshots readable.
    #[serde(default)]
    pub slo: SloClass,
    /// Whether the session is still open (closed sessions linger only
    /// until the next compaction-time sweep).
    pub open: bool,
    /// Next slate pointer to hand out — a watermark kept strictly above
    /// every pointer ever returned, so resumed sessions never recycle
    /// a pointer the client may still hold.
    pub next_ptr: u64,
    /// Live allocations: slate pointer → device mapping.
    pub allocs: BTreeMap<u64, AllocMeta>,
    /// Admitted launches: launch id → lease. Replayed launches at or
    /// below the watermark are deduplicated against this.
    pub admitted: BTreeMap<u64, u64>,
    /// Completed launches (value unused; a set under the stub serde).
    pub done: BTreeMap<u64, bool>,
}

/// Daemon-side durable metadata, mirrored on every WAL append and
/// serialized whole into each snapshot.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DurableMeta {
    /// Next session id the daemon will assign.
    pub next_session: u64,
    /// Per-session records, open and (until swept) closed.
    pub sessions: BTreeMap<u64, SessionMeta>,
}

impl DurableMeta {
    /// Folds one WAL record into the mirror — the same transition applied
    /// live on append and again during recovery replay, so the two always
    /// agree.
    pub fn apply(&mut self, record: &WalRecord) {
        match record {
            WalRecord::Batch { .. } | WalRecord::Epoch { .. } => {}
            WalRecord::SessionMeta { session, user, slo } => {
                let s = self.sessions.entry(*session).or_default();
                s.user = user.clone();
                s.slo = *slo;
                s.open = true;
                s.next_ptr = s.next_ptr.max(*session << 32);
                self.next_session = self.next_session.max(*session + 1);
            }
            WalRecord::SessionClosed { session } => {
                if let Some(s) = self.sessions.get_mut(session) {
                    s.open = false;
                }
            }
            WalRecord::Alloc {
                session,
                slate_ptr,
                device_ptr,
                bytes,
            } => {
                let s = self.sessions.entry(*session).or_default();
                s.allocs.insert(
                    *slate_ptr,
                    AllocMeta {
                        device_ptr: *device_ptr,
                        bytes: *bytes,
                    },
                );
                s.next_ptr = s.next_ptr.max(*slate_ptr + 1);
            }
            WalRecord::Free { session, slate_ptr } => {
                if let Some(s) = self.sessions.get_mut(session) {
                    s.allocs.remove(slate_ptr);
                }
            }
            WalRecord::LaunchAdmitted {
                session,
                launch_id,
                lease,
            } => {
                let s = self.sessions.entry(*session).or_default();
                s.admitted.insert(*launch_id, *lease);
            }
            WalRecord::LaunchDone { session, launch_id } => {
                let s = self.sessions.entry(*session).or_default();
                s.done.insert(*launch_id, true);
            }
        }
    }
}

/// One complete checkpoint: placement state plus session metadata, tagged
/// with the epoch and the WAL segment it anchors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DurableSnapshot {
    /// On-disk format version ([`SNAPSHOT_FORMAT`]).
    pub format: u32,
    /// Recovery epoch the writing daemon ran in.
    pub epoch: u64,
    /// WAL segment this snapshot anchors: recovery replays segments
    /// `≥ segment` on top of this state.
    pub segment: u64,
    /// The placement layer, whole.
    pub placement: PlacementSnapshot,
    /// Daemon-side session metadata.
    pub meta: DurableMeta,
}

/// Writes snapshot `k` under `dir` atomically (temp file + rename), then
/// syncs it to stable storage.
pub fn write_snapshot(dir: &Path, k: u64, snap: &DurableSnapshot) -> io::Result<()> {
    let text = serde_json::to_string(snap)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let tmp = dir.join(format!("snap-{k:08}.tmp"));
    let final_path = super::wal::snapshot_path(dir, k);
    {
        let mut f = fs::File::create(&tmp)?;
        io::Write::write_all(&mut f, text.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &final_path)?;
    Ok(())
}

/// Loads and validates one snapshot file.
pub fn load_snapshot(path: &Path) -> io::Result<DurableSnapshot> {
    let text = fs::read_to_string(path)?;
    let snap: DurableSnapshot = serde_json::from_str(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if snap.format != SNAPSHOT_FORMAT {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "snapshot format {} unsupported (this build reads {})",
                snap.format, SNAPSHOT_FORMAT
            ),
        ));
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_mirror_tracks_sessions_allocs_and_launches() {
        let mut m = DurableMeta::default();
        m.apply(&WalRecord::SessionMeta {
            session: 3,
            user: "alice".into(),
            slo: SloClass::LatencyCritical,
        });
        assert_eq!(m.next_session, 4);
        assert_eq!(m.sessions[&3].next_ptr, 3u64 << 32);
        m.apply(&WalRecord::Alloc {
            session: 3,
            slate_ptr: (3u64 << 32) + 5,
            device_ptr: 0x1000_0100,
            bytes: 64,
        });
        assert_eq!(m.sessions[&3].next_ptr, (3u64 << 32) + 6);
        m.apply(&WalRecord::LaunchAdmitted {
            session: 3,
            launch_id: 1,
            lease: (3 << 16) | 1,
        });
        m.apply(&WalRecord::LaunchDone {
            session: 3,
            launch_id: 1,
        });
        assert!(m.sessions[&3].done.contains_key(&1));
        m.apply(&WalRecord::Free {
            session: 3,
            slate_ptr: (3u64 << 32) + 5,
        });
        assert!(m.sessions[&3].allocs.is_empty());
        // Watermark never regresses on free.
        assert_eq!(m.sessions[&3].next_ptr, (3u64 << 32) + 6);
        m.apply(&WalRecord::SessionClosed { session: 3 });
        assert!(!m.sessions[&3].open);
    }

    #[test]
    fn snapshot_roundtrips_through_disk() {
        use crate::placement::{PlacementConfig, PlacementLayer};
        use slate_gpu_sim::device::DeviceConfig;
        let dir = std::env::temp_dir().join(format!(
            "slate-snap-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let layer = PlacementLayer::new(
            vec![DeviceConfig::tiny(8), DeviceConfig::tiny(8)],
            PlacementConfig::default(),
        );
        let snap = DurableSnapshot {
            format: SNAPSHOT_FORMAT,
            epoch: 2,
            segment: 5,
            placement: layer.snapshot(),
            meta: DurableMeta::default(),
        };
        write_snapshot(&dir, 5, &snap).expect("write");
        let back = load_snapshot(&super::super::wal::snapshot_path(&dir, 5)).expect("load");
        assert_eq!(back.epoch, 2);
        assert_eq!(back.segment, 5);
        assert_eq!(back.placement.devices().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_format_is_rejected() {
        let dir = std::env::temp_dir().join(format!(
            "slate-snapfmt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        use crate::placement::{PlacementConfig, PlacementLayer};
        use slate_gpu_sim::device::DeviceConfig;
        let layer = PlacementLayer::new(vec![DeviceConfig::tiny(8)], PlacementConfig::default());
        let snap = DurableSnapshot {
            format: SNAPSHOT_FORMAT + 1,
            epoch: 0,
            segment: 0,
            placement: layer.snapshot(),
            meta: DurableMeta::default(),
        };
        write_snapshot(&dir, 0, &snap).expect("write");
        assert!(load_snapshot(&super::super::wal::snapshot_path(&dir, 0)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
