//! [`ChaosBackend`]: a test-only decorator perturbing the command stream
//! of any inner backend from a seeded [`FaultPlan`].
//!
//! The conformance properties (each block exactly once, progress carried
//! over retreat, exactly one completion per staging) must hold not just on
//! the happy path but under the arbiter racing commands against
//! completions. This decorator manufactures those races deterministically:
//! each armed [`FaultKind`] at [`FaultSite::Command`] is reinterpreted as
//! a *semantics-preserving* perturbation of the command about to be
//! applied —
//!
//! | armed kind | perturbation |
//! |---|---|
//! | [`FaultKind::MemcpyStall`] | delay: advance the backend `millis` ms first |
//! | [`FaultKind::LaunchFault`] | duplicate: apply the command twice |
//! | [`FaultKind::KernelHang`] | detour: resizes go via a different range first |
//! | [`FaultKind::ChannelDrop`] | nothing (a dropped perturbation) |
//!
//! Every perturbation ends with the real command applied, so a conforming
//! inner backend must absorb the churn: duplicates hit the no-op
//! contract, detours are extra retreat/relaunch cycles, delays shift
//! completions across command boundaries.
//!
//! [`FaultSite::Device`] rules (see
//! [`FaultPlan::device_chaos`](slate_gpu_sim::fault::FaultPlan::device_chaos))
//! go further: on a scheduled dispatch the *whole device* is lost, flapped
//! or stalled through [`Backend::inject_device_fault`], and the decorator
//! then recovers the outage inline — every lost lease is re-staged at the
//! progress its lost completion carried and re-dispatched on the range it
//! held. Exactly-once must survive a full device failure domain, not just
//! command churn.

use super::{Backend, Completion, DeviceFault, DeviceHealth, WorkSpec};
use crate::arbiter::Command;
use slate_gpu_sim::device::{DeviceConfig, SmRange};
use slate_gpu_sim::fault::{FaultKind, FaultPlan, FaultSite};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A backend decorator injecting seeded command-stream chaos.
pub struct ChaosBackend<B> {
    inner: B,
    plan: FaultPlan,
    /// Last staged spec per lease, for device-loss re-staging.
    staged: BTreeMap<u64, WorkSpec>,
    /// Non-lost completions drained during an inline device recovery,
    /// replayed through [`Backend::poll`] in arrival order.
    buffered: VecDeque<Completion>,
}

impl<B: Backend> ChaosBackend<B> {
    /// Wraps `inner`, perturbing commands per `plan`'s
    /// [`FaultSite::Command`] rules (see [`FaultPlan::command_chaos`])
    /// and injecting device outages per its [`FaultSite::Device`] rules
    /// (see [`FaultPlan::device_chaos`]), recovering each outage inline —
    /// lost leases are re-staged at their lost progress and re-dispatched
    /// — so a conforming inner backend still executes every block exactly
    /// once.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            staged: BTreeMap::new(),
            buffered: VecDeque::new(),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// How many perturbations have fired so far.
    pub fn faults_fired(&self) -> usize {
        self.plan.fired()
    }

    /// A valid SM range different from `range` whenever the device allows
    /// one (deterministic, so chaos runs replay).
    fn detour(range: SmRange, num_sms: u32) -> SmRange {
        if range.len() > 1 {
            SmRange::new(range.lo, range.hi - 1)
        } else if range.hi + 1 < num_sms {
            SmRange::new(range.lo, range.hi + 1)
        } else if range.lo > 0 {
            SmRange::new(range.lo - 1, range.hi)
        } else {
            range // single-SM device: the detour degenerates to a duplicate
        }
    }

    /// Takes the whole device down (`flap_ms: Some` = transient outage,
    /// `None` = hard loss + explicit restore), then recovers every lost
    /// lease inline: drain its lost completion, re-stage it at the lost
    /// progress, re-dispatch it on the range it held. Clean completions
    /// drained on the way are buffered for [`Backend::poll`]. The
    /// perturbation stays semantics-preserving: blocks executed before the
    /// outage are carried, none re-run, every staging still completes.
    fn device_outage(&mut self, flap_ms: Option<u64>) {
        // Capture in-flight geometry before the loss clears it.
        let in_flight: Vec<(u64, SmRange)> = self
            .staged
            .keys()
            .filter_map(|&lease| self.inner.held_range(lease).map(|r| (lease, r)))
            .collect();
        let injected = match flap_ms {
            Some(down_ms) => self
                .inner
                .inject_device_fault(DeviceFault::Flap { down_ms }),
            None => self.inner.inject_device_fault(DeviceFault::Loss),
        };
        if !injected {
            return; // inner backend has no device-fault model
        }
        // Drain one terminal completion per in-flight lease: lost ones are
        // casualties to recover, clean ones raced the outage and won.
        let mut awaiting: BTreeSet<u64> = in_flight.iter().map(|&(l, _)| l).collect();
        let mut casualties: Vec<Completion> = Vec::new();
        let mut spins = 0u32;
        while !awaiting.is_empty() && spins < 5_000 {
            match self.inner.poll() {
                Some(c) if c.lost => {
                    awaiting.remove(&c.lease);
                    casualties.push(c);
                }
                Some(c) => {
                    awaiting.remove(&c.lease);
                    self.buffered.push_back(c);
                }
                None => {
                    self.inner.advance(1);
                    spins += 1;
                }
            }
        }
        debug_assert!(awaiting.is_empty(), "outage drain timed out");
        // Bring the device back: wait out a flap, restore a hard loss.
        match flap_ms {
            Some(down_ms) => self.inner.advance(down_ms + 1),
            None => {
                self.inner.inject_device_fault(DeviceFault::Restore);
            }
        }
        debug_assert_eq!(self.inner.health(), DeviceHealth::Healthy);
        // Resume each casualty where it died, on the range it held.
        for c in casualties {
            let Some(spec) = self.staged.get(&c.lease) else {
                continue;
            };
            let resumed = WorkSpec::resuming(spec.kernel.clone(), spec.task_size, c.progress);
            self.inner.stage(c.lease, resumed);
            let range = in_flight
                .iter()
                .find(|&&(l, _)| l == c.lease)
                .map(|&(_, r)| r)
                .expect("casualty was in flight");
            self.inner.apply(&Command::Dispatch {
                lease: c.lease,
                range,
            });
        }
    }
}

impl<B: Backend> Backend for ChaosBackend<B> {
    fn name(&self) -> &'static str {
        "chaos"
    }

    fn device(&self) -> &DeviceConfig {
        self.inner.device()
    }

    fn stage(&mut self, lease: u64, spec: WorkSpec) {
        self.staged.insert(lease, spec.clone());
        self.inner.stage(lease, spec);
    }

    fn apply(&mut self, cmd: &Command) {
        // Device-scoped chaos: dispatches are occurrences of the device
        // fault site, exactly as health-modelled backends count them.
        if matches!(cmd, Command::Dispatch { .. }) {
            match self.plan.fire(FaultSite::Device, None) {
                Some(FaultKind::DeviceLoss) => self.device_outage(None),
                Some(FaultKind::DeviceFlap { down_ms }) => self.device_outage(Some(down_ms)),
                Some(FaultKind::DeviceStall { millis }) => {
                    self.inner
                        .inject_device_fault(DeviceFault::Degraded { millis });
                }
                _ => {}
            }
        }
        match self.plan.fire(FaultSite::Command, None) {
            Some(FaultKind::MemcpyStall { millis }) => self.inner.advance(millis),
            Some(FaultKind::LaunchFault) => self.inner.apply(cmd),
            Some(FaultKind::KernelHang) => {
                if let Command::Resize { lease, range } = cmd {
                    let via = Self::detour(*range, self.inner.device().num_sms);
                    self.inner.apply(&Command::Resize {
                        lease: *lease,
                        range: via,
                    });
                }
            }
            // Device kinds never arm at the Command site; armed here by a
            // hand-built plan, they are dropped perturbations.
            Some(FaultKind::ChannelDrop)
            | Some(FaultKind::DeviceLoss)
            | Some(FaultKind::DeviceStall { .. })
            | Some(FaultKind::DeviceFlap { .. })
            | None => {}
        }
        self.inner.apply(cmd);
    }

    fn poll(&mut self) -> Option<Completion> {
        self.buffered.pop_front().or_else(|| self.inner.poll())
    }

    fn advance(&mut self, millis: u64) {
        self.inner.advance(millis);
    }

    fn progress(&self, lease: u64) -> u64 {
        self.inner.progress(lease)
    }

    fn held_range(&self, lease: u64) -> Option<SmRange> {
        self.inner.held_range(lease)
    }

    fn is_functional(&self) -> bool {
        self.inner.is_functional()
    }

    fn health(&self) -> DeviceHealth {
        self.inner.health()
    }

    fn inject_device_fault(&mut self, fault: DeviceFault) -> bool {
        self.inner.inject_device_fault(fault)
    }

    fn wait_completion(&mut self, timeout_ms: u64) -> Option<Completion> {
        if let Some(c) = self.buffered.pop_front() {
            return Some(c);
        }
        self.inner.wait_completion(timeout_ms)
    }

    fn drive_until(&mut self, lease: u64, timeout_ms: u64) -> Vec<Completion> {
        let mut seen = Vec::new();
        while let Some(c) = self.buffered.pop_front() {
            let hit = c.lease == lease;
            seen.push(c);
            if hit {
                return seen;
            }
        }
        seen.extend(self.inner.drive_until(lease, timeout_ms));
        seen
    }
}
