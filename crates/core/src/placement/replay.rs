//! Record and replay of multi-device placement decisions.
//!
//! A [`PlacementLog`] is to [`PlacementLayer`] what an
//! [`EventLog`] is to a single
//! [`ArbiterCore`](crate::arbiter::ArbiterCore): the frontend event
//! stream plus every routed command, under the exact devices and
//! configuration that produced it. Because the layer is deterministic,
//! the log both [`verify`]s against a fresh replay and [`split`]s into N
//! ordinary per-core `EventLog`s — each of which verifies through the
//! existing single-device machinery, byte-identically. Splitting is how
//! multi-device recordings stay per-core, as the roadmap promised: every
//! downstream tool that consumes an `EventLog` (golden transcripts,
//! differential backend replay, offline tuning) works on each device of
//! a multi-device run unchanged.

use super::{PlacementConfig, PlacementLayer, RoutedCommand};
use crate::arbiter::replay::EventLog;
use crate::arbiter::{Event, Tick};
use serde::{Deserialize, Serialize};
use slate_gpu_sim::device::DeviceConfig;
use std::fmt::Write as _;

/// One recorded [`PlacementLayer::feed`] call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementBatch {
    /// The layer's (clamped) logical clock when the batch was absorbed.
    pub at: Tick,
    /// The frontend events fed, in order.
    pub events: Vec<Event>,
    /// The routed commands returned, in order (including any rebalance
    /// eviction synthesized that batch).
    pub routed: Vec<RoutedCommand>,
}

/// A self-contained recording of a multi-device placement run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementLog {
    /// The devices behind the layer, in index order.
    pub devices: Vec<DeviceConfig>,
    /// The configuration the layer ran under (policy, per-core arbiter
    /// config, rebalance thresholds and seed).
    pub config: PlacementConfig,
    /// The recorded batches.
    pub batches: Vec<PlacementBatch>,
}

/// Replays `log` through a fresh layer, returning each batch with the
/// routed commands the *replay* produced (the logged ones are ignored).
pub fn replay(log: &PlacementLog) -> Vec<PlacementBatch> {
    let mut layer = PlacementLayer::new(log.devices.clone(), log.config.clone());
    log.batches
        .iter()
        .map(|b| PlacementBatch {
            at: b.at,
            events: b.events.clone(),
            routed: layer.feed(b.at, &b.events),
        })
        .collect()
}

/// Replays `log`'s *events* through a fresh layer running `config`
/// instead of the recorded configuration — the multi-device analogue of
/// [`crate::arbiter::replay::replay_under`], and the placement tuner's
/// primitive. Open-loop: the event stream (arrivals, finishes, device
/// failures) is held fixed while routing/arbiter/rebalance knobs vary,
/// so differences in the routed command stream are attributable to the
/// configuration alone. With `config == log.config` this is exactly
/// [`replay`].
pub fn replay_under(log: &PlacementLog, config: PlacementConfig) -> Vec<PlacementBatch> {
    let mut layer = PlacementLayer::new(log.devices.clone(), config);
    log.batches
        .iter()
        .map(|b| PlacementBatch {
            at: b.at,
            events: b.events.clone(),
            routed: layer.feed(b.at, &b.events),
        })
        .collect()
}

/// Incremental replay verification for placement logs: batches are
/// pushed one at a time against a fresh layer and checked as they
/// arrive, holding one reusable routed-command buffer rather than a full
/// second copy of the log. The multi-device analogue of
/// [`crate::arbiter::replay::StreamVerifier`].
pub struct StreamVerifier {
    layer: PlacementLayer,
    scratch: Vec<RoutedCommand>,
    batches: usize,
}

impl StreamVerifier {
    /// A verifier replaying against a fresh layer over `devices` under
    /// `config` — the same starting state [`replay`] uses.
    pub fn new(devices: Vec<DeviceConfig>, config: PlacementConfig) -> Self {
        Self {
            layer: PlacementLayer::new(devices, config),
            scratch: Vec::new(),
            batches: 0,
        }
    }

    /// A verifier for `log`'s devices and configuration.
    pub fn for_log(log: &PlacementLog) -> Self {
        Self::new(log.devices.clone(), log.config.clone())
    }

    /// Replays one recorded batch and checks the routed commands it
    /// produces against the logged ones.
    pub fn push(&mut self, batch: &PlacementBatch) -> Result<(), String> {
        let i = self.batches;
        self.batches += 1;
        self.layer
            .feed_into(batch.at, &batch.events, &mut self.scratch);
        if self.scratch != batch.routed {
            return Err(format!(
                "placement batch {i} (at {}) diverged:\n  logged:\n{}  replayed:\n{}",
                batch.at,
                render(&batch.routed),
                render(&self.scratch),
            ));
        }
        Ok(())
    }

    /// Batches verified so far.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// The replayed layer, positioned after every pushed batch.
    pub fn into_layer(self) -> PlacementLayer {
        self.layer
    }
}

/// Replays `log` and checks the produced routed commands against the
/// logged ones, reporting the first divergence. Streaming: memory is
/// bounded by the largest single batch (see [`StreamVerifier`]).
pub fn verify(log: &PlacementLog) -> Result<(), String> {
    let mut v = StreamVerifier::for_log(log);
    for b in &log.batches {
        v.push(b)?;
    }
    Ok(())
}

fn render(routed: &[RoutedCommand]) -> String {
    let mut s = String::new();
    for r in routed {
        let _ = writeln!(s, "    ! {r}");
    }
    s
}

/// Renders placement batches as a stable, line-oriented transcript: one
/// `@tick` header per batch, `>` lines for events, `! dN` lines for
/// routed commands. Hand-written (not `Debug`-derived) so checked-in
/// goldens only change when the *decisions* change.
pub fn transcript(batches: &[PlacementBatch]) -> String {
    let mut s = String::new();
    for b in batches {
        let _ = writeln!(s, "@{}", b.at);
        for e in &b.events {
            let _ = writeln!(s, "  > {e}");
        }
        for r in &b.routed {
            let _ = writeln!(s, "  ! {r}");
        }
    }
    s
}

/// Splits a multi-device `log` into one ordinary [`EventLog`] per
/// device by replaying it through a fresh layer with per-core recording
/// on. Each returned log carries its own device config and replays
/// byte-identically through [`crate::arbiter::replay`]; the split also
/// re-[`verify`]s the placement log itself and fails if the routing
/// diverged.
pub fn split(log: &PlacementLog) -> Result<Vec<EventLog>, String> {
    let mut layer = PlacementLayer::new(log.devices.clone(), log.config.clone());
    layer.start_recording();
    let mut routed = Vec::new();
    for (i, b) in log.batches.iter().enumerate() {
        layer.feed_into(b.at, &b.events, &mut routed);
        if routed != b.routed {
            return Err(format!(
                "placement batch {i} (at {}) diverged during split:\n  logged:\n{}  replayed:\n{}",
                b.at,
                render(&b.routed),
                render(&routed),
            ));
        }
    }
    Ok(layer
        .take_core_logs()
        .into_iter()
        .map(|l| l.expect("recording was on for every core"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::replay as core_replay;
    use crate::classify::WorkloadClass::*;
    use crate::placement::PlacementPolicy;

    fn ready(session: u64, lease: u64, demand: u32) -> Event {
        Event::KernelReady {
            session,
            lease,
            class: if lease % 2 == 0 { MM } else { LC },
            sm_demand: demand,
            pinned_solo: false,
            deadline_ms: None,
        }
    }

    fn recorded_run() -> PlacementLog {
        let mut p = PlacementLayer::new(
            vec![DeviceConfig::tiny(8), DeviceConfig::tiny(16)],
            PlacementConfig {
                policy: PlacementPolicy::RoundRobin,
                ..Default::default()
            },
        );
        p.start_recording();
        p.feed(
            0,
            &[
                Event::SessionOpened { session: 1 },
                Event::SessionOpened { session: 2 },
            ],
        );
        p.feed(10, &[ready(1, 10, 8), ready(2, 21, 16)]);
        p.feed(500, &[Event::DeadlineTick]); // heartbeat no-op: unrecorded
        p.feed(
            1_000,
            &[Event::KernelFinished {
                lease: 10,
                ok: true,
            }],
        );
        p.feed(1_500, &[ready(1, 12, 4)]);
        p.feed(
            2_000,
            &[Event::KernelFinished {
                lease: 21,
                ok: true,
            }],
        );
        p.feed(
            2_500,
            &[Event::KernelFinished {
                lease: 12,
                ok: true,
            }],
        );
        p.feed(
            3_000,
            &[
                Event::SessionClosed { session: 1 },
                Event::SessionClosed { session: 2 },
            ],
        );
        p.take_log().expect("recording was on")
    }

    #[test]
    fn recorded_placement_run_verifies_and_roundtrips_json() {
        let log = recorded_run();
        assert!(
            log.batches.iter().all(|b| {
                !(b.routed.is_empty() && b.events.iter().all(|e| matches!(e, Event::DeadlineTick)))
            }),
            "no-op heartbeats are not recorded"
        );
        verify(&log).expect("replay reproduces the routing");
        let json = serde_json::to_string_pretty(&log).expect("log serializes");
        let back: PlacementLog = serde_json::from_str(&json).expect("log deserializes");
        assert_eq!(back, log);
        verify(&back).expect("deserialized log still verifies");
        assert_eq!(
            transcript(&replay(&log)),
            transcript(&log.batches),
            "replay transcript is byte-identical"
        );
    }

    #[test]
    fn split_yields_per_core_logs_that_verify_independently() {
        let log = recorded_run();
        let cores = split(&log).expect("split succeeds");
        assert_eq!(cores.len(), 2);
        assert_eq!(cores[0].device, DeviceConfig::tiny(8));
        assert_eq!(cores[1].device, DeviceConfig::tiny(16));
        for (i, core_log) in cores.iter().enumerate() {
            assert!(
                !core_log.batches.is_empty(),
                "device {i} saw decision-relevant traffic"
            );
            core_replay::verify(core_log)
                .unwrap_or_else(|e| panic!("per-core log {i} must verify: {e}"));
        }
        // Every routed command of the placement log appears in its
        // device's split log, batch-aligned by timestamp.
        for b in &log.batches {
            for r in &b.routed {
                let per_core = &cores[r.device];
                assert!(
                    per_core
                        .batches
                        .iter()
                        .any(|cb| cb.at == b.at && cb.commands.contains(&r.command)),
                    "routed command {r} missing from device {} log",
                    r.device
                );
            }
        }
    }

    #[test]
    fn split_rejects_a_tampered_log() {
        let mut log = recorded_run();
        // Flip a routed dispatch to the wrong device.
        let batch = log
            .batches
            .iter_mut()
            .find(|b| !b.routed.is_empty())
            .expect("some batch routed commands");
        batch.routed[0].device ^= 1;
        assert!(verify(&log).is_err(), "tampered routing must not verify");
        assert!(split(&log).is_err(), "tampered routing must not split");
    }
}
