//! The execution backend seam: who carries out arbiter commands.
//!
//! PR 3 made every scheduling *decision* frontend-agnostic behind
//! [`ArbiterCore`](crate::arbiter::ArbiterCore) — events in, commands out.
//! This module does the same for the *execution* side: a [`Backend`] owns
//! the interpretation of [`Command::Dispatch`], [`Command::Resize`] and
//! [`Command::Evict`] against an actual device, plus the feedback half of
//! the loop (completion events, `slateIdx` progress, held SM ranges).
//!
//! Two implementations ship today:
//!
//! * [`SimBackend`] — slices on the fluid-rate simulation engine
//!   (`slate-gpu-sim`), the substrate behind
//!   [`SlateRuntime`](crate::runtime::SlateRuntime);
//! * [`DispatcherBackend`] — real persistent-worker threads through the
//!   dispatch kernel of [`crate::dispatch`], the substrate behind
//!   [`SlateDaemon`](crate::daemon::SlateDaemon).
//!
//! A third, test-only decorator — [`ChaosBackend`] — perturbs the command
//! stream of any inner backend from a seeded
//! [`FaultPlan`](slate_gpu_sim::fault::FaultPlan), proving the execution
//! contract survives duplicated, detoured and delayed commands.
//!
//! The contract itself is pinned by [`testkit`]: every implementation must
//! pass the same scripted conformance scenarios (each user block executes
//! exactly once across arbitrary resize/evict/relaunch churn, retreat
//! preserves progress, SM confinement holds, completions arrive exactly
//! once), and the differential runner replays one recorded
//! [`EventLog`](crate::arbiter::EventLog) through two backends and asserts
//! their observable transcripts agree. A future CUDA backend slots in by
//! implementing [`Backend`] and passing that suite — without touching
//! scheduling.

pub mod chaos;
pub mod dispatcher;
pub mod sim;
pub mod testkit;

pub use chaos::ChaosBackend;
pub use dispatcher::{DispatcherBackend, LeaseTable};
pub use sim::SimBackend;

use crate::arbiter::Command;
use crate::transform::TransformedKernel;
use slate_gpu_sim::device::{DeviceConfig, SmRange};

/// One unit of execution handed to a backend: a transformed kernel plus
/// how to run it. Staged under a lease id, then started by a
/// [`Command::Dispatch`] for that lease.
#[derive(Clone)]
pub struct WorkSpec {
    /// The transformed user kernel (`K*`): flat queue length `slateMax`,
    /// simulated cost from the wrapped kernel's perf profile.
    pub kernel: TransformedKernel,
    /// Blocks pulled per queue transaction (`SLATE_ITERS`).
    pub task_size: u32,
    /// Carried `slateIdx` progress to resume from (0 for a fresh launch).
    /// The relaunch path after an eviction re-stages the same kernel with
    /// the evicted completion's progress here.
    pub start: u64,
}

impl WorkSpec {
    /// A fresh launch of `kernel` (no carried progress).
    pub fn new(kernel: TransformedKernel, task_size: u32) -> Self {
        Self::resuming(kernel, task_size, 0)
    }

    /// A launch resuming from `start` blocks of carried progress.
    pub fn resuming(kernel: TransformedKernel, task_size: u32, start: u64) -> Self {
        assert!(
            start <= kernel.slate_max(),
            "carried progress {start} beyond slateMax {}",
            kernel.slate_max()
        );
        Self {
            kernel,
            task_size,
            start,
        }
    }

    /// `slateMax` of the staged kernel: the absolute progress a successful
    /// completion reports.
    pub fn total(&self) -> u64 {
        self.kernel.slate_max()
    }
}

/// A staged lease finished executing (drained or was evicted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The lease that finished.
    pub lease: u64,
    /// Absolute `slateIdx` progress at exit, including any carried
    /// [`WorkSpec::start`]. Equals the kernel's `slateMax` iff `ok`.
    pub progress: u64,
    /// `true` for a drain (all blocks executed), `false` for an eviction
    /// (progress is partial; re-stage with [`WorkSpec::resuming`]).
    pub ok: bool,
    /// `true` when the lease ended because its *device* went down, not
    /// because of a scheduling decision. Progress is still the absolute
    /// `slateIdx` at the loss (blocks already executed are durable — the
    /// queue-based transform means none re-run on resume). Lost
    /// completions always carry `ok: false`.
    pub lost: bool,
}

impl Completion {
    /// A clean drain at full progress.
    pub fn drained(lease: u64, progress: u64) -> Self {
        Self {
            lease,
            progress,
            ok: true,
            lost: false,
        }
    }

    /// A scheduled eviction at partial progress.
    pub fn evicted(lease: u64, progress: u64) -> Self {
        Self {
            lease,
            progress,
            ok: false,
            lost: false,
        }
    }

    /// A device-loss casualty at partial progress.
    pub fn device_lost(lease: u64, progress: u64) -> Self {
        Self {
            lease,
            progress,
            ok: false,
            lost: true,
        }
    }
}

/// Instantaneous device health, as reported by [`Backend::health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeviceHealth {
    /// Executing normally.
    #[default]
    Healthy,
    /// Up, but stalled or slowed — work survives but lags.
    Degraded,
    /// Off the bus: in-flight leases surface as lost completions and new
    /// dispatches fail immediately.
    Lost,
}

/// A device-scoped fault injected through
/// [`Backend::inject_device_fault`] (tests and chaos harnesses only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceFault {
    /// Hard loss: down until an explicit [`DeviceFault::Restore`].
    Loss,
    /// Stall for `millis` of backend time, then recover on its own.
    Degraded {
        /// Stall budget in milliseconds.
        millis: u64,
    },
    /// Down for `down_ms` of backend time, then back up on its own.
    Flap {
        /// Outage length in milliseconds.
        down_ms: u64,
    },
    /// Bring a lost device back up (staged work must be re-staged; the
    /// device comes back empty).
    Restore,
}

/// Executes arbiter commands against a device and reports what happened.
///
/// Lifecycle per lease: [`Backend::stage`] parks a [`WorkSpec`]; a
/// [`Command::Dispatch`] starts it on the commanded SM range;
/// [`Command::Resize`] retreats and relaunches it on the adjusted range
/// with progress carried over; [`Command::Evict`] stops it with partial
/// progress. Exactly one [`Completion`] is eventually observable through
/// [`Backend::poll`] per dispatched staging. Commands naming an unknown,
/// undispatched-as-required, or already-finished lease are no-ops — the
/// arbiter may legitimately race commands against completions.
pub trait Backend {
    /// Short implementation name (diagnostics).
    fn name(&self) -> &'static str;

    /// The device this backend executes on.
    fn device(&self) -> &DeviceConfig;

    /// Parks `spec` under `lease`, ready for a [`Command::Dispatch`].
    /// Re-staging a finished lease replaces it (the relaunch-after-evict
    /// path); staging over an in-flight lease is a contract violation.
    fn stage(&mut self, lease: u64, spec: WorkSpec);

    /// Carries out one arbiter command. Commands other than
    /// `Dispatch`/`Resize`/`Evict` are no-ops at the execution layer.
    fn apply(&mut self, cmd: &Command);

    /// Returns the next already-available completion, if any. Strictly
    /// non-blocking: never waits for in-flight work (use
    /// [`Backend::advance`] or [`Backend::drive_until`] for that).
    fn poll(&mut self) -> Option<Completion>;

    /// Lets `millis` of backend time pass: simulated time for the engine
    /// backend, wall-clock sleep for the threaded dispatcher backend.
    fn advance(&mut self, millis: u64);

    /// Absolute `slateIdx` progress of `lease` (0 if unknown).
    fn progress(&self, lease: u64) -> u64;

    /// The SM range `lease` currently holds, or `None` if it is not
    /// resident (unknown, not yet dispatched, or finished).
    fn held_range(&self, lease: u64) -> Option<SmRange>;

    /// Whether this backend really executes user block bodies (so tests
    /// can verify per-block coverage through kernel-visible side effects).
    /// The simulation backend models timing only and returns `false`.
    fn is_functional(&self) -> bool;

    /// Non-blocking health probe for the device this backend drives.
    /// Backends without a device-fault model are always healthy.
    fn health(&self) -> DeviceHealth {
        DeviceHealth::Healthy
    }

    /// Injects a device-scoped fault (test/chaos harnesses). Returns
    /// `false` if this backend has no device-fault model — the default.
    fn inject_device_fault(&mut self, _fault: DeviceFault) -> bool {
        false
    }

    /// Polls and advances until any completion shows up, for at most
    /// `timeout_ms` backend milliseconds.
    fn wait_completion(&mut self, timeout_ms: u64) -> Option<Completion> {
        for _ in 0..=timeout_ms {
            if let Some(c) = self.poll() {
                return Some(c);
            }
            self.advance(1);
        }
        None
    }

    /// Polls and advances until a completion for `lease` shows up (or
    /// `timeout_ms` backend milliseconds elapse), returning every
    /// completion observed on the way, in arrival order. If `lease`
    /// completed, its completion is last in the returned vector.
    fn drive_until(&mut self, lease: u64, timeout_ms: u64) -> Vec<Completion> {
        let mut seen = Vec::new();
        for _ in 0..=timeout_ms {
            while let Some(c) = self.poll() {
                let hit = c.lease == lease;
                seen.push(c);
                if hit {
                    return seen;
                }
            }
            self.advance(1);
        }
        seen
    }
}
