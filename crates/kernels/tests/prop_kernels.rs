//! Property tests on the benchmark kernels: mathematical identities that
//! must hold for arbitrary inputs (put-call parity, transpose involution,
//! GEMM linearity, quasirandom equidistribution) and grid-mapping laws.

use proptest::prelude::*;
use slate_gpu_sim::buffer::GpuBuffer;
use slate_kernels::blackscholes::black_scholes_ref;
use slate_kernels::grid::GridDim;
use slate_kernels::kernel::{run_parallel, run_reference, GpuKernel};
use slate_kernels::quasirandom::{direction_table, point, DIMENSIONS};
use slate_kernels::sgemm::SgemmKernel;
use slate_kernels::transpose::TransposeKernel;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Put-call parity: `call - put = S - X e^{-rT}` for any valid inputs.
    #[test]
    fn put_call_parity(s in 1.0..200.0f32, x in 1.0..200.0f32,
                       t in 0.05..10.0f32, r in 0.0..0.1f32, v in 0.05..0.9f32) {
        let (call, put) = black_scholes_ref(s, x, t, r, v);
        let parity = s - x * (-r * t).exp();
        prop_assert!((call - put - parity).abs() < 2e-2 * s.max(x),
                     "parity violated: {} vs {}", call - put, parity);
        // A call is never worth more than the stock, a put never more than
        // the discounted strike (no-arbitrage bounds, small fp slack).
        prop_assert!(call <= s * 1.001 + 1e-3);
        prop_assert!(put <= x * 1.001 + 1e-3);
    }

    /// Grid flat/coord mapping is a bijection for any grid shape.
    #[test]
    fn grid_mapping_bijective(gx in 1u32..5_000, gy in 1u32..500, probe in 0u64..1_000_000) {
        let g = GridDim::d2(gx, gy);
        let flat = probe % g.total_blocks();
        let c = g.coord_of(flat);
        prop_assert!(c.x < gx && c.y < gy);
        prop_assert_eq!(g.flat_of(c), flat);
    }

    /// Transposing twice is the identity for arbitrary shapes.
    #[test]
    fn transpose_involution(rows in 1u32..120, cols in 1u32..120, seed in 0u32..1000) {
        let n = (rows * cols) as usize;
        let input = Arc::new(GpuBuffer::new(n * 4));
        for i in 0..n {
            input.store_f32(i, ((i as u32).wrapping_mul(2654435761).wrapping_add(seed)) as f32);
        }
        let mid = Arc::new(GpuBuffer::new(n * 4));
        run_reference(&TransposeKernel::new(rows, cols, input.clone(), mid.clone()));
        let back = Arc::new(GpuBuffer::new(n * 4));
        run_reference(&TransposeKernel::new(cols, rows, mid, back.clone()));
        for i in 0..n {
            prop_assert_eq!(back.load_f32(i), input.load_f32(i), "element {}", i);
        }
    }

    /// GEMM with the identity matrix returns the other operand.
    #[test]
    fn gemm_identity(dim_t in 1u32..6, seed in 0u32..1000) {
        let dim = dim_t * 16;
        let n = (dim * dim) as usize;
        let a = Arc::new(GpuBuffer::new(n * 4));
        let id = Arc::new(GpuBuffer::new(n * 4));
        let c = Arc::new(GpuBuffer::new(n * 4));
        for i in 0..n {
            a.store_f32(i, (((i as u32) ^ seed) % 31) as f32 * 0.25 - 3.0);
        }
        for d in 0..dim as usize {
            id.store_f32(d * dim as usize + d, 1.0);
        }
        run_parallel(&SgemmKernel::new(dim, dim, dim, a.clone(), id, c.clone()));
        for i in 0..n {
            prop_assert_eq!(c.load_f32(i), a.load_f32(i), "element {}", i);
        }
    }

    /// Quasirandom points stay in [0,1) and distinct indices give distinct
    /// points within a dyadic window (base-2 digital net property).
    #[test]
    fn quasirandom_net_property(dim in 0u32..DIMENSIONS, start in 0u64..100_000) {
        let table = direction_table();
        let start = start & !63; // align to a 64-point window
        let mut seen = std::collections::HashSet::new();
        for i in start..start + 64 {
            let p = point(&table, dim, i);
            prop_assert!((0.0..1.0).contains(&p), "i {}: {}", i, p);
            // Within a 64-aligned window, the top 6 bits enumerate all 64
            // subintervals exactly once (elementary interval property).
            let cell = (p * 64.0) as u32;
            prop_assert!(seen.insert(cell), "cell {} repeated in window", cell);
        }
    }

    /// run_parallel and run_reference agree for the transpose kernel under
    /// arbitrary shapes (block-disjointness sanity).
    #[test]
    fn parallel_equals_reference(rows in 1u32..80, cols in 1u32..80) {
        let n = (rows * cols) as usize;
        let mk = || {
            let input = Arc::new(GpuBuffer::new(n * 4));
            for i in 0..n {
                input.store_f32(i, i as f32 * 0.5);
            }
            let out = Arc::new(GpuBuffer::new(n * 4));
            (TransposeKernel::new(rows, cols, input, out.clone()), out)
        };
        let (k1, o1) = mk();
        run_reference(&k1);
        let (k2, o2) = mk();
        run_parallel(&k2);
        for i in 0..n {
            prop_assert_eq!(o1.load_f32(i), o2.load_f32(i));
        }
    }
}

/// The net property test above relies on dimension-0 being van der Corput;
/// verify the stronger claim deterministically for all dimensions at the
/// origin window.
#[test]
fn all_dimensions_equidistribute_origin_window() {
    let table = direction_table();
    for dim in 0..DIMENSIONS {
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            let cell = (point(&table, dim, i) * 64.0) as u32;
            assert!(seen.insert(cell), "dim {dim} cell {cell} repeated");
        }
    }
}

/// Smoke check that `GpuKernel::perf` profiles stay in sync with the
/// declared geometry (threads per block figure matches the functional
/// bodies' assumptions).
#[test]
fn perf_geometry_consistency() {
    let n = 64usize;
    let a = Arc::new(GpuBuffer::new(n * n * 4));
    let k = SgemmKernel::new(n as u32, n as u32, n as u32, a.clone(), a.clone(), a);
    assert_eq!(k.perf().threads_per_block, 256);
    assert_eq!(k.grid().total_blocks(), 16);
}
