//! LLM prefill (PF) — attention-score matmul over a full prompt.
//!
//! Prefill processes every prompt token at once: one large, compute-dense
//! `scores = Q * K^T` launch per layer, register-blocked so each thread
//! block produces a 64x64 score tile from two 64-row operand strips. It is
//! the throughput half of the LLM serving workload family — big grids that
//! keep the SM pipelines busy at 16 flops per global byte. Calibrated to
//! classify High compute / Low memory (`H_C`), a class whose Table I row
//! refuses to co-run with everything except `H_M` — and the symmetric
//! closure refuses even that — so a decode burst arriving behind a prefill
//! launch waits unless the SLO preemption path intervenes.

use crate::grid::{BlockCoord, GridDim};
use crate::kernel::GpuKernel;
use slate_gpu_sim::buffer::GpuBuffer;
use slate_gpu_sim::perf::KernelPerf;
use std::sync::Arc;

/// Score-tile edge per block (256 threads, each computing a 4x4 micro-tile).
pub const TILE: u32 = 64;

/// Paper-scale problem: prompt length (query and key positions).
pub const PAPER_SEQ: u32 = 4096;

/// Paper-scale problem: concatenated head dimension reduced per score.
pub const PAPER_DIM: u32 = 2048;

/// The prefill attention-score kernel: `scores[i][j] = sum_d q[i][d] *
/// k[j][d]` for `seq` query rows against `seq` key rows of width `dim`.
pub struct PrefillKernel {
    seq: u32,
    dim: u32,
    q: Arc<GpuBuffer>,
    k: Arc<GpuBuffer>,
    scores: Arc<GpuBuffer>,
}

impl PrefillKernel {
    /// Binds the kernel: `q` and `k` are `seq x dim` row-major, `scores`
    /// must hold `seq x seq`. `seq` must be a multiple of [`TILE`].
    pub fn new(
        seq: u32,
        dim: u32,
        q: Arc<GpuBuffer>,
        k: Arc<GpuBuffer>,
        scores: Arc<GpuBuffer>,
    ) -> Self {
        assert!(seq % TILE == 0, "seq must be a multiple of {TILE}");
        assert!(q.len_words() >= (seq * dim) as usize);
        assert!(k.len_words() >= (seq * dim) as usize);
        assert!(scores.len_words() >= (seq * seq) as usize);
        Self {
            seq,
            dim,
            q,
            k,
            scores,
        }
    }
}

impl GpuKernel for PrefillKernel {
    fn name(&self) -> &str {
        "Prefill"
    }

    fn grid(&self) -> GridDim {
        GridDim::d2(self.seq / TILE, self.seq / TILE)
    }

    fn perf(&self) -> KernelPerf {
        paper_perf()
    }

    fn run_block(&self, block: BlockCoord) {
        let (seq, dim) = (self.seq as usize, self.dim as usize);
        let row0 = block.y as usize * TILE as usize;
        let col0 = block.x as usize * TILE as usize;
        // One TILE x TILE score tile; each operand element is loaded once
        // per block and reused TILE times from registers/shared memory —
        // the source of the low memory intensity.
        let mut acc = vec![0.0f32; TILE as usize * TILE as usize];
        for d in 0..dim {
            for ty in 0..TILE as usize {
                let qv = self.q.load_f32((row0 + ty) * dim + d);
                for tx in 0..TILE as usize {
                    acc[ty * TILE as usize + tx] += qv * self.k.load_f32((col0 + tx) * dim + d);
                }
            }
        }
        for ty in 0..TILE as usize {
            for tx in 0..TILE as usize {
                self.scores
                    .store_f32((row0 + ty) * seq + col0 + tx, acc[ty * TILE as usize + tx]);
            }
        }
    }
}

/// Calibrated profile: ≈1500 GFLOP/s at ≈94 GB/s of global requests on the
/// simulated Titan Xp — High compute, Low memory (`H_C`). Each block loads
/// two 64-row operand strips (2 x 64 x dim x 4 bytes) and performs
/// 2 x 64 x 64 x dim flops on them: 16 flops per requested byte.
pub fn paper_perf() -> KernelPerf {
    KernelPerf {
        name: "Prefill".into(),
        threads_per_block: 256,
        regs_per_thread: 128, // 4x4 accumulators: 2 blocks/SM
        smem_per_block: 24 * 1024,
        compute_cycles_per_block: 248_000.0,
        insts_per_block: 5_000_000.0,
        // TILE x TILE scores x 2*dim flops each.
        flops_per_block: 2.0 * (TILE * TILE) as f64 * PAPER_DIM as f64,
        // Two operand strips, each element loaded once per block.
        mem_request_bytes_per_block: 2.0 * TILE as f64 * PAPER_DIM as f64 * 4.0,
        dram_bytes_inorder: 40_000.0,
        dram_bytes_scattered: 60_000.0,
        l2_footprint_bytes: 1.5e6,
        inject_insts_per_block: 25.0,
        inject_cycles_per_block: 30.0,
        max_concurrent_blocks: None,
    }
}

/// Blocks per prefill launch at the paper problem size (64 x 64 tiles).
pub fn paper_blocks() -> u64 {
    (PAPER_SEQ as u64 / TILE as u64).pow(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{run_parallel, run_reference};

    fn setup(seq: u32, dim: u32) -> (PrefillKernel, Vec<f32>, Arc<GpuBuffer>) {
        let (s, d) = (seq as usize, dim as usize);
        let q_host: Vec<f32> = (0..s * d)
            .map(|i| ((i * 11) % 19) as f32 * 0.5 - 4.0)
            .collect();
        let k_host: Vec<f32> = (0..s * d)
            .map(|i| ((i * 5) % 13) as f32 * 0.25 - 1.0)
            .collect();
        let q = Arc::new(GpuBuffer::new(s * d * 4));
        let k = Arc::new(GpuBuffer::new(s * d * 4));
        let scores = Arc::new(GpuBuffer::new(s * s * 4));
        q.write_f32_slice(0, &q_host);
        k.write_f32_slice(0, &k_host);
        let mut expect = vec![0.0f32; s * s];
        for i in 0..s {
            for j in 0..s {
                let mut acc = 0.0f32;
                for x in 0..d {
                    acc += q_host[i * d + x] * k_host[j * d + x];
                }
                expect[i * s + j] = acc;
            }
        }
        (
            PrefillKernel::new(seq, dim, q, k, scores.clone()),
            expect,
            scores,
        )
    }

    #[test]
    fn scores_match_reference() {
        let (kern, expect, scores) = setup(64, 48);
        run_reference(&kern);
        for (i, &e) in expect.iter().enumerate() {
            let got = scores.load_f32(i);
            assert!(
                (got - e).abs() < 1e-2 * e.abs().max(1.0),
                "scores[{i}] {got} vs {e}"
            );
        }
    }

    #[test]
    fn parallel_matches_reference() {
        let (kern, expect, scores) = setup(128, 32);
        run_parallel(&kern);
        for (i, &e) in expect.iter().enumerate() {
            let got = scores.load_f32(i);
            assert!((got - e).abs() < 1e-2 * e.abs().max(1.0), "scores[{i}]");
        }
    }

    #[test]
    fn grid_matches_tiling() {
        let (kern, _, _) = setup(128, 32);
        assert_eq!(kern.grid(), GridDim::d2(2, 2));
        assert_eq!(paper_blocks(), 64 * 64);
    }

    #[test]
    fn paper_profile_is_compute_dense() {
        let p = paper_perf();
        p.validate().unwrap();
        // 16 flops per requested byte: the H_C signature. SGEMM by contrast
        // sits below 4 (and classifies M_M).
        assert!(p.flops_per_block / p.mem_request_bytes_per_block >= 15.0);
    }
}
