//! Overload and chaos soak: the daemon must stay correct, live, and
//! leak-free when clients outnumber its admission limits. Covered here:
//! deterministic backpressure sheds with actionable `retry_after_ms`
//! hints, up-front rejection of infeasible deadlines, starvation-free
//! arbitration under aging, and seeded multi-client churn against tight
//! limits (with a longer fault-injected variant behind `--ignored`).
//!
//! Every scenario ends with the same drain invariants: queue depth zero,
//! `admitted == completed + failed`, `admitted + shed == attempts`, and no
//! leaked allocations, Hyper-Q lanes, or arbiter residents.

use slate_core::api::{decorrelated_jitter, BreakerConfig, SlateClient};
use slate_core::daemon::{DaemonOptions, SlateDaemon};
use slate_core::error::SlateError;
use slate_core::profile::ProfileTable;
use slate_core::AdmissionLimits;
use slate_gpu_sim::buffer::GpuBuffer;
use slate_gpu_sim::device::DeviceConfig;
use slate_gpu_sim::fault::FaultPlan;
use slate_gpu_sim::perf::KernelPerf;
use slate_kernels::grid::{BlockCoord, GridDim};
use slate_kernels::kernel::GpuKernel;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Adds `delta` to every element after sleeping `sleep_ms` — a kernel with
/// a controllable execution time (single block, so runtime == sleep).
struct SlowAddKernel {
    n: usize,
    delta: f32,
    sleep_ms: u64,
    perf: KernelPerf,
    buf: Arc<GpuBuffer>,
}

impl GpuKernel for SlowAddKernel {
    fn name(&self) -> &str {
        &self.perf.name
    }
    fn grid(&self) -> GridDim {
        GridDim::d1(1)
    }
    fn perf(&self) -> KernelPerf {
        self.perf.clone()
    }
    fn run_block(&self, _b: BlockCoord) {
        std::thread::sleep(Duration::from_millis(self.sleep_ms));
        for i in 0..self.n {
            self.buf.store_f32(i, self.buf.load_f32(i) + self.delta);
        }
    }
}

/// A synthetic perf profile. On the tiny test device everything
/// classifies compute-light (a willing co-runner); scenarios that need
/// the no-corun path use `pinned_solo` launches, which the arbiter
/// refuses to pair regardless of class.
fn k_perf(name: &str) -> KernelPerf {
    KernelPerf::synthetic(name, 500.0, 0.0)
}

fn launch_slow(
    client: &SlateClient,
    stream: u32,
    ptr: slate_core::SlatePtr,
    n: usize,
    sleep_ms: u64,
    perf: KernelPerf,
) -> Result<(), SlateError> {
    client.launch_on_stream(stream, vec![ptr], 5, move |bufs| {
        Arc::new(SlowAddKernel {
            n,
            delta: 1.0,
            sleep_ms,
            perf,
            buf: bufs[0].clone(),
        }) as Arc<dyn GpuKernel>
    })
}

/// Like [`launch_slow`] but pinned solo (never co-scheduled).
fn launch_slow_solo(
    client: &SlateClient,
    ptr: slate_core::SlatePtr,
    n: usize,
    sleep_ms: u64,
    perf: KernelPerf,
) -> Result<(), SlateError> {
    client.launch_solo_with(vec![ptr], 5, None, move |bufs| {
        Arc::new(SlowAddKernel {
            n,
            delta: 1.0,
            sleep_ms,
            perf,
            buf: bufs[0].clone(),
        }) as Arc<dyn GpuKernel>
    })
}

/// Runs `f` on a helper thread and panics if it has not finished within
/// `limit` — turns a deadlock into a test failure instead of a hang.
fn within(limit: Duration, what: &str, f: impl FnOnce() + Send + 'static) {
    let done = Arc::new(AtomicBool::new(false));
    let flag = done.clone();
    let t = std::thread::spawn(move || {
        f();
        flag.store(true, Ordering::Release);
    });
    let deadline = Instant::now() + limit;
    while !done.load(Ordering::Acquire) {
        assert!(
            Instant::now() < deadline,
            "{what} deadlocked (no progress within {limit:?})"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    t.join().unwrap();
}

/// Connects with decorrelated-jitter backoff, retrying `Overloaded` sheds
/// until `limit` elapses. Panics on any other error.
fn connect_patient(
    daemon: &Arc<SlateDaemon>,
    user: &str,
    seed: u64,
    limit: Duration,
) -> SlateClient {
    let deadline = Instant::now() + limit;
    let mut rng = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut prev = Duration::from_millis(1);
    loop {
        match daemon.connect(user) {
            Ok(conn) => return SlateClient::new(conn),
            Err(SlateError::Overloaded { .. }) => {
                assert!(Instant::now() < deadline, "{user} could not connect");
                prev = decorrelated_jitter(
                    Duration::from_millis(1),
                    prev,
                    Duration::from_millis(10),
                    &mut rng,
                );
                std::thread::sleep(prev);
            }
            Err(other) => panic!("{user}: unexpected connect error {other}"),
        }
    }
}

#[test]
fn bounded_session_queue_sheds_newest_with_retry_hint() {
    // Per-session bound of 2 pending launches; the client fires 6 slow
    // kernels back-to-back on a lane stream, so exactly 4 are shed.
    let daemon = SlateDaemon::start_with_options(
        DeviceConfig::tiny(8),
        1 << 24,
        DaemonOptions {
            admission: AdmissionLimits {
                max_pending_per_session: Some(2),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let n = 64usize;
    let c = SlateClient::new(daemon.connect("burst").unwrap());
    let p = c.malloc((n * 4) as u64).unwrap();
    c.upload_f32(p, &vec![0.0f32; n]).unwrap();
    for _ in 0..6 {
        launch_slow(&c, 1, p, n, 40, k_perf("burst-lc")).unwrap();
    }
    // The sheds surface at the sync, Overloaded first, with a usable hint.
    match c.synchronize() {
        Err(SlateError::Overloaded { retry_after_ms }) => {
            assert!(retry_after_ms >= 1, "hint must be actionable");
        }
        other => panic!("expected Overloaded at sync, got {other:?}"),
    }
    assert_eq!(c.last_sync_failures(), 4, "drop-newest shed exactly 4");

    // The two admitted launches both executed.
    assert_eq!(c.download_f32(p, n).unwrap(), vec![2.0f32; n]);

    let m = daemon.metrics();
    assert_eq!(m.queue.admitted, 2);
    assert_eq!(m.queue.shed, 4);
    assert_eq!(m.queue.depth, 0, "drained after sync");
    assert!(
        m.queue.high_water <= 2,
        "bound respected: {}",
        m.queue.high_water
    );
    assert_eq!(m.admission.launches_completed, 2);
    assert_eq!(m.admission.launches_failed, 0);
    assert_eq!(m.admission.pending_est_ms, 0);

    c.free(p).unwrap();
    c.disconnect().unwrap();
    daemon.join();
    let m = daemon.metrics();
    assert_eq!(m.live_allocations, 0);
    assert_eq!(m.hyperq_lanes, 0);
    assert_eq!(m.arbiter_residents, 0);
    assert_eq!(m.admission.active_sessions, 0);
}

#[test]
fn infeasible_deadline_is_shed_up_front() {
    // Pre-seed the profile table so the daemon can estimate queue wait.
    let cfg = DeviceConfig::tiny(8);
    let mut profiles = ProfileTable::new();
    profiles.get_or_profile(&cfg, &k_perf("deadline-k"), 10_000);
    let est = profiles
        .estimate_solo_ms("deadline-k", 1)
        .expect("profiled kernel must have an estimate");
    assert!(est >= 1);

    let daemon = SlateDaemon::start_with_options(
        cfg,
        1 << 24,
        DaemonOptions {
            profiles,
            ..Default::default()
        },
    );
    let n = 64usize;
    let c = SlateClient::new(daemon.connect("deadliner").unwrap());
    let p = c.malloc((n * 4) as u64).unwrap();
    c.upload_f32(p, &vec![0.0f32; n]).unwrap();

    // A slow profiled kernel occupies the queue (est ms of pending work)...
    launch_slow(&c, 1, p, n, 150, k_perf("deadline-k")).unwrap();
    // ...so a launch that must finish in 0 ms can only ever time out: it
    // is rejected at admission instead of wasting device time.
    c.launch_with_deadline(vec![p], 5, 0, {
        let perf = k_perf("deadline-k");
        move |bufs| {
            Arc::new(SlowAddKernel {
                n,
                delta: 1.0,
                sleep_ms: 0,
                perf,
                buf: bufs[0].clone(),
            }) as Arc<dyn GpuKernel>
        }
    })
    .unwrap();

    match c.synchronize() {
        Err(SlateError::Overloaded { retry_after_ms }) => {
            assert_eq!(retry_after_ms, est, "hint is the estimated queue wait");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(daemon.admission_stats().deadline_rejections, 1);
    assert_eq!(c.last_sync_failures(), 1);
    // The pending slow launch itself completed fine.
    c.synchronize().unwrap();
    assert_eq!(c.download_f32(p, n).unwrap(), vec![1.0f32; n]);

    c.free(p).unwrap();
    c.disconnect().unwrap();
    daemon.join();
    let m = daemon.metrics();
    assert_eq!(m.queue.admitted, 1);
    assert_eq!(m.queue.shed, 1, "the deadline rejection counts as a shed");
    assert_eq!(m.admission.launches_completed, 1);
    assert_eq!(m.admission.pending_est_ms, 0);
    assert_eq!(m.live_allocations, 0);
}

#[test]
fn starved_waiter_is_promoted_to_solo_dispatch() {
    // A pinned-solo waiter can never join the 150 ms resident, so it
    // queues. With an aging bound of 10 ms it starves long before the
    // resident drains; the arbiter must then promote it to a solo
    // dispatch (and count the promotion) instead of letting fresh
    // corunnable arrivals overtake it.
    let daemon = SlateDaemon::start_with_options(
        DeviceConfig::tiny(8),
        1 << 24,
        DaemonOptions {
            starvation_bound_ms: Some(10),
            ..Default::default()
        },
    );
    let n = 64usize;
    let a = SlateClient::new(daemon.connect("resident").unwrap());
    let pa = a.malloc((n * 4) as u64).unwrap();
    a.upload_f32(pa, &vec![0.0f32; n]).unwrap();
    launch_slow(&a, 1, pa, n, 150, k_perf("age-resident")).unwrap();
    // Give the resident time to take the device before the waiter arrives.
    std::thread::sleep(Duration::from_millis(30));

    let b = SlateClient::new(daemon.connect("waiter").unwrap());
    let pb = b.malloc((n * 4) as u64).unwrap();
    b.upload_f32(pb, &vec![0.0f32; n]).unwrap();
    // Three queued solo launches, each bumping every slot by one: the
    // buffer is a hit counter, so a launch lost in the promotion (or run
    // twice through it) is observable as bytes, not just as a counter.
    const WAITER_LAUNCHES: usize = 3;
    for _ in 0..WAITER_LAUNCHES {
        launch_slow_solo(&b, pb, n, 5, k_perf("age-solo-waiter")).unwrap();
    }
    // Once the waiter has starved, a corunnable latecomer must not be
    // paired with the resident over its head: aging blocks fresh joins.
    std::thread::sleep(Duration::from_millis(20));
    let c = SlateClient::new(daemon.connect("latecomer").unwrap());
    let pc = c.malloc((n * 4) as u64).unwrap();
    c.upload_f32(pc, &vec![0.0f32; n]).unwrap();
    launch_slow(&c, 1, pc, n, 5, k_perf("age-latecomer")).unwrap();

    b.synchronize().unwrap();
    // Every queued launch of the promoted session completed end to end,
    // exactly once each: each slot counted every launch.
    assert_eq!(
        b.download_f32(pb, n).unwrap(),
        vec![WAITER_LAUNCHES as f32; n],
        "the promoted session's queued launches must all complete exactly once"
    );
    c.synchronize().unwrap();
    assert_eq!(c.download_f32(pc, n).unwrap(), vec![1.0f32; n]);
    a.synchronize().unwrap();

    assert!(
        daemon.starvation_promotions() >= 1,
        "the starved pinned-solo waiter must be promoted, got {}",
        daemon.starvation_promotions()
    );
    assert_eq!(
        daemon.metrics().starvation_promotions,
        daemon.starvation_promotions()
    );

    a.free(pa).unwrap();
    b.free(pb).unwrap();
    c.free(pc).unwrap();
    a.disconnect().unwrap();
    b.disconnect().unwrap();
    c.disconnect().unwrap();
    daemon.join();
    assert_eq!(daemon.arbiter_residents(), 0);
}

/// Seeded multi-client churn against tight limits. Each worker loops
/// connect → malloc → launch burst → sync → free → disconnect, backing
/// off sheds with decorrelated jitter. Returns through `within`, so a
/// deadlock fails instead of hanging.
fn churn(
    daemon: Arc<SlateDaemon>,
    threads: u64,
    iters: u64,
    launches_per_iter: u64,
    sleep_ms: u64,
    tolerate_faults: bool,
) -> (u64, u64, u64) {
    let connects = Arc::new(AtomicU64::new(0));
    let attempts = Arc::new(AtomicU64::new(0));
    let sheds_seen = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let daemon = daemon.clone();
            let connects = connects.clone();
            let attempts = attempts.clone();
            let sheds_seen = sheds_seen.clone();
            std::thread::spawn(move || {
                let n = 64usize;
                for iter in 0..iters {
                    let user = format!("churn-{t}-{iter}");
                    let client = if tolerate_faults {
                        connect_patient(&daemon, &user, t * 1_000 + iter, Duration::from_secs(10))
                            .with_circuit_breaker(BreakerConfig {
                                failure_threshold: 4,
                                cooldown: Duration::from_millis(50),
                            })
                    } else {
                        connect_patient(&daemon, &user, t * 1_000 + iter, Duration::from_secs(10))
                    };
                    connects.fetch_add(1, Ordering::Relaxed);
                    let perf = k_perf(&format!("churn-{t}"));
                    let p = match client.malloc((n * 4) as u64) {
                        Ok(p) => p,
                        Err(_) if tolerate_faults => continue,
                        Err(e) => panic!("{user}: malloc failed: {e}"),
                    };
                    if let Err(e) = client.upload_f32(p, &vec![0.0f32; n]) {
                        if tolerate_faults {
                            continue;
                        }
                        panic!("{user}: upload failed: {e}");
                    }
                    let mut sent = 0;
                    for k in 0..launches_per_iter {
                        let stream = 1 + (k % 2) as u32;
                        match launch_slow(&client, stream, p, n, sleep_ms, perf.clone()) {
                            Ok(()) => sent += 1,
                            // An open breaker fails launches fast
                            // client-side; the daemon never saw them.
                            Err(SlateError::Overloaded { .. }) if tolerate_faults => {}
                            Err(_) if tolerate_faults => break,
                            Err(e) => panic!("{user}: launch failed: {e}"),
                        }
                    }
                    attempts.fetch_add(sent, Ordering::Relaxed);
                    match client.synchronize() {
                        Ok(()) => {}
                        Err(SlateError::Overloaded { retry_after_ms }) => {
                            assert!(retry_after_ms >= 1);
                            sheds_seen.fetch_add(client.last_sync_failures(), Ordering::Relaxed);
                        }
                        Err(_) if tolerate_faults => continue,
                        Err(e) => panic!("{user}: sync failed: {e}"),
                    }
                    let _ = client.free(p);
                    let _ = client.disconnect();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    (
        connects.load(Ordering::Relaxed),
        attempts.load(Ordering::Relaxed),
        sheds_seen.load(Ordering::Relaxed),
    )
}

#[test]
fn churn_soak_under_tight_limits_stays_balanced_and_leak_free() {
    let daemon = SlateDaemon::start_with_options(
        DeviceConfig::tiny(8),
        1 << 24,
        DaemonOptions {
            admission: AdmissionLimits {
                max_sessions: Some(3),
                max_pending_per_session: Some(2),
                max_pending_global: Some(4),
                ..Default::default()
            },
            starvation_bound_ms: Some(25),
            ..Default::default()
        },
    );
    let d = daemon.clone();
    let totals = Arc::new(parking_lot::Mutex::new((0u64, 0u64, 0u64)));
    let out = totals.clone();
    within(Duration::from_secs(60), "churn soak", move || {
        *out.lock() = churn(d, 4, 3, 4, 2, false);
    });
    let (connects, attempts, sheds_seen) = *totals.lock();
    daemon.join();

    let m = daemon.metrics();
    // Counters balance: every attempt was admitted or shed, every
    // admission completed, and every shed was surfaced to some client.
    assert_eq!(m.queue.admitted + m.queue.shed, attempts, "{m:?}");
    assert_eq!(
        m.queue.admitted,
        m.admission.launches_completed + m.admission.launches_failed,
        "{m:?}"
    );
    assert_eq!(m.admission.launches_failed, 0, "no faults injected");
    assert_eq!(sheds_seen, m.queue.shed, "every shed reached a client");
    assert_eq!(m.admission.sessions_admitted, connects);
    assert!(connects >= 12, "all 4x3 worker iterations connected");
    // Clean drain: nothing pending, nothing leaked.
    assert_eq!(m.queue.depth, 0);
    assert_eq!(m.admission.pending_est_ms, 0);
    assert_eq!(m.admission.active_sessions, 0);
    assert_eq!(m.live_allocations, 0);
    assert_eq!(m.hyperq_lanes, 0);
    assert_eq!(m.arbiter_residents, 0);
}

/// Fault-plan seed for the chaos soak. Defaults to a fixed seed so a
/// plain `--ignored` run is reproducible; the nightly CI job sweeps a
/// matrix of seeds via `SLATE_CHAOS_SEED` (decimal or `0x`-prefixed hex).
fn chaos_seed() -> u64 {
    match std::env::var("SLATE_CHAOS_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("SLATE_CHAOS_SEED is not a u64: {s:?}"))
        }
        Err(_) => 0xC0FFEE,
    }
}

/// The long chaos variant: more workers, more iterations, and a seeded
/// fault plan (hangs, launch faults, memcpy stalls, channel drops) on top
/// of the tight limits. Run explicitly with
/// `cargo test --release --test overload_soak -- --ignored`; override the
/// seed with `SLATE_CHAOS_SEED` (the nightly job sweeps a seed matrix).
#[test]
#[ignore = "long soak; run explicitly (CI runs it with a timeout)"]
fn chaos_soak_with_fault_injection_drains_clean() {
    let seed = chaos_seed();
    eprintln!("chaos soak: SLATE_CHAOS_SEED = {seed:#x}");
    let daemon = SlateDaemon::start_with_options(
        DeviceConfig::tiny(8),
        1 << 24,
        DaemonOptions {
            fault_plan: FaultPlan::randomized(seed, 10),
            // Injected kernel hangs must not wedge the soak: the watchdog
            // evicts anything running longer than 150 ms.
            default_deadline_ms: Some(150),
            admission: AdmissionLimits {
                max_sessions: Some(4),
                max_pending_per_session: Some(2),
                max_pending_global: Some(6),
                ..Default::default()
            },
            starvation_bound_ms: Some(25),
            ..Default::default()
        },
    );
    let d = daemon.clone();
    within(Duration::from_secs(120), "chaos soak", move || {
        churn(d, 6, 8, 4, 2, true);
    });
    daemon.join();

    let m = daemon.metrics();
    // With faults the exact counts vary by schedule, but the drain
    // invariants are unconditional.
    assert_eq!(
        m.queue.admitted,
        m.admission.launches_completed + m.admission.launches_failed,
        "{m:?}"
    );
    assert_eq!(m.queue.depth, 0, "{m:?}");
    assert_eq!(m.admission.pending_est_ms, 0, "{m:?}");
    assert_eq!(m.admission.active_sessions, 0, "{m:?}");
    assert_eq!(m.live_allocations, 0, "{m:?}");
    assert_eq!(m.hyperq_lanes, 0, "{m:?}");
    assert_eq!(m.arbiter_residents, 0, "{m:?}");
}
