//! Offline stand-in for `criterion`: the same entry points
//! (`criterion_group!` / `criterion_main!` / `Criterion` /
//! `BenchmarkId` / `Throughput`), backed by a minimal wall-clock runner.
//! No statistics, no HTML reports — each benchmark runs a short measured
//! loop and prints a mean time per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Iterations per measured sample; small so `cargo bench` stays quick on
/// simulator-heavy workloads.
const ITERS_PER_SAMPLE: u64 = 3;

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        // Criterion enforces >= 10; we just take whatever fits.
        self.samples = samples.max(1);
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.samples,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        b.report(&self.name, &id.to_string());
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let mut b = Bencher {
            samples: self.samples,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        b.report(&self.name, &id.label);
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup once outside the measurement.
        std::hint::black_box(f());
        let start = Instant::now();
        let iters = self.samples as u64 * ITERS_PER_SAMPLE;
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.total = start.elapsed();
        self.iters = iters;
    }

    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        let iters = self.samples as u64 * ITERS_PER_SAMPLE;
        self.total = f(iters);
        self.iters = iters;
    }

    fn report(&self, group: &str, id: &str) {
        if self.iters == 0 {
            println!("{group}/{id}: no measurement");
            return;
        }
        let per_iter = self.total.as_nanos() / self.iters as u128;
        println!("{group}/{id}: {per_iter} ns/iter ({} iters)", self.iters);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut ran = 0u32;
        g.bench_function("f", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
        g.finish();
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(1);
        g.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| {
            b.iter(|| x * 2);
        });
        g.bench_with_input(BenchmarkId::from_parameter("p"), &1u32, |b, _| {
            b.iter_custom(|iters| {
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(0u64);
                }
                start.elapsed()
            });
        });
        g.finish();
    }
}
