//! The reproduction gate: every experiment driver runs (at reduced scale)
//! and every qualitative shape check against the paper passes.

use slate_gpu_sim::device::DeviceConfig;
use slate_harness::{
    ablation, fig1, fig5, fig6, fig7, oracle, portability, table1, table2, table3, table4, table5,
};

fn titan() -> DeviceConfig {
    DeviceConfig::titan_xp()
}

#[test]
fn fig1_shape() {
    let (_, r) = fig1::run(&titan(), 20);
    assert!(r.all_pass(), "{}", r.to_text());
}

#[test]
fn table1_shape() {
    let (_, r) = table1::run(&titan());
    assert!(r.all_pass(), "{}", r.to_text());
}

#[test]
fn table2_shape() {
    let (_, r) = table2::run(&titan());
    assert!(r.all_pass(), "{}", r.to_text());
}

#[test]
fn table3_shape() {
    let (_, r) = table3::run(&titan(), 12);
    assert!(r.all_pass(), "{}", r.to_text());
}

#[test]
fn table4_shape() {
    let (_, r) = table4::run(&titan(), 12);
    assert!(r.all_pass(), "{}", r.to_text());
}

#[test]
fn fig5_shape() {
    let (_, r) = fig5::run(&titan());
    assert!(r.all_pass(), "{}", r.to_text());
}

#[test]
fn fig6_shape() {
    let (_, r) = fig6::run(&titan(), 12);
    assert!(r.all_pass(), "{}", r.to_text());
}

#[test]
fn fig7_shape() {
    let (_, r) = fig7::run(&titan(), 12);
    assert!(r.all_pass(), "{}", r.to_text());
}

#[test]
fn table5_shape() {
    let (_, r) = table5::run(&titan(), 12);
    assert!(r.all_pass(), "{}", r.to_text());
}

#[test]
fn ablation_shape() {
    let (_, r) = ablation::run(&titan(), 15);
    assert!(r.all_pass(), "{}", r.to_text());
}

#[test]
fn portability_shape() {
    let (_, r) = portability::run(15);
    assert!(r.all_pass(), "{}", r.to_text());
}

#[test]
fn oracle_shape() {
    let (_, r) = oracle::run(&titan(), 15);
    assert!(r.all_pass(), "{}", r.to_text());
}

/// The experiments must also hold at a different scale — the shapes are
/// properties of the model, not of one repetition count.
#[test]
fn fig7_shape_is_scale_stable() {
    let (_, r) = fig7::run(&titan(), 5);
    assert!(r.all_pass(), "{}", r.to_text());
}
