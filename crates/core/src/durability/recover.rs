//! Recovery: rebuild daemon state from the newest readable snapshot plus
//! the WAL suffix.
//!
//! The sequence is fixed:
//!
//! 1. pick the highest snapshot that loads and validates (an unreadable
//!    one is skipped in favour of an older one — more replay, same
//!    answer);
//! 2. rebuild the [`PlacementLayer`] from it;
//! 3. replay every WAL segment `≥` the snapshot's anchor, in order:
//!    `Batch` records re-feed the layer (outputs discarded — the
//!    decisions already happened), every record folds into the
//!    [`DurableMeta`] mirror;
//! 4. surface — never panic on — torn tails and corruption, with the
//!    byte offset where each log stopped being trustworthy.
//!
//! The caller ([`SlateDaemon::recover`](crate::daemon::SlateDaemon::recover))
//! then bumps the epoch, rotates to a fresh segment, writes a new anchor
//! snapshot and re-adopts in-flight work.

use super::snapshot::{load_snapshot, DurableMeta, DurableSnapshot};
use super::wal::{list_segments, list_snapshots, read_segment, WalIssue, WalRecord};
use crate::placement::{PlacementBatch, PlacementLayer, PlacementLog};
use std::io;
use std::path::Path;

/// Everything recovery reconstructed from the durability directory.
#[derive(Debug)]
pub struct Recovered {
    /// The placement layer, rebuilt from the snapshot and replayed
    /// forward through the WAL suffix.
    pub layer: PlacementLayer,
    /// The session-metadata mirror, likewise replayed forward.
    pub meta: DurableMeta,
    /// Epoch of the crashed incarnation (highest seen across the
    /// snapshot and any `Epoch` records in the suffix).
    pub epoch: u64,
    /// Index of the last WAL segment on disk; the recovered daemon
    /// appends to `last_segment + 1`.
    pub last_segment: u64,
    /// Per-segment problems found while scanning (torn tails from the
    /// crash itself, corruption). Empty for a clean shutdown.
    pub issues: Vec<(u64, WalIssue)>,
}

/// Rebuilds daemon state from `dir`. Fails only on I/O errors or when no
/// snapshot in the directory is readable; WAL damage is tolerated and
/// reported via [`Recovered::issues`].
pub fn recover_dir(dir: &Path) -> io::Result<Recovered> {
    let snaps = list_snapshots(dir)?;
    if snaps.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "no snapshot in {}: not a durability directory",
                dir.display()
            ),
        ));
    }
    // Highest readable snapshot wins; damaged ones cost replay, not data.
    let mut base: Option<DurableSnapshot> = None;
    let mut last_err: Option<io::Error> = None;
    for (_, path) in snaps.iter().rev() {
        match load_snapshot(path) {
            Ok(s) => {
                base = Some(s);
                break;
            }
            Err(e) => last_err = Some(e),
        }
    }
    let Some(base) = base else {
        return Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "every snapshot failed to load")
        }));
    };
    let mut layer = PlacementLayer::from_snapshot(base.placement.clone());
    let mut meta = base.meta.clone();
    let mut epoch = base.epoch;
    let mut issues = Vec::new();
    let segments = list_segments(dir)?;
    let mut last_segment = base.segment;
    for (k, path) in &segments {
        last_segment = last_segment.max(*k);
        if *k < base.segment {
            continue; // superseded by the snapshot
        }
        let scan = read_segment(path)?;
        for record in &scan.records {
            if let WalRecord::Batch { batch } = record {
                let _ = layer.feed(batch.at, &batch.events);
            }
            if let WalRecord::Epoch { epoch: e } = record {
                epoch = epoch.max(*e);
            }
            meta.apply(record);
        }
        if let Some(issue) = scan.issue {
            issues.push((*k, issue));
        }
    }
    Ok(Recovered {
        layer,
        meta,
        epoch,
        last_segment,
        issues,
    })
}

/// Collects every `Batch` record across *all* segments (ascending) into
/// one [`PlacementLog`], with devices and configuration taken from the
/// earliest snapshot on disk.
///
/// When that earliest snapshot is the pristine genesis anchor (always
/// true until compaction retires it), the log replays from a fresh layer
/// and [`crate::placement::replay::verify`] proves the whole recorded
/// history — across every crash and recovery — routes byte-identically.
pub fn full_log(dir: &Path) -> io::Result<PlacementLog> {
    let snaps = list_snapshots(dir)?;
    let Some((_, first)) = snaps.first() else {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no snapshot in {}", dir.display()),
        ));
    };
    let genesis = load_snapshot(first)?;
    let mut batches: Vec<PlacementBatch> = Vec::new();
    for (_, path) in list_segments(dir)? {
        let scan = read_segment(&path)?;
        for record in scan.records {
            if let WalRecord::Batch { batch } = record {
                batches.push(batch);
            }
        }
    }
    Ok(PlacementLog {
        devices: genesis.placement.devices(),
        config: genesis.placement.config().clone(),
        batches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::Event;
    use crate::durability::snapshot::{write_snapshot, SNAPSHOT_FORMAT};
    use crate::durability::wal::SegmentWriter;
    use crate::placement::PlacementConfig;
    use slate_gpu_sim::device::DeviceConfig;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "slate-recover-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn fresh_layer() -> PlacementLayer {
        PlacementLayer::new(
            vec![DeviceConfig::tiny(8), DeviceConfig::tiny(8)],
            PlacementConfig::default(),
        )
    }

    #[test]
    fn snapshot_plus_suffix_matches_an_uninterrupted_run() {
        let dir = tmpdir("suffix");
        // Golden: one layer fed straight through.
        let mut golden = fresh_layer();
        let mut live = fresh_layer();
        let open = vec![Event::SessionOpened { session: 1 }];
        golden.feed(10, &open);
        live.feed(10, &open);
        // Checkpoint here: snapshot anchors segment 1.
        write_snapshot(
            &dir,
            1,
            &DurableSnapshot {
                format: SNAPSHOT_FORMAT,
                epoch: 0,
                segment: 1,
                placement: live.snapshot(),
                meta: DurableMeta::default(),
            },
        )
        .expect("write snapshot");
        // Suffix: one more batch, recorded in segment 1.
        let ready = vec![Event::KernelReady {
            session: 1,
            lease: (1 << 16) | 1,
            class: crate::classify::WorkloadClass::MM,
            sm_demand: 8,
            pinned_solo: false,
            deadline_ms: None,
        }];
        let routed = live.feed(20, &ready);
        golden.feed(20, &ready);
        let mut w = SegmentWriter::create(&dir, 1).expect("segment");
        w.append(&WalRecord::Batch {
            batch: PlacementBatch {
                at: 20,
                events: ready.clone(),
                routed,
            },
        })
        .expect("append");
        w.sync().expect("sync");
        let rec = recover_dir(&dir).expect("recover");
        assert!(rec.issues.is_empty());
        assert_eq!(rec.last_segment, 1);
        // The recovered layer and the golden layer agree on observable
        // state — and, critically, on their *next* decision.
        assert_eq!(
            serde_json::to_string(&rec.layer.snapshot()).expect("snap"),
            serde_json::to_string(&golden.snapshot()).expect("snap"),
            "recovered state is byte-identical to the uncrashed run"
        );
        let mut recovered = rec.layer;
        let fin = vec![Event::KernelFinished {
            lease: (1 << 16) | 1,
            ok: true,
        }];
        assert_eq!(recovered.feed(30, &fin), golden.feed(30, &fin));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_reported_with_offset_and_prefix_survives() {
        let dir = tmpdir("torn");
        let live = fresh_layer();
        write_snapshot(
            &dir,
            0,
            &DurableSnapshot {
                format: SNAPSHOT_FORMAT,
                epoch: 0,
                segment: 0,
                placement: live.snapshot(),
                meta: DurableMeta::default(),
            },
        )
        .expect("write snapshot");
        let mut w = SegmentWriter::create(&dir, 0).expect("segment");
        w.append(&WalRecord::SessionMeta {
            session: 1,
            user: "alice".into(),
            slo: Default::default(),
        })
        .expect("append");
        w.sync().expect("sync");
        // Simulate a crash mid-append: chop bytes off the tail.
        let path = crate::durability::wal::segment_path(&dir, 0);
        let mut bytes = std::fs::read(&path).expect("read");
        let valid = bytes.len();
        bytes.extend_from_slice(&encode_partial());
        std::fs::write(&path, &bytes).expect("write");
        let rec = recover_dir(&dir).expect("recover");
        assert_eq!(rec.meta.sessions[&1].user, "alice");
        assert_eq!(rec.issues.len(), 1);
        assert_eq!(rec.issues[0].0, 0);
        assert_eq!(rec.issues[0].1.offset(), valid);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn encode_partial() -> Vec<u8> {
        let frame = crate::durability::wal::encode_frame(b"{\"never\":\"lands\"}");
        frame[..frame.len() - 3].to_vec()
    }

    #[test]
    fn missing_directory_and_empty_directory_fail_cleanly() {
        let dir = tmpdir("empty");
        assert!(recover_dir(&dir).is_err(), "no snapshot: not recoverable");
        assert!(recover_dir(&dir.join("nope")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
