//! Portability: do Slate's advantages survive a device change?
//!
//! The paper argues that, as a software solution, "Slate works on most GPU
//! systems". This experiment re-runs representative pairings on a simulated
//! Tesla V100 (80 SMs, HBM2 — the GV100 architecture the paper cites) with
//! the *same* kernel profiles and the *same* policy, and checks that the
//! qualitative story holds: complementary pairs still co-run and win, the
//! non-complementary pairs stay near MPS, and nothing relies on the
//! Titan Xp's exact geometry.

use crate::report::{f, pct, Report, Table};
use slate_baselines::{CudaRuntime, MpsRuntime, Runtime};
use slate_core::SlateRuntime;
use slate_gpu_sim::device::DeviceConfig;
use slate_kernels::workload::Benchmark;

/// Pairings checked on the second device.
pub const PAIRS: [(Benchmark, Benchmark); 4] = [
    (Benchmark::BS, Benchmark::RG),
    (Benchmark::GS, Benchmark::RG),
    (Benchmark::GS, Benchmark::GS),
    (Benchmark::MM, Benchmark::BS),
];

/// One pairing's cross-device comparison.
#[derive(Debug, Clone)]
pub struct PortRow {
    /// The pairing.
    pub pair: (Benchmark, Benchmark),
    /// Slate's gain over MPS on the Titan Xp.
    pub gain_titan: f64,
    /// Slate's gain over MPS on the V100.
    pub gain_v100: f64,
}

fn gain_on(cfg: &DeviceConfig, a: Benchmark, b: Benchmark, scale: u32) -> f64 {
    let cuda = CudaRuntime::new(cfg.clone());
    let mps = MpsRuntime::new(cfg.clone());
    let slate = SlateRuntime::new(cfg.clone());
    let apps = [a.app().scaled_down(scale), b.app().scaled_down(scale)];
    let solos = [cuda.solo_time(&apps[0]), cuda.solo_time(&apps[1])];
    let antt_m = mps.run(&apps).antt(&solos);
    let antt_s = slate.run(&apps).antt(&solos);
    antt_m / antt_s - 1.0
}

/// Runs the cross-device comparison.
pub fn run(scale: u32) -> (Vec<PortRow>, Report) {
    let titan = DeviceConfig::titan_xp();
    let v100 = DeviceConfig::tesla_v100();
    let mut report = Report::new(
        "portability",
        "Slate vs MPS across devices (Titan Xp vs V100)",
        "As a software-based solution, Slate works on most GPU systems \
         (paper §VII): the workload-aware wins must not be an artefact of \
         one device's geometry.",
    );
    let mut t = Table::new(
        "Slate gain over MPS",
        &["Pair", "Titan Xp (30 SMs)", "V100 (80 SMs)"],
    );
    let mut rows = Vec::new();
    for (a, b) in PAIRS {
        let row = PortRow {
            pair: (a, b),
            gain_titan: gain_on(&titan, a, b, scale),
            gain_v100: gain_on(&v100, a, b, scale),
        };
        t.row(&[
            format!("{}-{}", a.abbrev(), b.abbrev()),
            pct(row.gain_titan),
            pct(row.gain_v100),
        ]);
        rows.push(row);
    }
    report.tables.push(t);
    report.note(format!(
        "V100 knee: {} SMs of {}",
        f(v100.bw_saturation_sms(), 1),
        v100.num_sms
    ));

    let by = |a: Benchmark, b: Benchmark| rows.iter().find(|r| r.pair == (a, b)).unwrap();
    report.check(
        "complementary pairs still win clearly on the V100",
        by(Benchmark::BS, Benchmark::RG).gain_v100 > 0.10
            && by(Benchmark::GS, Benchmark::RG).gain_v100 > 0.10,
    );
    report.check(
        "software scheduling still wins for GS-GS on the V100",
        by(Benchmark::GS, Benchmark::GS).gain_v100 > 0.10,
    );
    report.check(
        "MM-BS stays near MPS parity on the V100",
        by(Benchmark::MM, Benchmark::BS).gain_v100.abs() < 0.08,
    );
    (rows, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advantages_survive_the_device_change() {
        let (rows, report) = run(12);
        assert_eq!(rows.len(), 4);
        assert!(report.all_pass(), "{}", report.to_text());
    }
}
