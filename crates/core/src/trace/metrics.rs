//! Metric extraction from recorded (or counterfactually replayed) logs.
//!
//! These extractors are shared by the LLM-SLO experiment harness and the
//! offline autotuner, which puts one constraint front and center: under
//! open-loop what-if replay ([`replay_under`]) the *events* are fixed —
//! a kernel still finishes when the recording says it did — while the
//! *commands* vary with the configuration. Any metric meant to compare
//! configurations must therefore be command-derived. Ready→finish
//! latency is configuration-invariant by construction; ready→dispatch
//! wait, preemption latency and the dispatch-normalized slowdown proxy
//! are not, so those are what [`ReplayMetrics`] scores.
//!
//! [`replay_under`]: crate::arbiter::replay::replay_under

use crate::arbiter::replay::LoggedBatch;
use crate::arbiter::{Command, Event, Tick};
use crate::placement::replay::PlacementBatch;
use slate_kernels::workload::SloClass;
use std::collections::{BTreeMap, BTreeSet};

/// Nearest-rank percentile of latencies (`q` in 0..=1). Empty input → 0.
pub fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Latency distribution summary in logical microseconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyStats {
    /// Sample count.
    pub n: usize,
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Worst sample.
    pub max_us: u64,
}

impl LatencyStats {
    /// Summarises a latency sample set.
    pub fn of(mut samples: Vec<u64>) -> Self {
        samples.sort_unstable();
        LatencyStats {
            n: samples.len(),
            p50_us: percentile_us(&samples, 0.50),
            p95_us: percentile_us(&samples, 0.95),
            p99_us: percentile_us(&samples, 0.99),
            max_us: samples.last().copied().unwrap_or(0),
        }
    }
}

/// Sessions declared latency-critical in a batch stream.
pub fn critical_sessions(batches: &[LoggedBatch]) -> BTreeSet<u64> {
    let mut crit = BTreeSet::new();
    for b in batches {
        for e in &b.events {
            if let Event::SloArrival { session, class } = e {
                if *class == SloClass::LatencyCritical {
                    crit.insert(*session);
                }
            }
        }
    }
    crit
}

/// Per-launch decode latencies (ready → drained, logical µs) of the
/// latency-critical sessions. Event-derived: identical for every
/// configuration replayed over the same events, so use it to describe a
/// *recording*, never to compare variants.
pub fn decode_latencies(batches: &[LoggedBatch]) -> Vec<u64> {
    let crit = critical_sessions(batches);
    let mut pending: BTreeMap<u64, Tick> = BTreeMap::new();
    let mut lat = Vec::new();
    for b in batches {
        for e in &b.events {
            match e {
                Event::KernelReady { session, lease, .. } if crit.contains(session) => {
                    pending.insert(*lease, b.at);
                }
                Event::KernelFinished { lease, ok: true } => {
                    if let Some(ready) = pending.remove(lease) {
                        lat.push(b.at - ready);
                    }
                }
                _ => {}
            }
        }
    }
    lat
}

/// Preemption latencies (logical µs from the preemptor's `KernelReady` to
/// the batch that emitted its displacing `Preempt`+`Dispatch`). The core
/// processes a batch's events before deciding, so a same-batch preemption
/// observes latency zero.
pub fn preempt_latencies(batches: &[LoggedBatch]) -> Vec<u64> {
    let mut ready_at: BTreeMap<u64, Tick> = BTreeMap::new();
    let mut lat = Vec::new();
    for b in batches {
        for e in &b.events {
            if let Event::KernelReady { lease, .. } = e {
                ready_at.insert(*lease, b.at);
            }
        }
        let mut preempting = false;
        for c in &b.commands {
            match c {
                Command::Preempt { .. } => preempting = true,
                Command::Dispatch { lease, .. } if preempting => {
                    preempting = false;
                    if let Some(ready) = ready_at.get(lease) {
                        lat.push(b.at - ready);
                    }
                }
                _ => {}
            }
        }
    }
    lat
}

/// Command-derived metrics of one replayed batch stream — the quantities
/// that *differ* between configurations replayed over the same events,
/// which is what makes them valid tuner scores.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplayMetrics {
    /// Leases that both dispatched and finished inside the log.
    pub episodes: usize,
    /// Leases whose `KernelFinished` arrived without any dispatch under
    /// this configuration (the recorded run dispatched them; the variant
    /// chose not to). Each contributes a large slowdown penalty.
    pub undispatched: usize,
    /// Ready → dispatch wait, all finished leases.
    pub wait: LatencyStats,
    /// Ready → dispatch wait, latency-critical sessions only.
    pub lc_wait: LatencyStats,
    /// Average normalized turnaround proxy: mean over finished leases of
    /// `(finish − ready) / (finish − dispatch)` — queueing-inflated time
    /// over service time. 1.0 = every lease dispatched the instant it was
    /// ready; undispatched leases count as `(finish − ready) + 1`.
    pub antt_proxy: f64,
    /// Preemption latency (arrival → displacing command).
    pub preempt: LatencyStats,
    /// `Preempt` commands emitted.
    pub preemptions: usize,
    /// `RejectOverloaded` commands emitted.
    pub sheds: usize,
    /// `Evict` commands emitted.
    pub evictions: usize,
    /// `Resize` commands emitted.
    pub resizes: usize,
    /// `PromoteStarved` commands emitted.
    pub promotions: usize,
}

/// Extracts [`ReplayMetrics`] from a (replayed or recorded) batch stream.
pub fn replay_metrics(batches: &[LoggedBatch]) -> ReplayMetrics {
    let crit = critical_sessions(batches);
    let mut session_of: BTreeMap<u64, u64> = BTreeMap::new();
    let mut ready_at: BTreeMap<u64, Tick> = BTreeMap::new();
    let mut dispatch_at: BTreeMap<u64, Tick> = BTreeMap::new();
    let mut waits = Vec::new();
    let mut lc_waits = Vec::new();
    let mut slowdowns = Vec::new();
    let mut m = ReplayMetrics::default();
    for b in batches {
        for e in &b.events {
            match e {
                Event::KernelReady { session, lease, .. } => {
                    session_of.insert(*lease, *session);
                    ready_at.insert(*lease, b.at);
                }
                Event::KernelFinished { lease, .. } => {
                    let Some(ready) = ready_at.remove(lease) else {
                        continue;
                    };
                    let lc = session_of.remove(lease).is_some_and(|s| crit.contains(&s));
                    match dispatch_at.remove(lease) {
                        Some(start) => {
                            m.episodes += 1;
                            let wait = start.saturating_sub(ready);
                            waits.push(wait);
                            if lc {
                                lc_waits.push(wait);
                            }
                            let total = b.at.saturating_sub(ready);
                            let service = b.at.saturating_sub(start);
                            slowdowns.push(if service > 0 {
                                total as f64 / service as f64
                            } else {
                                1.0
                            });
                        }
                        None => {
                            // This configuration never granted the lease
                            // SMs before the recorded finish: the whole
                            // recorded turnaround was queueing.
                            m.undispatched += 1;
                            let total = b.at.saturating_sub(ready);
                            waits.push(total);
                            if lc {
                                lc_waits.push(total);
                            }
                            slowdowns.push(total as f64 + 1.0);
                        }
                    }
                }
                _ => {}
            }
        }
        for c in &b.commands {
            match c {
                Command::Dispatch { lease, .. } => {
                    dispatch_at.entry(*lease).or_insert(b.at);
                }
                Command::Resize { .. } => m.resizes += 1,
                Command::Preempt { .. } => m.preemptions += 1,
                Command::Evict { .. } => m.evictions += 1,
                Command::PromoteStarved { .. } => m.promotions += 1,
                Command::RejectOverloaded { .. } => m.sheds += 1,
                Command::Reap { .. } => {}
            }
        }
    }
    m.antt_proxy = if slowdowns.is_empty() {
        1.0
    } else {
        slowdowns.iter().sum::<f64>() / slowdowns.len() as f64
    };
    m.preempt = LatencyStats::of(preempt_latencies(batches));
    m.wait = LatencyStats::of(waits);
    m.lc_wait = LatencyStats::of(lc_waits);
    m
}

/// Extracts [`ReplayMetrics`] from a placement batch stream by flattening
/// the routed commands (device indices dropped: waits and preemptions are
/// fleet-wide quantities).
pub fn routed_metrics(batches: &[PlacementBatch]) -> ReplayMetrics {
    let flat: Vec<LoggedBatch> = batches
        .iter()
        .map(|b| LoggedBatch {
            at: b.at,
            events: b.events.clone(),
            commands: b.routed.iter().map(|r| r.command.clone()).collect(),
        })
        .collect();
    replay_metrics(&flat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::replay::EventLog;
    use crate::arbiter::{ArbiterConfig, ArbiterCore};
    use slate_gpu_sim::device::DeviceConfig;

    fn tiny_log() -> EventLog {
        let mut core = ArbiterCore::new(DeviceConfig::titan_xp(), ArbiterConfig::default());
        core.start_recording();
        let s = |session| Event::SessionOpened { session };
        let r = |session, lease, demand| Event::KernelReady {
            session,
            lease,
            class: crate::classify::WorkloadClass::LC,
            sm_demand: demand,
            pinned_solo: false,
            deadline_ms: None,
        };
        core.feed(0, &[s(1), s(2)]);
        core.feed(10, &[r(1, 1, 10)]);
        core.feed(20, &[r(2, 2, 10)]);
        core.feed(500, &[Event::KernelFinished { lease: 1, ok: true }]);
        core.feed(900, &[Event::KernelFinished { lease: 2, ok: true }]);
        core.take_log().expect("recording")
    }

    #[test]
    fn replay_metrics_counts_episodes() {
        let log = tiny_log();
        let m = replay_metrics(&log.batches);
        assert_eq!(m.episodes, 2);
        assert_eq!(m.undispatched, 0);
        assert_eq!(m.wait.n, 2);
        assert!(m.antt_proxy >= 1.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile_us(&v, 0.50), 5);
        assert_eq!(percentile_us(&v, 0.99), 10);
        assert_eq!(percentile_us(&[], 0.99), 0);
    }
}
