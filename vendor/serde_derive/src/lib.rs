//! Offline stand-in for `serde_derive`.
//!
//! The build environment for this repository has no access to crates.io, so
//! the real serde stack is replaced by a reduced, API-compatible subset (see
//! `vendor/serde`). This proc macro derives that subset's `Serialize` /
//! `Deserialize` traits for the shapes the workspace actually uses:
//!
//! * structs with named fields,
//! * enums with unit variants and struct variants.
//!
//! Anything else (tuple structs, tuple variants, generics) is rejected with
//! a compile error naming the limitation, so a future use of an unsupported
//! shape fails loudly instead of silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    /// `#[serde(default)]`: on deserialization a missing field falls
    /// back to `Default::default()` instead of erroring. This is the
    /// one serde field attribute the workspace uses — it is what keeps
    /// old recorded logs deserializable when a config grows a field.
    default: bool,
}

enum Shape {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    fields: Option<Vec<Field>>,
}

/// Skips attributes (`#[...]`, including doc comments) at the cursor.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < toks.len() {
        let is_pound = matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == '#');
        let is_bracket =
            matches!(&toks[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket);
        if is_pound && is_bracket {
            i += 2;
        } else {
            break;
        }
    }
    i
}

/// Like [`skip_attrs`], but also reports whether one of the skipped
/// attributes was `#[serde(default)]` (in any position within a
/// `#[serde(...)]` list).
fn scan_field_attrs(toks: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut default = false;
    while i + 1 < toks.len() {
        let is_pound = matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == '#');
        let bracket = match &toks[i + 1] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => Some(g),
            _ => None,
        };
        let Some(g) = bracket.filter(|_| is_pound) else {
            break;
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if inner.len() == 2
            && matches!(&inner[0], TokenTree::Ident(id) if id.to_string() == "serde")
        {
            if let TokenTree::Group(args) = &inner[1] {
                let has_default = args.delimiter() == Delimiter::Parenthesis
                    && args
                        .stream()
                        .into_iter()
                        .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default"));
                if has_default {
                    default = true;
                }
            }
        }
        i += 2;
    }
    (i, default)
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) at the cursor.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if matches!(&toks[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if i < toks.len() {
            if let TokenTree::Group(g) = &toks[i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parses the named fields of a brace-delimited body: `a: T, b: U, ...`.
fn parse_named_fields(body: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (after_attrs, default) = scan_field_attrs(&toks, i);
        i = after_attrs;
        if i >= toks.len() {
            break;
        }
        i = skip_vis(&toks, i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub derive: expected field name, found {other}"),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde stub derive: expected ':' after field {name}, found {other}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle: i32 = 0;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

fn parse_shape(input: TokenStream) -> Shape {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&toks, 0);
    i = skip_vis(&toks, i);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == '<') {
        panic!("serde stub derive: generic type {name} is not supported");
    }
    let body = match &toks[i] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g,
        _ => panic!("serde stub derive: {name}: only brace-bodied types are supported"),
    };
    if kind == "struct" {
        Shape::Struct {
            name,
            fields: parse_named_fields(body),
        }
    } else {
        let toks: Vec<TokenTree> = body.stream().into_iter().collect();
        let mut variants = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            i = skip_attrs(&toks, i);
            if i >= toks.len() {
                break;
            }
            let vname = match &toks[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde stub derive: expected variant name, found {other}"),
            };
            i += 1;
            let mut fields = None;
            if i < toks.len() {
                match &toks[i] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        fields = Some(parse_named_fields(g));
                        i += 1;
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                        panic!("serde stub derive: tuple variant {name}::{vname} is not supported");
                    }
                    _ => {}
                }
            }
            // Skip a discriminant (`= expr`) and the trailing comma.
            while i < toks.len() {
                if matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
                    i += 1;
                    break;
                }
                i += 1;
            }
            variants.push(Variant {
                name: vname,
                fields,
            });
        }
        Shape::Enum { name, variants }
    }
}

fn emit_struct_body(out: &mut String, path: &str, fields: &[Field]) {
    out.push_str("out.push('{');\n");
    for (idx, f) in fields.iter().enumerate() {
        if idx > 0 {
            out.push_str("out.push(',');\n");
        }
        out.push_str(&format!(
            "serde::ser_key(out, \"{0}\"); serde::Serialize::serialize_json({path}{0}, out);\n",
            f.name
        ));
    }
    out.push_str("out.push('}');\n");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let mut body = String::new();
    let name = match &shape {
        Shape::Struct { name, fields } => {
            emit_struct_body(&mut body, "&self.", fields);
            name.clone()
        }
        Shape::Enum { name, variants } => {
            body.push_str("match self {\n");
            for v in variants {
                match &v.fields {
                    None => body.push_str(&format!(
                        "{name}::{vn} => serde::ser_str(out, \"{vn}\"),\n",
                        vn = v.name
                    )),
                    Some(fields) => {
                        let pat: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        body.push_str(&format!(
                            "{name}::{vn} {{ {pat} }} => {{\nout.push('{{');\nserde::ser_key(out, \"{vn}\");\n",
                            vn = v.name,
                            pat = pat.join(", ")
                        ));
                        emit_struct_body(&mut body, "", fields);
                        body.push_str("out.push('}');\n}\n");
                    }
                }
            }
            body.push_str("}\n");
            name.clone()
        }
    };
    let imp = format!(
        "impl serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut String) {{\n{body}\n}}\n}}\n"
    );
    imp.parse()
        .expect("serde stub derive: generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let (name, body) = match &shape {
        Shape::Struct { name, fields } => {
            let mut b = String::from("Ok(Self {\n");
            for f in fields {
                let getter = if f.default {
                    "field_or_default"
                } else {
                    "field"
                };
                b.push_str(&format!("{0}: serde::{getter}(v, \"{0}\")?,\n", f.name));
            }
            b.push_str("})\n");
            (name.clone(), b)
        }
        Shape::Enum { name, variants } => {
            let mut b = String::new();
            b.push_str("if let serde::JsonValue::Str(s) = v {\nreturn match s.as_str() {\n");
            for v in variants.iter().filter(|v| v.fields.is_none()) {
                b.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n", vn = v.name));
            }
            b.push_str(&format!(
                "other => Err(serde::JsonError(format!(\"unknown {name} variant {{other}}\"))),\n}};\n}}\n"
            ));
            b.push_str("let (tag, _inner) = serde::variant(v)?;\nmatch tag {\n");
            for vr in variants.iter().filter(|v| v.fields.is_some()) {
                let fields = vr.fields.as_ref().unwrap();
                b.push_str(&format!("\"{vn}\" => Ok({name}::{vn} {{\n", vn = vr.name));
                for f in fields {
                    let getter = if f.default {
                        "field_or_default"
                    } else {
                        "field"
                    };
                    b.push_str(&format!(
                        "{0}: serde::{getter}(_inner, \"{0}\")?,\n",
                        f.name
                    ));
                }
                b.push_str("}),\n");
            }
            b.push_str(&format!(
                "other => Err(serde::JsonError(format!(\"unknown {name} variant {{other}}\"))),\n}}\n"
            ));
            (name.clone(), b)
        }
    };
    let imp = format!(
        "impl serde::Deserialize for {name} {{\n\
         fn deserialize_json(v: &serde::JsonValue) -> Result<Self, serde::JsonError> {{\n{body}\n}}\n}}\n"
    );
    imp.parse()
        .expect("serde stub derive: generated impl parses")
}
