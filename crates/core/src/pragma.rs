//! Pragma-directed static injection (paper §IV-B).
//!
//! "Alternatively, *Slate* can perform code injection statically using an
//! OMP-like pragma method, which is less transparent." This module parses
//! that pragma dialect from kernel sources:
//!
//! ```c
//! #pragma slate transform task_size(4)
//! __global__ void my_kernel(...) { ... }
//!
//! #pragma slate solo            // heavily optimized library kernel:
//! __global__ void cublas_like(...) { ... }   // never co-run (§IV-A1)
//! ```
//!
//! * `transform [task_size(N)]` — transform this kernel, optionally with a
//!   per-kernel task size overriding the daemon default;
//! * `solo` — transform, but pin the kernel to solo execution: the paper
//!   expects Slate to "recognize the heavily optimized implementations and
//!   run them solo" instead of co-scheduling them;
//! * `skip` — leave the kernel untouched (launch it as plain CUDA).

use crate::injector::{inject_kernel, InjectedKernel};
use crate::scanner::scan_kernels;

/// Per-kernel directive parsed from a `#pragma slate` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// Transform with an optional task-size override.
    Transform {
        /// `task_size(N)` if present.
        task_size: Option<u32>,
    },
    /// Transform but never co-run with other kernels.
    Solo,
    /// Do not transform this kernel.
    Skip,
}

/// A kernel's pragma-resolved injection plan.
#[derive(Debug)]
pub struct PragmaKernel {
    /// Kernel name.
    pub name: String,
    /// The directive applied (explicit or the default `Transform`).
    pub directive: Directive,
    /// The injected source, unless the directive was `Skip`.
    pub injected: Option<InjectedKernel>,
}

/// Parses one pragma body (the text after `#pragma slate`).
fn parse_directive(body: &str) -> Result<Directive, String> {
    let body = body.trim();
    let (head, rest) = match body.find(|c: char| c.is_whitespace()) {
        Some(i) => (&body[..i], body[i..].trim()),
        None => (body, ""),
    };
    match head {
        "solo" => {
            if rest.is_empty() {
                Ok(Directive::Solo)
            } else {
                Err(format!("unexpected arguments after `solo`: {rest}"))
            }
        }
        "skip" => {
            if rest.is_empty() {
                Ok(Directive::Skip)
            } else {
                Err(format!("unexpected arguments after `skip`: {rest}"))
            }
        }
        "transform" => {
            if rest.is_empty() {
                return Ok(Directive::Transform { task_size: None });
            }
            let inner = rest
                .strip_prefix("task_size(")
                .and_then(|r| r.strip_suffix(')'))
                .ok_or_else(|| format!("expected task_size(N), got: {rest}"))?;
            let n: u32 = inner
                .trim()
                .parse()
                .map_err(|_| format!("task_size must be an integer, got: {inner}"))?;
            if n == 0 {
                return Err("task_size must be at least 1".into());
            }
            Ok(Directive::Transform { task_size: Some(n) })
        }
        other => Err(format!("unknown slate pragma `{other}`")),
    }
}

/// Finds `#pragma slate ...` lines and the byte offset of the line end, so
/// each can be associated with the next kernel definition after it.
fn find_pragmas(src: &str) -> Result<Vec<(usize, Directive)>, String> {
    let mut out = Vec::new();
    let mut offset = 0;
    for line in src.lines() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("#pragma") {
            let rest = rest.trim_start();
            if let Some(body) = rest.strip_prefix("slate") {
                let d =
                    parse_directive(body).map_err(|e| format!("line `{}`: {e}", line.trim()))?;
                out.push((offset + line.len(), d));
            }
        }
        offset += line.len() + 1;
    }
    Ok(out)
}

/// Statically injects a source according to its pragmas. Kernels without a
/// preceding pragma get the default transform with `default_task_size`.
pub fn inject_with_pragmas(src: &str, default_task_size: u32) -> Result<Vec<PragmaKernel>, String> {
    let pragmas = find_pragmas(src)?;
    let kernels = scan_kernels(src);
    let mut out = Vec::with_capacity(kernels.len());
    for k in &kernels {
        // The governing pragma is the closest one above the kernel name
        // that is not already past another kernel.
        let prev_kernel_end = kernels
            .iter()
            .filter(|other| other.name_span.start < k.name_span.start)
            .map(|other| other.body_span.end)
            .max()
            .unwrap_or(0);
        let directive = pragmas
            .iter()
            .rfind(|(pos, _)| *pos < k.name_span.start && *pos >= prev_kernel_end)
            .map(|(_, d)| d.clone())
            .unwrap_or(Directive::Transform { task_size: None });
        let injected = match &directive {
            Directive::Skip => None,
            Directive::Solo => Some(inject_kernel(src, k, default_task_size)),
            Directive::Transform { task_size } => Some(inject_kernel(
                src,
                k,
                task_size.unwrap_or(default_task_size),
            )),
        };
        out.push(PragmaKernel {
            name: k.name.clone(),
            directive,
            injected,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
#pragma slate transform task_size(4)
__global__ void tuned(float* a) { a[blockIdx.x] = 1.f; }

#pragma slate solo
__global__ void library_gemm(float* c) { c[blockIdx.x] = 2.f; }

#pragma slate skip
__global__ void untouched(float* d) { d[blockIdx.x] = 3.f; }

__global__ void defaulted(float* e) { e[blockIdx.x] = 4.f; }
"#;

    #[test]
    fn pragmas_bind_to_the_following_kernel() {
        let ks = inject_with_pragmas(SRC, 10).unwrap();
        assert_eq!(ks.len(), 4);
        assert_eq!(ks[0].directive, Directive::Transform { task_size: Some(4) });
        assert_eq!(ks[1].directive, Directive::Solo);
        assert_eq!(ks[2].directive, Directive::Skip);
        assert_eq!(
            ks[3].directive,
            Directive::Transform { task_size: None },
            "no pragma -> default transform"
        );
    }

    #[test]
    fn task_size_override_lands_in_the_source() {
        let ks = inject_with_pragmas(SRC, 10).unwrap();
        let tuned = ks[0].injected.as_ref().unwrap();
        assert!(tuned.source.contains("#define SLATE_ITERS 4"));
        let defaulted = ks[3].injected.as_ref().unwrap();
        assert!(defaulted.source.contains("#define SLATE_ITERS 10"));
    }

    #[test]
    fn skip_leaves_kernel_untouched() {
        let ks = inject_with_pragmas(SRC, 10).unwrap();
        assert!(ks[2].injected.is_none());
        // Solo kernels are still transformed (they run through Slate, just
        // never co-scheduled).
        assert!(ks[1].injected.is_some());
    }

    #[test]
    fn a_pragma_does_not_leak_past_a_kernel() {
        let src = r#"
#pragma slate solo
__global__ void first(float* a) { a[0] = 1.f; }
__global__ void second(float* b) { b[0] = 2.f; }
"#;
        let ks = inject_with_pragmas(src, 10).unwrap();
        assert_eq!(ks[0].directive, Directive::Solo);
        assert_eq!(ks[1].directive, Directive::Transform { task_size: None });
    }

    #[test]
    fn malformed_pragmas_are_rejected() {
        for bad in [
            "#pragma slate frobnicate\n__global__ void k(int a) { }",
            "#pragma slate transform task_size(zero)\n__global__ void k(int a) { }",
            "#pragma slate transform task_size(0)\n__global__ void k(int a) { }",
            "#pragma slate solo extra\n__global__ void k(int a) { }",
        ] {
            assert!(inject_with_pragmas(bad, 10).is_err(), "{bad}");
        }
    }

    #[test]
    fn non_slate_pragmas_are_ignored() {
        let src = "#pragma once\n#pragma unroll 4\n__global__ void k(float* a) { a[0] = 1.f; }";
        let ks = inject_with_pragmas(src, 10).unwrap();
        assert_eq!(ks[0].directive, Directive::Transform { task_size: None });
    }
}
