//! Experiment report structures and rendering.
//!
//! Every experiment driver returns a [`Report`]: tables of
//! paper-vs-measured figures, free-form notes, and *shape checks* — the
//! qualitative assertions that make the reproduction falsifiable (who wins,
//! by roughly what factor, where the crossovers fall). Reports render to
//! terminal text and to the markdown used to build `EXPERIMENTS.md`.

use serde::{Deserialize, Serialize};

/// A rendered table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (same arity as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics if the arity mismatches the headers.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells.to_vec());
    }

    /// Renders as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut s = format!("**{}**\n\n", self.title);
        s.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        s.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for r in &self.rows {
            s.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        s
    }

    /// Renders as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut s = format!("{}\n", self.title);
        s.push_str(&fmt_row(&self.headers));
        s.push('\n');
        s.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        s.push('\n');
        for r in &self.rows {
            s.push_str(&fmt_row(r));
            s.push('\n');
        }
        s
    }
}

/// A horizontal text bar chart (for figure-style data in terminal and
/// markdown reports).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BarChart {
    /// Chart caption.
    pub title: String,
    /// `(label, value)` rows.
    pub rows: Vec<(String, f64)>,
    /// Unit suffix printed after each value (e.g. `"%"`).
    pub unit: String,
}

impl BarChart {
    /// Creates an empty chart.
    pub fn new(title: &str, unit: &str) -> Self {
        Self {
            title: title.to_string(),
            rows: Vec::new(),
            unit: unit.to_string(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, label: &str, value: f64) {
        self.rows.push((label.to_string(), value));
    }

    /// Renders with `width` characters for the largest magnitude. Negative
    /// values draw to the left of the axis.
    pub fn to_text(&self, width: usize) -> String {
        let max_mag = self
            .rows
            .iter()
            .map(|(_, v)| v.abs())
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let label_w = self.rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let mut s = format!(
            "{}
",
            self.title
        );
        for (label, v) in &self.rows {
            let n = ((v.abs() / max_mag) * width as f64).round() as usize;
            let bar: String = std::iter::repeat_n(
                if *v >= 0.0 { '#' } else { '-' },
                n.max(usize::from(v.abs() > 0.0)),
            )
            .collect();
            s.push_str(&format!(
                "{label:label_w$} |{bar:<width$} {v:+.1}{}
",
                self.unit
            ));
        }
        s
    }

    /// Renders as a fenced code block for markdown.
    pub fn to_markdown(&self, width: usize) -> String {
        format!(
            "```text
{}```
",
            self.to_text(width)
        )
    }
}

/// A qualitative shape check.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Check {
    /// What is being checked (phrased as the expected property).
    pub desc: String,
    /// Whether the measured data satisfies it.
    pub pass: bool,
}

/// One experiment's full report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// Experiment id (e.g. "fig7").
    pub id: String,
    /// Human title.
    pub title: String,
    /// What the paper reports (one paragraph).
    pub paper_claim: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Figure-style bar charts.
    pub charts: Vec<BarChart>,
    /// Free-form observations.
    pub notes: Vec<String>,
    /// Shape checks.
    pub checks: Vec<Check>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, paper_claim: &str) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            paper_claim: paper_claim.to_string(),
            tables: Vec::new(),
            charts: Vec::new(),
            notes: Vec::new(),
            checks: Vec::new(),
        }
    }

    /// Adds a shape check.
    pub fn check(&mut self, desc: &str, pass: bool) {
        self.checks.push(Check {
            desc: desc.to_string(),
            pass,
        });
    }

    /// Adds a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// True when every shape check passed.
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Renders for the terminal.
    pub fn to_text(&self) -> String {
        let mut s = format!("=== {} — {} ===\n", self.id, self.title);
        s.push_str(&format!("Paper: {}\n\n", self.paper_claim));
        for t in &self.tables {
            s.push_str(&t.to_text());
            s.push('\n');
        }
        for c in &self.charts {
            s.push_str(&c.to_text(50));
            s.push('\n');
        }
        for n in &self.notes {
            s.push_str(&format!("note: {n}\n"));
        }
        for c in &self.checks {
            s.push_str(&format!(
                "[{}] {}\n",
                if c.pass { "PASS" } else { "FAIL" },
                c.desc
            ));
        }
        s
    }

    /// Renders as a markdown section for `EXPERIMENTS.md`.
    pub fn to_markdown(&self) -> String {
        let mut s = format!("## {} — {}\n\n", self.id, self.title);
        s.push_str(&format!("*Paper:* {}\n\n", self.paper_claim));
        for t in &self.tables {
            s.push_str(&t.to_markdown());
            s.push('\n');
        }
        for c in &self.charts {
            s.push_str(&c.to_markdown(50));
            s.push('\n');
        }
        for n in &self.notes {
            s.push_str(&format!("> {n}\n\n"));
        }
        if !self.checks.is_empty() {
            s.push_str("Shape checks:\n\n");
            for c in &self.checks {
                s.push_str(&format!(
                    "- {} **{}**\n",
                    c.desc,
                    if c.pass { "PASS" } else { "FAIL" }
                ));
            }
            s.push('\n');
        }
        s
    }
}

/// Formats a ratio as a signed percentage.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Formats a float with `d` decimals.
pub fn f(x: f64, d: usize) -> String {
    format!("{x:.d$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_both_formats() {
        let mut t = Table::new("T", &["a", "bb"]);
        t.row(&["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| a | bb |"));
        assert!(md.contains("| 1 | 2 |"));
        let txt = t.to_text();
        assert!(txt.contains("a  bb"), "{txt}");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_bad_arity() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn report_tracks_checks() {
        let mut r = Report::new("figX", "Title", "claim");
        r.check("holds", true);
        assert!(r.all_pass());
        r.check("fails", false);
        assert!(!r.all_pass());
        let md = r.to_markdown();
        assert!(md.contains("**PASS**") && md.contains("**FAIL**"));
        assert!(r.to_text().contains("[FAIL] fails"));
    }

    #[test]
    fn bar_chart_renders_scaled_bars() {
        let mut b = BarChart::new("gains", "%");
        b.row("big", 50.0);
        b.row("half", 25.0);
        b.row("loss", -5.0);
        let txt = b.to_text(40);
        let lines: Vec<&str> = txt.lines().collect();
        assert!(lines[1].matches('#').count() == 40, "{txt}");
        assert!(lines[2].matches('#').count() == 20, "{txt}");
        assert!(
            lines[3].contains('-') && lines[3].contains("-5.0%"),
            "{txt}"
        );
        let md = b.to_markdown(40);
        assert!(md.starts_with("```text") && md.ends_with("```\n"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.305), "+30.5%");
        assert_eq!(pct(-0.02), "-2.0%");
        assert_eq!(f(1.23456, 2), "1.23");
    }
}
