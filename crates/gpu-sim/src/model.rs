//! Closed-form steady-state rate model.
//!
//! The same arithmetic the engine uses for a *solo, uncontended* slice,
//! exposed as pure functions. Consumers:
//!
//! * Slate's SM partitioner needs each kernel's rate-vs-SMs curve to decide
//!   how many SMs a kernel actually profits from (its *SM demand*);
//! * the baseline runtimes need a launch-duration estimate to model vanilla
//!   CUDA's time-slicing overhead;
//! * tests validate engine behaviour against these closed forms.

use crate::device::DeviceConfig;
use crate::occupancy;
use crate::perf::{ExecMode, KernelPerf};

/// Steady-state block completion rate (blocks/s) of a kernel running alone
/// on `sms` SMs under `mode`, ignoring launch lead-in and tail imbalance.
pub fn steady_rate(cfg: &DeviceConfig, perf: &KernelPerf, sms: u32, mode: ExecMode) -> f64 {
    let per_sm = occupancy::blocks_per_sm(cfg, perf) as f64;
    if per_sm == 0.0 || sms == 0 {
        return 0.0;
    }
    let useful_sms = match perf.max_concurrent_blocks {
        Some(cap) => (cap as f64 / per_sm).min(sms as f64),
        None => sms as f64,
    };
    let resident_threads = per_sm * perf.threads_per_block as f64;
    let util = (resident_threads / cfg.threads_for_peak_per_sm as f64).min(1.0);
    let (cycles, atomic_cap) = match mode {
        ExecMode::Hardware => (
            perf.compute_cycles_per_block + cfg.block_setup_cycles,
            f64::INFINITY,
        ),
        ExecMode::SlateWorkers { task_size } => (
            perf.compute_cycles_per_block + perf.inject_cycles_per_block,
            task_size as f64 / cfg.atomic_serial_s,
        ),
    };
    let r_comp = (useful_sms * cfg.clock_hz * util / cycles).min(atomic_cap);
    let dram = perf.dram_bytes(mode.order());
    if dram <= 0.0 {
        return r_comp;
    }
    let bw = (useful_sms * cfg.per_sm_mem_bw).min(cfg.dram_bw);
    r_comp.min(bw / dram)
}

/// Estimated solo execution time of `blocks` blocks on `sms` SMs.
pub fn estimate_duration(
    cfg: &DeviceConfig,
    perf: &KernelPerf,
    blocks: u64,
    sms: u32,
    mode: ExecMode,
) -> f64 {
    let r = steady_rate(cfg, perf, sms, mode);
    if r <= 0.0 {
        f64::INFINITY
    } else {
        blocks as f64 / r + cfg.launch_latency_s
    }
}

/// The kernel's *SM demand*: the smallest SM count achieving at least
/// `frac` (e.g. 0.95) of its full-device solo rate. This is what Slate's
/// partitioner uses to size spatial shares — a kernel past its saturation
/// knee (memory-bound, or parallelism-capped like RG) cedes the surplus SMs
/// to its co-runner for free.
pub fn sm_demand(cfg: &DeviceConfig, perf: &KernelPerf, mode: ExecMode, frac: f64) -> u32 {
    assert!((0.0..=1.0).contains(&frac), "frac must be in [0,1]");
    let full = steady_rate(cfg, perf, cfg.num_sms, mode);
    if full <= 0.0 {
        return 1;
    }
    for sms in 1..=cfg.num_sms {
        if steady_rate(cfg, perf, sms, mode) >= frac * full {
            return sms;
        }
    }
    cfg.num_sms
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DeviceConfig {
        DeviceConfig::titan_xp()
    }

    #[test]
    fn compute_bound_rate_scales_linearly() {
        let mut p = KernelPerf::synthetic("c", 10_000.0, 0.0);
        p.dram_bytes_inorder = 0.0;
        p.dram_bytes_scattered = 0.0;
        let r10 = steady_rate(&cfg(), &p, 10, ExecMode::Hardware);
        let r30 = steady_rate(&cfg(), &p, 30, ExecMode::Hardware);
        assert!((r30 / r10 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_rate_saturates_at_fig1_knee() {
        let p = KernelPerf::synthetic("stream", 100.0, 100_000.0);
        let r9 = steady_rate(&cfg(), &p, 9, ExecMode::Hardware);
        let r30 = steady_rate(&cfg(), &p, 30, ExecMode::Hardware);
        assert!((r30 - r9).abs() / r9 < 1e-9, "flat past the knee");
        let d = sm_demand(&cfg(), &p, ExecMode::Hardware, 0.95);
        assert!((8..=9).contains(&d), "demand {d}");
    }

    #[test]
    fn parallelism_capped_kernel_has_small_demand() {
        let mut p = KernelPerf::synthetic("rg", 10_000.0, 0.0);
        p.dram_bytes_inorder = 0.0;
        p.dram_bytes_scattered = 0.0;
        p.max_concurrent_blocks = Some(32); // 8/SM -> 4 SMs
        assert_eq!(sm_demand(&cfg(), &p, ExecMode::Hardware, 0.99), 4);
    }

    #[test]
    fn unbounded_kernel_demands_whole_device() {
        let mut p = KernelPerf::synthetic("c", 10_000.0, 0.0);
        p.dram_bytes_inorder = 0.0;
        p.dram_bytes_scattered = 0.0;
        assert_eq!(sm_demand(&cfg(), &p, ExecMode::Hardware, 0.95), 29);
        assert_eq!(sm_demand(&cfg(), &p, ExecMode::Hardware, 1.0), 30);
    }

    #[test]
    fn duration_inverse_to_rate() {
        let p = KernelPerf::synthetic("k", 5_000.0, 1_000.0);
        let d = estimate_duration(&cfg(), &p, 1_000_000, 30, ExecMode::Hardware);
        let r = steady_rate(&cfg(), &p, 30, ExecMode::Hardware);
        assert!((d - (1e6 / r + cfg().launch_latency_s)).abs() < 1e-12);
    }

    #[test]
    fn zero_occupancy_yields_zero_rate() {
        let mut p = KernelPerf::synthetic("fat", 1_000.0, 0.0);
        p.smem_per_block = 10 * 1024 * 1024;
        assert_eq!(steady_rate(&cfg(), &p, 30, ExecMode::Hardware), 0.0);
        assert!(estimate_duration(&cfg(), &p, 100, 30, ExecMode::Hardware).is_infinite());
    }

    #[test]
    fn engine_matches_closed_form_for_solo_run() {
        use crate::device::SmRange;
        use crate::engine::{Engine, Event, SliceSpec};
        let p = KernelPerf::synthetic("k", 8_000.0, 2_000.0);
        let blocks = 2_000_000u64;
        let mut e = Engine::new(cfg());
        let id = e
            .add_slice(SliceSpec {
                perf: p.clone(),
                sm_range: SmRange::all(30),
                blocks,
                mode: ExecMode::Hardware,
                extra_lead_s: 0.0,
                batch: 1,
                tag: 0,
            })
            .unwrap();
        let (t, _) = e
            .run_until(|ev| matches!(ev, Event::SliceDrained(_)))
            .unwrap();
        let _ = e.remove_slice(id);
        let est = estimate_duration(&cfg(), &p, blocks, 30, ExecMode::Hardware);
        // Engine adds tail imbalance; for 2M blocks it is well under 1%.
        assert!((t - est).abs() / est < 0.01, "engine {t} vs model {est}");
    }
}
