//! The serializing device driver shared by the vanilla CUDA and MPS
//! baselines.
//!
//! Both baselines execute kernels *kernel-to-completion*, one launch on the
//! device at a time, under hardware block scheduling. What differs is the
//! overhead structure:
//!
//! * vanilla CUDA keeps one context per process; alternating between
//!   processes costs a context switch plus time-slice scheduling waste;
//! * MPS funnels all clients into one daemon context — no context switches,
//!   but a small per-launch proxy cost and a session setup at first API
//!   call. For the large kernels of the evaluation, MPS's *leftover* policy
//!   yields no meaningful spatial overlap (paper §V-C), so consecutive
//!   execution is the faithful model.
//!
//! Ready processes are served round-robin, which is how the driver's
//! time-slicing arbitrates between contexts submitting back-to-back work.

use crate::runtime::{AppResult, RunOutcome};
use slate_gpu_sim::device::{DeviceConfig, SmRange};
use slate_gpu_sim::engine::{Dir, Engine, Event, SliceId, SliceSpec, TimerId, TransferId};
use slate_gpu_sim::metrics::KernelMetrics;
use slate_gpu_sim::model;
use slate_gpu_sim::perf::ExecMode;
use slate_gpu_sim::trace::{Trace, TraceKind};
use slate_kernels::workload::AppSpec;

/// Overhead knobs distinguishing CUDA from MPS.
#[derive(Debug, Clone)]
pub struct SerialOverheads {
    /// Runtime label.
    pub label: String,
    /// Cost of switching device contexts between processes (vanilla CUDA).
    /// Paid once per *real* launch while contended (contexts alternate at
    /// kernel-to-completion granularity).
    pub ctx_switch_s: f64,
    /// Fraction of kernel time wasted by time-slice arbitration while
    /// another context is contending (vanilla CUDA driver scheduling gaps).
    pub timeslice_waste: f64,
    /// Fixed per-*real*-launch proxy cost (MPS daemon relay).
    pub per_launch_s: f64,
    /// Fraction of kernel time lost to leftover-policy tail interference
    /// while another client is contending (MPS lets the next kernel's
    /// blocks bleed into the current kernel's drain, contending for cache
    /// and bandwidth — the interference the paper's §I/§V-C describes).
    pub contended_penalty: f64,
    /// One-time per-process session setup (MPS daemon connection).
    pub session_setup_s: f64,
    /// Model the hardware *leftover* policy: a waiting kernel may begin its
    /// launch lead-in during the running kernel's drain tail (the only
    /// overlap MPS achieves for the paper's large kernels, §V-C).
    pub leftover_overlap: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Setup,
    H2d,
    Ready,
    Running,
    D2h,
    Done,
}

struct Proc {
    app: AppSpec,
    phase: Phase,
    launches_done: u32,
    timer: Option<TimerId>,
    tail_timer: Option<TimerId>,
    tail_fired: bool,
    transfer: Option<TransferId>,
    slice: Option<SliceId>,
    end_s: f64,
    kernel_busy_s: f64,
    kernel_start_s: f64,
    kernel_end_s: f64,
    metrics: KernelMetrics,
}

/// Runs `apps` under the serializing policy described by `ov`.
pub fn run_serialized(cfg: &DeviceConfig, ov: &SerialOverheads, apps: &[AppSpec]) -> RunOutcome {
    assert!(!apps.is_empty(), "need at least one app");
    let mut engine = Engine::new(cfg.clone());
    let mut procs: Vec<Proc> = apps
        .iter()
        .map(|app| Proc {
            app: app.clone(),
            phase: Phase::Setup,
            launches_done: 0,
            timer: None,
            tail_timer: None,
            tail_fired: false,
            transfer: None,
            slice: None,
            end_s: 0.0,
            kernel_busy_s: 0.0,
            kernel_start_s: f64::INFINITY,
            kernel_end_s: 0.0,
            metrics: KernelMetrics::new(&app.perf.name),
        })
        .collect();
    for p in &mut procs {
        let session = ov.session_setup_s * p.app.fixed_cost_scale;
        p.timer = Some(engine.set_timer(p.app.host_setup_s + session));
    }

    let mut last_launched: Option<usize> = None;
    let mut rr = 0usize;
    let mut trace = Trace::new();

    // Dispatch the next ready process's launch if the device is free — or,
    // under the leftover policy, if the single running launch has entered
    // its drain tail.
    let dispatch = |engine: &mut Engine,
                    procs: &mut Vec<Proc>,
                    last: &mut Option<usize>,
                    rr: &mut usize,
                    trace: &mut Trace| {
        let active: Vec<usize> = (0..procs.len())
            .filter(|&j| procs[j].slice.is_some())
            .collect();
        match active.len() {
            0 => {}
            1 if ov.leftover_overlap && procs[active[0]].tail_fired => {}
            _ => return,
        }
        let n = procs.len();
        // Round-robin scan for a ready process, starting after the cursor.
        let pick = (0..n)
            .map(|k| (*rr + k) % n)
            .find(|&i| procs[i].phase == Phase::Ready);
        let Some(i) = pick else { return };
        let switching = last.is_some() && *last != Some(i);
        let contended = procs
            .iter()
            .enumerate()
            .any(|(j, q)| j != i && matches!(q.phase, Phase::Ready | Phase::Running));
        let p = &mut procs[i];
        // Per-launch costs scale with the number of real launches this
        // simulated (batched) launch stands for.
        let batch = p.app.batch as f64;
        let mut extra = ov.per_launch_s * batch;
        let est = model::estimate_duration(
            engine.device(),
            &p.app.perf,
            p.app.blocks_per_launch,
            engine.device().num_sms,
            ExecMode::Hardware,
        );
        if contended {
            // Contexts alternate at every real launch boundary.
            extra += ov.ctx_switch_s * batch;
            extra += (ov.timeslice_waste + ov.contended_penalty) * est;
        } else if switching {
            extra += ov.ctx_switch_s;
        }
        let id = engine
            .add_slice(SliceSpec {
                perf: p.app.perf.clone(),
                sm_range: SmRange::all(engine.device().num_sms),
                blocks: p.app.blocks_per_launch,
                mode: ExecMode::Hardware,
                extra_lead_s: extra,
                batch: p.app.batch,
                tag: i as u64,
            })
            .expect("baseline launch must be valid");
        p.slice = Some(id);
        p.phase = Phase::Running;
        p.kernel_start_s = p.kernel_start_s.min(engine.now());
        trace.record(
            engine.now(),
            TraceKind::Launch {
                tag: i as u64,
                range: SmRange::all(engine.device().num_sms),
                blocks: p.app.blocks_per_launch,
            },
        );
        if ov.leftover_overlap {
            // The drain tail of the final real launch in the batch: the
            // last wave of resident blocks. A waiting kernel's blocks may
            // start claiming slots from this point (leftover policy).
            let per_sm =
                slate_gpu_sim::occupancy::blocks_per_sm(engine.device(), &p.app.perf) as u64;
            let workers = per_sm * engine.device().num_sms as u64;
            let real_blocks = (p.app.blocks_per_launch / p.app.batch as u64).max(1);
            let tail_frac = (workers as f64 / real_blocks as f64).min(1.0) / p.app.batch as f64;
            let tail_at = engine.now() + extra + est * (1.0 - tail_frac);
            procs[i].tail_fired = false;
            procs[i].tail_timer = Some(engine.set_timer(tail_at));
        }
        *last = Some(i);
        *rr = (i + 1) % n;
    };

    while let Some((now, ev)) = engine.step() {
        match ev {
            Event::Timer(tid) => {
                if let Some(i) = procs.iter().position(|p| p.tail_timer == Some(tid)) {
                    // The running launch entered its drain tail: leftover
                    // slots may be claimed by a waiting kernel.
                    procs[i].tail_timer = None;
                    procs[i].tail_fired = true;
                    dispatch(
                        &mut engine,
                        &mut procs,
                        &mut last_launched,
                        &mut rr,
                        &mut trace,
                    );
                    continue;
                }
                let i = procs
                    .iter()
                    .position(|p| p.timer == Some(tid))
                    .expect("unknown timer");
                procs[i].timer = None;
                procs[i].phase = Phase::H2d;
                trace.record(
                    now,
                    TraceKind::TransferStart {
                        tag: i as u64,
                        h2d: true,
                        bytes: procs[i].app.h2d_bytes,
                    },
                );
                procs[i].transfer =
                    Some(engine.add_transfer(procs[i].app.h2d_bytes, Dir::H2D, i as u64));
            }
            Event::TransferDone(tid) => {
                let i = procs
                    .iter()
                    .position(|p| p.transfer == Some(tid))
                    .expect("unknown transfer");
                procs[i].transfer = None;
                trace.record(now, TraceKind::TransferEnd { tag: i as u64 });
                match procs[i].phase {
                    Phase::H2d => {
                        procs[i].phase = Phase::Ready;
                        dispatch(
                            &mut engine,
                            &mut procs,
                            &mut last_launched,
                            &mut rr,
                            &mut trace,
                        );
                    }
                    Phase::D2h => {
                        procs[i].phase = Phase::Done;
                        procs[i].end_s = now;
                    }
                    // (trace already recorded the TransferEnd above)
                    other => panic!("transfer completion in phase {other:?}"),
                }
            }
            Event::SliceDrained(sid) => {
                let i = procs
                    .iter()
                    .position(|p| p.slice == Some(sid))
                    .expect("unknown slice");
                let report = engine.remove_slice(sid);
                procs[i].slice = None;
                procs[i].kernel_busy_s += report.active_s;
                procs[i].kernel_end_s = now;
                trace.record(
                    now,
                    TraceKind::Stop {
                        tag: i as u64,
                        done: report.blocks_done,
                    },
                );
                procs[i].metrics.merge(&report);
                procs[i].launches_done += 1;
                procs[i].tail_fired = false;
                if let Some(t) = procs[i].tail_timer.take() {
                    engine.cancel_timer(t);
                }
                if procs[i].launches_done < procs[i].app.launches {
                    procs[i].phase = Phase::Ready;
                } else {
                    procs[i].phase = Phase::D2h;
                    trace.record(
                        now,
                        TraceKind::TransferStart {
                            tag: i as u64,
                            h2d: false,
                            bytes: procs[i].app.d2h_bytes,
                        },
                    );
                    procs[i].transfer =
                        Some(engine.add_transfer(procs[i].app.d2h_bytes, Dir::D2H, i as u64));
                }
                dispatch(
                    &mut engine,
                    &mut procs,
                    &mut last_launched,
                    &mut rr,
                    &mut trace,
                );
            }
            Event::SliceStarted(_) => {}
        }
    }

    let makespan = procs.iter().map(|p| p.end_s).fold(0.0, f64::max);
    debug_assert!(procs.iter().all(|p| p.phase == Phase::Done));
    RunOutcome {
        runtime: ov.label.clone(),
        trace,
        apps: procs
            .into_iter()
            .map(|p| AppResult {
                bench: p.app.bench,
                end_s: p.end_s,
                app_time_s: p.end_s,
                kernel_busy_s: p.kernel_busy_s,
                kernel_start_s: if p.kernel_start_s.is_finite() {
                    p.kernel_start_s
                } else {
                    0.0
                },
                kernel_end_s: p.kernel_end_s,
                comm_s: if ov.per_launch_s > 0.0 {
                    ov.per_launch_s * p.app.real_launches as f64 + ov.session_setup_s
                } else {
                    0.0
                },
                inject_s: 0.0,
                metrics: p.metrics,
            })
            .collect(),
        makespan_s: makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slate_kernels::workload::Benchmark;

    fn overheads_free() -> SerialOverheads {
        SerialOverheads {
            label: "free".into(),
            ctx_switch_s: 0.0,
            timeslice_waste: 0.0,
            per_launch_s: 0.0,
            contended_penalty: 0.0,
            session_setup_s: 0.0,
            leftover_overlap: false,
        }
    }

    #[test]
    fn solo_app_completes_with_all_launches() {
        let cfg = DeviceConfig::titan_xp();
        let app = Benchmark::BS.app().scaled_down(100);
        let out = run_serialized(&cfg, &overheads_free(), std::slice::from_ref(&app));
        assert_eq!(out.apps.len(), 1);
        let r = &out.apps[0];
        assert_eq!(r.metrics.slices, app.launches);
        assert!(r.kernel_busy_s > 0.0);
        assert!(r.app_time_s > r.kernel_busy_s, "host phases add time");
        assert!((out.makespan_s - r.end_s).abs() < 1e-12);
    }

    #[test]
    fn two_apps_serialize_on_the_device() {
        let cfg = DeviceConfig::titan_xp();
        let a = Benchmark::BS.app().scaled_down(200);
        let b = Benchmark::TR.app().scaled_down(200);
        let solo_a =
            run_serialized(&cfg, &overheads_free(), std::slice::from_ref(&a)).apps[0].kernel_busy_s;
        let solo_b =
            run_serialized(&cfg, &overheads_free(), std::slice::from_ref(&b)).apps[0].kernel_busy_s;
        let pair = run_serialized(&cfg, &overheads_free(), &[a, b]);
        // Device work strictly serializes: makespan >= sum of kernel times.
        assert!(
            pair.makespan_s >= solo_a + solo_b,
            "makespan {} vs {}",
            pair.makespan_s,
            solo_a + solo_b
        );
        // Each app's own kernel busy time is unchanged by the pairing.
        assert!((pair.apps[0].kernel_busy_s - solo_a).abs() / solo_a < 0.01);
        assert!((pair.apps[1].kernel_busy_s - solo_b).abs() / solo_b < 0.01);
    }

    #[test]
    fn timeslice_waste_slows_contended_runs() {
        // Two identical apps alternate on every launch, so every launch
        // pays the switch tax while contended.
        let cfg = DeviceConfig::titan_xp();
        let a = Benchmark::BS.app().scaled_down(50);
        let b = Benchmark::BS.app().scaled_down(50);
        let free = run_serialized(&cfg, &overheads_free(), &[a.clone(), b.clone()]);
        let mut taxed = overheads_free();
        taxed.timeslice_waste = 0.06;
        taxed.ctx_switch_s = 25e-6;
        let slow = run_serialized(&cfg, &taxed, &[a.clone(), b.clone()]);
        assert!(slow.makespan_s > free.makespan_s * 1.02);
        // Solo runs are unaffected by the contention tax.
        let solo_free = run_serialized(&cfg, &overheads_free(), std::slice::from_ref(&a));
        let solo_taxed = run_serialized(&cfg, &taxed, &[a]);
        assert!((solo_taxed.makespan_s - solo_free.makespan_s).abs() < 1e-9);
    }

    #[test]
    fn round_robin_interleaves_processes() {
        // With equal launch counts, neither process should finish all its
        // kernels dramatically before the other starts: both end within a
        // launch or two of the makespan.
        let cfg = DeviceConfig::titan_xp();
        let a = Benchmark::BS.app().scaled_down(300);
        let b = Benchmark::BS.app().scaled_down(300);
        let pair = run_serialized(&cfg, &overheads_free(), &[a, b]);
        let gap = (pair.apps[0].end_s - pair.apps[1].end_s).abs();
        assert!(
            gap < pair.makespan_s * 0.2,
            "ends {} and {} too far apart",
            pair.apps[0].end_s,
            pair.apps[1].end_s
        );
    }

    #[test]
    fn leftover_overlap_gives_a_small_gain() {
        // Two processes under the leftover policy: the waiting kernel's
        // lead-in overlaps the running kernel's drain tail, buying a small
        // but strictly positive improvement — and only a small one (the
        // paper: "the kernels run consecutively for most of the time").
        let cfg = DeviceConfig::titan_xp();
        let a = Benchmark::BS.app().scaled_down(50);
        let b = Benchmark::BS.app().scaled_down(50);
        let mut strict = overheads_free();
        strict.per_launch_s = 50e-6;
        let mut leftover = strict.clone();
        leftover.leftover_overlap = true;
        let t_strict = run_serialized(&cfg, &strict, &[a.clone(), b.clone()]);
        let t_left = run_serialized(&cfg, &leftover, &[a, b]);
        assert!(
            t_left.makespan_s < t_strict.makespan_s,
            "overlap must help: {} vs {}",
            t_left.makespan_s,
            t_strict.makespan_s
        );
        assert!(
            t_left.makespan_s > t_strict.makespan_s * 0.97,
            "but only slightly: {} vs {}",
            t_left.makespan_s,
            t_strict.makespan_s
        );
    }

    #[test]
    fn per_launch_overhead_accumulates() {
        let cfg = DeviceConfig::titan_xp();
        let a = Benchmark::BS.app().scaled_down(200);
        let mut ov = overheads_free();
        ov.per_launch_s = 1e-3;
        let taxed = run_serialized(&cfg, &ov, std::slice::from_ref(&a));
        let free = run_serialized(&cfg, &overheads_free(), std::slice::from_ref(&a));
        let expect = a.launches as f64 * a.batch as f64 * 1e-3;
        let delta = taxed.makespan_s - free.makespan_s;
        assert!(
            (delta - expect).abs() / expect < 0.05,
            "delta {delta} vs {expect}"
        );
        assert!(taxed.apps[0].comm_s > 0.0);
    }
}
