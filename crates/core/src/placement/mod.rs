//! Multi-device placement: N per-device [`ArbiterCore`]s behind one
//! deterministic routing layer.
//!
//! The paper's scope ends at one GPU; this module lifts the arbitration
//! core past it. A [`PlacementLayer`] owns one `ArbiterCore` per
//! [`DeviceConfig`] and splits a single frontend event stream into
//! per-device streams:
//!
//! ```text
//!                frontend events (one stream, logical µs)
//!                               │
//!                   PlacementLayer::feed(now, &[Event])
//!           policy on SessionOpened · sticky session/lease routes
//!           broadcast DeadlineTick/DrainBegan · migration retarget
//!            │                  │                  │
//!       ArbiterCore 0      ArbiterCore 1  …   ArbiterCore N-1
//!            │                  │                  │
//!            └──────────┬───────┴───────┬──────────┘
//!                       ▼               ▼
//!            RoutedCommand { device, command }   (+ synthesized
//!                                   Evicts from the rebalancer)
//! ```
//!
//! Three invariants make the layer as replayable as the cores beneath it:
//!
//! 1. **Sticky deterministic routing** — a session's device is chosen
//!    once, by a pure [`PlacementPolicy`], and every later event of that
//!    session (and of its leases) follows it. No wall clocks, no
//!    unordered maps; session and lease routes live in dense slot tables
//!    behind [`IdTable`] interners, and any slot iteration whose order
//!    could reach the output sorts by external id first (the dense-slot
//!    rule — see `DESIGN.md` §17).
//! 2. **Event-sourced migration** — a rebalance is an ordinary
//!    [`Command::Evict`] synthesized by the layer plus a route change for
//!    the lease: the frontend evicts (capturing absolute `slateIdx`
//!    progress), feeds the `KernelFinished {ok: false}` back (routed to
//!    the *source* core, which cleans up), then re-stages with
//!    [`WorkSpec::resuming`](crate::backend::WorkSpec::resuming) and
//!    re-feeds `KernelReady` — which now routes to the *target* core.
//! 3. **Per-core recording** — the layer's own [`replay::PlacementLog`]
//!    splits into N ordinary [`EventLog`]s
//!    ([`replay::split`]) that verify byte-identically through the
//!    existing single-device machinery.

pub mod health;
pub mod multi;
pub mod policy;
pub mod rebalance;
pub mod replay;

pub use health::{HealthConfig, HealthState};
pub use multi::{MultiJob, MultiSim};
pub use policy::PlacementPolicy;
pub use rebalance::{Migration, RebalanceConfig};
pub use replay::{PlacementBatch, PlacementLog};

use crate::admission::FleetAdmissionConfig;
use crate::arbiter::{
    ArbiterConfig, ArbiterCore, Command, CoreSnapshot, Event, EventLog, IdTable, RejectScope, Tick,
};
use health::{HealthSnapshot, HealthTracker};
use rebalance::{Rebalancer, RebalancerSnapshot};
use serde::{Deserialize, Serialize};
use slate_gpu_sim::device::DeviceConfig;
use slate_kernels::workload::SloClass;
use std::collections::BTreeMap;
use std::fmt;

/// Weight (estimated milliseconds) of one resident or waiting kernel in
/// the device-load metric, matching the arbiter's fallback per-launch
/// estimate for unprofiled work.
const LOAD_WEIGHT_MS: u64 = 10;

/// Static configuration of a [`PlacementLayer`]: the routing policy, the
/// per-core arbiter configuration (shared by all devices), and the
/// optional migration planner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PlacementConfig {
    /// How new sessions choose a device.
    pub policy: PlacementPolicy,
    /// Configuration every per-device [`ArbiterCore`] runs under.
    pub arbiter: ArbiterConfig,
    /// Cross-device rebalancing; `None` disables migration entirely.
    pub rebalance: Option<RebalanceConfig>,
    /// Per-device health state machine (quarantine and probation
    /// windows, probation seed). `#[serde(default)]` keeps logs recorded
    /// before the failure-domain layer deserializable.
    #[serde(default)]
    pub health: HealthConfig,
    /// Fleet-level admission: per-device budgets scaled by the healthy
    /// device count. The default admits everything.
    #[serde(default)]
    pub fleet: FleetAdmissionConfig,
}

/// A command tagged with the device whose backend must carry it out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedCommand {
    /// Index into the layer's device list.
    pub device: usize,
    /// The command itself.
    pub command: Command,
}

impl fmt::Display for RoutedCommand {
    /// Stable rendering used by placement transcripts; changing it
    /// invalidates checked-in goldens.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{} {}", self.device, self.command)
    }
}

/// Counters the placement layer accumulates; scalar and `Copy` so the
/// daemon can fold them into its metrics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlacementStats {
    /// Devices behind the layer.
    pub devices: usize,
    /// Sessions routed to a device (policy consultations).
    pub sessions_routed: u64,
    /// Cross-device migrations fired by the rebalancer.
    pub rebalances: u64,
    /// Migrations whose eviction has landed and whose lease now routes
    /// to the target device.
    pub migrations_completed: u64,
    /// Devices currently out of service (quarantined or failed).
    pub devices_out: usize,
    /// Leases force-migrated off a device that left service.
    pub evacuations: u64,
    /// Requests shed by fleet-level admission (aggregate healthy
    /// capacity exhausted), as opposed to a single core's bounds.
    pub fleet_sheds: u64,
}

/// The complete serializable state of a [`PlacementLayer`], captured by
/// [`PlacementLayer::snapshot`] and rebuilt by
/// [`PlacementLayer::from_snapshot`].
///
/// The crash-consistency invariant: a layer restored from a snapshot must
/// behave byte-identically to the layer that produced it — same routes,
/// same rng words, same health timers, same counters — so a recovered
/// daemon's replayed suffix lands on exactly the state the crashed daemon
/// had. Recording state is deliberately *not* captured: recovery decides
/// afresh whether to record. Like [`CoreSnapshot`], routes are serialized
/// as external-id ordered maps — slot numbers never reach disk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlacementSnapshot {
    pub(crate) config: PlacementConfig,
    pub(crate) now: Tick,
    pub(crate) cores: Vec<CoreSnapshot>,
    pub(crate) session_device: BTreeMap<u64, usize>,
    /// Declared SLO classes, only non-default entries (absent sessions
    /// are best-effort); `#[serde(default)]` keeps pre-SLO snapshots
    /// readable.
    #[serde(default)]
    pub(crate) slo: BTreeMap<u64, SloClass>,
    pub(crate) lease_device: BTreeMap<u64, usize>,
    pub(crate) lease_session: BTreeMap<u64, u64>,
    pub(crate) migrating: BTreeMap<u64, usize>,
    pub(crate) rr_next: usize,
    pub(crate) rebalancer: Option<RebalancerSnapshot>,
    pub(crate) health: HealthSnapshot,
    pub(crate) sessions_routed: u64,
    pub(crate) migrations_completed: u64,
    pub(crate) evacuations: u64,
    pub(crate) fleet_sheds: u64,
}

impl PlacementSnapshot {
    /// The device list the snapshotted layer ran over, in device order.
    pub fn devices(&self) -> Vec<DeviceConfig> {
        self.cores.iter().map(|c| c.device.clone()).collect()
    }

    /// The configuration the snapshotted layer ran under.
    pub fn config(&self) -> &PlacementConfig {
        &self.config
    }
}

/// N per-device arbitration cores behind one deterministic router. See
/// the [module docs](self) for the invariants.
///
/// Sessions and leases are interned into dense slots; routing is a slot
/// lookup, and all per-feed working sets (per-device event split, load
/// vectors, eligibility masks, command buffers) are layer-owned scratch
/// that reuses its high-water capacity — a steady-state
/// [`PlacementLayer::feed_into`] call does not touch the allocator.
#[derive(Debug)]
pub struct PlacementLayer {
    cores: Vec<ArbiterCore>,
    config: PlacementConfig,
    now: Tick,
    /// Session interner; parallel to `session_device`.
    sessions: IdTable,
    /// Sticky session → device routes, by session slot.
    session_device: Vec<usize>,
    /// Declared SLO classes, by session slot (default best-effort).
    session_slo: Vec<SloClass>,
    /// Lease interner; parallel to the three per-lease tables below.
    leases: IdTable,
    /// Sticky lease → device routes (diverge from the session's device
    /// after a migration), by lease slot.
    lease_device: Vec<Option<usize>>,
    /// Lease → owning session, for cleanup when the session ends.
    lease_session: Vec<Option<u64>>,
    /// In-flight migrations: lease slot → target device. Populated when
    /// the rebalancer fires, drained when the eviction's
    /// `KernelFinished` arrives.
    migrating: Vec<Option<usize>>,
    /// Live `Some` entries in `migrating`; gates the rebalancer without
    /// scanning the slot table.
    migrating_count: usize,
    rr_next: usize,
    rebalancer: Option<Rebalancer>,
    health: HealthTracker,
    sessions_routed: u64,
    migrations_completed: u64,
    evacuations: u64,
    fleet_sheds: u64,
    // Per-feed scratch, reused across batches (see struct docs).
    sub: Vec<Vec<Event>>,
    finished: Vec<u64>,
    ended: Vec<u64>,
    sheds: Vec<RoutedCommand>,
    evac: Vec<usize>,
    core_out: Vec<Command>,
    loads_buf: Vec<u64>,
    counts_buf: Vec<usize>,
    eligible_buf: Vec<bool>,
    sweep: Vec<u64>,
    record: Option<Vec<PlacementBatch>>,
}

impl PlacementLayer {
    /// A fresh layer over `devices` (one core each) under `config`.
    ///
    /// # Panics
    /// If `devices` is empty.
    pub fn new(devices: Vec<DeviceConfig>, config: PlacementConfig) -> Self {
        assert!(!devices.is_empty(), "placement needs at least one device");
        let cores: Vec<ArbiterCore> = devices
            .into_iter()
            .map(|d| ArbiterCore::new(d, config.arbiter.clone()))
            .collect();
        let rebalancer = config.rebalance.clone().map(Rebalancer::new);
        let health = HealthTracker::new(config.health.clone(), cores.len());
        let n = cores.len();
        // Pre-size the routing tables and scratch for a typical fleet
        // wave: one up-front allocation each instead of a doubling
        // ladder during the first batches (see `DESIGN.md` §17).
        const SESSIONS: usize = 16;
        const LEASES: usize = 16;
        Self {
            cores,
            config,
            now: 0,
            sessions: IdTable::with_capacity(SESSIONS),
            session_device: Vec::with_capacity(SESSIONS),
            session_slo: Vec::with_capacity(SESSIONS),
            leases: IdTable::with_capacity(LEASES),
            lease_device: Vec::with_capacity(LEASES),
            lease_session: Vec::with_capacity(LEASES),
            migrating: Vec::with_capacity(LEASES),
            migrating_count: 0,
            rr_next: 0,
            rebalancer,
            health,
            sessions_routed: 0,
            migrations_completed: 0,
            evacuations: 0,
            fleet_sheds: 0,
            sub: std::iter::repeat_with(|| Vec::with_capacity(4))
                .take(n)
                .collect(),
            finished: Vec::with_capacity(4),
            ended: Vec::with_capacity(4),
            sheds: Vec::with_capacity(4),
            evac: Vec::with_capacity(4),
            core_out: Vec::with_capacity(8),
            loads_buf: Vec::with_capacity(n),
            counts_buf: Vec::with_capacity(n),
            eligible_buf: Vec::with_capacity(n),
            sweep: Vec::with_capacity(8),
            record: None,
        }
    }

    /// Rebuilds a layer from a durable snapshot. The result behaves
    /// byte-identically to the layer that produced the snapshot — ids are
    /// re-interned in ascending external order, which may renumber slots,
    /// but no decision depends on slot numbering. Recording is off until
    /// [`PlacementLayer::start_recording`] is called again.
    pub fn from_snapshot(snap: PlacementSnapshot) -> Self {
        let cores: Vec<ArbiterCore> = snap
            .cores
            .into_iter()
            .map(ArbiterCore::from_snapshot)
            .collect();
        let rebalancer = match (snap.config.rebalance.clone(), snap.rebalancer) {
            (Some(config), Some(s)) => Some(Rebalancer::restore(config, s)),
            (Some(config), None) => Some(Rebalancer::new(config)),
            (None, _) => None,
        };
        let health = HealthTracker::restore(snap.config.health.clone(), snap.health);
        let n = cores.len();
        let mut layer = Self {
            cores,
            config: snap.config,
            now: snap.now,
            sessions: IdTable::new(),
            session_device: Vec::new(),
            session_slo: Vec::new(),
            leases: IdTable::new(),
            lease_device: Vec::new(),
            lease_session: Vec::new(),
            migrating: Vec::new(),
            migrating_count: 0,
            rr_next: snap.rr_next,
            rebalancer,
            health,
            sessions_routed: snap.sessions_routed,
            migrations_completed: snap.migrations_completed,
            evacuations: snap.evacuations,
            fleet_sheds: snap.fleet_sheds,
            sub: std::iter::repeat_with(Vec::new).take(n).collect(),
            finished: Vec::new(),
            ended: Vec::new(),
            sheds: Vec::new(),
            evac: Vec::new(),
            core_out: Vec::new(),
            loads_buf: Vec::new(),
            counts_buf: Vec::new(),
            eligible_buf: Vec::new(),
            sweep: Vec::new(),
            record: None,
        };
        for (session, d) in snap.session_device {
            let slot = layer.session_slot(session);
            layer.session_device[slot] = d;
        }
        for (session, class) in snap.slo {
            let slot = layer.session_slot(session);
            layer.session_slo[slot] = class;
        }
        for (lease, session) in snap.lease_session {
            let slot = layer.lease_slot(lease);
            layer.lease_session[slot] = Some(session);
        }
        for (lease, d) in snap.lease_device {
            let slot = layer.lease_slot(lease);
            layer.lease_device[slot] = Some(d);
        }
        for (lease, d) in snap.migrating {
            let slot = layer.lease_slot(lease);
            if layer.migrating[slot].is_none() {
                layer.migrating_count += 1;
            }
            layer.migrating[slot] = Some(d);
        }
        layer
    }

    /// Captures the layer's complete state for a durable snapshot (see
    /// [`PlacementSnapshot`] for the invariant).
    pub fn snapshot(&self) -> PlacementSnapshot {
        PlacementSnapshot {
            config: self.config.clone(),
            now: self.now,
            cores: self.cores.iter().map(|c| c.snapshot()).collect(),
            session_device: self
                .sessions
                .iter()
                .map(|(s, ext)| (ext, self.session_device[s as usize]))
                .collect(),
            slo: self
                .sessions
                .iter()
                .filter(|&(s, _)| self.session_slo[s as usize] != SloClass::BestEffort)
                .map(|(s, ext)| (ext, self.session_slo[s as usize]))
                .collect(),
            lease_device: self
                .leases
                .iter()
                .filter_map(|(s, ext)| self.lease_device[s as usize].map(|d| (ext, d)))
                .collect(),
            lease_session: self
                .leases
                .iter()
                .filter_map(|(s, ext)| self.lease_session[s as usize].map(|o| (ext, o)))
                .collect(),
            migrating: self
                .leases
                .iter()
                .filter_map(|(s, ext)| self.migrating[s as usize].map(|d| (ext, d)))
                .collect(),
            rr_next: self.rr_next,
            rebalancer: self.rebalancer.as_ref().map(|r| r.snapshot()),
            health: self.health.snapshot(),
            sessions_routed: self.sessions_routed,
            migrations_completed: self.migrations_completed,
            evacuations: self.evacuations,
            fleet_sheds: self.fleet_sheds,
        }
    }

    /// The layer's logical clock: the timestamp of the latest fed batch.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Number of devices behind the layer.
    pub fn devices(&self) -> usize {
        self.cores.len()
    }

    /// The per-device core at `device`.
    pub fn core(&self, device: usize) -> &ArbiterCore {
        &self.cores[device]
    }

    /// The active configuration.
    pub fn config(&self) -> &PlacementConfig {
        &self.config
    }

    /// The device `session` is routed to, if it has been routed.
    pub fn device_of_session(&self, session: u64) -> Option<usize> {
        self.sessions
            .get(session)
            .map(|s| self.session_device[s as usize])
    }

    /// The device `lease` is routed to, if known. After a migration's
    /// eviction lands this is the *target* device — frontends re-stage
    /// the evicted kernel here.
    pub fn device_of_lease(&self, lease: u64) -> Option<usize> {
        self.leases
            .get(lease)
            .and_then(|s| self.lease_device[s as usize])
    }

    /// The migration target of `lease` while its eviction is still in
    /// flight (`None` otherwise). Frontends use this to distinguish a
    /// rebalance eviction (re-stage on the target) from a watchdog
    /// eviction (drop).
    pub fn migration_target(&self, lease: u64) -> Option<usize> {
        self.leases
            .get(lease)
            .and_then(|s| self.migrating[s as usize])
    }

    /// The health state of `device`, as of the last fed batch.
    pub fn health_of(&self, device: usize) -> HealthState {
        self.health.state(device)
    }

    /// Devices currently in service as routing targets.
    pub fn eligible_devices(&self) -> usize {
        self.health.eligible_count()
    }

    /// The load metric of `device`: estimated pending milliseconds plus
    /// a fixed per-kernel weight (`LOAD_WEIGHT_MS`) per resident or
    /// waiting kernel. Used by the least-loaded policy and the
    /// rebalancer's imbalance score.
    pub fn device_load(&self, device: usize) -> u64 {
        let core = &self.cores[device];
        core.admission_stats().pending_est_ms
            + LOAD_WEIGHT_MS * (core.residents() + core.waiting()) as u64
    }

    /// Per-device load vector (see [`PlacementLayer::device_load`]).
    pub fn loads(&self) -> Vec<u64> {
        let mut loads = Vec::new();
        self.fill_loads(&mut loads);
        loads
    }

    fn fill_loads(&self, buf: &mut Vec<u64>) {
        buf.clear();
        buf.extend((0..self.cores.len()).map(|i| self.device_load(i)));
    }

    /// Kernels resident across every device.
    pub fn residents(&self) -> usize {
        self.cores.iter().map(|c| c.residents()).sum()
    }

    /// Watchdog evictions across every device.
    pub fn evictions(&self) -> u64 {
        self.cores.iter().map(|c| c.evictions()).sum()
    }

    /// Starvation promotions across every device.
    pub fn promotions(&self) -> u64 {
        self.cores.iter().map(|c| c.promotions()).sum()
    }

    /// SLO preemptions fired across every device.
    pub fn preemptions(&self) -> u64 {
        self.cores.iter().map(|c| c.preemptions()).sum()
    }

    /// Reaped sessions across every device.
    pub fn reaped(&self) -> u64 {
        self.cores.iter().map(|c| c.reaped()).sum()
    }

    /// Launch-queue snapshot summed across every device's core. `capacity`
    /// is the per-core bound (the cores share one configuration), not a
    /// fleet-wide sum.
    pub fn queue_stats(&self) -> crate::queue::QueueStats {
        let mut agg = crate::queue::QueueStats::default();
        for core in &self.cores {
            let s = core.queue_stats();
            agg.depth += s.depth;
            agg.high_water += s.high_water;
            agg.admitted += s.admitted;
            agg.shed += s.shed;
            agg.capacity = s.capacity;
        }
        agg
    }

    /// Admission counters summed across every device's core.
    pub fn admission_stats(&self) -> crate::admission::AdmissionStats {
        let mut agg = crate::admission::AdmissionStats::default();
        for core in &self.cores {
            let s = core.admission_stats();
            agg.active_sessions += s.active_sessions;
            agg.sessions_admitted += s.sessions_admitted;
            agg.sessions_rejected += s.sessions_rejected;
            agg.launches_completed += s.launches_completed;
            agg.launches_failed += s.launches_failed;
            agg.deadline_rejections += s.deadline_rejections;
            agg.mallocs_shed += s.mallocs_shed;
            agg.pending_est_ms += s.pending_est_ms;
        }
        agg
    }

    /// Snapshot of the placement counters.
    pub fn stats(&self) -> PlacementStats {
        PlacementStats {
            devices: self.cores.len(),
            sessions_routed: self.sessions_routed,
            rebalances: self.rebalancer.as_ref().map_or(0, |r| r.fired()),
            migrations_completed: self.migrations_completed,
            devices_out: (0..self.cores.len())
                .filter(|&d| self.health.state(d).out_of_service())
                .count(),
            evacuations: self.evacuations,
            fleet_sheds: self.fleet_sheds,
        }
    }

    /// Starts recording: the layer's own routed batches *and* each
    /// core's per-device [`EventLog`] (so one recorded run yields both
    /// the placement log and its per-core split).
    pub fn start_recording(&mut self) {
        self.record = Some(Vec::new());
        for core in &mut self.cores {
            core.start_recording();
        }
    }

    /// Clones the placement-level log accumulated so far *without*
    /// ending the recording — the daemon's shutdown trace hook reads
    /// the history this way, leaving [`PlacementLayer::take_log`]
    /// consumers (log download, post-mortem dumps) intact.
    pub fn log_snapshot(&self) -> Option<PlacementLog> {
        self.record.as_ref().map(|batches| PlacementLog {
            devices: self.cores.iter().map(|c| c.device().clone()).collect(),
            config: self.config.clone(),
            batches: batches.clone(),
        })
    }

    /// Takes the placement-level log (if recording was started).
    pub fn take_log(&mut self) -> Option<PlacementLog> {
        self.record.take().map(|batches| PlacementLog {
            devices: self.cores.iter().map(|c| c.device().clone()).collect(),
            config: self.config.clone(),
            batches,
        })
    }

    /// Takes each core's per-device log, in device order. Entries are
    /// `None` for cores that were never recording.
    pub fn take_core_logs(&mut self) -> Vec<Option<EventLog>> {
        self.cores.iter_mut().map(|c| c.take_log()).collect()
    }

    /// Interns `session` and sizes the route tables to its slot, clearing
    /// any stale SLO class on fresh (possibly reused) slots.
    fn session_slot(&mut self, session: u64) -> usize {
        let (slot, fresh) = self.sessions.intern(session);
        let slot = slot as usize;
        if slot >= self.session_device.len() {
            self.session_device.resize(slot + 1, 0);
            self.session_slo.resize(slot + 1, SloClass::BestEffort);
        }
        if fresh {
            self.session_slo[slot] = SloClass::BestEffort;
        }
        slot
    }

    /// Interns `lease` and sizes the per-lease tables to its slot,
    /// clearing slot state on fresh (possibly reused) slots.
    fn lease_slot(&mut self, lease: u64) -> usize {
        let (slot, fresh) = self.leases.intern(lease);
        let slot = slot as usize;
        if slot >= self.lease_device.len() {
            self.lease_device.resize(slot + 1, None);
            self.lease_session.resize(slot + 1, None);
            self.migrating.resize(slot + 1, None);
        }
        if fresh {
            self.lease_device[slot] = None;
            self.lease_session[slot] = None;
            debug_assert!(
                self.migrating[slot].is_none(),
                "released slot kept a target"
            );
        }
        slot
    }

    fn fill_session_counts(&self, buf: &mut Vec<usize>) {
        buf.clear();
        buf.resize(self.cores.len(), 0);
        for (slot, _) in self.sessions.iter() {
            buf[self.session_device[slot as usize]] += 1;
        }
    }

    /// Routing eligibility mask, falling back to every device when the
    /// whole fleet is out of service (work then queues on its sticky
    /// device until something recovers, rather than having nowhere to
    /// go).
    fn fill_routable(&self, buf: &mut Vec<bool>) {
        self.health.fill_eligibility(buf);
        if !buf.iter().any(|&e| e) {
            buf.iter_mut().for_each(|e| *e = true);
        }
    }

    /// The least-loaded device in `mask`, breaking ties toward the
    /// lowest index. `None` when the mask is empty.
    fn least_loaded_in(&self, mask: &[bool], exclude: Option<usize>) -> Option<usize> {
        let loads = self.loads();
        let mut best: Option<usize> = None;
        for d in 0..self.cores.len() {
            if !mask[d] || Some(d) == exclude {
                continue;
            }
            if best.is_none_or(|b| loads[d] < loads[b]) {
                best = Some(d);
            }
        }
        best
    }

    /// Routes `session` via the policy (first sight) or its sticky route.
    fn device_of_or_assign(&mut self, session: u64) -> usize {
        if let Some(slot) = self.sessions.get(session) {
            return self.session_device[slot as usize];
        }
        let mut loads = std::mem::take(&mut self.loads_buf);
        let mut counts = std::mem::take(&mut self.counts_buf);
        let mut eligible = std::mem::take(&mut self.eligible_buf);
        self.fill_loads(&mut loads);
        self.fill_session_counts(&mut counts);
        self.fill_routable(&mut eligible);
        let (d, advanced_rr) =
            self.config
                .policy
                .route(session, &loads, &counts, self.rr_next, &eligible);
        self.loads_buf = loads;
        self.counts_buf = counts;
        self.eligible_buf = eligible;
        if advanced_rr {
            // Equivalent to the pre-health `rr_next + 1` while every
            // device is eligible; skips ineligible devices otherwise.
            self.rr_next = d + 1;
        }
        let slot = self.session_slot(session);
        self.session_device[slot] = d;
        self.sessions_routed += 1;
        d
    }

    /// Routes a session declared with an SLO class. Latency-critical
    /// sessions override the configured policy with an SLO-aware
    /// tie-break: the eligible device with the most free SMs (so the
    /// arrival dispatches — or preempts the thinnest resident — fastest),
    /// ties broken toward lower load, then lower index. Best-effort
    /// declarations fall back to the plain policy route. Sticky like
    /// [`PlacementLayer::device_of_or_assign`].
    fn device_of_or_assign_slo(&mut self, session: u64, class: SloClass) -> usize {
        if class != SloClass::LatencyCritical {
            return self.device_of_or_assign(session);
        }
        if let Some(slot) = self.sessions.get(session) {
            return self.session_device[slot as usize];
        }
        let mut eligible = std::mem::take(&mut self.eligible_buf);
        self.fill_routable(&mut eligible);
        let loads = self.loads();
        let mut best = 0usize;
        for d in 1..self.cores.len() {
            if !eligible[d] {
                continue;
            }
            let (fd, fb) = (self.cores[d].free_sms(), self.cores[best].free_sms());
            if !eligible[best] || fd > fb || (fd == fb && loads[d] < loads[best]) {
                best = d;
            }
        }
        self.eligible_buf = eligible;
        let slot = self.session_slot(session);
        self.session_device[slot] = best;
        self.sessions_routed += 1;
        best
    }

    /// Routes a lease-scoped event: the lease's sticky route if it has
    /// one (it diverges from the session's after a migration), else the
    /// session's. A session stuck to an out-of-service device sends its
    /// *new* leases to the least-loaded in-service one instead — the
    /// session route stays sticky for when the device returns, but no
    /// fresh work lands on a dead device.
    fn device_for_lease(&mut self, session: u64, lease: u64) -> usize {
        let routed = self
            .leases
            .get(lease)
            .and_then(|s| self.lease_device[s as usize]);
        let d = match routed {
            Some(d) => d,
            None => {
                let mut d = self.device_of_or_assign(session);
                if self.health.state(d).out_of_service() {
                    if let Some(alt) = self.least_loaded_in(&self.health.eligibility(), None) {
                        d = alt;
                    }
                }
                let slot = self.lease_slot(lease);
                self.lease_device[slot] = Some(d);
                d
            }
        };
        let slot = self.lease_slot(lease);
        self.lease_session[slot] = Some(session);
        d
    }

    /// Feeds one batch of frontend events at logical time `now`, routing
    /// each to its device's core, and returns every resulting command
    /// tagged with its device — including any migration eviction the
    /// rebalancer synthesized this batch. Commands come out in device
    /// order (all of device 0's, then device 1's, …), each device's in
    /// its core's emission order.
    pub fn feed(&mut self, now: Tick, events: &[Event]) -> Vec<RoutedCommand> {
        let mut out = Vec::new();
        self.feed_into(now, events, &mut out);
        out
    }

    /// Allocation-free variant of [`PlacementLayer::feed`]: clears `out`
    /// and fills it with this batch's routed commands, reusing its
    /// capacity and the layer's own scratch. The hot-path entry point.
    pub fn feed_into(&mut self, now: Tick, events: &[Event], out: &mut Vec<RoutedCommand>) {
        out.clear();
        self.now = self.now.max(now);
        // Expire health timers first: a device whose quarantine or
        // probation lapsed by this batch's timestamp is (in)eligible for
        // everything the batch routes.
        self.health.tick(self.now);
        let n = self.cores.len();
        let mut sub = std::mem::take(&mut self.sub);
        for s in sub.iter_mut() {
            s.clear();
        }
        let mut finished = std::mem::take(&mut self.finished);
        let mut ended = std::mem::take(&mut self.ended);
        let mut sheds = std::mem::take(&mut self.sheds);
        let mut evacuate = std::mem::take(&mut self.evac);
        finished.clear();
        ended.clear();
        sheds.clear();
        evacuate.clear();
        for ev in events {
            match *ev {
                Event::SessionOpened { session } => {
                    if let Some(cmd) = self.fleet_shed_session(session) {
                        sheds.push(cmd);
                        continue;
                    }
                    let d = self.device_of_or_assign(session);
                    sub[d].push(ev.clone());
                }
                Event::SessionClosed { session } | Event::SessionSevered { session } => {
                    let d = self.device_of_session(session).unwrap_or(0);
                    sub[d].push(ev.clone());
                    ended.push(session);
                }
                Event::LaunchRequested { session, lease, .. } => {
                    if let Some(cmd) = self.fleet_shed_launch(session, lease) {
                        sheds.push(cmd);
                        continue;
                    }
                    let d = self.device_for_lease(session, lease);
                    sub[d].push(ev.clone());
                }
                Event::KernelReady { session, lease, .. } => {
                    let d = self.device_for_lease(session, lease);
                    // A migrated or evacuated lease re-enters here on a
                    // device whose core may never have seen the session's
                    // declaration: re-declare ahead of the ready event so
                    // the SLO class survives the move.
                    if let Some(slot) = self.sessions.get(session) {
                        let class = self.session_slo[slot as usize];
                        if class != SloClass::BestEffort
                            && self.cores[d].session_slo(session) != class
                        {
                            sub[d].push(Event::SloArrival { session, class });
                        }
                    }
                    sub[d].push(ev.clone());
                }
                Event::KernelFinished { lease, .. } => {
                    let d = self.device_of_lease(lease).unwrap_or(0);
                    sub[d].push(ev.clone());
                    finished.push(lease);
                }
                Event::MallocRequested { session, .. } => {
                    let d = self.device_of_or_assign(session);
                    sub[d].push(ev.clone());
                }
                Event::DeadlineTick | Event::DrainBegan => {
                    for s in sub.iter_mut() {
                        s.push(ev.clone());
                    }
                }
                Event::DeviceDown { device, hard } => {
                    let d = device as usize;
                    if d < n {
                        // The event still reaches the device's core (a
                        // scheduling nudge); the health transition is the
                        // layer's.
                        sub[d].push(ev.clone());
                        if self.health.on_down(d, hard, self.now) {
                            evacuate.push(d);
                        }
                    }
                }
                Event::DeviceUp { device } => {
                    let d = device as usize;
                    if d < n {
                        sub[d].push(ev.clone());
                        self.health.on_up(d, self.now);
                    }
                }
                Event::SloArrival { session, class } => {
                    // A declaration the fleet would shed is dropped, not
                    // routed: routing interns the session, which would
                    // bypass the admission guard on the paired
                    // `SessionOpened` (the event that owns the reject).
                    if self.fleet_would_shed_session(session) {
                        continue;
                    }
                    let d = self.device_of_or_assign_slo(session, class);
                    let slot = self.session_slot(session);
                    self.session_slo[slot] = class;
                    sub[d].push(ev.clone());
                }
            }
        }
        let mut core_out = std::mem::take(&mut self.core_out);
        for (d, batch) in sub.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            self.cores[d].feed_into(self.now, batch, &mut core_out);
            for command in core_out.drain(..) {
                out.push(RoutedCommand { device: d, command });
            }
        }
        self.core_out = core_out;
        out.append(&mut sheds);
        // A landed eviction completes its migration: the lease's sticky
        // route flips to the target, so the re-fed KernelReady lands there.
        for lease in finished.drain(..) {
            if let Some(slot) = self.leases.get(lease) {
                let slot = slot as usize;
                if let Some(dst) = self.migrating[slot].take() {
                    self.migrating_count -= 1;
                    self.lease_device[slot] = Some(dst);
                    self.migrations_completed += 1;
                }
            }
        }
        for session in ended.drain(..) {
            self.sessions.release(session);
            let mut sweep = std::mem::take(&mut self.sweep);
            sweep.clear();
            sweep.extend(
                self.leases
                    .iter()
                    .filter(|&(slot, _)| self.lease_session[slot as usize] == Some(session))
                    .map(|(_, ext)| ext),
            );
            for &lease in &sweep {
                let slot = self.leases.release(lease).expect("swept lease is live") as usize;
                self.lease_session[slot] = None;
                self.lease_device[slot] = None;
                if self.migrating[slot].take().is_some() {
                    self.migrating_count -= 1;
                }
            }
            self.sweep = sweep;
        }
        // Evacuations run after the cores were fed, so work that became
        // resident or queued in this very batch is still moved off the
        // failed domain.
        for d in evacuate.drain(..) {
            self.evacuate_device(d, out);
        }
        if let Some(cmd) = self.maybe_rebalance() {
            out.push(cmd);
        }
        self.sub = sub;
        self.finished = finished;
        self.ended = ended;
        self.sheds = sheds;
        self.evac = evacuate;
        if let Some(batches) = &mut self.record {
            let heartbeat_only = events.iter().all(|e| matches!(e, Event::DeadlineTick));
            if !(heartbeat_only && out.is_empty()) {
                batches.push(PlacementBatch {
                    at: self.now,
                    events: events.to_vec(),
                    routed: out.clone(),
                });
            }
        }
    }

    fn maybe_rebalance(&mut self) -> Option<RoutedCommand> {
        // One migration in flight at a time: the load vector is stale
        // until the eviction lands, so a second fire would double-move.
        if self.rebalancer.is_none() || self.migrating_count != 0 {
            return None;
        }
        let mut loads = std::mem::take(&mut self.loads_buf);
        let mut eligible = std::mem::take(&mut self.eligible_buf);
        self.fill_loads(&mut loads);
        self.health.fill_eligibility(&mut eligible);
        let now = self.now;
        let cores = &self.cores;
        let rb = self.rebalancer.as_mut().expect("checked above");
        let m = rb.plan(now, &loads, &eligible, |src| cores[src].resident_leases());
        self.loads_buf = loads;
        self.eligible_buf = eligible;
        let m = m?;
        let slot = self.lease_slot(m.lease);
        if self.migrating[slot].is_none() {
            self.migrating_count += 1;
        }
        self.migrating[slot] = Some(m.dst);
        Some(RoutedCommand {
            device: m.src,
            command: Command::Evict { lease: m.lease },
        })
    }

    /// Sheds a connecting session when the fleet's session budget —
    /// `max_sessions_per_device ×` the in-service device count — is
    /// exhausted. The rejection is steered toward the least-loaded
    /// in-service device so the retry hint names where capacity frees
    /// first.
    /// Whether [`PlacementLayer::fleet_shed_session`] would shed this
    /// session, without emitting the reject or counting the shed. The
    /// [`Event::SloArrival`] arm uses it: routing an over-budget session
    /// on its declaration would intern it and bypass the guard on the
    /// paired [`Event::SessionOpened`], which is the event that owns the
    /// reject.
    fn fleet_would_shed_session(&self, session: u64) -> bool {
        if self.sessions.contains(session) {
            return false;
        }
        let Some(per) = self.config.fleet.max_sessions_per_device else {
            return false;
        };
        let budget = per.saturating_mul(self.health.eligible_count());
        self.sessions.len() >= budget
    }

    fn fleet_shed_session(&mut self, session: u64) -> Option<RoutedCommand> {
        if self.sessions.contains(session) {
            return None; // already admitted and routed
        }
        let per = self.config.fleet.max_sessions_per_device?;
        let budget = per.saturating_mul(self.health.eligible_count());
        if self.sessions.len() < budget {
            return None;
        }
        Some(self.fleet_reject(session, None, RejectScope::Session))
    }

    /// Sheds a launch when the fleet's pending budget —
    /// `max_pending_per_device ×` the in-service device count — is
    /// exhausted. Re-staged migration work re-enters as `KernelReady`,
    /// never `LaunchRequested`, so evacuations are exempt by
    /// construction.
    fn fleet_shed_launch(&mut self, session: u64, lease: u64) -> Option<RoutedCommand> {
        let per = self.config.fleet.max_pending_per_device?;
        let budget = per.saturating_mul(self.health.eligible_count() as u64);
        let pending: u64 = self.cores.iter().map(|c| c.queue_stats().depth).sum();
        if pending < budget {
            return None;
        }
        Some(self.fleet_reject(session, Some(lease), RejectScope::Launch))
    }

    fn fleet_reject(
        &mut self,
        session: u64,
        lease: Option<u64>,
        scope: RejectScope,
    ) -> RoutedCommand {
        let eligible = self.health.eligibility();
        let device = self.least_loaded_in(&eligible, None).unwrap_or(0);
        let retry_after_ms = if eligible.iter().any(|&e| e) {
            self.device_load(device).max(1)
        } else {
            // Whole fleet out of service: hint the quarantine horizon.
            (self.config.health.quarantine_us / 1000).max(1)
        };
        self.fleet_sheds += 1;
        RoutedCommand {
            device,
            command: Command::RejectOverloaded {
                session,
                lease,
                scope,
                retry_after_ms,
            },
        }
    }

    /// Mass-migrates every live lease (resident or waiting) off `src`,
    /// which just left service: one layer-synthesized [`Command::Evict`]
    /// per lease, each registered in `migrating` with a least-loaded
    /// in-service target, exactly like a rebalance migration. In-flight
    /// migrations *aimed at* `src` are retargeted too. With no in-service
    /// target the leases stay put and queue until a device recovers.
    fn evacuate_device(&mut self, src: usize, out: &mut Vec<RoutedCommand>) {
        let eligible = self.health.eligibility();
        let mut loads = self.loads();
        // Retarget migrations whose destination just died. Each retarget
        // feeds back into `loads`, so iteration order is part of the
        // replayed decision: sort by external lease id, matching the
        // ordered-map scan this used to be (the dense-slot rule).
        let mut aimed: Vec<u64> = self
            .leases
            .iter()
            .filter(|&(slot, _)| self.migrating[slot as usize] == Some(src))
            .map(|(_, ext)| ext)
            .collect();
        aimed.sort_unstable();
        for lease in aimed {
            if let Some(dst) = pick_target(&eligible, &loads, src) {
                loads[dst] += LOAD_WEIGHT_MS;
                let slot = self.lease_slot(lease);
                self.migrating[slot] = Some(dst);
            }
        }
        let mut victims = self.cores[src].resident_leases();
        victims.extend(self.cores[src].waiting_leases());
        victims.sort_unstable();
        victims.dedup();
        for lease in victims {
            let already = self
                .leases
                .get(lease)
                .is_some_and(|s| self.migrating[s as usize].is_some());
            if already {
                continue; // already on its way out (rebalance in flight)
            }
            let Some(dst) = pick_target(&eligible, &loads, src) else {
                return;
            };
            loads[dst] += LOAD_WEIGHT_MS;
            let slot = self.lease_slot(lease);
            if self.migrating[slot].is_none() {
                self.migrating_count += 1;
            }
            self.migrating[slot] = Some(dst);
            self.evacuations += 1;
            out.push(RoutedCommand {
                device: src,
                command: Command::Evict { lease },
            });
        }
    }
}

/// The least-loaded eligible device other than `src`; `None` when no
/// such device exists.
fn pick_target(eligible: &[bool], loads: &[u64], src: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    for d in 0..eligible.len() {
        if d == src || !eligible[d] {
            continue;
        }
        if best.is_none_or(|b| loads[d] < loads[b]) {
            best = Some(d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::WorkloadClass::*;

    fn two_tiny() -> Vec<DeviceConfig> {
        vec![DeviceConfig::tiny(8), DeviceConfig::tiny(8)]
    }

    fn layer(policy: PlacementPolicy) -> PlacementLayer {
        PlacementLayer::new(
            two_tiny(),
            PlacementConfig {
                policy,
                ..Default::default()
            },
        )
    }

    fn ready(session: u64, lease: u64, demand: u32) -> Event {
        Event::KernelReady {
            session,
            lease,
            class: MM,
            sm_demand: demand,
            pinned_solo: false,
            deadline_ms: None,
        }
    }

    #[test]
    fn round_robin_alternates_sessions_across_devices() {
        let mut p = layer(PlacementPolicy::RoundRobin);
        p.feed(
            0,
            &[
                Event::SessionOpened { session: 1 },
                Event::SessionOpened { session: 2 },
                Event::SessionOpened { session: 3 },
            ],
        );
        assert_eq!(p.device_of_session(1), Some(0));
        assert_eq!(p.device_of_session(2), Some(1));
        assert_eq!(p.device_of_session(3), Some(0));
        assert_eq!(p.stats().sessions_routed, 3);
    }

    #[test]
    fn lease_events_follow_the_session_and_dispatch_on_its_device() {
        let mut p = layer(PlacementPolicy::RoundRobin);
        p.feed(
            0,
            &[
                Event::SessionOpened { session: 1 },
                Event::SessionOpened { session: 2 },
            ],
        );
        let out = p.feed(1, &[ready(1, 10, 8), ready(2, 20, 8)]);
        assert_eq!(
            out.iter()
                .map(|r| (r.device, r.command.clone()))
                .collect::<Vec<_>>(),
            vec![
                (
                    0,
                    Command::Dispatch {
                        lease: 10,
                        range: slate_gpu_sim::device::SmRange::all(8)
                    }
                ),
                (
                    1,
                    Command::Dispatch {
                        lease: 20,
                        range: slate_gpu_sim::device::SmRange::all(8)
                    }
                ),
            ]
        );
        assert_eq!(p.core(0).residents(), 1);
        assert_eq!(p.core(1).residents(), 1);
    }

    #[test]
    fn broadcast_events_reach_every_core() {
        let mut p = layer(PlacementPolicy::RoundRobin);
        p.feed(0, &[Event::DrainBegan]);
        assert!(p.core(0).draining());
        assert!(p.core(1).draining());
    }

    #[test]
    fn least_loaded_routes_away_from_busy_device() {
        let mut p = layer(PlacementPolicy::LeastLoaded);
        // First session lands on device 0 and queues profiled work.
        p.feed(0, &[Event::SessionOpened { session: 1 }]);
        p.feed(
            1,
            &[Event::LaunchRequested {
                session: 1,
                lease: 10,
                est_ms: Some(500),
                deadline_ms: None,
            }],
        );
        // The next session sees device 0 loaded and lands on device 1.
        p.feed(2, &[Event::SessionOpened { session: 2 }]);
        assert_eq!(p.device_of_session(2), Some(1));
    }

    #[test]
    fn session_end_clears_routes() {
        let mut p = layer(PlacementPolicy::RoundRobin);
        p.feed(0, &[Event::SessionOpened { session: 1 }]);
        p.feed(1, &[ready(1, 10, 8)]);
        assert_eq!(p.device_of_lease(10), Some(0));
        p.feed(2, &[Event::SessionClosed { session: 1 }]);
        assert_eq!(p.device_of_session(1), None);
        assert_eq!(p.device_of_lease(10), None);
    }

    #[test]
    fn rebalance_evicts_on_source_and_reroutes_lease_to_target() {
        let mut p = PlacementLayer::new(
            two_tiny(),
            PlacementConfig {
                policy: PlacementPolicy::Affinity {
                    pins: [(1u64, 0usize), (2, 0)].into_iter().collect(),
                },
                rebalance: Some(RebalanceConfig {
                    high_ms: 20,
                    low_ms: 5,
                    cooldown_us: 0,
                    seed: 1,
                }),
                ..Default::default()
            },
        );
        // Everything pinned to device 0: one resident + one waiter piles
        // 20 ms of weighted load against an idle device 1.
        p.feed(
            0,
            &[
                Event::SessionOpened { session: 1 },
                Event::SessionOpened { session: 2 },
            ],
        );
        let out = p.feed(1, &[ready(1, 10, 8), ready(2, 20, 8)]);
        let evict = out
            .iter()
            .find(|r| matches!(r.command, Command::Evict { .. }))
            .expect("imbalance fires a migration eviction");
        assert_eq!(evict.device, 0, "eviction lands on the hot device");
        let Command::Evict { lease } = evict.command else {
            unreachable!()
        };
        assert_eq!(lease, 10, "the only resident is the victim");
        assert_eq!(p.migration_target(10), Some(1));
        assert_eq!(p.stats().rebalances, 1);
        // The eviction lands: finished routes to the source core, then
        // the lease's route flips to the target.
        let out = p.feed(
            2,
            &[Event::KernelFinished {
                lease: 10,
                ok: false,
            }],
        );
        assert_eq!(p.device_of_lease(10), Some(1));
        assert_eq!(p.migration_target(10), None);
        assert_eq!(p.stats().migrations_completed, 1);
        // Source core dispatched its waiter onto the freed device.
        assert!(out
            .iter()
            .any(|r| r.device == 0 && matches!(r.command, Command::Dispatch { lease: 20, .. })));
        // Re-staged readiness dispatches on the target device.
        let out = p.feed(3, &[ready(1, 10, 8)]);
        assert!(out
            .iter()
            .any(|r| r.device == 1 && matches!(r.command, Command::Dispatch { lease: 10, .. })));
    }

    #[test]
    fn single_device_layer_degenerates_to_the_bare_core() {
        let mut p = PlacementLayer::new(vec![DeviceConfig::titan_xp()], PlacementConfig::default());
        let mut bare = ArbiterCore::new(DeviceConfig::titan_xp(), ArbiterConfig::default());
        let script: Vec<(Tick, Vec<Event>)> = vec![
            (0, vec![Event::SessionOpened { session: 1 }]),
            (1, vec![ready(1, 10, 30)]),
            (2, vec![ready(1, 11, 14)]),
            (
                3,
                vec![Event::KernelFinished {
                    lease: 10,
                    ok: true,
                }],
            ),
            (4, vec![Event::DeadlineTick]),
            (5, vec![Event::SessionClosed { session: 1 }]),
        ];
        for (at, events) in script {
            let routed = p.feed(at, &events);
            let direct = bare.feed(at, &events);
            assert_eq!(routed.iter().map(|r| r.device).max().unwrap_or(0), 0);
            assert_eq!(
                routed.into_iter().map(|r| r.command).collect::<Vec<_>>(),
                direct
            );
        }
    }
}
