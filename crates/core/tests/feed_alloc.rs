//! Zero-allocation proof for the steady-state feed path.
//!
//! The dense-id refactor's headline claim (`DESIGN.md` §17) is that a
//! warmed scheduler feeds without touching the allocator: the `IdTable`
//! reuses released slots, every decision-path scratch buffer keeps its
//! high-water capacity, and commands are `Copy`-only payloads written
//! into caller-owned buffers. The daemon's feed path is these same
//! pieces behind a ring of pooled [`EventBatch`]es, exercised here
//! single-threaded so the count is deterministic: a thread-local
//! counting allocator tallies this thread's allocations only, which
//! keeps the harness's other test threads out of the ledger.
//!
//! Each test warms a component past its high-water mark, then asserts
//! further identical cycles perform **zero** heap allocations.

use slate_core::arbiter::{ArbiterConfig, ArbiterCore, Command, Event};
use slate_core::classify::WorkloadClass;
use slate_core::feed::{ring, EventBatch};
use slate_core::placement::{PlacementConfig, PlacementLayer, RoutedCommand};
use slate_gpu_sim::device::DeviceConfig;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Counts this thread's allocations (alloc, alloc_zeroed, realloc) and
/// defers the real work to the system allocator. Thread-local so the
/// test harness's parallelism can't pollute a measurement.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(l)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(p, l, n)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(|c| c.get());
    f();
    ALLOCS.with(|c| c.get()) - before
}

fn ready(session: u64, lease: u64, demand: u32) -> Event {
    Event::KernelReady {
        session,
        lease,
        class: if lease % 2 == 0 {
            WorkloadClass::MM
        } else {
            WorkloadClass::LC
        },
        sm_demand: demand,
        pinned_solo: false,
        deadline_ms: None,
    }
}

/// One full session lifecycle through `feed_into`: open, launch+ready a
/// co-running pair, tick, finish, close. Identical external ids every
/// cycle, so released `IdTable` slots are re-interned from the free list.
fn core_cycle(core: &mut ArbiterCore, t: &mut u64, out: &mut Vec<Command>) {
    let feed = |core: &mut ArbiterCore, t: &mut u64, events: &[Event], out: &mut Vec<Command>| {
        *t += 100;
        core.feed_into(*t, events, out);
    };
    feed(
        core,
        t,
        &[
            Event::SessionOpened { session: 1 },
            Event::SessionOpened { session: 2 },
        ],
        out,
    );
    for (lease, demand) in [(0x10u64, 14u32), (0x21, 16), (0x12, 30), (0x23, 8)] {
        let session = lease >> 4;
        feed(
            core,
            t,
            &[Event::LaunchRequested {
                session,
                lease,
                est_ms: Some(5),
                deadline_ms: None,
            }],
            out,
        );
        feed(core, t, &[ready(session, lease, demand)], out);
    }
    feed(core, t, &[Event::DeadlineTick], out);
    for lease in [0x10u64, 0x21, 0x12, 0x23] {
        feed(core, t, &[Event::KernelFinished { lease, ok: true }], out);
    }
    feed(
        core,
        t,
        &[
            Event::SessionClosed { session: 1 },
            Event::SessionClosed { session: 2 },
        ],
        out,
    );
}

#[test]
fn arbiter_feed_into_steady_state_allocates_nothing() {
    let mut core = ArbiterCore::new(DeviceConfig::titan_xp(), ArbiterConfig::default());
    let mut t = 0u64;
    let mut out = Vec::new();
    // Warm: grow the IdTable arena, scratch buffers and `out` to their
    // high-water marks.
    for _ in 0..4 {
        core_cycle(&mut core, &mut t, &mut out);
    }
    let n = allocs_during(|| {
        for _ in 0..16 {
            core_cycle(&mut core, &mut t, &mut out);
        }
    });
    assert_eq!(n, 0, "warmed ArbiterCore::feed_into must not allocate");
}

/// A session wave routed across four devices and drained again, all
/// through `feed_into` with one reused routed-command buffer.
fn placement_cycle(layer: &mut PlacementLayer, t: &mut u64, out: &mut Vec<RoutedCommand>) {
    for s in 1..=8u64 {
        *t += 50;
        layer.feed_into(*t, &[Event::SessionOpened { session: s }], out);
        layer.feed_into(*t + 10, &[ready(s, s << 4, 8)], out);
    }
    for s in 1..=8u64 {
        *t += 50;
        layer.feed_into(
            *t,
            &[Event::KernelFinished {
                lease: s << 4,
                ok: true,
            }],
            out,
        );
        layer.feed_into(*t + 10, &[Event::SessionClosed { session: s }], out);
    }
}

#[test]
fn placement_feed_into_steady_state_allocates_nothing() {
    let mut layer = PlacementLayer::new(vec![DeviceConfig::tiny(8); 4], PlacementConfig::default());
    let mut t = 0u64;
    let mut out = Vec::new();
    for _ in 0..4 {
        placement_cycle(&mut layer, &mut t, &mut out);
    }
    let n = allocs_during(|| {
        for _ in 0..16 {
            placement_cycle(&mut layer, &mut t, &mut out);
        }
    });
    assert_eq!(n, 0, "warmed PlacementLayer::feed_into must not allocate");
}

/// The daemon's batch transport: pooled [`EventBatch`]es through an SPSC
/// ring. Once the batch buffers hit their high-water capacity, a full
/// fill → push → pop → drain → clear round trip is allocation-free —
/// which, combined with the two tests above, is the steady-state daemon
/// feed path end to end.
#[test]
fn ring_and_batch_round_trip_allocates_nothing() {
    let (mut tx, mut rx) = ring::<EventBatch<Command>>(8);
    let mut pool: Vec<EventBatch<Command>> = (0..4).map(|_| EventBatch::new()).collect();
    let round = |pool: &mut Vec<EventBatch<Command>>,
                 tx: &mut slate_core::feed::RingProducer<EventBatch<Command>>,
                 rx: &mut slate_core::feed::RingConsumer<EventBatch<Command>>| {
        for i in 0..4u64 {
            let mut b = pool.pop().expect("pooled batch");
            b.events.push(Event::SessionOpened { session: i });
            b.events.push(Event::SessionClosed { session: i });
            b.replies.push(Command::Reap { session: i });
            tx.push(b).expect("ring has room");
        }
        while let Some(mut b) = rx.pop() {
            b.clear();
            pool.push(b);
        }
    };
    round(&mut pool, &mut tx, &mut rx); // warm the batch capacities
    let n = allocs_during(|| {
        for _ in 0..64 {
            round(&mut pool, &mut tx, &mut rx);
        }
    });
    assert_eq!(n, 0, "pooled batches through the ring must not allocate");
}
