//! Fig. 5 — effect of task size (`SLATE_ITERS`) on kernel execution time.
//!
//! Small tasks pay one serialized global atomic per block, throttling
//! kernels with tiny blocks (Gaussian's time nearly halves moving from task
//! size 1 to 10). Oversized tasks cause load imbalance among the persistent
//! workers (BlackScholes is ~5% worse at the default 10 than at 1).

use crate::report::{f, BarChart, Report, Table};
use slate_gpu_sim::device::{DeviceConfig, SmRange};
use slate_gpu_sim::engine::{Engine, Event, SliceSpec};
use slate_gpu_sim::perf::ExecMode;
use slate_kernels::workload::Benchmark;

/// Task sizes swept, as in the paper's figure.
pub const TASK_SIZES: [u32; 6] = [1, 2, 5, 10, 20, 50];

/// Kernel time of one launch of `bench` under Slate with task size `g`.
pub fn kernel_time(cfg: &DeviceConfig, bench: Benchmark, g: u32) -> f64 {
    let app = bench.app();
    // One *real* launch (the app batches several per simulated launch).
    let blocks = (app.blocks_per_launch / app.batch as u64).max(1);
    let mut e = Engine::new(cfg.clone());
    let id = e
        .add_slice(SliceSpec {
            perf: app.perf.clone(),
            sm_range: SmRange::all(cfg.num_sms),
            blocks,
            mode: ExecMode::SlateWorkers { task_size: g },
            extra_lead_s: 0.0,
            batch: 1,
            tag: 0,
        })
        .expect("launch");
    let (t, _) = e
        .run_until(|ev| matches!(ev, Event::SliceDrained(_)))
        .expect("completes");
    let _ = e.remove_slice(id);
    t
}

/// Sweep results: `times[bench][task_size_index]` in seconds.
pub fn run(cfg: &DeviceConfig) -> (Vec<(Benchmark, Vec<f64>)>, Report) {
    let benches = [Benchmark::BS, Benchmark::GS, Benchmark::MM, Benchmark::TR];
    let mut report = Report::new(
        "fig5",
        "Kernel execution time vs task size",
        "GS kernel time almost halves from task size 1 to 10; a very large \
         task size causes imbalance — task size 10 is worse than 1 for BS.",
    );
    let mut t = Table::new(
        "Kernel time per launch (s), Slate, by task size",
        &["Benchmark", "G=1", "G=2", "G=5", "G=10", "G=20", "G=50"],
    );
    let mut all = Vec::new();
    for b in benches {
        let times: Vec<f64> = TASK_SIZES.iter().map(|&g| kernel_time(cfg, b, g)).collect();
        let mut cells = vec![b.abbrev().to_string()];
        cells.extend(times.iter().map(|&x| f(x, 4)));
        t.row(&cells);
        all.push((b, times));
    }
    report.tables.push(t);
    for (b, times) in &all {
        let base = times[3]; // normalize to the default task size 10
        let mut chart = BarChart::new(
            &format!(
                "{}: kernel time by task size (relative to G=10)",
                b.abbrev()
            ),
            "x",
        );
        for (g, t) in TASK_SIZES.iter().zip(times) {
            chart.row(&format!("G={g:<2}"), t / base);
        }
        report.charts.push(chart);
    }

    // A missing benchmark result is a failed (labelled) check, not a
    // panic: downstream report rendering must survive partial sweeps.
    let sweep_of = |bench: Benchmark| {
        all.iter()
            .find(|(b, _)| *b == bench)
            .map(|(_, times)| times)
            .filter(|times| times.len() == TASK_SIZES.len())
    };
    match (sweep_of(Benchmark::GS), sweep_of(Benchmark::BS)) {
        (Some(gs), Some(bs)) => {
            // Indices: 0 -> G=1, 3 -> G=10, 5 -> G=50.
            report.check(
                "GS at task size 1 is much slower than at 10 (paper: ~2x)",
                gs[0] / gs[3] > 1.5,
            );
            report.check(
                "BS at task size 10 is a few percent worse than at 1 (imbalance)",
                bs[3] > bs[0] * 1.01 && bs[3] < bs[0] * 1.15,
            );
            report.check("very large tasks (G=50) hurt BS further", bs[5] > bs[3]);
            report.check(
                "GS is roughly flat between 10 and 50 (within 10%)",
                (gs[5] / gs[3] - 1.0).abs() < 0.10,
            );
        }
        (gs, bs) => {
            if gs.is_none() {
                report.check("task-size sweep produced a full GS result", false);
            }
            if bs.is_none() {
                report.check("task-size sweep produced a full BS result", false);
            }
        }
    }
    (all, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_size_sweep_has_paper_shape() {
        let (_, report) = run(&DeviceConfig::titan_xp());
        assert!(report.all_pass(), "{}", report.to_text());
    }
}
