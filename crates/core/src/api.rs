//! The Slate client API (paper §IV-A1).
//!
//! "The *Slate* API acts as a wrapper for basic CUDA functions" — this is
//! the library an application links instead of the CUDA runtime. Every call
//! round-trips the command pipe to the daemon except kernel launches, which
//! are asynchronous exactly like CUDA launches; `synchronize` drains them.
//!
//! | CUDA | Slate |
//! |------|-------|
//! | `cudaMalloc` | [`SlateClient::malloc`] |
//! | `cudaFree` | [`SlateClient::free`] |
//! | `cudaMemcpy(H2D)` | [`SlateClient::memcpy_h2d`] |
//! | `cudaMemcpy(D2H)` | [`SlateClient::memcpy_d2h`] |
//! | `<<<grid, block>>>` | [`SlateClient::launch_with`] |
//! | `cudaDeviceSynchronize` | [`SlateClient::synchronize`] |

use crate::channel::{KernelFactory, LaunchCmd, Request, Response, SlatePtr};
use crate::daemon::Connection;
use crate::error::SlateError;
use bytes::Bytes;
use slate_gpu_sim::buffer::GpuBuffer;
use slate_kernels::kernel::GpuKernel;
use std::sync::Arc;
use std::time::Duration;

/// Opt-in bounded retry with exponential backoff for transient daemon
/// rejections (see [`SlateError::is_transient`]). Retries sleep
/// `base_delay * 2^attempt`, capped at `max_delay`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Ceiling for the exponential backoff.
    pub max_delay: Duration,
}

impl RetryPolicy {
    /// `max_attempts` tries with backoff doubling from 1 ms up to 100 ms.
    pub fn with_attempts(max_attempts: u32) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(100),
        }
    }

    /// Backoff to sleep before retry number `retry` (0-based).
    pub fn delay_for(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.min(16);
        self.base_delay.saturating_mul(factor).min(self.max_delay)
    }

    /// Runs `op` up to `max_attempts` times, sleeping the backoff between
    /// attempts, retrying only while the error is transient.
    pub fn run<T>(
        &self,
        mut op: impl FnMut() -> Result<T, SlateError>,
    ) -> Result<T, SlateError> {
        let mut retry = 0;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && retry + 1 < self.max_attempts => {
                    std::thread::sleep(self.delay_for(retry));
                    retry += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// A client connection to the Slate daemon, wrapping the command pipe with
/// the CUDA-like API surface.
pub struct SlateClient {
    conn: Connection,
    pending_launches: std::cell::Cell<u64>,
    retry: Option<RetryPolicy>,
    /// Errors surfaced by the most recent `synchronize` (first one is
    /// returned; the rest are counted here).
    last_sync_failures: std::cell::Cell<u64>,
}

impl SlateClient {
    /// Wraps a daemon connection.
    pub fn new(conn: Connection) -> Self {
        Self {
            conn,
            pending_launches: std::cell::Cell::new(0),
            retry: None,
            last_sync_failures: std::cell::Cell::new(0),
        }
    }

    /// Enables bounded retry with exponential backoff for transient
    /// errors on `synchronize` (builder style; off by default).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// The daemon-assigned session id.
    pub fn session(&self) -> u64 {
        self.conn.session
    }

    fn call(&self, req: Request) -> Result<Response, SlateError> {
        self.conn
            .tx
            .send(req)
            .map_err(|_| SlateError::Disconnected)?;
        self.conn
            .rx
            .recv()
            .map_err(|_| SlateError::Disconnected)
    }

    /// Runs `op` under the configured retry policy, if any. Only applied
    /// to operations that are safe to re-issue: a transient rejection
    /// means the daemon did not perform them.
    fn retrying<T>(
        &self,
        mut op: impl FnMut() -> Result<T, SlateError>,
    ) -> Result<T, SlateError> {
        match &self.retry {
            Some(policy) => policy.run(&mut op),
            None => op(),
        }
    }

    /// Allocates `bytes` bytes of device memory (`cudaMalloc`).
    pub fn malloc(&self, bytes: u64) -> Result<SlatePtr, SlateError> {
        self.retrying(|| self.call(Request::Malloc(bytes))?.expect_ptr())
    }

    /// Frees a device allocation (`cudaFree`).
    pub fn free(&self, ptr: SlatePtr) -> Result<(), SlateError> {
        self.retrying(|| self.call(Request::Free(ptr))?.expect_ok())
    }

    /// Copies host bytes into device memory through a shared buffer.
    /// `offset` must be word-aligned.
    pub fn memcpy_h2d(&self, ptr: SlatePtr, offset: usize, data: Bytes) -> Result<(), SlateError> {
        self.retrying(|| {
            // Bytes clones are refcount-only; re-sending is cheap.
            let data = data.clone();
            self.call(Request::MemcpyH2D { ptr, offset, data })?.expect_ok()
        })
    }

    /// Convenience: uploads a slice of f32s.
    pub fn upload_f32(&self, ptr: SlatePtr, data: &[f32]) -> Result<(), SlateError> {
        let bytes: Vec<u8> = data.iter().flat_map(|f| f.to_le_bytes()).collect();
        self.memcpy_h2d(ptr, 0, bytes.into())
    }

    /// Copies device memory back to the host. `offset` must be
    /// word-aligned.
    pub fn memcpy_d2h(&self, ptr: SlatePtr, offset: usize, len: usize) -> Result<Vec<u8>, SlateError> {
        self.retrying(|| {
            Ok(self
                .call(Request::MemcpyD2H { ptr, offset, len })?
                .expect_data()?
                .to_vec())
        })
    }

    /// Convenience: downloads `n` f32s.
    pub fn download_f32(&self, ptr: SlatePtr, n: usize) -> Result<Vec<f32>, SlateError> {
        let raw = self.memcpy_d2h(ptr, 0, n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Launches a kernel asynchronously. `ptrs` are resolved daemon-side
    /// and handed to `factory` in order; `source` optionally carries the
    /// CUDA text through the injection pipeline.
    pub fn launch_with<F>(
        &self,
        ptrs: Vec<SlatePtr>,
        task_size: u32,
        source: Option<String>,
        factory: F,
    ) -> Result<(), SlateError>
    where
        F: FnOnce(Vec<Arc<GpuBuffer>>) -> Arc<dyn GpuKernel> + Send + 'static,
    {
        self.launch_inner(ptrs, task_size, source, false, 0, None, Box::new(factory))
    }

    /// Like [`SlateClient::launch_with`] but arms the daemon's watchdog
    /// with a per-kernel deadline: if the kernel runs longer than
    /// `deadline_ms` milliseconds it is evicted from the device and the
    /// next [`SlateClient::synchronize`] surfaces
    /// [`SlateError::Timeout`]. Co-runners are unaffected.
    pub fn launch_with_deadline<F>(
        &self,
        ptrs: Vec<SlatePtr>,
        task_size: u32,
        deadline_ms: u64,
        factory: F,
    ) -> Result<(), SlateError>
    where
        F: FnOnce(Vec<Arc<GpuBuffer>>) -> Arc<dyn GpuKernel> + Send + 'static,
    {
        self.launch_inner(
            ptrs,
            task_size,
            None,
            false,
            0,
            Some(deadline_ms),
            Box::new(factory),
        )
    }

    /// Launches a kernel on a CUDA stream. Launches on the same stream are
    /// ordered; launches on different non-zero streams may run
    /// concurrently. [`SlateClient::synchronize`] fences all streams.
    pub fn launch_on_stream<F>(
        &self,
        stream: u32,
        ptrs: Vec<SlatePtr>,
        task_size: u32,
        factory: F,
    ) -> Result<(), SlateError>
    where
        F: FnOnce(Vec<Arc<GpuBuffer>>) -> Arc<dyn GpuKernel> + Send + 'static,
    {
        self.launch_inner(ptrs, task_size, None, false, stream, None, Box::new(factory))
    }

    /// Like [`SlateClient::launch_with`] but pins the kernel to solo
    /// execution — for heavily optimized library kernels that should never
    /// be co-scheduled (`#pragma slate solo`).
    pub fn launch_solo_with<F>(
        &self,
        ptrs: Vec<SlatePtr>,
        task_size: u32,
        source: Option<String>,
        factory: F,
    ) -> Result<(), SlateError>
    where
        F: FnOnce(Vec<Arc<GpuBuffer>>) -> Arc<dyn GpuKernel> + Send + 'static,
    {
        self.launch_inner(ptrs, task_size, source, true, 0, None, Box::new(factory))
    }

    #[allow(clippy::too_many_arguments)]
    fn launch_inner(
        &self,
        ptrs: Vec<SlatePtr>,
        task_size: u32,
        source: Option<String>,
        pinned_solo: bool,
        stream: u32,
        deadline_ms: Option<u64>,
        factory: KernelFactory,
    ) -> Result<(), SlateError> {
        let cmd = LaunchCmd {
            ptrs,
            factory,
            task_size,
            source,
            pinned_solo,
            stream,
            deadline_ms,
        };
        self.conn
            .tx
            .send(Request::Launch(cmd))
            .map_err(|_| SlateError::Disconnected)?;
        self.pending_launches.set(self.pending_launches.get() + 1);
        Ok(())
    }

    /// Blocks until every previously launched kernel has completed
    /// (`cudaDeviceSynchronize`). Surfaces the *first* launch error;
    /// additional failures from the same batch are counted in
    /// [`SlateClient::last_sync_failures`].
    pub fn synchronize(&self) -> Result<(), SlateError> {
        // The session thread serves requests in order, so one round trip
        // fences all prior launches. Failed launches reply with their error
        // ahead of the sync's Ok.
        self.conn
            .tx
            .send(Request::Sync)
            .map_err(|_| SlateError::Disconnected)?;
        let mut first: Option<SlateError> = None;
        let mut failures: u64 = 0;
        loop {
            match self
                .conn
                .rx
                .recv()
                .map_err(|_| SlateError::Disconnected)?
            {
                Response::Ok => break,
                Response::Err(e) => {
                    failures += 1;
                    if first.is_none() {
                        first = Some(SlateError::from_wire(&e));
                    }
                }
                other => {
                    return Err(SlateError::Other(format!(
                        "unexpected sync response {other:?}"
                    )))
                }
            }
        }
        self.pending_launches.set(0);
        self.last_sync_failures.set(failures);
        match first {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Launch errors surfaced by the most recent
    /// [`SlateClient::synchronize`] (0 if it succeeded). When several
    /// launches of one batch fail, `synchronize` returns the first error
    /// and this reports how many there were in total.
    pub fn last_sync_failures(&self) -> u64 {
        self.last_sync_failures.get()
    }

    /// Ends the session; the daemon frees any leaked allocations.
    ///
    /// Pending launches are fenced first (a `Sync` round trip), so an
    /// in-flight launch error is surfaced here instead of being silently
    /// dropped with the session.
    pub fn disconnect(self) -> Result<(), SlateError> {
        let pending = if self.pending_launches.get() > 0 {
            self.synchronize().err()
        } else {
            None
        };
        let bye = self.call(Request::Disconnect)?.expect_ok();
        match pending {
            Some(e) => Err(e),
            None => bye,
        }
    }
}

/// Connects to `daemon` under `policy`: transient rejections (e.g.
/// [`SlateError::ShuttingDown`] during a drain that may be superseded by a
/// restart) are retried with exponential backoff.
pub fn connect_with_retry(
    daemon: &Arc<crate::daemon::SlateDaemon>,
    user: &str,
    policy: RetryPolicy,
) -> Result<SlateClient, SlateError> {
    policy.run(|| daemon.connect(user).map(SlateClient::new))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::SlateDaemon;
    use slate_gpu_sim::device::DeviceConfig;

    #[test]
    fn upload_download_roundtrip() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1 << 20);
        let c = SlateClient::new(daemon.connect("u").unwrap());
        let p = c.malloc(64).unwrap();
        c.upload_f32(p, &[1.5, -2.0, 3.25]).unwrap();
        let back = c.download_f32(p, 3).unwrap();
        assert_eq!(back, vec![1.5, -2.0, 3.25]);
        c.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn out_of_memory_is_reported() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1024);
        let c = SlateClient::new(daemon.connect("u").unwrap());
        assert!(c.malloc(512).is_ok());
        let err = c.malloc(4096).unwrap_err();
        assert_eq!(err, SlateError::OutOfMemory { requested: 4096 });
        assert!(err.to_string().contains("out of device memory"), "{err}");
        c.disconnect().unwrap();
        daemon.join();
    }

    #[test]
    fn retry_policy_backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(10),
        };
        assert_eq!(p.delay_for(0), Duration::from_millis(2));
        assert_eq!(p.delay_for(1), Duration::from_millis(4));
        assert_eq!(p.delay_for(2), Duration::from_millis(8));
        assert_eq!(p.delay_for(3), Duration::from_millis(10), "capped");
        assert_eq!(p.delay_for(30), Duration::from_millis(10), "no overflow");
    }

    #[test]
    fn retry_policy_retries_transient_until_success() {
        let p = RetryPolicy::with_attempts(5);
        let mut calls = 0;
        let out: Result<u32, _> = p.run(|| {
            calls += 1;
            if calls < 3 {
                Err(SlateError::ShuttingDown)
            } else {
                Ok(7)
            }
        });
        assert_eq!(out, Ok(7));
        assert_eq!(calls, 3);
    }

    #[test]
    fn retry_policy_gives_up_after_max_attempts() {
        let p = RetryPolicy::with_attempts(3);
        let mut calls = 0;
        let out: Result<(), _> = p.run(|| {
            calls += 1;
            Err(SlateError::Timeout { elapsed_ms: 1 })
        });
        assert_eq!(out, Err(SlateError::Timeout { elapsed_ms: 1 }));
        assert_eq!(calls, 3);
    }

    #[test]
    fn retry_policy_never_retries_permanent_errors() {
        let p = RetryPolicy::with_attempts(5);
        let mut calls = 0;
        let out: Result<(), _> = p.run(|| {
            calls += 1;
            Err(SlateError::InvalidPointer { ptr: 9 })
        });
        assert!(out.is_err());
        assert_eq!(calls, 1, "permanent errors fail fast");
    }

    #[test]
    fn connect_with_retry_fails_fast_once_shut_down() {
        let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1 << 20);
        assert!(daemon.shutdown(Duration::from_millis(100)));
        // ShuttingDown is transient (a restarted daemon could accept), but
        // this daemon never comes back: the policy must exhaust attempts.
        let err = connect_with_retry(&daemon, "late", RetryPolicy::with_attempts(2))
            .err()
            .unwrap();
        assert_eq!(err, SlateError::ShuttingDown);
    }
}
