//! Scheduler hot-path benchmarks with a machine-readable report.
//!
//! Unlike the criterion targets, this bench uses a fixed-iteration
//! harness (warmup, then best-of-5 timed runs) so its output is a single
//! stable number per bench, and writes the [`slate_bench::Report`] JSON
//! that CI's `bench_gate` compares against the committed
//! `BENCH_baseline.json`. Covered paths, each fully deterministic:
//!
//! * `arbiter_feed` — [`ArbiterCore::feed`] batch throughput over a
//!   scripted session lifecycle (**hard-gated**: CI fails on a >25%
//!   regression);
//! * `partition` — the SM-demand split of paper §III-C;
//! * `placement_route` — [`PlacementLayer::feed`] routing a session wave
//!   across four devices (**hard-gated**: the health-eligibility checks
//!   added to routing must stay off the allocation-heavy path);
//! * `sim_backend_drain` — staging, dispatching and draining a kernel
//!   through the simulation backend (**hard-gated**);
//! * `wal_append` — durability WAL appends (metadata records and routed
//!   placement batches) on an open segment;
//! * `recover_replay` — rebuilding daemon state from a durability
//!   directory (snapshot load + full WAL suffix replay);
//! * `trace_export` — converting a recorded event log into Perfetto
//!   trace JSON (replay verification + track/lane assembly + emission;
//!   ungated while the conversion cost is established);
//! * `tuner_replay_variant` — one counterfactual replay of a recorded
//!   log under a non-recorded config, the autotuner's unit of work
//!   (ungated initially).
//!
//! Output: `-- --json <path>` or the `SLATE_BENCH_JSON` environment
//! variable; a human-readable table always goes to stdout.

use slate_bench::{BenchMeasurement, Report, REPORT_SCHEMA};
use slate_core::arbiter::replay::{replay_under, EventLog};
use slate_core::arbiter::{ArbiterConfig, ArbiterCore, Command, Event};
use slate_core::backend::{Backend, SimBackend, WorkSpec};
use slate_core::classify::WorkloadClass;
use slate_core::durability::{recover_dir, Durability, DurableMeta, WalRecord};
use slate_core::partition::partition;
use slate_core::placement::{PlacementBatch, PlacementConfig, PlacementLayer, PlacementPolicy};
use slate_core::transform::TransformedKernel;
use slate_core::DurabilityOptions;
use slate_gpu_sim::device::{DeviceConfig, SmRange};
use slate_gpu_sim::perf::KernelPerf;
use slate_kernels::grid::{BlockCoord, GridDim};
use slate_kernels::kernel::GpuKernel;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Warmup fraction and measurement runs of the fixed harness.
const RUNS: u32 = 5;

fn measure(
    name: &str,
    gated: bool,
    iters: u64,
    items_per_iter: u64,
    mut f: impl FnMut(),
) -> BenchMeasurement {
    for _ in 0..(iters / 10).max(1) {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    println!(
        "{name:<20} {best:>12.1} ns/iter  ({:.2} Mitems/s)",
        items_per_iter as f64 * 1e3 / best
    );
    BenchMeasurement {
        name: name.to_string(),
        gated,
        iters,
        ns_per_iter: best,
        items_per_iter,
    }
}

fn ready(session: u64, lease: u64, demand: u32) -> Event {
    Event::KernelReady {
        session,
        lease,
        class: if lease % 2 == 0 {
            WorkloadClass::MM
        } else {
            WorkloadClass::LC
        },
        sm_demand: demand,
        pinned_solo: false,
        deadline_ms: None,
    }
}

/// One scripted arbitration lifecycle: 2 sessions, 4 kernels with mixed
/// classes (one co-run, one serialized pair), all finished and closed.
/// 16 events through `feed` per iteration on a fresh core.
fn arbiter_feed_iteration() {
    let mut core = ArbiterCore::new(DeviceConfig::titan_xp(), ArbiterConfig::default());
    let mut t = 0u64;
    let mut feed = |core: &mut ArbiterCore, events: &[Event]| {
        t += 100;
        black_box(core.feed(t, events));
    };
    feed(
        &mut core,
        &[
            Event::SessionOpened { session: 1 },
            Event::SessionOpened { session: 2 },
        ],
    );
    for (lease, demand) in [(0x10, 14u32), (0x21, 16), (0x12, 30), (0x23, 8)] {
        let session = lease >> 4;
        feed(
            &mut core,
            &[Event::LaunchRequested {
                session,
                lease,
                est_ms: Some(5),
                deadline_ms: None,
            }],
        );
        feed(&mut core, &[ready(session, lease, demand)]);
    }
    feed(&mut core, &[Event::DeadlineTick]);
    for lease in [0x10u64, 0x21, 0x12, 0x23] {
        feed(&mut core, &[Event::KernelFinished { lease, ok: true }]);
    }
    feed(
        &mut core,
        &[
            Event::SessionClosed { session: 1 },
            Event::SessionClosed { session: 2 },
        ],
    );
}

/// A wave of 8 sessions (with one kernel each) routed across 4 devices.
fn placement_route_iteration(policy: &PlacementPolicy) {
    let mut layer = PlacementLayer::new(
        vec![DeviceConfig::tiny(8); 4],
        PlacementConfig {
            policy: policy.clone(),
            ..Default::default()
        },
    );
    let mut t = 0u64;
    for s in 1..=8u64 {
        t += 50;
        black_box(layer.feed(t, &[Event::SessionOpened { session: s }]));
        black_box(layer.feed(t + 10, &[ready(s, s << 4, 8)]));
    }
    for s in 1..=8u64 {
        t += 50;
        black_box(layer.feed(
            t,
            &[Event::KernelFinished {
                lease: s << 4,
                ok: true,
            }],
        ));
        black_box(layer.feed(t + 10, &[Event::SessionClosed { session: s }]));
    }
}

struct Nop {
    grid: GridDim,
}
impl GpuKernel for Nop {
    fn name(&self) -> &str {
        "nop"
    }
    fn grid(&self) -> GridDim {
        self.grid
    }
    fn perf(&self) -> KernelPerf {
        KernelPerf::synthetic("nop", 100.0, 0.0)
    }
    fn run_block(&self, b: BlockCoord) {
        black_box(b);
    }
}

/// Stage → dispatch → drain 10 000 simulated blocks on a fresh backend.
fn sim_drain_iteration(kernel: &TransformedKernel) {
    let mut be = SimBackend::new(DeviceConfig::tiny(4));
    be.stage(1, WorkSpec::new(kernel.clone(), 10));
    be.apply(&Command::Dispatch {
        lease: 1,
        range: SmRange::all(4),
    });
    let done = be.wait_completion(10_000).expect("nop kernel drains");
    assert!(done.ok, "simulated drain completed");
}

/// Builds a durability directory holding `sessions` full session
/// lifecycles as placement batches in a single segment (the genesis
/// snapshot anchors it), plus a pair of alloc/free metadata records per
/// session. Returns the number of batches appended.
fn build_wal_dir(dir: &std::path::Path, sessions: u64) -> u64 {
    let _ = std::fs::remove_dir_all(dir);
    let mut layer = PlacementLayer::new(vec![DeviceConfig::tiny(4); 2], PlacementConfig::default());
    let dur = Durability::start(
        DurabilityOptions {
            dir: dir.to_path_buf(),
            snapshot_every: u64::MAX, // keep everything in segment 0
            keep_all: true,
        },
        0,
        0,
        &layer.snapshot(),
        DurableMeta::default(),
    )
    .expect("start durability");
    let mut t = 0u64;
    let mut batches = 0u64;
    for s in 1..=sessions {
        for events in [
            vec![Event::SessionOpened { session: s }],
            vec![ready(s, s << 4, 4)],
            vec![Event::KernelFinished {
                lease: s << 4,
                ok: true,
            }],
            vec![Event::SessionClosed { session: s }],
        ] {
            t += 50;
            let routed = layer.feed(t, &events);
            dur.append_batch(
                &PlacementBatch {
                    at: t,
                    events,
                    routed,
                },
                || layer.snapshot(),
            );
            batches += 1;
        }
        dur.append_meta(&WalRecord::Alloc {
            session: s,
            slate_ptr: s,
            device_ptr: s,
            bytes: 4096,
        });
        dur.append_meta(&WalRecord::Free {
            session: s,
            slate_ptr: s,
        });
    }
    dur.freeze();
    batches
}

/// Records one deterministic arbitration run — `sessions` sessions, four
/// kernels each with mixed classes and interleaved finishes — and returns
/// the event log the trace exporter and autotuner consume.
fn record_event_log(sessions: u64) -> EventLog {
    let mut core = ArbiterCore::new(
        DeviceConfig::titan_xp(),
        ArbiterConfig {
            starvation_bound_us: Some(50_000),
            preempt_bound_us: Some(20_000),
            ..ArbiterConfig::default()
        },
    );
    core.start_recording();
    let mut t = 0u64;
    for s in 1..=sessions {
        t += 100;
        core.feed(t, &[Event::SessionOpened { session: s }]);
        for k in 0..4u64 {
            let lease = (s << 4) | k;
            t += 700;
            core.feed(t, &[ready(s, lease, 6 + ((lease * 7) % 24) as u32)]);
            t += 2_300;
            core.feed(t, &[Event::KernelFinished { lease, ok: true }]);
        }
        t += 100;
        core.feed(t, &[Event::DeadlineTick]);
        t += 100;
        core.feed(t, &[Event::SessionClosed { session: s }]);
    }
    core.take_log().expect("recording was enabled")
}

fn main() {
    let report = Report {
        schema: REPORT_SCHEMA,
        benches: vec![
            measure("arbiter_feed", true, 2_000, 16, arbiter_feed_iteration),
            measure("partition", false, 200_000, 3, || {
                let cfg = DeviceConfig::titan_xp();
                black_box(partition(&cfg, 14, 16));
                black_box(partition(&cfg, 30, 8));
                black_box(partition(&cfg, 22, 22));
            }),
            measure("placement_route", true, 1_000, 32, || {
                placement_route_iteration(&PlacementPolicy::RoundRobin);
                placement_route_iteration(&PlacementPolicy::LeastLoaded);
            }),
            {
                let kernel = TransformedKernel::new(Arc::new(Nop {
                    grid: GridDim::d1(10_000),
                }));
                measure("sim_backend_drain", true, 300, 10_000, move || {
                    sim_drain_iteration(&kernel)
                })
            },
            {
                // 8 metadata appends + 8 batch appends per iteration on a
                // live segment (snapshot cadence high enough that rotation
                // stays off the measured path).
                let dir = std::env::temp_dir()
                    .join(format!("slate-bench-walappend-{}", std::process::id()));
                let _ = std::fs::remove_dir_all(&dir);
                let layer =
                    PlacementLayer::new(vec![DeviceConfig::tiny(4); 2], PlacementConfig::default());
                let snap = layer.snapshot();
                let dur = Durability::start(
                    DurabilityOptions {
                        dir: dir.clone(),
                        snapshot_every: 1 << 20,
                        keep_all: false,
                    },
                    0,
                    0,
                    &snap,
                    DurableMeta::default(),
                )
                .expect("start durability");
                let batch = PlacementBatch {
                    at: 1,
                    events: vec![ready(1, 0x10, 4)],
                    routed: Vec::new(),
                };
                let m = measure("wal_append", true, 2_000, 16, move || {
                    for i in 0..8u64 {
                        dur.append_meta(&WalRecord::Alloc {
                            session: 1,
                            slate_ptr: i,
                            device_ptr: i,
                            bytes: 256,
                        });
                    }
                    for _ in 0..8 {
                        dur.append_batch(&batch, || snap.clone());
                    }
                });
                let _ = std::fs::remove_dir_all(&dir);
                m
            },
            {
                let dir = std::env::temp_dir()
                    .join(format!("slate-bench-recover-{}", std::process::id()));
                let batches = build_wal_dir(&dir, 64);
                let scan_dir = dir.clone();
                let m = measure("recover_replay", true, 100, batches, move || {
                    black_box(recover_dir(&scan_dir).expect("recover"));
                });
                let _ = std::fs::remove_dir_all(&dir);
                m
            },
            {
                let log = record_event_log(16);
                let batches = log.batches.len() as u64;
                measure("trace_export", false, 200, batches, move || {
                    black_box(
                        slate_core::trace::trace_event_log(&log)
                            .expect("recorded log exports")
                            .to_json(),
                    );
                })
            },
            {
                let log = record_event_log(16);
                let batches = log.batches.len() as u64;
                // A config the log was NOT recorded under, so the replay
                // takes the counterfactual (non-verifying) path the tuner
                // exercises for every grid variant.
                let variant = ArbiterConfig {
                    preempt_bound_us: None,
                    ..log.config.clone()
                };
                measure("tuner_replay_variant", false, 500, batches, move || {
                    black_box(replay_under(&log, variant.clone()));
                })
            },
        ],
    };

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let args: Vec<String> = std::env::args().collect();
    let path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var("SLATE_BENCH_JSON").ok());
    match path {
        Some(p) => {
            std::fs::write(&p, &json).unwrap_or_else(|e| panic!("write {p}: {e}"));
            println!("report written to {p}");
        }
        None => println!("{json}"),
    }
}
