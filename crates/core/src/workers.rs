//! Persistent workers with SM-range gating (paper §III-A3, Listing 1).
//!
//! Slate sizes the worker set to the maximum number of thread blocks the
//! *designated* SMs can hold resident, launches one grid of workers, and
//! gates each worker on its SM id: workers landing outside
//! `[sm_low, sm_high]` return immediately; survivors loop pulling tasks
//! from the queue until it drains or the retreat flag rises.
//!
//! This module is the functional counterpart: simulated workers (backed by
//! OS threads through rayon) carry an SM id assigned round-robin the way
//! the hardware distributes blocks, run the same gate, and drive a real
//! [`TaskQueue`] with real atomics. The timing counterpart lives in the
//! fluid engine (`ExecMode::SlateWorkers`).

use crate::queue::TaskQueue;
use crate::transform::TransformedKernel;
use slate_gpu_sim::device::{DeviceConfig, SmRange};
use slate_gpu_sim::occupancy;
use std::sync::atomic::{AtomicU64, Ordering};

/// Outcome of one persistent-worker launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerRunStats {
    /// Workers that passed the SM gate and executed tasks.
    pub live_workers: u64,
    /// Workers that landed on undesignated SMs and exited immediately.
    pub gated_workers: u64,
    /// Blocks executed during this launch.
    pub blocks_executed: u64,
    /// Whether the launch ended because of a retreat signal (vs drain).
    pub retreated: bool,
}

/// Sizes the worker grid for a kernel on the designated SM range: the
/// maximum resident blocks those SMs support (paper: "*Slate* always sets
/// the size of workers as the maximum number of thread blocks that the
/// designated SMs can support").
pub fn worker_count(device: &DeviceConfig, kernel: &TransformedKernel, range: SmRange) -> u64 {
    let per_sm = occupancy::blocks_per_sm(device, &kernel.inner().perf()) as u64;
    per_sm * range.len() as u64
}

/// Launches one set of persistent workers bound to `range` and runs until
/// the queue drains or retreats.
///
/// The launch models the hardware flow: `device.num_sms * blocks_per_sm`
/// worker blocks are dispatched round-robin over all SMs (the hardware
/// scheduler does not know about the partition), and the injected Listing 1
/// gate kills the ones outside the range.
pub fn launch_workers(
    device: &DeviceConfig,
    kernel: &TransformedKernel,
    queue: &TaskQueue,
    range: SmRange,
) -> WorkerRunStats {
    assert!(
        range.hi < device.num_sms,
        "range {range:?} outside device with {} SMs",
        device.num_sms
    );
    let per_sm = occupancy::blocks_per_sm(device, &kernel.inner().perf()) as u64;
    assert!(per_sm > 0, "kernel cannot launch (occupancy 0)");
    let total_workers = per_sm * device.num_sms as u64;

    let live = AtomicU64::new(0);
    let gated = AtomicU64::new(0);
    let blocks = AtomicU64::new(0);
    let retreated = AtomicU64::new(0);

    rayon::scope(|s| {
        for w in 0..total_workers {
            let (live, gated, blocks, retreated) = (&live, &gated, &blocks, &retreated);
            s.spawn(move |_| {
                // Hardware distributes blocks round-robin over SMs.
                let sm = (w % device.num_sms as u64) as u32;
                // Listing 1: the whole block quits on an undesignated SM.
                if !range.contains(sm) {
                    gated.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                live.fetch_add(1, Ordering::Relaxed);
                // Listing 2: pull tasks until drained or retreating.
                while let Some(task) = queue.pull() {
                    kernel.run_task(task);
                    blocks.fetch_add(task.len as u64, Ordering::Relaxed);
                    if queue.retreating() {
                        retreated.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });

    WorkerRunStats {
        live_workers: live.load(Ordering::Relaxed),
        gated_workers: gated.load(Ordering::Relaxed),
        blocks_executed: blocks.load(Ordering::Relaxed),
        retreated: retreated.load(Ordering::Relaxed) > 0 && !queue.drained(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slate_gpu_sim::buffer::GpuBuffer;
    use slate_gpu_sim::perf::KernelPerf;
    use slate_kernels::grid::{BlockCoord, GridDim};
    use slate_kernels::kernel::GpuKernel;
    use std::sync::Arc;

    struct Counter {
        grid: GridDim,
        hits: Arc<GpuBuffer>,
    }

    impl GpuKernel for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn grid(&self) -> GridDim {
            self.grid
        }
        fn perf(&self) -> KernelPerf {
            KernelPerf::synthetic("counter", 100.0, 4.0)
        }
        fn run_block(&self, b: BlockCoord) {
            self.hits.fetch_add_u32(self.grid.flat_of(b) as usize, 1);
        }
    }

    fn counter(grid: GridDim) -> (TransformedKernel, Arc<GpuBuffer>) {
        let hits = Arc::new(GpuBuffer::new(grid.total_blocks() as usize * 4));
        (
            TransformedKernel::new(Arc::new(Counter {
                grid,
                hits: hits.clone(),
            })),
            hits,
        )
    }

    #[test]
    fn drains_queue_and_executes_every_block_once() {
        let device = DeviceConfig::tiny(4);
        let grid = GridDim::d2(33, 7);
        let (k, hits) = counter(grid);
        let q = TaskQueue::new(k.slate_max(), 5);
        let stats = launch_workers(&device, &k, &q, SmRange::all(4));
        assert!(q.drained());
        assert!(!stats.retreated);
        assert_eq!(stats.blocks_executed, grid.total_blocks());
        assert_eq!(stats.gated_workers, 0);
        for i in 0..grid.total_blocks() {
            assert_eq!(hits.load_u32(i as usize), 1, "block {i}");
        }
    }

    #[test]
    fn gate_kills_workers_outside_the_range() {
        let device = DeviceConfig::tiny(4);
        let (k, _) = counter(GridDim::d1(100));
        let q = TaskQueue::new(k.slate_max(), 10);
        // Only SMs 0..=1 designated: half the workers gate out.
        let stats = launch_workers(&device, &k, &q, SmRange::new(0, 1));
        assert!(q.drained());
        assert_eq!(
            stats.live_workers + stats.gated_workers,
            worker_count(&device, &k, SmRange::all(4))
        );
        assert_eq!(stats.gated_workers, stats.live_workers, "half gated");
    }

    #[test]
    fn worker_count_follows_occupancy_and_range() {
        let device = DeviceConfig::titan_xp();
        let (k, _) = counter(GridDim::d1(10));
        // synthetic kernel: 256 threads, 32 regs -> 8 blocks/SM.
        assert_eq!(worker_count(&device, &k, SmRange::all(30)), 240);
        assert_eq!(worker_count(&device, &k, SmRange::new(0, 9)), 80);
    }

    #[test]
    fn pre_signalled_retreat_stops_after_one_task_each() {
        let device = DeviceConfig::tiny(2);
        let (k, _) = counter(GridDim::d1(10_000));
        let q = TaskQueue::new(k.slate_max(), 10);
        q.signal_retreat();
        let stats = launch_workers(&device, &k, &q, SmRange::all(2));
        assert!(stats.retreated);
        assert!(!q.drained());
        // Each live worker executed at most one task before seeing the flag.
        assert!(stats.blocks_executed <= stats.live_workers * 10);
        assert_eq!(stats.blocks_executed, q.progress());
    }

    #[test]
    fn progress_equals_blocks_executed_under_retreat() {
        // The carry-over invariant: whatever was pulled was executed, so a
        // relaunch from `progress()` misses nothing and repeats nothing.
        let device = DeviceConfig::tiny(4);
        let grid = GridDim::d2(50, 40); // 2000 blocks
        let (k, hits) = counter(grid);
        let q = TaskQueue::new(k.slate_max(), 7);
        q.signal_retreat();
        let first = launch_workers(&device, &k, &q, SmRange::all(4));
        assert_eq!(first.blocks_executed, q.progress());
        // Relaunch from the carried progress on a different range.
        let q2 = TaskQueue::with_progress(q.progress(), k.slate_max(), 7);
        let second = launch_workers(&device, &k, &q2, SmRange::new(1, 2));
        assert!(q2.drained());
        assert_eq!(
            first.blocks_executed + second.blocks_executed,
            grid.total_blocks()
        );
        for i in 0..grid.total_blocks() {
            assert_eq!(hits.load_u32(i as usize), 1, "block {i} executed once");
        }
    }
}
