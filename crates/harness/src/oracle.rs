//! Policy quality: the Table I heuristic vs an oracle selector.
//!
//! The paper chooses a simple lookup table over exhaustive measurement to
//! keep scheduling cheap (§II: "balance between accuracy and simplicity for
//! runtime employment"). This experiment quantifies what that simplicity
//! costs: an *oracle* Slate that, for every pairing, measures both the
//! corun and the consecutive schedule and picks the better one. If the
//! heuristic is good, the oracle's advantage is small.

use crate::report::{f, pct, Report, Table};
use slate_baselines::{MpsRuntime, Runtime};
use slate_core::runtime::{SlateOptions, SlateRuntime};
use slate_gpu_sim::device::DeviceConfig;
use slate_kernels::workload::Benchmark;

/// One pairing's heuristic-vs-oracle outcome.
#[derive(Debug, Clone)]
pub struct OracleRow {
    /// The pairing.
    pub pair: (Benchmark, Benchmark),
    /// ANTT under the published heuristic.
    pub antt_heuristic: f64,
    /// ANTT under the oracle (min of corun-allowed and corun-forbidden).
    pub antt_oracle: f64,
    /// Whether the oracle's choice differed from the heuristic's outcome.
    pub oracle_disagrees: bool,
}

/// Runs the comparison over all 15 pairings.
pub fn run(cfg: &DeviceConfig, scale: u32) -> (Vec<OracleRow>, Report) {
    let mps = MpsRuntime::new(cfg.clone());
    let heuristic = SlateRuntime::new(cfg.clone());
    let no_corun = SlateRuntime::with_options(
        cfg.clone(),
        SlateOptions {
            enable_corun: false,
            ..SlateOptions::default()
        },
    );

    let mut report = Report::new(
        "oracle",
        "Heuristic policy vs oracle selection",
        "Slate's table-driven selection balances accuracy and simplicity; an \
         oracle that measures both schedules per pairing should gain little, \
         showing the heuristic captures almost all of the opportunity.",
    );
    let mut t = Table::new(
        "ANTT per pairing (lower is better)",
        &[
            "Pair",
            "Heuristic",
            "Oracle",
            "Oracle edge",
            "Choices differ",
        ],
    );

    let mut rows = Vec::new();
    for (a, b) in Benchmark::all_pairings() {
        let apps = [a.app().scaled_down(scale), b.app().scaled_down(scale)];
        let solos = [mps.solo_time(&apps[0]), mps.solo_time(&apps[1])];
        let antt_h = heuristic.run(&apps).antt(&solos);
        let antt_forbidden = no_corun.run(&apps).antt(&solos);
        // The heuristic run either co-ran (then `antt_h` is the corun
        // figure) or didn't (then both runs serialize and agree); the
        // oracle picks the min of the two schedules.
        let antt_o = antt_h.min(antt_forbidden);
        let disagrees = antt_forbidden < antt_h * 0.999;
        t.row(&[
            format!("{}-{}", a.abbrev(), b.abbrev()),
            f(antt_h, 3),
            f(antt_o, 3),
            pct(antt_h / antt_o - 1.0),
            if disagrees { "yes" } else { "no" }.to_string(),
        ]);
        rows.push(OracleRow {
            pair: (a, b),
            antt_heuristic: antt_h,
            antt_oracle: antt_o,
            oracle_disagrees: disagrees,
        });
    }
    report.tables.push(t);

    let worst_regret = rows
        .iter()
        .map(|r| r.antt_heuristic / r.antt_oracle - 1.0)
        .fold(0.0f64, f64::max);
    let mean_regret = rows
        .iter()
        .map(|r| r.antt_heuristic / r.antt_oracle - 1.0)
        .sum::<f64>()
        / rows.len() as f64;
    let disagreements = rows.iter().filter(|r| r.oracle_disagrees).count();
    report.note(format!(
        "mean regret {}, worst regret {}, oracle overrides the heuristic on \
         {disagreements}/15 pairings",
        pct(mean_regret),
        pct(worst_regret)
    ));

    report.check(
        "the heuristic's mean regret vs the oracle is small (< 2%)",
        mean_regret < 0.02,
    );
    report.check(
        "no pairing loses more than 5% to the oracle",
        worst_regret < 0.05,
    );
    report.check(
        "the oracle overrides the heuristic on at most a few pairings",
        disagreements <= 3,
    );
    (rows, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_is_near_oracle() {
        let (rows, report) = run(&DeviceConfig::titan_xp(), 12);
        assert_eq!(rows.len(), 15);
        assert!(report.all_pass(), "{}", report.to_text());
    }
}
