//! Fig. 5 bench — task-size sweep.
//!
//! Regenerates the paper's task-size sensitivity curve (the simulated
//! kernel times are printed and shape-checked in the setup) and benchmarks
//! the simulator's evaluation cost per (benchmark, task size) point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slate_gpu_sim::device::DeviceConfig;
use slate_harness::fig5;
use slate_kernels::workload::Benchmark;

fn bench(c: &mut Criterion) {
    let cfg = DeviceConfig::titan_xp();

    let (curves, report) = fig5::run(&cfg);
    println!("{}", report.to_text());
    assert!(report.all_pass(), "Fig. 5 shape regressed");
    let _ = curves;

    let mut g = c.benchmark_group("fig5_kernel_time");
    g.sample_size(30);
    for bench in [Benchmark::BS, Benchmark::GS] {
        for gsize in [1u32, 10, 50] {
            g.bench_with_input(
                BenchmarkId::new(bench.abbrev(), gsize),
                &gsize,
                |b, &gsize| {
                    b.iter(|| fig5::kernel_time(&cfg, bench, gsize));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
