//! Crash consistency for the daemon: durable WAL + snapshot/restore.
//!
//! The daemon's arbitration state is already event-sourced — every
//! decision is a pure function of the fed event batches — so durability
//! is exactly: persist the batches ([`wal`]), checkpoint the folded state
//! periodically so recovery replays only a suffix ([`snapshot`]), and
//! rebuild + re-adopt after a crash ([`recover`]). Layout on disk:
//!
//! ```text
//! <dir>/snap-00000000.json   pristine genesis anchor (written at start)
//! <dir>/wal-00000000.log     segment 0: one frame per fed batch + meta
//! <dir>/snap-00000001.json   cadence checkpoint, anchors segment 1
//! <dir>/wal-00000001.log     …
//! ```
//!
//! Snapshot `k` captures state as of the *start* of segment `k`; recovery
//! loads the newest readable snapshot and replays segments `≥ k`.
//! Compaction deletes everything below the newest snapshot — superseded
//! segments and snapshots alike.
//!
//! **Fsync policy.** Appends go straight to the file descriptor
//! (crash-of-the-process can lose nothing acknowledged); `sync_all` runs
//! at rotation, snapshot and freeze points (power-failure windows bounded
//! by the snapshot cadence). I/O errors during appends are counted and
//! surfaced via [`Durability::io_errors`] rather than propagated — an
//! arbitration decision that already happened cannot be un-made by a full
//! disk, and the counter lets operators alarm on it.

pub mod recover;
pub mod snapshot;
pub mod wal;

pub use recover::{full_log, recover_dir, Recovered};
pub use snapshot::{AllocMeta, DurableMeta, DurableSnapshot, SessionMeta, SNAPSHOT_FORMAT};
pub use wal::{WalIssue, WalRecord, WalScan};

use crate::placement::PlacementSnapshot;
use parking_lot::Mutex;
use snapshot::write_snapshot;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wal::SegmentWriter;

/// Knobs of the durability subsystem (see
/// [`DaemonOptions::durability`](crate::daemon::DaemonOptions)).
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Directory holding WAL segments and snapshots. Created if absent.
    pub dir: PathBuf,
    /// Batches appended to a segment before the layer is re-snapshotted
    /// and the log rotated. Smaller = faster recovery, more checkpoint
    /// I/O.
    pub snapshot_every: u64,
    /// Keep superseded segments and snapshots instead of compacting them
    /// away. The full-history placement log ([`full_log`]) stays
    /// verifiable from genesis; used by the crash harness, debuggers and
    /// anyone auditing a recovery.
    pub keep_all: bool,
}

impl DurabilityOptions {
    /// Durability under `dir` with the default cadence.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            snapshot_every: 64,
            keep_all: false,
        }
    }
}

#[derive(Debug)]
struct DurInner {
    writer: Option<SegmentWriter>,
    segment: u64,
    batches_since_snap: u64,
    meta: DurableMeta,
    frozen: bool,
}

/// The live durability runtime: one open WAL segment, the mirrored
/// session metadata, and the snapshot cadence counter. Shared by the
/// daemon's arbiter frontend (batch appends) and its session threads
/// (metadata appends).
#[derive(Debug)]
pub struct Durability {
    options: DurabilityOptions,
    epoch: u64,
    inner: Mutex<DurInner>,
    io_errors: AtomicU64,
}

impl Durability {
    /// Starts durability at `segment` in `epoch`: writes the anchoring
    /// snapshot of `placement` + `meta`, then opens the segment for
    /// appending. Fresh daemons start at segment 0, epoch 0 (the pristine
    /// genesis anchor); recovered daemons start one segment past the
    /// crashed log, one epoch up.
    pub fn start(
        options: DurabilityOptions,
        segment: u64,
        epoch: u64,
        placement: &PlacementSnapshot,
        meta: DurableMeta,
    ) -> io::Result<Arc<Self>> {
        std::fs::create_dir_all(&options.dir)?;
        write_snapshot(
            &options.dir,
            segment,
            &DurableSnapshot {
                format: SNAPSHOT_FORMAT,
                epoch,
                segment,
                placement: placement.clone(),
                meta: meta.clone(),
            },
        )?;
        let writer = SegmentWriter::create(&options.dir, segment)?;
        Ok(Arc::new(Self {
            options,
            epoch,
            inner: Mutex::new(DurInner {
                writer: Some(writer),
                segment,
                batches_since_snap: 0,
                meta,
                frozen: false,
            }),
            io_errors: AtomicU64::new(0),
        }))
    }

    /// The recovery epoch this incarnation runs in.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The durability directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.options.dir
    }

    /// Append I/O failures since start. Nonzero means the WAL has a gap:
    /// recovery from this log may miss state, and operators should treat
    /// the disk as suspect.
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// A clone of the mirrored session metadata.
    pub fn meta(&self) -> DurableMeta {
        self.inner.lock().meta.clone()
    }

    fn note_io<T>(&self, r: io::Result<T>) -> Option<T> {
        match r {
            Ok(v) => Some(v),
            Err(_) => {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Appends a metadata record (session/alloc/launch bookkeeping) and
    /// folds it into the mirror.
    pub fn append_meta(&self, record: &WalRecord) {
        let mut inner = self.inner.lock();
        if inner.frozen {
            return;
        }
        inner.meta.apply(record);
        let r = inner.writer.as_mut().map(|w| w.append(record));
        drop(inner);
        if let Some(r) = r {
            self.note_io(r);
        }
    }

    /// Appends one fed placement batch; on cadence, rotates the segment
    /// and writes a checkpoint of `placement_snap()` (called under the
    /// same lock the batch was produced under, so the snapshot anchors
    /// exactly the batches appended so far).
    pub fn append_batch(
        &self,
        batch: &crate::placement::PlacementBatch,
        placement_snap: impl FnOnce() -> PlacementSnapshot,
    ) {
        let mut inner = self.inner.lock();
        if inner.frozen {
            return;
        }
        let record = WalRecord::Batch {
            batch: batch.clone(),
        };
        if let Some(w) = inner.writer.as_mut() {
            if w.append(&record).is_err() {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.batches_since_snap += 1;
        if inner.batches_since_snap < self.options.snapshot_every {
            return;
        }
        // Rotate first, then anchor the new segment with the checkpoint:
        // a crash between the two leaves the previous snapshot + a full
        // replay of the (closed) old segment — nothing lost.
        inner.batches_since_snap = 0;
        if let Some(w) = inner.writer.as_mut() {
            let _ = w.sync();
        }
        inner.segment += 1;
        let seg = inner.segment;
        match SegmentWriter::create(&self.options.dir, seg) {
            Ok(w) => inner.writer = Some(w),
            Err(_) => {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let snap = DurableSnapshot {
            format: SNAPSHOT_FORMAT,
            epoch: self.epoch,
            segment: seg,
            placement: placement_snap(),
            meta: inner.meta.clone(),
        };
        if write_snapshot(&self.options.dir, seg, &snap).is_err() {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        drop(inner);
        if !self.options.keep_all {
            self.compact();
        }
    }

    /// Deletes segments and snapshots superseded by the newest snapshot.
    /// No-op under `keep_all`. Best-effort: removal failures are counted,
    /// not fatal — stale files only cost disk.
    pub fn compact(&self) {
        if self.options.keep_all {
            return;
        }
        let newest = {
            let inner = self.inner.lock();
            inner.segment
        };
        let dir = &self.options.dir;
        for (k, path) in wal::list_segments(dir).unwrap_or_default() {
            if k < newest && self.note_io(std::fs::remove_file(path)).is_none() {
                return;
            }
        }
        for (k, path) in wal::list_snapshots(dir).unwrap_or_default() {
            if k < newest && self.note_io(std::fs::remove_file(path)).is_none() {
                return;
            }
        }
    }

    /// Stops all appends (used at shutdown and at the crash point of the
    /// kill harness) after syncing what was written. Idempotent.
    pub fn freeze(&self) {
        let mut inner = self.inner.lock();
        if inner.frozen {
            return;
        }
        inner.frozen = true;
        let r = inner.writer.as_mut().map(|w| w.sync());
        drop(inner);
        if let Some(r) = r {
            self.note_io(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{PlacementConfig, PlacementLayer};
    use slate_gpu_sim::device::DeviceConfig;
    use std::path::Path;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "slate-dur-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn count(dir: &Path) -> (usize, usize) {
        (
            wal::list_segments(dir).unwrap().len(),
            wal::list_snapshots(dir).unwrap().len(),
        )
    }

    #[test]
    fn cadence_rotates_snapshots_and_compacts() {
        let dir = tmpdir("cadence");
        let mut layer =
            PlacementLayer::new(vec![DeviceConfig::tiny(8)], PlacementConfig::default());
        let mut options = DurabilityOptions::new(&dir);
        options.snapshot_every = 2;
        let d = Durability::start(options, 0, 0, &layer.snapshot(), DurableMeta::default())
            .expect("start");
        for i in 0..5u64 {
            let events = vec![crate::arbiter::Event::SessionOpened { session: i + 1 }];
            let routed = layer.feed(i * 10, &events);
            d.append_batch(
                &crate::placement::PlacementBatch {
                    at: i * 10,
                    events,
                    routed,
                },
                || layer.snapshot(),
            );
        }
        // 5 batches at cadence 2: rotated after 2 and 4; compaction keeps
        // only the newest segment + snapshot pair.
        let (segs, snaps) = count(&dir);
        assert_eq!((segs, snaps), (1, 1), "compaction retired the rest");
        let rec = recover_dir(&dir).expect("recover");
        assert!(rec.issues.is_empty());
        assert_eq!(rec.last_segment, 2);
        assert_eq!(
            serde_json::to_string(&rec.layer.snapshot()).unwrap(),
            serde_json::to_string(&layer.snapshot()).unwrap(),
            "recovered layer matches the live one"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn keep_all_retains_full_history_for_the_genesis_log() {
        let dir = tmpdir("keepall");
        let mut layer =
            PlacementLayer::new(vec![DeviceConfig::tiny(8)], PlacementConfig::default());
        let mut options = DurabilityOptions::new(&dir);
        options.snapshot_every = 2;
        options.keep_all = true;
        let d = Durability::start(options, 0, 0, &layer.snapshot(), DurableMeta::default())
            .expect("start");
        for i in 0..5u64 {
            let events = vec![crate::arbiter::Event::SessionOpened { session: i + 1 }];
            let routed = layer.feed(i * 10, &events);
            d.append_batch(
                &crate::placement::PlacementBatch {
                    at: i * 10,
                    events,
                    routed,
                },
                || layer.snapshot(),
            );
        }
        d.freeze();
        let (segs, snaps) = count(&dir);
        assert_eq!((segs, snaps), (3, 3), "nothing compacted");
        let log = full_log(&dir).expect("full log");
        assert_eq!(log.batches.len(), 5);
        crate::placement::replay::verify(&log).expect("full history verifies from genesis");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn frozen_durability_drops_appends() {
        let dir = tmpdir("frozen");
        let layer = PlacementLayer::new(vec![DeviceConfig::tiny(8)], PlacementConfig::default());
        let d = Durability::start(
            DurabilityOptions::new(&dir),
            0,
            0,
            &layer.snapshot(),
            DurableMeta::default(),
        )
        .expect("start");
        d.freeze();
        d.freeze(); // idempotent
        d.append_meta(&WalRecord::SessionMeta {
            session: 9,
            user: "late".into(),
            slo: Default::default(),
        });
        assert!(
            d.meta().sessions.is_empty(),
            "append after freeze is a no-op"
        );
        let rec = recover_dir(&dir).expect("recover");
        assert!(rec.meta.sessions.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
