//! Conformance suite for the multi-device placement layer.
//!
//! Three families of guarantees, pinned against every routing policy and
//! a range of device counts:
//!
//! 1. **Routing conformance** — every session lands on exactly one valid
//!    device, the route is sticky for the session's lifetime, lease
//!    events follow it, and jobs driven through real backends complete
//!    exactly once wherever they land (including across a mid-flight
//!    migration, checked with functional hit buffers).
//! 2. **Determinism** — the layer is a pure function of its event
//!    script: the same script through two fresh layers produces
//!    byte-identical transcripts. This is the test that catches a map
//!    with nondeterministic iteration order sneaking back onto the
//!    decision path (the reason the layer and the profile table use
//!    ordered maps throughout).
//! 3. **Golden fixture** — a checked-in multi-device recording
//!    (`tests/data/placement_log.json`) replays byte-identically, splits
//!    into per-device `EventLog`s that verify through the single-device
//!    replay machinery, and is reproduced exactly by a fresh run of the
//!    fixture script.
//! 4. **Failure domains** — killing one device of a live fleet
//!    mid-churn loses no user block and duplicates none (hit buffers),
//!    the recording of the failure run replays byte-identically, and a
//!    second golden fixture (`tests/data/placement_failure_log.json`)
//!    pins the evacuation + probation re-admission decision sequence. A
//!    seeded soak (honoring `SLATE_CHAOS_SEED`) rolls losses and stalls
//!    across the fleet for CI to re-seed nightly.
//!
//! After an *intended* placement change, regenerate the fixtures with
//! `cargo test -p slate-core --test placement_conformance -- --ignored`.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use slate_core::arbiter::{replay as core_replay, Command, Event, Tick};
use slate_core::backend::testkit::{assert_exactly_once, counter_kernel};
use slate_core::backend::{DeviceFault, DispatcherBackend};
use slate_core::classify::WorkloadClass;
use slate_core::placement::replay::{self as placement_replay, PlacementLog};
use slate_core::placement::{
    MultiJob, MultiSim, PlacementConfig, PlacementLayer, PlacementPolicy, RebalanceConfig,
};
use slate_gpu_sim::device::DeviceConfig;
use std::collections::BTreeMap;

const LOG_JSON: &str = include_str!("data/placement_log.json");
const GOLDEN_TRANSCRIPT: &str = include_str!("data/placement_transcript.txt");
const FAILURE_LOG_JSON: &str = include_str!("data/placement_failure_log.json");
const FAILURE_TRANSCRIPT: &str = include_str!("data/placement_failure_transcript.txt");

/// The policies under test. Affinity pins odd sessions to the last
/// device so both the pinned and the round-robin fallback paths run.
fn policies(devices: usize) -> Vec<PlacementPolicy> {
    let pins: BTreeMap<u64, usize> = (0..16u64)
        .filter(|s| s % 2 == 1)
        .map(|s| (s, devices - 1))
        .collect();
    vec![
        PlacementPolicy::RoundRobin,
        PlacementPolicy::LeastLoaded,
        PlacementPolicy::Affinity { pins },
    ]
}

fn ready(session: u64, lease: u64, demand: u32) -> Event {
    Event::KernelReady {
        session,
        lease,
        class: if lease % 3 == 0 {
            WorkloadClass::MM
        } else {
            WorkloadClass::LC
        },
        sm_demand: demand,
        pinned_solo: false,
        deadline_ms: None,
    }
}

/// A deterministic event script over `sessions` sessions: open, launch a
/// kernel or two, finish, close — with demands and interleaving derived
/// from `seed` via a xorshift stream (no ambient randomness).
fn script(sessions: u64, seed: u64) -> Vec<(Tick, Vec<Event>)> {
    let mut s = seed | 1;
    let mut rng = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut out: Vec<(Tick, Vec<Event>)> = Vec::new();
    let mut t: Tick = 0;
    for session in 0..sessions {
        t += 10;
        out.push((t, vec![Event::SessionOpened { session }]));
        let launches = 1 + rng() % 2;
        for k in 0..launches {
            let lease = session * 10 + k;
            let demand = 1 + (rng() % 8) as u32;
            t += 10;
            out.push((t, vec![ready(session, lease, demand)]));
        }
        if session % 2 == 0 {
            t += 10;
            out.push((t, vec![Event::DeadlineTick]));
        }
        for k in 0..launches {
            let lease = session * 10 + k;
            t += 10;
            out.push((t, vec![Event::KernelFinished { lease, ok: true }]));
        }
        t += 10;
        out.push((t, vec![Event::SessionClosed { session }]));
    }
    out
}

/// Runs `script` through a fresh recording layer and returns its log.
fn record(devices: usize, policy: PlacementPolicy, sc: &[(Tick, Vec<Event>)]) -> PlacementLog {
    let mut layer = PlacementLayer::new(
        (0..devices).map(|_| DeviceConfig::tiny(8)).collect(),
        PlacementConfig {
            policy,
            ..Default::default()
        },
    );
    layer.start_recording();
    for (at, events) in sc {
        layer.feed(*at, events);
    }
    layer.take_log().expect("recording was on")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every session routes to exactly one in-range device, stays there
    /// for its whole lifetime, and its leases follow it — for every
    /// policy at every device count.
    #[test]
    fn sessions_land_on_exactly_one_device(devices in 1usize..5, sessions in 1u64..10,
                                           seed in 1u64..u64::MAX) {
        for policy in policies(devices) {
            let mut layer = PlacementLayer::new(
                (0..devices).map(|_| DeviceConfig::tiny(8)).collect(),
                PlacementConfig { policy: policy.clone(), ..Default::default() },
            );
            let mut routes: BTreeMap<u64, usize> = BTreeMap::new();
            for (at, events) in script(sessions, seed) {
                let routed = layer.feed(at, &events);
                for r in &routed {
                    prop_assert!(r.device < devices, "{policy:?}: device out of range");
                }
                for ev in &events {
                    let (session, lease) = match *ev {
                        Event::SessionOpened { session } => (session, None),
                        Event::KernelReady { session, lease, .. } => (session, Some(lease)),
                        _ => continue,
                    };
                    let d = layer.device_of_session(session)
                        .expect("open session is routed");
                    prop_assert!(d < devices);
                    // Sticky: the first observed route never changes.
                    let first = *routes.entry(session).or_insert(d);
                    prop_assert_eq!(first, d, "{:?}: session moved devices", policy);
                    if let Some(lease) = lease {
                        prop_assert_eq!(layer.device_of_lease(lease), Some(d),
                            "{:?}: lease strayed from its session", policy);
                    }
                }
            }
            // Everything closed: routing tables are empty again and the
            // per-core aggregates agree with the sum over cores.
            for s in 0..sessions {
                prop_assert_eq!(layer.device_of_session(s), None);
            }
            let per_core: usize = (0..devices).map(|d| layer.core(d).residents()).sum();
            prop_assert_eq!(layer.residents(), per_core);
            prop_assert_eq!(layer.stats().sessions_routed, sessions);
        }
    }

    /// The layer is deterministic: one script, two fresh layers, equal
    /// command streams. An unordered map feeding routing or arbitration
    /// decisions fails this within a handful of cases.
    #[test]
    fn identical_scripts_replay_identically(devices in 1usize..5, sessions in 1u64..10,
                                            seed in 1u64..u64::MAX) {
        for policy in policies(devices) {
            let sc = script(sessions, seed);
            let a = record(devices, policy.clone(), &sc);
            let b = record(devices, policy.clone(), &sc);
            prop_assert_eq!(
                placement_replay::transcript(&a.batches),
                placement_replay::transcript(&b.batches),
                "{:?}: two fresh runs of one script diverged", policy
            );
            placement_replay::verify(&a)
                .map_err(|e| TestCaseError::fail(format!("{policy:?}: {e}")))?;
            // And the split per-core logs verify through the
            // single-device machinery.
            let cores = placement_replay::split(&a)
                .map_err(|e| TestCaseError::fail(format!("{policy:?}: {e}")))?;
            prop_assert_eq!(cores.len(), devices);
            for (i, core_log) in cores.iter().enumerate() {
                core_replay::verify(core_log)
                    .map_err(|e| TestCaseError::fail(format!("core {i}: {e}")))?;
            }
        }
    }
}

/// Jobs driven through functional backends complete exactly once on every
/// policy × device count, hit buffers proving no block ran twice or was
/// lost — even without any migration in play.
#[test]
fn every_policy_completes_jobs_exactly_once() {
    for devices in 1usize..=3 {
        for policy in policies(devices) {
            let mut fleet = MultiSim::with_backends(
                (0..devices)
                    .map(|_| {
                        Box::new(DispatcherBackend::new(DeviceConfig::tiny(4)))
                            as Box<dyn slate_core::backend::Backend>
                    })
                    .collect(),
                PlacementConfig {
                    policy: policy.clone(),
                    ..Default::default()
                },
            );
            let total: u32 = 120;
            let mut buffers = Vec::new();
            for session in 0..4u64 {
                let (kernel, hits) = counter_kernel(total, 0);
                assert!(
                    fleet.submit(MultiJob {
                        session,
                        lease: session,
                        kernel,
                        task_size: 4,
                        class: WorkloadClass::MM,
                        sm_demand: 4,
                        est_ms: Some(5),
                    }),
                    "{policy:?}/{devices}: job must be admitted"
                );
                buffers.push(hits);
            }
            assert!(fleet.run(60_000), "{policy:?}/{devices}: fleet must drain");
            for (lease, hits) in buffers.iter().enumerate() {
                assert_exactly_once(hits, total as u64);
                let outcome = fleet.outcome(lease as u64).expect("job has an outcome");
                match outcome {
                    slate_core::placement::multi::JobOutcome::Completed { device } => {
                        assert!(device < devices, "{policy:?}: completed off-fleet")
                    }
                    other => panic!("{policy:?}/{devices}: lease {lease} ended {other:?}"),
                }
            }
            assert_eq!(fleet.stats().sessions_routed, 4);
        }
    }
}

/// A rebalance migration across 2- and 3-device functional fleets keeps
/// the exactly-once guarantee: the migrated kernel's hit buffer shows
/// each block executed once across source and target devices.
#[test]
fn rebalance_preserves_exactly_once_across_device_counts() {
    for devices in 2usize..=3 {
        // Pin both sessions to device 0 so the pile-up forces the
        // rebalancer to move one of them off.
        let pins: BTreeMap<u64, usize> = [(1u64, 0usize), (2, 0)].into_iter().collect();
        let mut fleet = MultiSim::with_backends(
            (0..devices)
                .map(|_| {
                    Box::new(DispatcherBackend::new(DeviceConfig::tiny(4)))
                        as Box<dyn slate_core::backend::Backend>
                })
                .collect(),
            PlacementConfig {
                policy: PlacementPolicy::Affinity { pins },
                rebalance: Some(RebalanceConfig {
                    high_ms: 15,
                    low_ms: 5,
                    cooldown_us: 0,
                    seed: 7,
                }),
                ..Default::default()
            },
        );
        let total: u32 = 600;
        let (k1, hits1) = counter_kernel(total, 30);
        let (k2, hits2) = counter_kernel(total, 30);
        for (session, kernel) in [(1u64, k1), (2, k2)] {
            assert!(fleet.submit(MultiJob {
                session,
                lease: session,
                kernel,
                task_size: 4,
                class: WorkloadClass::MM,
                sm_demand: 4,
                est_ms: Some(20),
            }));
        }
        assert!(fleet.run(120_000), "{devices}-device fleet must drain");
        assert!(
            fleet.stats().rebalances >= 1,
            "{devices}-device pile-up must fire a migration"
        );
        let (lease, src, dst, progress) = fleet.migrations()[0];
        assert_ne!(src, dst, "migration crosses devices");
        assert!(dst < devices);
        assert!(
            progress < total as u64,
            "migration caught lease {lease} mid-flight (progress {progress})"
        );
        assert_exactly_once(&hits1, total as u64);
        assert_exactly_once(&hits2, total as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Killing one device of a live functional fleet mid-churn loses no
    /// user block and duplicates none: every job still completes exactly
    /// once (kernel-visible hit buffers), and the recording of the whole
    /// run — failure, evacuation and all — replays byte-identically and
    /// splits into per-core logs that verify.
    #[test]
    fn killing_one_device_mid_churn_keeps_exactly_once(devices in 2usize..=3,
                                                       victim_pick in 0usize..16,
                                                       kill_at in 1u64..4) {
        let victim = victim_pick % devices;
        let mut fleet = MultiSim::with_backends(
            (0..devices)
                .map(|_| {
                    Box::new(DispatcherBackend::new(DeviceConfig::tiny(4)))
                        as Box<dyn slate_core::backend::Backend>
                })
                .collect(),
            PlacementConfig::default(),
        );
        fleet.layer_mut().start_recording();
        let total: u32 = 400;
        let mut buffers = Vec::new();
        for session in 0..devices as u64 {
            let (kernel, hits) = counter_kernel(total, 30);
            prop_assert!(fleet.submit(MultiJob {
                session,
                lease: session,
                kernel,
                task_size: 4,
                class: WorkloadClass::MM,
                sm_demand: 4,
                est_ms: Some(20),
            }));
            buffers.push(hits);
        }
        for _ in 0..kill_at {
            fleet.tick();
        }
        fleet.fail_device(victim);
        prop_assert!(fleet.run(120_000), "a fleet with a dead device must still drain");
        for (lease, hits) in buffers.iter().enumerate() {
            assert_exactly_once(hits, total as u64);
            match fleet.outcome(lease as u64) {
                Some(slate_core::placement::multi::JobOutcome::Completed { device }) => {
                    prop_assert!(device < devices);
                }
                other => {
                    return Err(TestCaseError::fail(format!("lease {lease} ended {other:?}")));
                }
            }
        }
        let log = fleet.layer_mut().take_log().expect("recording was on");
        placement_replay::verify(&log).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let cores = placement_replay::split(&log)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        for (i, core_log) in cores.iter().enumerate() {
            core_replay::verify(core_log)
                .map_err(|e| TestCaseError::fail(format!("core {i}: {e}")))?;
        }
    }
}

/// Seeded device-failure soak: waves of functional jobs churn through a
/// three-device fleet while a seeded schedule of hard losses, recoveries
/// and stalls rolls across it — at most one device hard-down at a time,
/// so the fleet always has somewhere to evacuate. Honors
/// `SLATE_CHAOS_SEED` (decimal or `0x`-prefixed hex) so CI can soak
/// fresh seeds nightly; defaults to a fixed seed locally.
#[test]
fn seeded_device_failure_soak_keeps_exactly_once() {
    let seed = std::env::var("SLATE_CHAOS_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim().to_string();
            match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(0xC0FFEE);
    let devices = 3usize;
    let mut fleet = MultiSim::with_backends(
        (0..devices)
            .map(|_| {
                Box::new(DispatcherBackend::new(DeviceConfig::tiny(4)))
                    as Box<dyn slate_core::backend::Backend>
            })
            .collect(),
        PlacementConfig::default(),
    );
    fleet.layer_mut().start_recording();
    let mut s = seed | 1;
    let mut rng = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let total: u32 = 240;
    let mut buffers = Vec::new();
    let mut down: Option<usize> = None;
    for wave in 0..3u64 {
        for j in 0..3u64 {
            let lease = wave * 3 + j;
            let (kernel, hits) = counter_kernel(total, 20);
            assert!(
                fleet.submit(MultiJob {
                    session: lease,
                    lease,
                    kernel,
                    task_size: 4,
                    class: WorkloadClass::MM,
                    sm_demand: 4,
                    est_ms: Some(10),
                }),
                "seed {seed:#x}: wave {wave} job {j} must be admitted"
            );
            buffers.push(hits);
        }
        // A few seeded strikes per wave. Only the `down` slot may be
        // hard-lost; stalls merely degrade (still a routing target), so
        // an eligible evacuation destination always exists.
        for _ in 0..4 {
            fleet.tick();
            match (rng() % 4, down) {
                (0, None) => {
                    let d = (rng() as usize) % devices;
                    fleet.fail_device(d);
                    down = Some(d);
                }
                (1, Some(d)) => {
                    fleet.recover_device(d);
                    down = None;
                }
                (2, _) => {
                    let d = (rng() as usize) % devices;
                    if down != Some(d) {
                        fleet.inject_device_fault(
                            d,
                            DeviceFault::Degraded {
                                millis: 1 + rng() % 4,
                            },
                        );
                    }
                }
                _ => {}
            }
        }
    }
    if let Some(d) = down {
        fleet.recover_device(d);
    }
    assert!(
        fleet.run(120_000),
        "seed {seed:#x}: soaked fleet must drain"
    );
    for (lease, hits) in buffers.iter().enumerate() {
        assert_exactly_once(hits, total as u64);
        match fleet.outcome(lease as u64) {
            Some(slate_core::placement::multi::JobOutcome::Completed { device }) => {
                assert!(device < devices, "seed {seed:#x}: completed off-fleet");
            }
            other => panic!("seed {seed:#x}: lease {lease} ended {other:?}"),
        }
    }
    let log = fleet.layer_mut().take_log().expect("recording was on");
    placement_replay::verify(&log)
        .unwrap_or_else(|e| panic!("seed {seed:#x}: soak log replays: {e}"));
    let cores = placement_replay::split(&log)
        .unwrap_or_else(|e| panic!("seed {seed:#x}: soak log splits: {e}"));
    for (i, core_log) in cores.iter().enumerate() {
        core_replay::verify(core_log)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: core {i} verifies: {e}"));
    }
}

/// The fixed workload behind the golden fixture: three devices under the
/// affinity policy with everything pinned to device 0, so the recording
/// exercises dispatch, queueing, the rebalancer's migration eviction, the
/// route flip on the eviction's `KernelFinished`, and the re-staged
/// dispatch on the target device — all in one deterministic script.
fn record_fixture_run() -> PlacementLog {
    let pins: BTreeMap<u64, usize> = [(1u64, 0usize), (2, 0), (3, 0)].into_iter().collect();
    let mut layer = PlacementLayer::new(
        vec![
            DeviceConfig::tiny(8),
            DeviceConfig::tiny(8),
            DeviceConfig::tiny(16),
        ],
        PlacementConfig {
            policy: PlacementPolicy::Affinity { pins },
            rebalance: Some(RebalanceConfig {
                high_ms: 20,
                low_ms: 5,
                cooldown_us: 0,
                seed: 11,
            }),
            ..Default::default()
        },
    );
    layer.start_recording();
    layer.feed(
        0,
        &[
            Event::SessionOpened { session: 1 },
            Event::SessionOpened { session: 2 },
            Event::SessionOpened { session: 3 },
        ],
    );
    // Three kernels piled onto device 0: one resident, two waiting —
    // enough imbalance for the rebalancer to evict the resident.
    layer.feed(10, &[ready(1, 10, 8), ready(2, 20, 8), ready(3, 30, 8)]);
    // The migration eviction lands; the lease's route flips to the target.
    layer.feed(
        20,
        &[Event::KernelFinished {
            lease: 10,
            ok: false,
        }],
    );
    // Re-staged readiness dispatches on the target device.
    layer.feed(30, &[ready(1, 10, 8)]);
    layer.feed(
        40,
        &[Event::KernelFinished {
            lease: 20,
            ok: true,
        }],
    );
    layer.feed(
        50,
        &[Event::KernelFinished {
            lease: 30,
            ok: true,
        }],
    );
    layer.feed(
        60,
        &[Event::KernelFinished {
            lease: 10,
            ok: true,
        }],
    );
    layer.feed(
        70,
        &[
            Event::SessionClosed { session: 1 },
            Event::SessionClosed { session: 2 },
            Event::SessionClosed { session: 3 },
        ],
    );
    layer.take_log().expect("recording was on")
}

/// The fixed workload behind the device-failure golden fixture: three
/// devices round-robin, one session per device, then device 0 hard-fails
/// mid-flight. The recording pins the whole failure-domain decision
/// sequence: the evacuation's synthesized `Evict`, the route flip on its
/// `KernelFinished`, the re-staged dispatch on the target, the seeded
/// probation after `DeviceUp`, and the re-admission of the healed device
/// as a routing target once probation expires.
fn record_failure_fixture_run() -> PlacementLog {
    let mut layer = PlacementLayer::new(
        vec![
            DeviceConfig::tiny(8),
            DeviceConfig::tiny(8),
            DeviceConfig::tiny(8),
        ],
        PlacementConfig::default(),
    );
    layer.start_recording();
    layer.feed(
        0,
        &[
            Event::SessionOpened { session: 1 },
            Event::SessionOpened { session: 2 },
            Event::SessionOpened { session: 3 },
        ],
    );
    layer.feed(10, &[ready(1, 10, 8), ready(2, 20, 8), ready(3, 30, 8)]);
    // Device 0 drops off the bus: health goes Failed, and the layer
    // synthesizes the evacuation eviction for its resident lease.
    layer.feed(
        20,
        &[Event::DeviceDown {
            device: 0,
            hard: true,
        }],
    );
    // The eviction lands; the migration completes and the route flips.
    layer.feed(
        30,
        &[Event::KernelFinished {
            lease: 10,
            ok: false,
        }],
    );
    // Re-staged readiness dispatches on the evacuation target.
    layer.feed(40, &[ready(1, 10, 8)]);
    // The device comes back — into seeded probation, not service.
    layer.feed(50, &[Event::DeviceUp { device: 0 }]);
    layer.feed(
        60,
        &[Event::KernelFinished {
            lease: 20,
            ok: true,
        }],
    );
    layer.feed(
        70,
        &[Event::KernelFinished {
            lease: 30,
            ok: true,
        }],
    );
    layer.feed(
        80,
        &[Event::KernelFinished {
            lease: 10,
            ok: true,
        }],
    );
    layer.feed(
        90,
        &[
            Event::SessionClosed { session: 1 },
            Event::SessionClosed { session: 2 },
            Event::SessionClosed { session: 3 },
        ],
    );
    // Far past the probation window: the healed device takes traffic
    // again (round robin wraps back to device 0).
    layer.feed(20_000, &[Event::SessionOpened { session: 4 }]);
    layer.feed(20_010, &[ready(4, 40, 8)]);
    layer.feed(
        20_020,
        &[Event::KernelFinished {
            lease: 40,
            ok: true,
        }],
    );
    layer.feed(20_030, &[Event::SessionClosed { session: 4 }]);
    layer.take_log().expect("recording was on")
}

#[test]
fn checked_in_failure_log_replays_to_the_golden_transcript() {
    let log: PlacementLog = serde_json::from_str(FAILURE_LOG_JSON).expect("fixture parses");
    placement_replay::verify(&log).expect("checked-in failure log replays to its own routing");
    let transcript = placement_replay::transcript(&placement_replay::replay(&log));
    assert_eq!(
        transcript, FAILURE_TRANSCRIPT,
        "failure replay transcript diverged from the golden fixture"
    );
}

#[test]
fn failure_fixture_contains_the_interesting_decisions() {
    let log: PlacementLog = serde_json::from_str(FAILURE_LOG_JSON).expect("fixture parses");
    let events = || log.batches.iter().flat_map(|b| b.events.iter());
    assert!(
        events().any(|e| matches!(e, Event::DeviceDown { hard: true, .. })),
        "the fixture must record a hard device loss"
    );
    assert!(
        events().any(|e| matches!(e, Event::DeviceUp { .. })),
        "the fixture must record the device's return"
    );
    let routed = || log.batches.iter().flat_map(|b| b.routed.iter());
    assert!(
        routed().any(|r| r.device == 0 && matches!(r.command, Command::Evict { .. })),
        "the failure must synthesize an evacuation eviction on the dead device"
    );
    // After the failure (t=20), the evacuated lease dispatches off
    // device 0; after probation expires (t=20_000), device 0 serves again.
    let late_dispatches: Vec<(u64, usize)> = log
        .batches
        .iter()
        .flat_map(|b| b.routed.iter().map(move |r| (b.at, r)))
        .filter(|(_, r)| matches!(r.command, Command::Dispatch { .. }))
        .map(|(at, r)| (at, r.device))
        .collect();
    assert!(
        late_dispatches
            .iter()
            .any(|&(at, d)| (20..20_000).contains(&at) && d != 0),
        "the evacuated kernel must re-dispatch off the dead device: {late_dispatches:?}"
    );
    assert!(
        late_dispatches
            .iter()
            .any(|&(at, d)| at >= 20_000 && d == 0),
        "the healed device must take traffic after probation: {late_dispatches:?}"
    );
}

#[test]
fn live_run_reproduces_the_checked_in_failure_log() {
    let log: PlacementLog = serde_json::from_str(FAILURE_LOG_JSON).expect("fixture parses");
    let fresh = record_failure_fixture_run();
    assert_eq!(
        placement_replay::transcript(&placement_replay::replay(&fresh)),
        FAILURE_TRANSCRIPT,
        "a fresh failure run diverged from the golden transcript"
    );
    assert_eq!(
        fresh, log,
        "a fresh failure run diverged from the checked-in log"
    );
}

#[test]
fn checked_in_failure_log_splits_into_per_core_logs_that_verify() {
    let log: PlacementLog = serde_json::from_str(FAILURE_LOG_JSON).expect("fixture parses");
    let cores = placement_replay::split(&log).expect("split succeeds");
    assert_eq!(cores.len(), log.devices.len());
    for (i, core_log) in cores.iter().enumerate() {
        core_replay::verify(core_log)
            .unwrap_or_else(|e| panic!("per-core failure log {i} must verify: {e}"));
    }
    // The dead device's split log still records the `DeviceDown` that
    // killed it — a single core sees its own failure domain's history.
    assert!(
        cores[0]
            .batches
            .iter()
            .flat_map(|b| b.events.iter())
            .any(|e| matches!(e, Event::DeviceDown { hard: true, .. })),
        "device 0's split log must carry its own DeviceDown"
    );
}

#[test]
fn checked_in_placement_log_replays_to_the_golden_transcript() {
    let log: PlacementLog = serde_json::from_str(LOG_JSON).expect("fixture parses");
    placement_replay::verify(&log).expect("checked-in log replays to its own routing");
    let transcript = placement_replay::transcript(&placement_replay::replay(&log));
    assert_eq!(
        transcript, GOLDEN_TRANSCRIPT,
        "placement replay transcript diverged from the golden fixture"
    );
}

#[test]
fn fixture_log_contains_the_interesting_decisions() {
    // Guards against the fixture silently degenerating into a trivial log.
    let log: PlacementLog = serde_json::from_str(LOG_JSON).expect("fixture parses");
    let routed = || log.batches.iter().flat_map(|b| b.routed.iter());
    assert!(log.devices.len() >= 3, "fixture must be multi-device");
    assert!(routed().any(|r| matches!(r.command, Command::Dispatch { .. })));
    assert!(
        routed().any(|r| matches!(r.command, Command::Evict { .. })),
        "the fixture must exercise a rebalance migration eviction"
    );
    let devices_used: std::collections::BTreeSet<usize> = routed().map(|r| r.device).collect();
    assert!(
        devices_used.len() >= 2,
        "fixture routing must span multiple devices, got {devices_used:?}"
    );
}

#[test]
fn live_run_reproduces_the_checked_in_placement_log() {
    let log: PlacementLog = serde_json::from_str(LOG_JSON).expect("fixture parses");
    let fresh = record_fixture_run();
    assert_eq!(
        placement_replay::transcript(&placement_replay::replay(&fresh)),
        GOLDEN_TRANSCRIPT,
        "a fresh run diverged from the golden transcript"
    );
    assert_eq!(fresh, log, "a fresh run diverged from the checked-in log");
}

#[test]
fn checked_in_log_splits_into_per_core_logs_that_verify() {
    let log: PlacementLog = serde_json::from_str(LOG_JSON).expect("fixture parses");
    let cores = placement_replay::split(&log).expect("split succeeds");
    assert_eq!(cores.len(), log.devices.len());
    for (i, core_log) in cores.iter().enumerate() {
        assert_eq!(core_log.device, log.devices[i]);
        core_replay::verify(core_log)
            .unwrap_or_else(|e| panic!("per-core log {i} must verify: {e}"));
    }
    // Every core-emitted routed command appears in its device's split
    // log at the same timestamp — nothing is lost or re-homed. Rebalance
    // evictions are exempt: the layer synthesizes them *above* the
    // cores (the source core only learns of the departure from the
    // eviction's `KernelFinished`), so they exist in the placement log
    // alone.
    for b in &log.batches {
        for r in &b.routed {
            if matches!(r.command, Command::Evict { .. }) {
                continue;
            }
            assert!(
                cores[r.device]
                    .batches
                    .iter()
                    .any(|cb| cb.at == b.at && cb.commands.contains(&r.command)),
                "routed command {r} missing from device {} log",
                r.device
            );
        }
    }
}

#[test]
fn placement_log_survives_a_json_roundtrip() {
    let log: PlacementLog = serde_json::from_str(LOG_JSON).expect("fixture parses");
    let json = serde_json::to_string_pretty(&log).expect("log serializes");
    let back: PlacementLog = serde_json::from_str(&json).expect("roundtrip parses");
    assert_eq!(back, log);
}

/// The profile table persists identically whatever order kernels were
/// profiled in — scheduling inputs must not encode historical accident.
/// (The table is a `BTreeMap` precisely so this holds structurally, not
/// just through the serializer's politeness.)
#[test]
fn profile_table_save_bytes_are_insertion_order_independent() {
    use slate_core::profile::{KernelProfile, ProfileTable};
    let profile = |name: &str, rate: f64| KernelProfile {
        name: name.to_string(),
        gflops: rate,
        bandwidth_gbs: rate * 2.0,
        block_rate: rate * 1e3,
        class: WorkloadClass::MM,
        sm_demand: 8,
        best_task_size: 10,
    };
    let mut forward = ProfileTable::new();
    let mut reverse = ProfileTable::new();
    let names = ["mm", "bs", "rg", "tr", "gs"];
    for (i, n) in names.iter().enumerate() {
        forward.insert(profile(n, (i + 1) as f64));
    }
    for (i, n) in names.iter().enumerate().rev() {
        reverse.insert(profile(n, (i + 1) as f64));
    }
    let dir = std::env::temp_dir().join("slate-placement-conformance");
    std::fs::create_dir_all(&dir).unwrap();
    let (a, b) = (dir.join("fwd.json"), dir.join("rev.json"));
    forward.save(&a).unwrap();
    reverse.save(&b).unwrap();
    let (fa, fb) = (
        std::fs::read_to_string(&a).unwrap(),
        std::fs::read_to_string(&b).unwrap(),
    );
    assert_eq!(
        fa, fb,
        "saved profile tables must not depend on insertion order"
    );
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
#[ignore = "regenerates tests/data fixtures; run after an intended placement change"]
fn regenerate_placement_fixtures() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data");
    std::fs::create_dir_all(dir).expect("fixture dir");
    for (log, name) in [
        (record_fixture_run(), "placement"),
        (record_failure_fixture_run(), "placement_failure"),
    ] {
        let json = serde_json::to_string_pretty(&log).expect("log serializes");
        std::fs::write(format!("{dir}/{name}_log.json"), json).expect("write log");
        let transcript = placement_replay::transcript(&placement_replay::replay(&log));
        std::fs::write(format!("{dir}/{name}_transcript.txt"), transcript)
            .expect("write transcript");
    }
}
