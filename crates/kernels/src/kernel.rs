//! The kernel abstraction shared by the functional executor, the Slate
//! transformation, and the runtimes.
//!
//! A [`GpuKernel`] is the Rust stand-in for a compiled CUDA `__global__`
//! function: it has a launch geometry (grid and block), a calibrated
//! performance profile for the simulator, and a *functional body* —
//! [`GpuKernel::run_block`] — that performs one thread block's computation
//! against [`GpuBuffer`](slate_gpu_sim::buffer::GpuBuffer) device memory.
//! The functional body is what makes
//! transformation-correctness testable: however Slate reorders, groups, or
//! relaunches blocks, running every block coordinate exactly once must
//! produce the same memory contents as the untransformed grid.

use crate::grid::{BlockCoord, GridDim};
use slate_gpu_sim::perf::KernelPerf;
use std::sync::Arc;

/// A launchable GPU kernel: geometry, profile, and functional body.
pub trait GpuKernel: Send + Sync {
    /// Kernel name (matches the profile name).
    fn name(&self) -> &str;

    /// The user launch grid.
    fn grid(&self) -> GridDim;

    /// Calibrated performance profile for the simulator.
    fn perf(&self) -> KernelPerf;

    /// Executes the computation of the thread block at `block`, i.e. the
    /// work of all `threads_per_block` threads of that block. Must be safe
    /// to call concurrently for distinct blocks (block-disjoint writes).
    fn run_block(&self, block: BlockCoord);
}

/// Executes an entire kernel sequentially in grid order — the reference
/// execution that every scheduled execution must match.
pub fn run_reference(kernel: &dyn GpuKernel) {
    let grid = kernel.grid();
    for flat in 0..grid.total_blocks() {
        kernel.run_block(grid.coord_of(flat));
    }
}

/// Executes an entire kernel with rayon, blocks in parallel — valid because
/// well-formed kernels write block-disjoint data.
pub fn run_parallel(kernel: &(dyn GpuKernel + '_)) {
    use rayon::prelude::*;
    let grid = kernel.grid();
    (0..grid.total_blocks())
        .into_par_iter()
        .for_each(|flat| kernel.run_block(grid.coord_of(flat)));
}

/// A boxed kernel handle, as passed through launch queues.
pub type KernelHandle = Arc<dyn GpuKernel>;

#[cfg(test)]
mod tests {
    use super::*;
    use slate_gpu_sim::buffer::GpuBuffer;

    /// Toy kernel: out[b] = b.x + 100 * b.y for every block.
    struct Stamp {
        grid: GridDim,
        out: Arc<GpuBuffer>,
    }

    impl GpuKernel for Stamp {
        fn name(&self) -> &str {
            "stamp"
        }
        fn grid(&self) -> GridDim {
            self.grid
        }
        fn perf(&self) -> KernelPerf {
            KernelPerf::synthetic("stamp", 100.0, 4.0)
        }
        fn run_block(&self, block: BlockCoord) {
            let flat = self.grid.flat_of(block) as usize;
            self.out.store_u32(flat, block.x + 100 * block.y);
        }
    }

    fn make(grid: GridDim) -> (Stamp, Arc<GpuBuffer>) {
        let out = Arc::new(GpuBuffer::new(grid.total_blocks() as usize * 4));
        (
            Stamp {
                grid,
                out: out.clone(),
            },
            out,
        )
    }

    #[test]
    fn reference_covers_every_block() {
        let (k, out) = make(GridDim::d2(5, 3));
        run_reference(&k);
        for y in 0..3u32 {
            for x in 0..5u32 {
                assert_eq!(out.load_u32((y * 5 + x) as usize), x + 100 * y);
            }
        }
    }

    #[test]
    fn parallel_matches_reference() {
        let (k, out) = make(GridDim::d2(16, 16));
        run_parallel(&k);
        let (k2, out2) = make(GridDim::d2(16, 16));
        run_reference(&k2);
        assert_eq!(out.to_f32_vec().len(), out2.to_f32_vec().len());
        for i in 0..256 {
            assert_eq!(out.load_u32(i), out2.load_u32(i));
        }
    }
}
