//! Table I — empirical validation of the heuristic policy.
//!
//! The paper derives its corun/solo matrix from empirical results. This
//! experiment rebuilds that derivation on the simulator: for every pair of
//! workload classes it constructs synthetic representative kernels,
//! measures consecutive ANTT (`T_a + T_b`) against concurrent ANTT
//! (`max(T'_a, T'_b)`, with Slate's partition-and-resize behaviour), and
//! compares the measured verdict with the published matrix.
//!
//! Full agreement is not expected: the published table is asymmetric in two
//! cells (so no symmetric measurement can match both directions), and our
//! generous resize model makes co-running with a parallelism-capped L_C
//! kernel profitable even where the paper chose solo.

use crate::report::{f, Report, Table};
use slate_core::classify::WorkloadClass;
use slate_core::partition::partition;
use slate_core::policy::{lookup, Verdict};
use slate_core::select::corun_clearly_profitable;
use slate_gpu_sim::device::{DeviceConfig, SmRange};
use slate_gpu_sim::engine::{Engine, Event, SliceId, SliceSpec};
use slate_gpu_sim::model;
use slate_gpu_sim::perf::{ExecMode, KernelPerf};

/// Synthetic representative kernel for a workload class.
pub fn class_kernel(class: WorkloadClass) -> KernelPerf {
    match class {
        // Low compute, low memory, parallelism-capped (the RG shape).
        WorkloadClass::LC => {
            let mut p = KernelPerf::synthetic("syn_LC", 2600.0, 0.0);
            p.threads_per_block = 128;
            p.regs_per_thread = 120;
            p.mem_request_bytes_per_block = 16_000.0;
            p.dram_bytes_inorder = 16_000.0;
            p.dram_bytes_scattered = 16_000.0;
            p.max_concurrent_blocks = Some(60);
            p.l2_footprint_bytes = 0.1e6;
            p
        }
        // Medium compute, low memory: scales with SMs, light traffic.
        WorkloadClass::MC => {
            let mut p = KernelPerf::synthetic("syn_MC", 8_000.0, 0.0);
            p.flops_per_block = 2_600.0 * 30.0; // ~430 GFLOP/s solo
            p.mem_request_bytes_per_block = 9_000.0; // ~50 GB/s solo
            p.dram_bytes_inorder = 9_000.0;
            p.dram_bytes_scattered = 9_000.0;
            p.l2_footprint_bytes = 0.1e6;
            p
        }
        // High compute: pipeline-saturating, negligible traffic.
        WorkloadClass::HC => {
            let mut p = KernelPerf::synthetic("syn_HC", 20_000.0, 0.0);
            p.flops_per_block = 40_000.0 * 30.0; // multi-TFLOP/s solo
            p.mem_request_bytes_per_block = 4_000.0;
            p.dram_bytes_inorder = 4_000.0;
            p.dram_bytes_scattered = 4_000.0;
            p.l2_footprint_bytes = 0.1e6;
            p
        }
        // Medium memory with cache-held locality (the GS/BS shape).
        WorkloadClass::MM => {
            let mut p = KernelPerf::synthetic("syn_MM", 1_200.0, 0.0);
            p.mem_request_bytes_per_block = 11_000.0; // ~400 GB/s solo
            p.dram_bytes_inorder = 9_000.0;
            p.dram_bytes_scattered = 11_500.0;
            p.l2_footprint_bytes = 2.0e6; // corun pressure evicts locality
            p
        }
        // High memory: DRAM-saturating streaming (the TR shape).
        WorkloadClass::HM => {
            let mut p = KernelPerf::synthetic("syn_HM", 350.0, 0.0);
            p.mem_request_bytes_per_block = 9_000.0;
            p.dram_bytes_inorder = 7_500.0;
            p.dram_bytes_scattered = 7_800.0;
            p.l2_footprint_bytes = 1.5e6;
            p
        }
    }
}

const MODE: ExecMode = ExecMode::SlateWorkers { task_size: 10 };

/// Blocks giving this kernel a ~0.2 s solo Slate run.
fn sized_blocks(cfg: &DeviceConfig, p: &KernelPerf) -> u64 {
    let r = model::steady_rate(cfg, p, cfg.num_sms, MODE);
    (r * 0.2) as u64
}

fn solo_time(cfg: &DeviceConfig, p: &KernelPerf, blocks: u64) -> f64 {
    let mut e = Engine::new(cfg.clone());
    let id = e
        .add_slice(SliceSpec {
            perf: p.clone(),
            sm_range: SmRange::all(cfg.num_sms),
            blocks,
            mode: MODE,
            extra_lead_s: 0.0,
            batch: 1,
            tag: 0,
        })
        .expect("solo launch");
    let (t, _) = e
        .run_until(|ev| matches!(ev, Event::SliceDrained(_)))
        .expect("drains");
    let _ = e.remove_slice(id);
    t
}

/// Measures the concurrent completion times of a pair under Slate's
/// partition-and-resize discipline. Returns `(T'_a, T'_b)`.
pub fn corun_times(
    cfg: &DeviceConfig,
    pa: &KernelPerf,
    pb: &KernelPerf,
    blocks_a: u64,
    blocks_b: u64,
) -> (f64, f64) {
    let da = model::sm_demand(cfg, pa, MODE, 0.9);
    let db = model::sm_demand(cfg, pb, MODE, 0.9);
    let part = partition(cfg, da, db);
    let mut e = Engine::new(cfg.clone());
    let mk = |perf: &KernelPerf, blocks, range, tag| SliceSpec {
        perf: perf.clone(),
        sm_range: range,
        blocks,
        mode: MODE,
        extra_lead_s: 0.0,
        batch: 1,
        tag,
    };
    let ida = e.add_slice(mk(pa, blocks_a, part.a, 0)).unwrap();
    let idb = e.add_slice(mk(pb, blocks_b, part.b, 1)).unwrap();
    let (t_first, ev) = e
        .run_until(|ev| matches!(ev, Event::SliceDrained(_)))
        .expect("first drain");
    let Event::SliceDrained(first) = ev else {
        unreachable!()
    };
    let survivor: SliceId = if first == ida { idb } else { ida };
    let _ = e.remove_slice(first);
    // The survivor grows to the whole device (dispatch-kernel relaunch).
    let remaining = e.blocks_remaining(survivor);
    let surv_rep = e.remove_slice(survivor);
    let surv_perf = if first == ida { pb } else { pa };
    let _ = surv_rep;
    let regrown = e
        .add_slice(mk(
            surv_perf,
            remaining.max(1),
            SmRange::all(cfg.num_sms),
            2,
        ))
        .unwrap();
    let (t_second, _) = e
        .run_until(|ev| matches!(ev, Event::SliceDrained(_)))
        .expect("second drain");
    let _ = e.remove_slice(regrown);
    if first == ida {
        (t_first, t_second)
    } else {
        (t_second, t_first)
    }
}

/// One measured cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The class pair.
    pub pair: (WorkloadClass, WorkloadClass),
    /// Published verdicts (row->col, col->row).
    pub published: (Verdict, Verdict),
    /// Measured verdict (symmetric).
    pub measured: Verdict,
    /// Measured ANTT ratio `concurrent / consecutive` (<1 favours corun).
    pub antt_ratio: f64,
}

/// Runs the validation over all 15 unordered class pairs.
pub fn run(cfg: &DeviceConfig) -> (Vec<Cell>, Report) {
    let mut report = Report::new(
        "table1",
        "Heuristic policy table: published vs measured",
        "The corun/solo matrix is derived from empirical results: \
         complementary classes (low-intensity with memory- or compute-heavy) \
         co-run; same-bottleneck pairs (H_C x H_C, M_M x M_M, H_M x H_M) \
         run solo.",
    );
    let mut t = Table::new(
        "Policy validation (ANTT ratio < 1 favours corun)",
        &["Pair", "Published", "Measured", "ANTT ratio", "Agree"],
    );

    let classes = WorkloadClass::ALL;
    let mut cells = Vec::new();
    let mut agree = 0usize;
    for (i, &a) in classes.iter().enumerate() {
        for &b in &classes[i..] {
            let (pa, pb) = (class_kernel(a), class_kernel(b));
            let (na, nb) = (sized_blocks(cfg, &pa), sized_blocks(cfg, &pb));
            let ta = solo_time(cfg, &pa, na);
            let tb = solo_time(cfg, &pb, nb);
            let (ta2, tb2) = corun_times(cfg, &pa, &pb, na, nb);
            let profitable = corun_clearly_profitable(ta, tb, ta2, tb2);
            let measured = if profitable {
                Verdict::Corun
            } else {
                Verdict::Solo
            };
            let published = (lookup(a, b), lookup(b, a));
            let cell_agree = published.0 == measured || published.1 == measured;
            agree += usize::from(cell_agree);
            let ratio = ta2.max(tb2) / (ta + tb);
            t.row(&[
                format!("{}-{}", a.label(), b.label()),
                if published.0 == published.1 {
                    published.0.to_string()
                } else {
                    format!("{}/{}", published.0, published.1)
                },
                measured.to_string(),
                f(ratio, 3),
                if cell_agree { "yes" } else { "no" }.to_string(),
            ]);
            cells.push(Cell {
                pair: (a, b),
                published,
                measured,
                antt_ratio: ratio,
            });
        }
    }
    report.tables.push(t);
    report.note(format!("agreement: {agree}/15 unordered pairs"));

    let find = |a: WorkloadClass, b: WorkloadClass| {
        cells
            .iter()
            .find(|c| c.pair == (a, b) || c.pair == (b, a))
            .unwrap()
    };
    use WorkloadClass::*;
    report.note(
        "expected disagreements: L_C-H_C (our resize model makes hosting the \
         capped L_C kernel free) and the break-even M_C-M_C cell",
    );
    report.check(
        "measured agrees with the table on most cells (>= 11/15)",
        agree >= 11,
    );
    report.check(
        "L_C co-runs profitably with M_M and H_M (the RG mechanism)",
        find(LC, MM).measured == Verdict::Corun && find(LC, HM).measured == Verdict::Corun,
    );
    report.check(
        "same-bottleneck memory pairs measure solo (M_M-M_M, H_M-H_M)",
        find(MM, MM).measured == Verdict::Solo && find(HM, HM).measured == Verdict::Solo,
    );
    report.check(
        "H_C x H_C measures solo (no spare pipeline to share)",
        find(HC, HC).measured == Verdict::Solo,
    );
    (cells, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_validation_agrees() {
        let (cells, report) = run(&DeviceConfig::titan_xp());
        assert_eq!(cells.len(), 15);
        assert!(report.all_pass(), "{}", report.to_text());
    }

    #[test]
    fn class_kernels_classify_as_their_class() {
        use slate_core::profile::profile_kernel;
        let cfg = DeviceConfig::titan_xp();
        for class in WorkloadClass::ALL {
            let p = class_kernel(class);
            let blocks = sized_blocks(&cfg, &p);
            let prof = profile_kernel(&cfg, &p, blocks);
            assert_eq!(
                prof.class, class,
                "{class:?}: measured {:.1} GFLOP/s {:.1} GB/s",
                prof.gflops, prof.bandwidth_gbs
            );
        }
    }
}
