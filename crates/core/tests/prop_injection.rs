//! Property tests for the source pipeline: the scanner, injector and
//! pragma parser must be total over arbitrary byte soup (the daemon feeds
//! them untrusted client sources), and structure-preserving over
//! well-formed kernels.

use proptest::prelude::*;
use slate_core::injector::{inject_source, source_hash};
use slate_core::pragma::inject_with_pragmas;
use slate_core::scanner::scan_kernels;

/// Generates a syntactically plausible kernel source.
fn arb_kernel_source() -> impl Strategy<Value = String> {
    (
        "[a-z_][a-z0-9_]{0,15}",                            // kernel name
        prop::collection::vec("[a-z][a-z0-9_]{0,8}", 0..4), // param names
        0usize..4,                                          // blockIdx uses
        0usize..3,                                          // gridDim uses
        any::<bool>(),                                      // trailing comment
    )
        .prop_map(|(name, params, bi, gd, comment)| {
            let params: Vec<String> = params
                .iter()
                .enumerate()
                .map(|(i, p)| format!("float* {p}{i}"))
                .collect();
            let mut body = String::new();
            for i in 0..bi {
                body.push_str(&format!("int b{i} = blockIdx.x + {i};\n"));
            }
            for i in 0..gd {
                body.push_str(&format!("int g{i} = gridDim.x * {i};\n"));
            }
            body.push_str("if (1) { int nested = threadIdx.x; }\n");
            let tail = if comment {
                "// blockIdx in a comment\n"
            } else {
                ""
            };
            format!(
                "__global__ void {name}({}) {{\n{body}}}\n{tail}",
                params.join(", ")
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The scanner never panics on arbitrary input.
    #[test]
    fn scanner_is_total(src in ".{0,400}") {
        let _ = scan_kernels(&src);
    }

    /// The injector never panics on arbitrary input and produces one
    /// injected kernel per scanned kernel.
    #[test]
    fn injector_is_total(src in ".{0,400}", task in 1u32..100) {
        let kernels = scan_kernels(&src);
        let injected = inject_source(&src, task);
        prop_assert_eq!(injected.len(), kernels.len());
    }

    /// The pragma front-end never panics; it errors only on malformed
    /// `#pragma slate` lines.
    #[test]
    fn pragma_is_total(src in ".{0,400}", task in 1u32..100) {
        let _ = inject_with_pragmas(&src, task);
    }

    /// For well-formed kernels: every `blockIdx`/`gridDim` use is replaced,
    /// the worker and dispatcher are both emitted, and the user identifiers
    /// survive.
    #[test]
    fn injection_preserves_structure(src in arb_kernel_source(), task in 1u32..64) {
        let scanned = scan_kernels(&src);
        prop_assert_eq!(scanned.len(), 1, "{}", src);
        let k = &scanned[0];
        let injected = inject_source(&src, task);
        prop_assert_eq!(injected.len(), 1);
        let inj = &injected[0];
        prop_assert_eq!(inj.block_idx_replaced, k.block_idx_uses.len());
        prop_assert_eq!(inj.grid_dim_replaced, k.grid_dim_uses.len());
        let expect = format!("#define SLATE_ITERS {task}");
        prop_assert!(inj.source.contains(&expect));
        prop_assert!(inj.source.contains(&inj.worker_name));
        prop_assert!(inj.source.contains(&inj.dispatch_name));
        prop_assert!(inj.source.contains("%%smid"), "SM gate present");
        // The generated worker body must carry no raw built-in uses.
        let after_marker = inj
            .source
            .split("ORIGINAL USER CODE")
            .nth(1)
            .unwrap()
            .split("slate_dispatch")
            .next()
            .unwrap();
        prop_assert!(!after_marker.contains(" blockIdx"), "{}", inj.source);
        prop_assert!(!after_marker.contains(" gridDim"), "{}", inj.source);
    }

    /// Injection is deterministic: same source, same output, same hash.
    #[test]
    fn injection_is_deterministic(src in arb_kernel_source(), task in 1u32..64) {
        let a = inject_source(&src, task);
        let b = inject_source(&src, task);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(&x.source, &y.source);
        }
        prop_assert_eq!(source_hash(&src), source_hash(&src));
    }

    /// A `#pragma slate transform task_size(N)` before a generated kernel
    /// always overrides the default task size.
    #[test]
    fn pragma_overrides_task_size(src in arb_kernel_source(), n in 1u32..200) {
        let pragma_src = format!("#pragma slate transform task_size({n})\n{src}");
        let plans = inject_with_pragmas(&pragma_src, 10).unwrap();
        prop_assert_eq!(plans.len(), 1);
        let inj = plans[0].injected.as_ref().unwrap();
        let expect = format!("#define SLATE_ITERS {n}");
        prop_assert!(inj.source.contains(&expect));
    }
}
