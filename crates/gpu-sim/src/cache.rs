//! L2 cache interference model.
//!
//! Each kernel profile carries two DRAM-traffic figures per block: the
//! *in-order* figure (blocks executed in grid order reuse their neighbours'
//! cached lines) and the *scattered* figure (hardware issue order destroys
//! inter-block reuse). The gap between them is the kernel's cache-captured
//! locality.
//!
//! When several kernels are resident at once they share the L2. We model the
//! interference with a *pressure* term: the sum of the live working sets
//! divided by the L2 capacity. At pressure ≤ 1 every kernel keeps its
//! order-implied figure; as pressure grows past 1, each kernel's effective
//! DRAM traffic degrades linearly from its order-implied figure toward its
//! scattered figure (full eviction of inter-block reuse by pressure 2).
//! This is deliberately first-order: the paper's effects only need the
//! qualitative behaviour that co-running cache-hungry kernels lose locality
//! while streaming kernels are unaffected.

use crate::perf::{BlockOrder, KernelPerf};

/// Combined L2 pressure of a set of live working sets, relative to capacity.
///
/// `1.0` means the working sets exactly fill the L2.
pub fn pressure(l2_bytes: u64, footprints: impl IntoIterator<Item = f64>) -> f64 {
    let total: f64 = footprints.into_iter().map(|f| f.max(0.0)).sum();
    if l2_bytes == 0 {
        if total > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        total / l2_bytes as f64
    }
}

/// Effective DRAM bytes per block for `kernel` executing with `order` under
/// the given L2 `pressure` (see module docs).
pub fn effective_dram_bytes(kernel: &KernelPerf, order: BlockOrder, pressure: f64) -> f64 {
    let base = kernel.dram_bytes(order);
    let scattered = kernel.dram_bytes_scattered;
    if scattered <= base {
        return base;
    }
    let degrade = (pressure - 1.0).clamp(0.0, 1.0);
    base + (scattered - base) * degrade
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_with_locality(inorder: f64, scattered: f64, footprint: f64) -> KernelPerf {
        let mut p = KernelPerf::synthetic("k", 1000.0, scattered);
        p.dram_bytes_inorder = inorder;
        p.dram_bytes_scattered = scattered;
        p.l2_footprint_bytes = footprint;
        p
    }

    #[test]
    fn pressure_sums_footprints() {
        assert!((pressure(1024, [512.0, 256.0]) - 0.75).abs() < 1e-12);
        assert_eq!(pressure(1024, []), 0.0);
    }

    #[test]
    fn pressure_zero_capacity() {
        assert_eq!(pressure(0, [0.0]), 0.0);
        assert!(pressure(0, [1.0]).is_infinite());
    }

    #[test]
    fn no_degradation_below_capacity() {
        let k = kernel_with_locality(100.0, 200.0, 0.0);
        assert_eq!(effective_dram_bytes(&k, BlockOrder::InOrder, 0.5), 100.0);
        assert_eq!(effective_dram_bytes(&k, BlockOrder::InOrder, 1.0), 100.0);
    }

    #[test]
    fn full_degradation_at_double_pressure() {
        let k = kernel_with_locality(100.0, 200.0, 0.0);
        assert_eq!(effective_dram_bytes(&k, BlockOrder::InOrder, 2.0), 200.0);
        assert_eq!(effective_dram_bytes(&k, BlockOrder::InOrder, 5.0), 200.0);
    }

    #[test]
    fn linear_between() {
        let k = kernel_with_locality(100.0, 200.0, 0.0);
        let mid = effective_dram_bytes(&k, BlockOrder::InOrder, 1.5);
        assert!((mid - 150.0).abs() < 1e-9);
    }

    #[test]
    fn scattered_order_already_worst_case() {
        let k = kernel_with_locality(100.0, 200.0, 0.0);
        assert_eq!(effective_dram_bytes(&k, BlockOrder::Scattered, 0.0), 200.0);
        assert_eq!(effective_dram_bytes(&k, BlockOrder::Scattered, 3.0), 200.0);
    }

    #[test]
    fn streaming_kernel_unaffected() {
        // No locality gap: pressure changes nothing.
        let k = kernel_with_locality(300.0, 300.0, 0.0);
        assert_eq!(effective_dram_bytes(&k, BlockOrder::InOrder, 4.0), 300.0);
    }
}
