//! Cross-device rebalancing: a seeded, hysteresis-gated migration
//! planner.
//!
//! After every fed batch the placement layer computes a per-device load
//! vector; the imbalance score is simply `max(load) - min(load)` in
//! estimated milliseconds. When the score crosses the `high` watermark
//! the planner picks one resident kernel on the hottest device — the
//! victim index chosen by a seeded xorshift so equal-looking candidates
//! don't always punish the same lease — and migrates it to the coldest
//! device via the existing retreat/relaunch path: the layer synthesizes
//! [`Command::Evict`](crate::arbiter::Command::Evict) on the source
//! core, the frontend carries the eviction out (progress is captured as
//! an absolute `slateIdx`), and the subsequent re-stage + re-ready is
//! routed to the target core.
//!
//! Hysteresis keeps the planner from flapping: after firing it disarms
//! until the score falls back below the `low` watermark, and a cooldown
//! blocks back-to-back migrations even across re-arms. At most one
//! migration is in flight at a time (the layer gates on that separately).
//! Everything here is a pure function of fed events, so recorded
//! multi-device runs replay their migrations identically.

use crate::arbiter::Tick;
use serde::{Deserialize, Serialize};

/// Knobs of the migration planner. Serialized into every
/// [`PlacementLog`](super::replay::PlacementLog) so replays rebalance
/// under the recorded thresholds and seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RebalanceConfig {
    /// Fire a migration when `max(load) - min(load)` reaches this many
    /// estimated milliseconds (upward hysteresis threshold).
    pub high_ms: u64,
    /// Re-arm only once the score has fallen back to this level
    /// (downward hysteresis threshold). Must be ≤ `high_ms`.
    pub low_ms: u64,
    /// Minimum logical microseconds between fired migrations.
    pub cooldown_us: u64,
    /// Seed for the victim-selection xorshift. Any value is usable
    /// (zero is remapped internally — xorshift has no zero orbit).
    pub seed: u64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        Self {
            high_ms: 50,
            low_ms: 10,
            cooldown_us: 5_000,
            seed: 0x5EED_0BAD_F00D,
        }
    }
}

/// A planned cross-device migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// Device the victim currently runs on.
    pub src: usize,
    /// Device it re-launches on after the eviction.
    pub dst: usize,
    /// The migrated lease.
    pub lease: u64,
}

/// Serializable state of a `Rebalancer`: hysteresis arm, cooldown clock,
/// the live rng word and the fired counter. The config is not repeated —
/// it is persisted inside the layer's `PlacementConfig`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RebalancerSnapshot {
    pub(crate) armed: bool,
    pub(crate) cooldown_until: Tick,
    pub(crate) rng: u64,
    pub(crate) fired: u64,
}

/// The stateful planner: hysteresis arm, cooldown clock and victim rng.
#[derive(Debug)]
pub(super) struct Rebalancer {
    config: RebalanceConfig,
    armed: bool,
    cooldown_until: Tick,
    rng: u64,
    fired: u64,
}

impl Rebalancer {
    /// Captures the planner for a durable snapshot.
    pub(super) fn snapshot(&self) -> RebalancerSnapshot {
        RebalancerSnapshot {
            armed: self.armed,
            cooldown_until: self.cooldown_until,
            rng: self.rng,
            fired: self.fired,
        }
    }

    /// Rebuilds a planner from a snapshot, resuming the rng mid-stream.
    pub(super) fn restore(config: RebalanceConfig, snap: RebalancerSnapshot) -> Self {
        Self {
            config,
            armed: snap.armed,
            cooldown_until: snap.cooldown_until,
            rng: snap.rng.max(1),
            fired: snap.fired,
        }
    }

    pub(super) fn new(config: RebalanceConfig) -> Self {
        // xorshift never leaves 0; fold the seed through a golden-ratio
        // mix so seed 0 is as usable as any other.
        let rng = (config.seed ^ 0x9E37_79B9_7F4A_7C15).max(1);
        Self {
            config,
            armed: true,
            cooldown_until: 0,
            rng,
            fired: 0,
        }
    }

    /// Migrations fired so far.
    pub(super) fn fired(&self) -> u64 {
        self.fired
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Plans at most one migration for the current load vector.
    /// `victims(src)` lists the evictable resident leases of device
    /// `src`, in stable order; `eligible[i]` whether device `i` is in
    /// service as a migration *target* (the source may be unhealthy —
    /// that is exactly when moving work off it matters). Returns `None`
    /// while disarmed, cooling down, balanced, when the hottest device
    /// has nothing resident to move, or when no eligible destination
    /// exists.
    pub(super) fn plan(
        &mut self,
        now: Tick,
        loads: &[u64],
        eligible: &[bool],
        victims: impl Fn(usize) -> Vec<u64>,
    ) -> Option<Migration> {
        if loads.len() < 2 {
            return None;
        }
        let mut src = 0usize;
        let mut dst: Option<usize> = None;
        for (i, &l) in loads.iter().enumerate() {
            if l > loads[src] {
                src = i;
            }
            // Only in-service devices may receive migrated work: a
            // quarantined device at zero load is an attractive-looking
            // target precisely because it is broken.
            if eligible[i] && dst.is_none_or(|b| l < loads[b]) {
                dst = Some(i);
            }
        }
        let dst = dst?;
        let score = loads[src] - loads[dst];
        if !self.armed {
            if score <= self.config.low_ms {
                self.armed = true;
            }
            return None;
        }
        if score < self.config.high_ms || now < self.cooldown_until {
            return None;
        }
        let candidates = victims(src);
        if candidates.is_empty() || src == dst {
            return None;
        }
        let lease = candidates[(self.next_rand() % candidates.len() as u64) as usize];
        self.armed = false;
        self.cooldown_until = now + self.config.cooldown_us;
        self.fired += 1;
        Some(Migration { src, dst, lease })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RebalanceConfig {
        RebalanceConfig {
            high_ms: 100,
            low_ms: 20,
            cooldown_us: 1_000,
            seed: 7,
        }
    }

    const ALL2: [bool; 2] = [true, true];

    #[test]
    fn fires_above_high_and_rearms_below_low() {
        let mut r = Rebalancer::new(cfg());
        let victims = |src: usize| if src == 0 { vec![10, 11] } else { vec![] };
        assert!(
            r.plan(0, &[50, 0], &ALL2, victims).is_none(),
            "below high: no fire"
        );
        let m = r
            .plan(10, &[150, 0], &ALL2, victims)
            .expect("above high fires");
        assert_eq!((m.src, m.dst), (0, 1));
        assert!([10, 11].contains(&m.lease));
        // Disarmed: an even worse score does not fire again…
        assert!(r.plan(5_000, &[500, 0], &ALL2, victims).is_none());
        // …until the score dips below low once.
        assert!(r.plan(6_000, &[10, 0], &ALL2, victims).is_none());
        assert!(
            r.plan(7_000, &[150, 0], &ALL2, victims).is_some(),
            "re-armed"
        );
        assert_eq!(r.fired(), 2);
    }

    #[test]
    fn cooldown_blocks_back_to_back_fires() {
        let mut r = Rebalancer::new(cfg());
        let victims = |_| vec![1];
        assert!(r.plan(0, &[200, 0], &ALL2, victims).is_some());
        // Re-arm via a balanced interval inside the cooldown window.
        assert!(r.plan(100, &[0, 0], &ALL2, victims).is_none());
        assert!(
            r.plan(500, &[200, 0], &ALL2, victims).is_none(),
            "armed but still cooling down"
        );
        assert!(r.plan(1_500, &[200, 0], &ALL2, victims).is_some());
    }

    #[test]
    fn no_victims_means_no_migration() {
        let mut r = Rebalancer::new(cfg());
        assert!(r.plan(0, &[500, 0], &ALL2, |_| vec![]).is_none());
        assert_eq!(r.fired(), 0);
    }

    #[test]
    fn unhealthy_devices_are_never_migration_targets() {
        // Without the eligibility guard this plan would fire: device 1
        // sits at zero load *because it is quarantined*, which makes it
        // the coldest — and worst — destination in the fleet.
        let mut r = Rebalancer::new(cfg());
        let victims = |_| vec![1, 2];
        assert!(
            r.plan(0, &[500, 0], &[true, false], victims).is_none(),
            "the only cold device is out of service"
        );
        assert_eq!(r.fired(), 0);
        // Three devices, middle one down: migration lands on the
        // healthy cold device, not the quarantined colder one.
        let m = r
            .plan(0, &[500, 0, 30], &[true, false, true], victims)
            .expect("a healthy destination exists");
        assert_eq!((m.src, m.dst), (0, 2));
    }

    #[test]
    fn seed_determines_victim_deterministically() {
        let pick = |seed: u64| {
            let mut r = Rebalancer::new(RebalanceConfig { seed, ..cfg() });
            r.plan(0, &[500, 0], &ALL2, |_| vec![1, 2, 3, 4, 5])
                .unwrap()
                .lease
        };
        assert_eq!(pick(7), pick(7), "same seed, same victim");
        let distinct: std::collections::BTreeSet<u64> = (0..16).map(pick).collect();
        assert!(distinct.len() > 1, "different seeds spread the pick");
    }
}
