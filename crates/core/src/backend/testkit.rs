//! The backend conformance testkit: scripted scenarios every [`Backend`]
//! implementation must pass, plus the differential runner that replays a
//! recorded [`EventLog`] through two backends and compares transcripts.
//!
//! The scenarios pin the execution contract the arbiter relies on:
//!
//! * **undisturbed run** — a dispatch with no interference drains, reports
//!   exactly one `ok` completion at `slateMax`;
//! * **resize churn, exactly once** — across seeded random mid-flight
//!   resizes, each user block still executes exactly once and exactly one
//!   completion arrives;
//! * **retreat preserves progress** — `slateIdx` progress is monotonic
//!   across a retreat/relaunch, nothing is lost or re-done;
//! * **relaunch after evict** — an eviction reports partial progress;
//!   re-staging from that progress covers exactly the remaining blocks;
//! * **drain reported exactly once** — no duplicate completions, and
//!   commands on a finished lease are no-ops;
//! * **SM confinement** — the backend holds exactly the commanded range
//!   while resident;
//! * **device loss and recovery** — a hard loss surfaces in-flight leases
//!   as *lost* completions with durable progress, the health probe
//!   reports the outage, and the restored device drains exactly the
//!   remaining blocks.
//!
//! Functional backends ([`Backend::is_functional`]) additionally prove
//! block coverage through kernel-visible side effects (a hit-count
//! buffer); the simulation backend is held to the same accounting through
//! its reported progress. A future CUDA backend passes this suite before
//! it may slot in behind the daemon.

use super::{Backend, Completion, DeviceFault, DeviceHealth, WorkSpec};
use crate::arbiter::{Command, Event as ArbEvent, EventLog};
use crate::transform::TransformedKernel;
use slate_gpu_sim::buffer::GpuBuffer;
use slate_gpu_sim::device::SmRange;
use slate_gpu_sim::perf::KernelPerf;
use slate_kernels::grid::{BlockCoord, GridDim};
use slate_kernels::kernel::GpuKernel;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Generous drive bound: simulated milliseconds for the engine backend
/// (free), wall milliseconds for threaded backends (only reached on a
/// hang, i.e. a failing test).
const DRIVE_MS: u64 = 120_000;

/// A counting kernel for conformance runs: each executed block increments
/// its own hit cell (coverage proof on functional backends) and optionally
/// busy-waits `delay_us` so churn commands land mid-flight. The simulated
/// perf cost mirrors the functional delay, so both backend families see
/// comparably long-running kernels.
struct ChurnCounter {
    grid: GridDim,
    hits: Arc<GpuBuffer>,
    delay_us: u64,
}

impl GpuKernel for ChurnCounter {
    fn name(&self) -> &str {
        "conformance-counter"
    }
    fn grid(&self) -> GridDim {
        self.grid
    }
    fn perf(&self) -> KernelPerf {
        // ~1.5k cycles per microsecond of functional delay keeps the
        // simulated duration in the same regime as the threaded one.
        KernelPerf::synthetic(
            "conformance-counter",
            100.0 + self.delay_us as f64 * 1500.0,
            8.0,
        )
    }
    fn run_block(&self, b: BlockCoord) {
        self.hits.fetch_add_u32(self.grid.flat_of(b) as usize, 1);
        if self.delay_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(self.delay_us));
        }
    }
}

/// A transformed counting kernel over a flat grid of `blocks`, returning
/// the kernel and its hit-count buffer (one `u32` cell per block).
pub fn counter_kernel(blocks: u32, delay_us: u64) -> (TransformedKernel, Arc<GpuBuffer>) {
    let grid = GridDim::d1(blocks);
    let hits = Arc::new(GpuBuffer::new(grid.total_blocks() as usize * 4));
    (
        TransformedKernel::new(Arc::new(ChurnCounter {
            grid,
            hits: hits.clone(),
            delay_us,
        })),
        hits,
    )
}

/// Asserts every one of `total` hit cells was incremented exactly once —
/// the each-block-exactly-once property.
pub fn assert_exactly_once(hits: &GpuBuffer, total: u64) {
    for i in 0..total {
        assert_eq!(hits.load_u32(i as usize), 1, "block {i} hit count");
    }
}

fn xorshift(s: &mut u64) -> u64 {
    let mut x = *s;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *s = x;
    x
}

fn random_range(s: &mut u64, num_sms: u32) -> SmRange {
    let lo = (xorshift(s) % num_sms as u64) as u32;
    let hi = lo + (xorshift(s) % (num_sms - lo) as u64) as u32;
    SmRange::new(lo, hi)
}

/// Scenario: an undisturbed dispatch drains and reports exactly one `ok`
/// completion at `slateMax`.
pub fn undisturbed_run(b: &mut dyn Backend) {
    let n = b.device().num_sms;
    let total: u32 = 400;
    let (k, hits) = counter_kernel(total, 0);
    b.stage(7, WorkSpec::new(k, 10));
    b.apply(&Command::Dispatch {
        lease: 7,
        range: SmRange::all(n),
    });
    let cs = b.drive_until(7, DRIVE_MS);
    assert_eq!(cs.len(), 1, "exactly one completion: {cs:?}");
    let c = cs[0];
    assert_eq!(c.lease, 7);
    assert!(c.ok);
    assert_eq!(c.progress, u64::from(total));
    assert_eq!(b.progress(7), u64::from(total));
    if b.is_functional() {
        assert_exactly_once(&hits, u64::from(total));
    }
}

/// Scenario: across seeded random mid-flight resizes, each block executes
/// exactly once and exactly one completion arrives.
pub fn resize_churn_exactly_once(b: &mut dyn Backend, seed: u64) {
    let n = b.device().num_sms;
    assert!(n >= 2, "conformance runs need a multi-SM device");
    let total: u32 = 6_000;
    let (k, hits) = counter_kernel(total, 10);
    b.stage(1, WorkSpec::new(k, 5));
    b.apply(&Command::Dispatch {
        lease: 1,
        range: SmRange::all(n),
    });
    let mut rng = seed | 1;
    let mut completions: Vec<Completion> = Vec::new();
    for _ in 0..8 {
        b.advance(1);
        while let Some(c) = b.poll() {
            completions.push(c);
        }
        if !completions.is_empty() {
            break;
        }
        let range = random_range(&mut rng, n);
        b.apply(&Command::Resize { lease: 1, range });
        // A `None` here means the lease drained during the churn.
        if let Some(r) = b.held_range(1) {
            assert_eq!(r, range, "resident lease confined to the commanded range");
        }
    }
    if completions.is_empty() {
        completions = b.drive_until(1, DRIVE_MS);
    }
    assert_eq!(
        completions.len(),
        1,
        "exactly one completion: {completions:?}"
    );
    let c = completions[0];
    assert_eq!(c.lease, 1);
    assert!(c.ok, "churned run still drains");
    assert_eq!(c.progress, u64::from(total), "no blocks lost or re-done");
    assert_eq!(b.progress(1), u64::from(total));
    assert_eq!(b.poll(), None, "no duplicate completion");
    if b.is_functional() {
        assert_exactly_once(&hits, u64::from(total));
    }
}

/// Scenario: `slateIdx` progress is monotonic across a retreat/relaunch.
pub fn retreat_preserves_progress(b: &mut dyn Backend) {
    let n = b.device().num_sms;
    let total: u32 = 8_000;
    let (k, hits) = counter_kernel(total, 15);
    b.stage(4, WorkSpec::new(k, 1));
    b.apply(&Command::Dispatch {
        lease: 4,
        range: SmRange::all(n),
    });
    b.advance(2);
    let p1 = b.progress(4);
    b.apply(&Command::Resize {
        lease: 4,
        range: SmRange::new(0, (n - 1) / 2),
    });
    let p2 = b.progress(4);
    assert!(p2 >= p1, "retreat must not lose progress: {p1} -> {p2}");
    b.advance(1);
    let p3 = b.progress(4);
    assert!(p3 >= p2, "progress must stay monotonic: {p2} -> {p3}");
    let cs = b.drive_until(4, DRIVE_MS);
    let c = *cs.last().expect("run completes");
    assert!(c.ok);
    assert_eq!(c.progress, u64::from(total));
    if b.is_functional() {
        assert_exactly_once(&hits, u64::from(total));
    }
}

/// Scenario: an eviction reports partial progress; re-staging from that
/// progress covers exactly the remaining blocks — the union is each block
/// exactly once.
pub fn relaunch_after_evict(b: &mut dyn Backend) {
    let n = b.device().num_sms;
    let total: u32 = 12_000;
    let (k, hits) = counter_kernel(total, 20);
    b.stage(9, WorkSpec::new(k.clone(), 1));
    b.apply(&Command::Dispatch {
        lease: 9,
        range: SmRange::all(n),
    });
    b.advance(2);
    b.apply(&Command::Evict { lease: 9 });
    let cs = b.drive_until(9, DRIVE_MS);
    assert_eq!(cs.len(), 1, "exactly one completion: {cs:?}");
    let c = cs[0];
    assert!(c.progress <= u64::from(total));
    if c.ok {
        // The eviction raced with a drain that had already finished (only
        // reachable under injected chaos delays); the staging is complete.
        assert_eq!(c.progress, u64::from(total));
    } else {
        assert!(
            c.progress < u64::from(total),
            "evicted completion carries partial progress"
        );
        // Relaunch from the carried progress on a different range.
        b.stage(9, WorkSpec::resuming(k, 1, c.progress));
        b.apply(&Command::Dispatch {
            lease: 9,
            range: SmRange::new(0, (n - 1) / 2),
        });
        let cs = b.drive_until(9, DRIVE_MS);
        assert_eq!(cs.len(), 1, "exactly one completion: {cs:?}");
        let c2 = cs[0];
        assert!(c2.ok, "relaunch drains");
        assert_eq!(c2.progress, u64::from(total));
    }
    assert_eq!(b.progress(9), u64::from(total));
    if b.is_functional() {
        assert_exactly_once(&hits, u64::from(total));
    }
}

/// Scenario: the arbiter's SLO preemption sequence — an informational
/// [`Command::Preempt`], the retreat [`Command::Resize`], and the
/// latency-critical [`Command::Dispatch`] on the vacated SMs — leaves the
/// retreated best-effort lease relaunching from its carried `slateIdx`
/// exactly once while the arrival runs beside it.
pub fn preempt_then_resume(b: &mut dyn Backend) {
    let n = b.device().num_sms;
    assert!(n >= 2, "conformance runs need a multi-SM device");
    let total: u32 = 9_000;
    let (be, be_hits) = counter_kernel(total, 15);
    b.stage(5, WorkSpec::new(be, 1));
    b.apply(&Command::Dispatch {
        lease: 5,
        range: SmRange::all(n),
    });
    b.advance(2);
    let p1 = b.progress(5);
    // The informational preempt marker must not disturb the lease...
    b.apply(&Command::Preempt { lease: 5 });
    assert!(b.progress(5) >= p1, "preempt marker is informational");
    // ...the paired retreat carries its progress onto the shrunk range...
    let split = (n - 1) / 2;
    b.apply(&Command::Resize {
        lease: 5,
        range: SmRange::new(0, split),
    });
    assert!(b.progress(5) >= p1, "retreat must not lose progress");
    // ...and the latency-critical arrival dispatches on the vacated SMs.
    let lc_total: u32 = 600;
    let (lc, lc_hits) = counter_kernel(lc_total, 5);
    b.stage(6, WorkSpec::new(lc, 1));
    b.apply(&Command::Dispatch {
        lease: 6,
        range: SmRange::new(split + 1, n - 1),
    });
    let cs = b.drive_until(6, DRIVE_MS);
    let c = *cs.last().expect("arrival completes");
    assert!(c.ok, "the arrival drains on the vacated SMs");
    assert_eq!(c.progress, u64::from(lc_total));
    let cs = b.drive_until(5, DRIVE_MS);
    let c = *cs.last().expect("retreated run completes");
    assert!(c.ok, "the retreated lease still drains");
    assert_eq!(c.progress, u64::from(total), "no blocks lost or re-done");
    if b.is_functional() {
        assert_exactly_once(&be_hits, u64::from(total));
        assert_exactly_once(&lc_hits, u64::from(lc_total));
    }
}

/// Scenario: exactly one completion per staging, and commands naming a
/// finished lease are no-ops.
pub fn drain_reported_exactly_once(b: &mut dyn Backend) {
    let n = b.device().num_sms;
    let total: u32 = 400;
    let (k, hits) = counter_kernel(total, 0);
    b.stage(2, WorkSpec::new(k, 10));
    b.apply(&Command::Dispatch {
        lease: 2,
        range: SmRange::all(n),
    });
    let cs = b.drive_until(2, DRIVE_MS);
    assert_eq!(cs.len(), 1, "exactly one completion: {cs:?}");
    assert!(cs[0].ok);
    assert_eq!(b.poll(), None);
    // Post-completion commands must change nothing.
    b.apply(&Command::Resize {
        lease: 2,
        range: SmRange::new(0, 0),
    });
    b.apply(&Command::Evict { lease: 2 });
    b.advance(2);
    assert_eq!(
        b.poll(),
        None,
        "finished lease emits no further completions"
    );
    assert_eq!(b.progress(2), u64::from(total));
    if b.is_functional() {
        assert_exactly_once(&hits, u64::from(total));
    }
}

/// Scenario: the backend holds exactly the commanded SM range while the
/// lease is resident, through dispatch and resize.
pub fn sm_confinement(b: &mut dyn Backend) {
    let n = b.device().num_sms;
    assert!(n >= 2, "conformance runs need a multi-SM device");
    let total: u32 = 3_000;
    let (k, hits) = counter_kernel(total, 10);
    let first = SmRange::new(0, 0);
    b.stage(3, WorkSpec::new(k, 5));
    b.apply(&Command::Dispatch {
        lease: 3,
        range: first,
    });
    assert_eq!(
        b.held_range(3),
        Some(first),
        "dispatch binds the commanded range"
    );
    b.advance(1);
    let second = SmRange::new(1, n - 1);
    b.apply(&Command::Resize {
        lease: 3,
        range: second,
    });
    // A `None` here means the lease drained during the resize.
    if let Some(r) = b.held_range(3) {
        assert_eq!(r, second, "resize rebinds the commanded range");
    }
    let cs = b.drive_until(3, DRIVE_MS);
    let c = *cs.last().expect("run completes");
    assert!(c.ok);
    assert_eq!(c.progress, u64::from(total));
    assert_eq!(b.held_range(3), None, "finished lease holds no range");
    if b.is_functional() {
        assert_exactly_once(&hits, u64::from(total));
    }
}

/// Scenario: a hard device loss surfaces the in-flight lease as a *lost*
/// completion carrying its durable progress, the health probe reports the
/// outage, dispatches into the dead device are lost on arrival, and after
/// a restore the re-staged remainder covers exactly the missing blocks —
/// loss plus recovery is still each block exactly once.
///
/// Backends without a device-fault model ([`Backend::inject_device_fault`]
/// returns `false`) pass vacuously.
pub fn device_loss_recovery_exactly_once(b: &mut dyn Backend) {
    let n = b.device().num_sms;
    let total: u32 = 12_000;
    let (k, hits) = counter_kernel(total, 20);
    b.stage(6, WorkSpec::new(k.clone(), 1));
    b.apply(&Command::Dispatch {
        lease: 6,
        range: SmRange::all(n),
    });
    b.advance(2);
    if !b.inject_device_fault(DeviceFault::Loss) {
        return;
    }
    assert_eq!(b.health(), DeviceHealth::Lost, "probe reports the outage");
    let cs = b.drive_until(6, DRIVE_MS);
    assert_eq!(cs.len(), 1, "exactly one casualty report: {cs:?}");
    let c = cs[0];
    assert!(c.lost, "the completion is marked as a device loss");
    assert!(!c.ok, "lost completions always carry ok: false");
    assert!(c.progress <= u64::from(total));
    // A dispatch into the dead device is lost on arrival. (A chaos
    // decorator may fire-and-recover an outage of its own on this
    // dispatch, restoring the device underneath us — in that case the
    // staging simply runs, so the property is only checked while the
    // probe still reports the loss.)
    let (k2, _) = counter_kernel(8, 0);
    b.stage(11, WorkSpec::new(k2, 1));
    b.apply(&Command::Dispatch {
        lease: 11,
        range: SmRange::all(n),
    });
    let lost_on_arrival = b.drive_until(11, DRIVE_MS);
    if b.health() == DeviceHealth::Lost {
        assert!(
            !lost_on_arrival.is_empty() && lost_on_arrival.iter().all(|c| c.lost && !c.ok),
            "a dead device accepts no work: {lost_on_arrival:?}"
        );
    }
    // Restore the device, then resume the casualty from the progress its
    // lost completion carried.
    assert!(b.inject_device_fault(DeviceFault::Restore));
    assert_eq!(b.health(), DeviceHealth::Healthy, "restore heals the probe");
    if c.progress < u64::from(total) {
        b.stage(6, WorkSpec::resuming(k, 1, c.progress));
        b.apply(&Command::Dispatch {
            lease: 6,
            range: SmRange::all(n),
        });
        let cs = b.drive_until(6, DRIVE_MS);
        assert_eq!(cs.len(), 1, "exactly one completion: {cs:?}");
        assert!(cs[0].ok, "the restored device drains the remainder");
        assert_eq!(cs[0].progress, u64::from(total));
    }
    assert_eq!(b.progress(6), u64::from(total));
    if b.is_functional() {
        assert_exactly_once(&hits, u64::from(total));
    }
}

/// Runs the full conformance suite, building a fresh backend per scenario
/// through `make`. Panics on the first violated property.
pub fn run_conformance(make: &mut dyn FnMut() -> Box<dyn Backend>) {
    undisturbed_run(make().as_mut());
    for seed in [3, 0x5EED, 0xBEEF] {
        resize_churn_exactly_once(make().as_mut(), seed);
    }
    retreat_preserves_progress(make().as_mut());
    relaunch_after_evict(make().as_mut());
    preempt_then_resume(make().as_mut());
    drain_reported_exactly_once(make().as_mut());
    sm_confinement(make().as_mut());
    device_loss_recovery_exactly_once(make().as_mut());
}

/// The observable transcript of a replay: for every lease, the final
/// `(progress, ok)` of each staging, in per-lease completion order.
/// Keyed per lease (not globally ordered) because completion *arrival*
/// order across unrelated leases is timing-dependent, while the per-lease
/// sequence is part of the execution contract.
pub type Transcript = BTreeMap<u64, Vec<(u64, bool)>>;

/// Replays the command stream of a recorded [`EventLog`] against `b` and
/// returns its observable transcript — the differential runner's half.
///
/// Dispatches in the log are fed deterministic counting kernels (the same
/// per-(lease, nth-staging) grid for every backend, so two replays of the
/// same log are comparable); `Resize`/`Evict` commands are applied as
/// recorded. Before feeding a batch whose *events* contain a
/// `KernelFinished` for an in-flight lease, the backend is driven until
/// that lease's completion is observed, mirroring the causality of the
/// recording. On functional backends the per-staging hit buffers are
/// asserted to show each block exactly once before returning.
pub fn replay_transcript(log: &EventLog, b: &mut dyn Backend) -> Transcript {
    let mut transcript: Transcript = BTreeMap::new();
    let mut stagings: HashMap<u64, u64> = HashMap::new();
    let mut in_flight: HashSet<u64> = HashSet::new();
    let mut buffers: Vec<(Arc<GpuBuffer>, u64)> = Vec::new();

    fn note(t: &mut Transcript, in_flight: &mut HashSet<u64>, c: Completion) {
        in_flight.remove(&c.lease);
        t.entry(c.lease).or_default().push((c.progress, c.ok));
    }

    for batch in &log.batches {
        for ev in &batch.events {
            if let ArbEvent::KernelFinished { lease, .. } = ev {
                if in_flight.contains(lease) {
                    for c in b.drive_until(*lease, DRIVE_MS) {
                        note(&mut transcript, &mut in_flight, c);
                    }
                }
            }
        }
        for cmd in &batch.commands {
            if let Command::Dispatch { lease, .. } = cmd {
                if !in_flight.contains(lease) {
                    let nth = stagings.entry(*lease).or_insert(0);
                    let blocks = (60 + ((*lease * 37 + *nth * 17) % 5) * 12) as u32;
                    *nth += 1;
                    let (k, hits) = counter_kernel(blocks, 0);
                    buffers.push((hits, u64::from(blocks)));
                    b.stage(*lease, WorkSpec::new(k, 7));
                    in_flight.insert(*lease);
                }
            }
            b.apply(cmd);
        }
    }
    // Drain stragglers (leases whose final drain fell past the last
    // recorded batch), in deterministic lease order.
    let mut rest: Vec<u64> = in_flight.iter().copied().collect();
    rest.sort_unstable();
    for lease in rest {
        if in_flight.contains(&lease) {
            for c in b.drive_until(lease, DRIVE_MS) {
                note(&mut transcript, &mut in_flight, c);
            }
        }
    }
    assert!(
        in_flight.is_empty(),
        "replay left leases unfinished: {in_flight:?}"
    );
    if b.is_functional() {
        for (hits, total) in &buffers {
            assert_exactly_once(hits, *total);
        }
    }
    transcript
}
