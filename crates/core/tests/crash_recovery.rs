//! Seeded crash-kill / recover acceptance harness for the durability
//! subsystem.
//!
//! Each case runs a fixed workload of crash-replayable kernels whose every
//! block increments its own slot of a "hit buffer" exactly once, kills the
//! daemon at a seed-derived instant (`SlateDaemon::crash` — the functional
//! SIGKILL), recovers it from the WAL + snapshot directory, and lets the
//! client reattach transparently through its resume token. Exactly-once
//! execution is then observable as bytes: every hit slot must read 1.0
//! (a lost block would read 0.0, a re-executed one 2.0), and the whole
//! buffer must equal the one produced by an identical run that never
//! crashed. The full placement WAL — both epochs, kept via `keep_all` —
//! must also replay to the byte-identical routed-command transcript.

use slate_core::api::{resume_with_retry, RetryPolicy, SlateClient};
use slate_core::daemon::{DaemonOptions, ResumeToken, SlateDaemon};
use slate_core::durability::full_log;
use slate_core::placement::replay::verify;
use slate_core::DurabilityOptions;
use slate_gpu_sim::buffer::GpuBuffer;
use slate_gpu_sim::device::DeviceConfig;
use slate_gpu_sim::perf::KernelPerf;
use slate_kernels::grid::{BlockCoord, GridDim};
use slate_kernels::kernel::GpuKernel;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const BLOCKS: u32 = 48;
const LAUNCHES: usize = 6;

/// Every block bumps its own hit slot by one and dawdles long enough that
/// a mid-workload kill lands between block executions. One slot per block
/// means no write contention: the slot's final value *is* the execution
/// count.
struct HitKernel {
    base: usize,
    hits: Arc<GpuBuffer>,
}

impl GpuKernel for HitKernel {
    fn name(&self) -> &str {
        "hit"
    }
    fn grid(&self) -> GridDim {
        GridDim::d1(BLOCKS)
    }
    fn perf(&self) -> KernelPerf {
        KernelPerf::synthetic("hit", 400.0, 900.0)
    }
    fn run_block(&self, b: BlockCoord) {
        let i = self.base + b.x as usize;
        self.hits.store_f32(i, self.hits.load_f32(i) + 1.0);
        std::thread::sleep(Duration::from_micros(300));
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "slate-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn fleet(devices: usize) -> Vec<DeviceConfig> {
    (0..devices).map(|_| DeviceConfig::tiny(4)).collect()
}

fn durable_opts(devices: usize, dir: &Path) -> DaemonOptions {
    DaemonOptions {
        devices: fleet(devices),
        durability: Some(DurabilityOptions {
            dir: dir.to_path_buf(),
            snapshot_every: 8,
            keep_all: true,
        }),
        ..Default::default()
    }
}

/// Submits the fixed workload: one hit buffer, `LAUNCHES` replayable
/// kernels over disjoint slot ranges. Returns the buffer handle.
fn submit_workload(client: &SlateClient) -> slate_core::SlatePtr {
    let slots = LAUNCHES * BLOCKS as usize;
    let hits = client.malloc((slots * 4) as u64).unwrap();
    client.upload_f32(hits, &vec![0.0f32; slots]).unwrap();
    for k in 0..LAUNCHES {
        let base = k * BLOCKS as usize;
        client
            .launch_replayable(vec![hits], 8, None, move |bufs| -> Arc<dyn GpuKernel> {
                Arc::new(HitKernel {
                    base,
                    hits: bufs[0].clone(),
                })
            })
            .unwrap();
    }
    hits
}

/// The golden transcript: the identical workload on a daemon that never
/// crashes (and needs no durability).
fn golden_run(devices: usize) -> Vec<f32> {
    let opts = DaemonOptions {
        devices: fleet(devices),
        ..Default::default()
    };
    let daemon = SlateDaemon::start_with_options(DeviceConfig::tiny(4), 1 << 24, opts);
    let client = SlateClient::new(daemon.connect("golden").unwrap());
    let hits = submit_workload(&client);
    client.synchronize().unwrap();
    let out = client
        .download_f32(hits, LAUNCHES * BLOCKS as usize)
        .unwrap();
    client.disconnect().unwrap();
    daemon.join();
    out
}

/// Kill mid-workload at a seed-derived instant, recover, reattach, fence,
/// read back. Returns the recovered hit buffer.
fn crashed_run(seed: u64, devices: usize, dir: &Path) -> Vec<f32> {
    let daemon =
        SlateDaemon::start_with_options(DeviceConfig::tiny(4), 1 << 24, durable_opts(devices, dir));
    let client = SlateClient::new(daemon.connect("chaos").unwrap());
    let hits = submit_workload(&client);
    // Seeded kill point, spread across the workload's ~tens of ms of
    // block executions (including "before anything ran" and "after
    // everything finished" at the extremes).
    let delay = Duration::from_micros(500 + (seed % 23) * 700);
    let killer = {
        let d = daemon.clone();
        std::thread::spawn(move || {
            std::thread::sleep(delay);
            d.crash()
        })
    };
    let scene = killer.join().unwrap();
    let recovered = SlateDaemon::recover(
        scene,
        DaemonOptions {
            durability: Some(DurabilityOptions {
                dir: dir.to_path_buf(),
                snapshot_every: 8,
                keep_all: true,
            }),
            ..Default::default()
        },
    )
    .expect("recover from WAL + snapshot");
    assert_eq!(recovered.epoch(), 1, "recovery bumps the epoch");
    // Transparent reattach: the client's next fence resumes the session,
    // resubmits every unacknowledged replayable launch under its original
    // id, and must surface no error.
    client.install_reattach(&recovered);
    client
        .synchronize()
        .expect("a resumed client surfaces no errors");
    let out = client
        .download_f32(hits, LAUNCHES * BLOCKS as usize)
        .unwrap();
    client.disconnect().unwrap();
    recovered.join();
    out
}

fn case(seed: u64, devices: usize) {
    let dir = tmpdir(&format!("case-{seed:x}-{devices}"));
    let crashed = crashed_run(seed, devices, &dir);
    // Exactly-once: every block of every launch ran precisely one time,
    // across the kill — no block lost, none re-executed.
    for (i, &v) in crashed.iter().enumerate() {
        assert_eq!(
            v, 1.0,
            "seed {seed:#x} devices {devices}: slot {i} executed {v} times"
        );
    }
    // Byte-identical to the uncrashed golden run.
    let golden = golden_run(devices);
    assert_eq!(
        crashed, golden,
        "seed {seed:#x} devices {devices}: recovered hit buffer diverges from golden"
    );
    // The kept full-history WAL (both epochs) replays to the identical
    // routed-command transcript.
    let log = full_log(&dir).expect("stitch full placement log from kept segments");
    verify(&log).expect("full WAL replays byte-identically");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_recover_exactly_once_two_devices() {
    for seed in [0xC0FFEE_u64, 0x5EED, 42] {
        case(seed, 2);
    }
}

#[test]
fn crash_recover_exactly_once_three_devices() {
    for seed in [0xC0FFEE_u64, 0x5EED, 42] {
        case(seed, 3);
    }
}

#[test]
fn resume_tokens_are_single_use_and_epoch_checked() {
    let dir = tmpdir("tokens");
    let daemon =
        SlateDaemon::start_with_options(DeviceConfig::tiny(4), 1 << 24, durable_opts(2, &dir));
    let client = SlateClient::new(daemon.connect("tok").unwrap());
    let p = client.malloc(256).unwrap();
    client.upload_f32(p, &[4.0, 5.0]).unwrap();
    let token = client.resume_token();
    assert_eq!(token.epoch, 0);
    let scene = daemon.crash();
    let recovered = SlateDaemon::recover(
        scene,
        DaemonOptions {
            durability: Some(DurabilityOptions {
                dir: dir.to_path_buf(),
                snapshot_every: 8,
                keep_all: true,
            }),
            ..Default::default()
        },
    )
    .unwrap();
    // A token for a session the log never saw is refused.
    let bogus = ResumeToken {
        epoch: 0,
        session: 999,
    };
    assert!(matches!(
        recovered.resume(bogus).err().unwrap(),
        slate_core::SlateError::ResumeRejected(_)
    ));
    // A token minted by the *current* incarnation is refused (nothing
    // crashed between minting and redeeming).
    let stale = ResumeToken {
        epoch: recovered.epoch(),
        session: token.session,
    };
    assert!(matches!(
        recovered.resume(stale).err().unwrap(),
        slate_core::SlateError::ResumeRejected(_)
    ));
    // The real token works exactly once — and the resumed session still
    // sees its pre-crash memory.
    let resumed = resume_with_retry(&recovered, token, RetryPolicy::with_attempts(3)).unwrap();
    assert!(matches!(
        recovered.resume(token).err().unwrap(),
        slate_core::SlateError::ResumeRejected(_)
    ));
    assert_eq!(resumed.download_f32(p, 2).unwrap(), vec![4.0, 5.0]);
    // And it keeps working for new kernels.
    resumed
        .launch_replayable(vec![p], 8, None, |bufs| -> Arc<dyn GpuKernel> {
            Arc::new(HitKernel {
                base: 2,
                hits: bufs[0].clone(),
            })
        })
        .unwrap();
    resumed.synchronize().unwrap();
    resumed.disconnect().unwrap();
    recovered.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_against_a_non_durable_daemon_is_rejected() {
    let daemon = SlateDaemon::start(DeviceConfig::tiny(2), 1 << 20);
    let err = daemon
        .resume(ResumeToken {
            epoch: 0,
            session: 1,
        })
        .err()
        .unwrap();
    assert!(matches!(err, slate_core::SlateError::ResumeRejected(_)));
    daemon.join();
}

/// Nightly soak: many seeded kill points per device count, seed injected
/// through `SLATE_CHAOS_SEED`. Run with `--ignored`.
#[test]
#[ignore = "crash-restart soak for the nightly job; seed via SLATE_CHAOS_SEED"]
fn crash_restart_soak() {
    let seed: u64 = std::env::var("SLATE_CHAOS_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim().to_string();
            match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(1);
    for round in 0..8u64 {
        let s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(round);
        for devices in [2usize, 3] {
            case(s, devices);
        }
    }
}
