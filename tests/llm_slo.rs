//! SLO acceptance suite for the LLM serving family: bounded preemption of
//! best-effort work under latency-critical load, no starvation of
//! best-effort sessions, and SLO classes that survive a daemon crash
//! (WAL + snapshot recovery) and a cross-device migration.

use slate_core::api::SlateClient;
use slate_core::arbiter::{Command, Event};
use slate_core::daemon::{DaemonOptions, SlateDaemon};
use slate_core::{DurabilityOptions, PlacementConfig, PlacementLayer, WorkloadClass};
use slate_gpu_sim::buffer::GpuBuffer;
use slate_gpu_sim::device::DeviceConfig;
use slate_gpu_sim::perf::KernelPerf;
use slate_harness::llm;
use slate_kernels::grid::{BlockCoord, GridDim};
use slate_kernels::kernel::GpuKernel;
use slate_kernels::workload::{Benchmark, SloClass};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Scaled-down trace shared by the latency scenarios: bursts keep their
/// shape, the prefill loops shrink.
const SCALE: u32 = 10;

/// Arrival-jitter seed: fixed by default for reproducibility; the nightly
/// job sweeps a matrix via `SLATE_CHAOS_SEED` (decimal or `0x`-hex).
fn chaos_seed() -> u64 {
    match std::env::var("SLATE_CHAOS_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("SLATE_CHAOS_SEED is not a u64: {s:?}"))
        }
        Err(_) => 0xC0FFEE,
    }
}

#[test]
fn preemption_bounds_decode_tail_latency_under_load() {
    let cfg = DeviceConfig::titan_xp();
    let (results, report) = llm::run_seeded(&cfg, SCALE, chaos_seed());
    assert!(
        results.preemptions > 0,
        "the mixed trace must exercise the preemption path"
    );
    assert!(
        results.decode_on.p99_us < results.decode_off.p99_us,
        "p99 decode latency must be strictly below the no-preemption \
         baseline: {} vs {} µs",
        results.decode_on.p99_us,
        results.decode_off.p99_us
    );
    assert!(
        results.preempt.max_us <= results.preempt_bound_us,
        "a preemption took {} µs, past the {} µs bound",
        results.preempt.max_us,
        results.preempt_bound_us
    );
    assert!(
        report.all_pass(),
        "harness shape checks: {:?}",
        report.checks
    );
}

#[test]
fn best_effort_prefill_is_not_starved_by_critical_bursts() {
    let cfg = DeviceConfig::titan_xp();
    let (results, _) = llm::run_seeded(&cfg, SCALE, chaos_seed());
    // Every session — including the repeatedly-preempted best-effort
    // prefill loops — ran to completion.
    assert_eq!(
        results.completed_on, results.apps,
        "{} of {} sessions completed under preemption",
        results.completed_on, results.apps
    );
    // Preemption trades some prefill turnaround for decode latency, but a
    // starved prefill would blow ANTT up by orders of magnitude (its
    // denominator is a ~seconds solo time).
    assert!(
        results.antt_on.is_finite() && results.antt_on < 50.0,
        "preemption-run ANTT {} suggests starvation",
        results.antt_on
    );
}

// ---- SLO survives crash/recovery ----

/// Every block bumps its own hit slot once and dawdles, so the kernel
/// stays resident long enough to be preempted, and exactly-once execution
/// across the preemption's retreat + relaunch is observable as bytes.
struct HitKernel {
    blocks: u32,
    delay: Duration,
    perf: KernelPerf,
    hits: Arc<GpuBuffer>,
}

impl GpuKernel for HitKernel {
    fn name(&self) -> &str {
        &self.perf.name
    }
    fn grid(&self) -> GridDim {
        GridDim::d1(self.blocks)
    }
    fn perf(&self) -> KernelPerf {
        self.perf.clone()
    }
    fn run_block(&self, b: BlockCoord) {
        let i = b.x as usize;
        self.hits.store_f32(i, self.hits.load_f32(i) + 1.0);
        std::thread::sleep(self.delay);
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "slate-llm-slo-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn durable_slo_opts(dir: &Path) -> DaemonOptions {
    DaemonOptions {
        preempt_bound_ms: Some(50),
        durability: Some(DurabilityOptions {
            dir: dir.to_path_buf(),
            snapshot_every: 8,
            keep_all: true,
        }),
        ..Default::default()
    }
}

fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// The latency-critical class is declared exactly once, before the crash;
/// the only way the recovered daemon can preempt for the session is by
/// having restored the class from the WAL's `SessionMeta` + batch replay.
#[test]
fn slo_class_survives_crash_recovery() {
    let dir = tmpdir("crash");
    let daemon =
        SlateDaemon::start_with_options(DeviceConfig::tiny(8), 1 << 24, durable_slo_opts(&dir));
    let bulk = SlateClient::new(daemon.connect("bulk").unwrap());
    let decoder = SlateClient::new(
        daemon
            .connect_with_slo("decoder", SloClass::LatencyCritical)
            .unwrap(),
    );
    // Functional SIGKILL with nothing in flight: the class declaration is
    // already durable.
    let scene = daemon.crash();
    let recovered =
        SlateDaemon::recover(scene, durable_slo_opts(&dir)).expect("recover from WAL + snapshot");
    assert_eq!(recovered.epoch(), 1, "recovery bumps the epoch");
    assert_eq!(recovered.slo_preemptions(), 0);
    bulk.install_reattach(&recovered);
    decoder.install_reattach(&recovered);

    // A long best-effort kernel occupies the device...
    let be_blocks = 256u32;
    let be_hits = bulk.malloc(u64::from(be_blocks) * 4).unwrap();
    bulk.upload_f32(be_hits, &vec![0.0f32; be_blocks as usize])
        .unwrap();
    bulk.launch_with(vec![be_hits], 4, None, move |bufs| {
        Arc::new(HitKernel {
            blocks: be_blocks,
            delay: Duration::from_millis(1),
            perf: KernelPerf::synthetic("be-prefill", 400.0, 900.0),
            hits: bufs[0].clone(),
        }) as Arc<dyn GpuKernel>
    })
    .unwrap();
    wait_for("best-effort kernel resident", || {
        recovered.arbiter_residents() >= 1
    });

    // ...and the recovered daemon still preempts it for the
    // latency-critical session's arrival.
    let lc_blocks = 32u32;
    let lc_hits = decoder.malloc(u64::from(lc_blocks) * 4).unwrap();
    decoder
        .upload_f32(lc_hits, &vec![0.0f32; lc_blocks as usize])
        .unwrap();
    decoder
        .launch_with(vec![lc_hits], 4, None, move |bufs| {
            Arc::new(HitKernel {
                blocks: lc_blocks,
                delay: Duration::from_micros(100),
                perf: KernelPerf::synthetic("lc-decode", 300.0, 600.0),
                hits: bufs[0].clone(),
            }) as Arc<dyn GpuKernel>
        })
        .unwrap();
    wait_for("preemption on the recovered daemon", || {
        recovered.slo_preemptions() >= 1
    });

    // Both kernels complete, and the preempted one's retreat + relaunch
    // kept exactly-once semantics: every hit slot reads 1.0.
    decoder.synchronize().unwrap();
    bulk.synchronize().unwrap();
    let be_out = bulk.download_f32(be_hits, be_blocks as usize).unwrap();
    for (i, &v) in be_out.iter().enumerate() {
        assert_eq!(v, 1.0, "preempted kernel block {i} executed {v} times");
    }
    let lc_out = decoder.download_f32(lc_hits, lc_blocks as usize).unwrap();
    assert!(lc_out.iter().all(|&v| v == 1.0));
    decoder.disconnect().unwrap();
    bulk.disconnect().unwrap();
    recovered.join();
    std::fs::remove_dir_all(&dir).ok();
}

// ---- SLO survives migration ----

fn ready(session: u64, lease: u64, demand: u32) -> Event {
    Event::KernelReady {
        session,
        lease,
        class: WorkloadClass::MM,
        sm_demand: demand,
        pinned_solo: false,
        deadline_ms: None,
    }
}

/// A latency-critical session is evacuated off a failed device; on the
/// surviving device — where the class was never declared — its re-staged
/// arrival must still preempt the best-effort resident, because the
/// placement layer re-declares the class ahead of the routed readiness.
#[test]
fn slo_class_survives_migration() {
    let mut config = PlacementConfig::default();
    config.arbiter.preempt_bound_us = Some(50_000);
    let mut layer = PlacementLayer::new(vec![DeviceConfig::tiny(8), DeviceConfig::tiny(8)], config);
    // Best-effort session 1 fills device 0.
    layer.feed(0, &[Event::SessionOpened { session: 1 }]);
    layer.feed(10, &[ready(1, 10, 8)]);
    // Latency-critical session 2 routes to the device with the most free
    // SMs — device 1 — and dispatches there.
    layer.feed(
        20,
        &[
            Event::SloArrival {
                session: 2,
                class: SloClass::LatencyCritical,
            },
            Event::SessionOpened { session: 2 },
        ],
    );
    layer.feed(30, &[ready(2, 20, 4)]);
    assert_eq!(layer.device_of_session(2), Some(1));

    // Device 1 drops off the bus: the layer synthesizes the evacuation
    // eviction; the eviction lands and the route flips to device 0.
    layer.feed(
        40,
        &[Event::DeviceDown {
            device: 1,
            hard: true,
        }],
    );
    layer.feed(
        50,
        &[Event::KernelFinished {
            lease: 20,
            ok: false,
        }],
    );

    // The re-staged readiness arrives on device 0, which has never seen
    // session 2's declaration. The layer re-declares it, so the core
    // preempts the best-effort resident instead of queueing behind it.
    let cmds = layer.feed(60, &[ready(2, 20, 4)]);
    assert_eq!(
        layer.device_of_lease(20),
        Some(0),
        "the lease's sticky route flipped to the evacuation target"
    );
    assert_eq!(
        layer.core(0).session_slo(2),
        SloClass::LatencyCritical,
        "the class must follow the session to the evacuation target"
    );
    assert!(
        cmds.iter()
            .any(|c| c.device == 0 && c.command == Command::Preempt { lease: 10 }),
        "the migrated arrival must preempt the best-effort resident: {cmds:?}"
    );
    assert!(
        cmds.iter()
            .any(|c| c.device == 0 && matches!(c.command, Command::Dispatch { lease: 20, .. })),
        "the migrated arrival must dispatch on the target: {cmds:?}"
    );
    assert_eq!(layer.preemptions(), 1);
}

/// The decode benchmark is latency-critical by construction and prefill is
/// best-effort: the trace generator owns the SLO wiring end to end.
#[test]
fn trace_generator_assigns_slo_classes() {
    let apps = slate_kernels::workload::llm_trace(&slate_kernels::workload::LlmTraceCfg::paper(1));
    assert!(apps
        .iter()
        .filter(|a| a.bench == Benchmark::PF)
        .all(|a| a.slo == SloClass::BestEffort));
    assert!(apps
        .iter()
        .filter(|a| a.bench == Benchmark::DC)
        .all(|a| a.slo == SloClass::LatencyCritical));
}
