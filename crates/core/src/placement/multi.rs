//! [`MultiSim`]: a placement-driven frontend over N execution backends.
//!
//! This is the multi-device analogue of the single-device feed loop the
//! runtime and daemon run: frontend events go into a
//! [`PlacementLayer`], and every routed command is carried out on its
//! device's [`Backend`]. The driver owns the full migration protocol —
//! when the rebalancer synthesizes an eviction, the evicted completion's
//! absolute `slateIdx` progress is re-staged on the target device with
//! [`WorkSpec::resuming`], so each user block still executes exactly
//! once across the fleet (the conformance suite pins this with
//! functional backends and hit buffers).
//!
//! By default the fleet is N [`SimBackend`]s — this is how
//! [`SlateRuntime::run_placed`](crate::runtime::SlateRuntime::run_placed)
//! drives multi-device simulations — but any [`Backend`] boxes in, so
//! the same driver runs functional `DispatcherBackend` fleets in tests.

use super::{PlacementConfig, PlacementLayer, PlacementStats, RoutedCommand};
use crate::arbiter::{Command, Event, RejectScope};
use crate::backend::{Backend, Completion, DeviceFault, DeviceHealth, SimBackend, WorkSpec};
use crate::classify::WorkloadClass;
use crate::transform::TransformedKernel;
use slate_gpu_sim::device::DeviceConfig;
use std::collections::BTreeMap;

/// One kernel to place and execute: the session it belongs to, its lease,
/// and everything the arbiter needs to schedule it.
pub struct MultiJob {
    /// Owning session (several jobs may share one).
    pub session: u64,
    /// Unique lease id.
    pub lease: u64,
    /// The transformed kernel to execute.
    pub kernel: TransformedKernel,
    /// Blocks pulled per queue transaction.
    pub task_size: u32,
    /// Workload class (Table I).
    pub class: WorkloadClass,
    /// SMs the kernel can productively use.
    pub sm_demand: u32,
    /// Estimated solo runtime for admission control, if profiled.
    pub est_ms: Option<u64>,
}

/// Terminal state of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// Drained: every block executed. Carries the final device.
    Completed {
        /// Device the job finished on (its migration target if it moved).
        device: usize,
    },
    /// Shed by admission control before execution.
    Rejected,
    /// Evicted without a migration target (e.g. watchdog) — not re-run.
    Evicted {
        /// Progress at eviction (absolute `slateIdx`).
        progress: u64,
    },
}

/// A placement layer driving one [`Backend`] per device.
pub struct MultiSim {
    layer: PlacementLayer,
    backends: Vec<Box<dyn Backend>>,
    jobs: BTreeMap<u64, MultiJob>,
    /// Outstanding (unfinished, unrejected) jobs per session; the session
    /// closes when its count reaches zero.
    session_open: BTreeMap<u64, usize>,
    outcomes: BTreeMap<u64, JobOutcome>,
    /// Migration audit trail: (lease, src, dst, progress carried).
    migrations: Vec<(u64, usize, usize, u64)>,
    /// Last health each backend reported; edges become
    /// `DeviceDown`/`DeviceUp` events for the layer.
    seen_health: Vec<DeviceHealth>,
    /// Reusable routed-command buffer for [`MultiSim::feed`] — the
    /// fleet's feed path allocates nothing once warmed.
    routed_scratch: Vec<RoutedCommand>,
    now_ms: u64,
}

impl MultiSim {
    /// A fleet of [`SimBackend`]s, one per device.
    pub fn new(devices: Vec<DeviceConfig>, config: PlacementConfig) -> Self {
        let backends: Vec<Box<dyn Backend>> = devices
            .iter()
            .map(|d| Box::new(SimBackend::new(d.clone())) as Box<dyn Backend>)
            .collect();
        Self::with_backends(backends, config)
    }

    /// A fleet over caller-supplied backends (their devices define the
    /// placement layer's device list).
    ///
    /// # Panics
    /// If `backends` is empty.
    pub fn with_backends(backends: Vec<Box<dyn Backend>>, config: PlacementConfig) -> Self {
        let devices: Vec<DeviceConfig> = backends.iter().map(|b| b.device().clone()).collect();
        let seen_health = vec![DeviceHealth::Healthy; backends.len()];
        Self {
            layer: PlacementLayer::new(devices, config),
            backends,
            jobs: BTreeMap::new(),
            session_open: BTreeMap::new(),
            outcomes: BTreeMap::new(),
            migrations: Vec::new(),
            seen_health,
            routed_scratch: Vec::new(),
            now_ms: 0,
        }
    }

    /// The placement layer (routing tables, per-core stats, loads).
    pub fn layer(&self) -> &PlacementLayer {
        &self.layer
    }

    /// Mutable layer access (recording control).
    pub fn layer_mut(&mut self) -> &mut PlacementLayer {
        &mut self.layer
    }

    /// The backend of `device`.
    pub fn backend(&self, device: usize) -> &dyn Backend {
        self.backends[device].as_ref()
    }

    /// Placement counters.
    pub fn stats(&self) -> PlacementStats {
        self.layer.stats()
    }

    /// Migrations carried out so far: `(lease, src, dst, progress)`.
    pub fn migrations(&self) -> &[(u64, usize, usize, u64)] {
        &self.migrations
    }

    /// The terminal outcome of `lease`, once it has one.
    pub fn outcome(&self, lease: u64) -> Option<JobOutcome> {
        self.outcomes.get(&lease).copied()
    }

    fn now_us(&self) -> u64 {
        self.now_ms * 1_000
    }

    /// Feeds `events` and carries out every routed command. The routed
    /// batch stays readable in `self.routed_scratch` (and is returned by
    /// reference) until the next feed reuses the buffer.
    fn feed(&mut self, events: &[Event]) -> &[RoutedCommand] {
        let mut routed = std::mem::take(&mut self.routed_scratch);
        self.layer.feed_into(self.now_us(), events, &mut routed);
        for r in &routed {
            self.backends[r.device].apply(&r.command);
        }
        self.routed_scratch = routed;
        &self.routed_scratch
    }

    /// Submits a job: opens its session on first sight, runs it through
    /// admission, stages it on its routed device and announces readiness.
    /// Returns `false` (recording a [`JobOutcome::Rejected`]) if admission
    /// shed the launch.
    pub fn submit(&mut self, job: MultiJob) -> bool {
        let (session, lease) = (job.session, job.lease);
        if !self.session_open.contains_key(&session) {
            self.feed(&[Event::SessionOpened { session }]);
            self.session_open.insert(session, 0);
        }
        let routed = self.feed(&[Event::LaunchRequested {
            session,
            lease,
            est_ms: job.est_ms,
            deadline_ms: None,
        }]);
        let shed = routed.iter().any(|r| {
            matches!(
                r.command,
                Command::RejectOverloaded {
                    lease: Some(l),
                    scope: RejectScope::Launch | RejectScope::Deadline,
                    ..
                } if l == lease
            )
        });
        if shed {
            self.outcomes.insert(lease, JobOutcome::Rejected);
            return false;
        }
        let device = self
            .layer
            .device_of_lease(lease)
            .expect("admitted lease is routed");
        self.backends[device].stage(lease, WorkSpec::new(job.kernel.clone(), job.task_size));
        let ready = Event::KernelReady {
            session,
            lease,
            class: job.class,
            sm_demand: job.sm_demand,
            pinned_solo: false,
            deadline_ms: None,
        };
        *self.session_open.get_mut(&session).expect("opened above") += 1;
        self.jobs.insert(lease, job);
        self.feed(&[ready]);
        true
    }

    /// Handles one backend completion: drains feed `KernelFinished {ok}`;
    /// evictions with a pending migration re-stage on the target device
    /// and re-announce readiness; other evictions are terminal.
    fn on_completion(&mut self, device: usize, c: Completion) {
        let lease = c.lease;
        let target = self.layer.migration_target(lease);
        self.feed(&[Event::KernelFinished { lease, ok: c.ok }]);
        if c.ok {
            self.outcomes
                .insert(lease, JobOutcome::Completed { device });
            self.finish_job(lease);
            return;
        }
        let Some(dst) = target else {
            self.outcomes.insert(
                lease,
                JobOutcome::Evicted {
                    progress: c.progress,
                },
            );
            self.finish_job(lease);
            return;
        };
        debug_assert_eq!(self.layer.device_of_lease(lease), Some(dst));
        let job = &self.jobs[&lease];
        self.backends[dst].stage(
            lease,
            WorkSpec::resuming(job.kernel.clone(), job.task_size, c.progress),
        );
        let ready = Event::KernelReady {
            session: job.session,
            lease,
            class: job.class,
            sm_demand: job.sm_demand,
            pinned_solo: false,
            deadline_ms: None,
        };
        self.migrations.push((lease, device, dst, c.progress));
        self.feed(&[ready]);
    }

    fn finish_job(&mut self, lease: u64) {
        let Some(job) = self.jobs.get(&lease) else {
            return;
        };
        let session = job.session;
        let open = self
            .session_open
            .get_mut(&session)
            .expect("session of a live job is open");
        *open -= 1;
        if *open == 0 {
            self.session_open.remove(&session);
            self.feed(&[Event::SessionClosed { session }]);
        }
    }

    /// Hard-fails `device`: its backend drops off the bus (in-flight
    /// work surfaces as `lost` completions at its carried progress), the
    /// layer marks it [`HealthState::Failed`](super::HealthState) and
    /// evacuates every live lease to in-service devices. Work resumes at
    /// its absolute `slateIdx` — no user block is lost or re-run.
    pub fn fail_device(&mut self, device: usize) {
        self.backends[device].inject_device_fault(DeviceFault::Loss);
        self.sync_health();
    }

    /// Brings a failed/degraded `device` back. The layer answers with a
    /// seeded probation window before it becomes a routing target again.
    pub fn recover_device(&mut self, device: usize) {
        self.backends[device].inject_device_fault(DeviceFault::Restore);
        self.sync_health();
    }

    /// Injects `fault` into `device`'s backend and propagates any health
    /// edge to the placement layer immediately.
    pub fn inject_device_fault(&mut self, device: usize, fault: DeviceFault) -> bool {
        let hit = self.backends[device].inject_device_fault(fault);
        self.sync_health();
        hit
    }

    /// Turns backend health *edges* into arbiter-visible
    /// `DeviceDown`/`DeviceUp` events. Runs every tick (and after an
    /// explicit injection), so the layer's health machine — and hence
    /// evacuation — reacts before the next completion is polled: the
    /// evacuation's migration targets must be registered by the time the
    /// lost completions come out of `poll()`.
    fn sync_health(&mut self) {
        for d in 0..self.backends.len() {
            let h = self.backends[d].health();
            if h == self.seen_health[d] {
                continue;
            }
            self.seen_health[d] = h;
            let ev = match h {
                DeviceHealth::Lost => Event::DeviceDown {
                    device: d as u64,
                    hard: true,
                },
                DeviceHealth::Degraded => Event::DeviceDown {
                    device: d as u64,
                    hard: false,
                },
                DeviceHealth::Healthy => Event::DeviceUp { device: d as u64 },
            };
            self.feed(&[ev]);
        }
    }

    /// Advances the fleet one millisecond: backend time passes, health
    /// edges surface, fresh completions are absorbed, and a heartbeat
    /// tick gives every core a scheduling pass (watchdogs, starvation
    /// aging, rebalance checks).
    pub fn tick(&mut self) {
        self.now_ms += 1;
        for b in &mut self.backends {
            b.advance(1);
        }
        self.sync_health();
        loop {
            let mut progressed = false;
            for d in 0..self.backends.len() {
                while let Some(c) = self.backends[d].poll() {
                    self.on_completion(d, c);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        self.feed(&[Event::DeadlineTick]);
    }

    /// Ticks until every submitted job has a terminal outcome, for at most
    /// `timeout_ms` backend milliseconds. Returns `true` if the fleet
    /// drained.
    pub fn run(&mut self, timeout_ms: u64) -> bool {
        for _ in 0..timeout_ms {
            if self.drained() {
                return true;
            }
            self.tick();
        }
        self.drained()
    }

    /// Whether every submitted job has reached a terminal outcome.
    pub fn drained(&self) -> bool {
        self.jobs.keys().all(|l| self.outcomes.contains_key(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::testkit::{assert_exactly_once, counter_kernel};
    use crate::classify::WorkloadClass::*;
    use crate::placement::{HealthState, PlacementPolicy, RebalanceConfig};

    fn job(
        session: u64,
        lease: u64,
        blocks: u32,
        class: WorkloadClass,
    ) -> (MultiJob, std::sync::Arc<slate_gpu_sim::buffer::GpuBuffer>) {
        let (kernel, hits) = counter_kernel(blocks, 0);
        (
            MultiJob {
                session,
                lease,
                kernel,
                task_size: 4,
                class,
                sm_demand: 8,
                est_ms: Some(5),
            },
            hits,
        )
    }

    #[test]
    fn two_sim_devices_complete_round_robin_jobs() {
        let mut fleet = MultiSim::new(
            vec![DeviceConfig::tiny(8), DeviceConfig::tiny(8)],
            PlacementConfig::default(),
        );
        let (j1, _) = job(1, 1, 64, MM);
        let (j2, _) = job(2, 2, 64, MM);
        assert!(fleet.submit(j1));
        assert!(fleet.submit(j2));
        // Round robin: one session per device, both dispatch immediately.
        assert_eq!(fleet.layer().device_of_session(1), Some(0));
        assert_eq!(fleet.layer().device_of_session(2), Some(1));
        assert!(fleet.run(60_000), "fleet must drain");
        assert_eq!(fleet.outcome(1), Some(JobOutcome::Completed { device: 0 }));
        assert_eq!(fleet.outcome(2), Some(JobOutcome::Completed { device: 1 }));
        assert_eq!(fleet.stats().sessions_routed, 2);
    }

    #[test]
    fn rebalance_migrates_and_preserves_exactly_once() {
        // Pin both sessions to device 0 so the rebalancer has something
        // to move to the idle device 1.
        let mut fleet = MultiSim::new(
            vec![DeviceConfig::tiny(8), DeviceConfig::tiny(8)],
            PlacementConfig {
                policy: PlacementPolicy::Affinity {
                    pins: [(1u64, 0usize), (2, 0)].into_iter().collect(),
                },
                rebalance: Some(RebalanceConfig {
                    high_ms: 15,
                    low_ms: 5,
                    cooldown_us: 0,
                    seed: 3,
                }),
                ..Default::default()
            },
        );
        let (j1, hits1) = job(1, 1, 4_000, MM);
        let (j2, hits2) = job(2, 2, 4_000, MM);
        assert!(fleet.submit(j1));
        assert!(fleet.submit(j2));
        assert!(fleet.run(120_000), "fleet must drain");
        assert!(
            fleet.stats().rebalances >= 1,
            "pinned pile-up must trigger a migration"
        );
        assert_eq!(
            fleet.stats().migrations_completed,
            fleet.migrations().len() as u64
        );
        let (_, src, dst, _) = fleet.migrations()[0];
        assert_ne!(src, dst, "migration crosses devices");
        // The sim backend is non-functional, so the hit buffers stay
        // zero; the exactly-once guarantee here is the progress ledger:
        // both jobs completed at full slateMax despite the mid-flight
        // cross-device move.
        let _ = (hits1, hits2);
        assert!(matches!(
            fleet.outcome(1),
            Some(JobOutcome::Completed { .. })
        ));
        assert!(matches!(
            fleet.outcome(2),
            Some(JobOutcome::Completed { .. })
        ));
    }

    #[test]
    fn functional_fleet_rebalance_executes_each_block_exactly_once() {
        use crate::backend::DispatcherBackend;
        let mut fleet = MultiSim::with_backends(
            vec![
                Box::new(DispatcherBackend::new(DeviceConfig::tiny(4))),
                Box::new(DispatcherBackend::new(DeviceConfig::tiny(4))),
            ],
            PlacementConfig {
                policy: PlacementPolicy::Affinity {
                    pins: [(1u64, 0usize), (2, 0)].into_iter().collect(),
                },
                rebalance: Some(RebalanceConfig {
                    high_ms: 15,
                    low_ms: 5,
                    cooldown_us: 0,
                    seed: 9,
                }),
                ..Default::default()
            },
        );
        let total: u32 = 600;
        let (k1, hits1) = counter_kernel(total, 30);
        let (k2, hits2) = counter_kernel(total, 30);
        assert!(fleet.submit(MultiJob {
            session: 1,
            lease: 1,
            kernel: k1,
            task_size: 4,
            class: MM,
            sm_demand: 4,
            est_ms: Some(20),
        }));
        assert!(fleet.submit(MultiJob {
            session: 2,
            lease: 2,
            kernel: k2,
            task_size: 4,
            class: MM,
            sm_demand: 4,
            est_ms: Some(20),
        }));
        assert!(fleet.run(120_000), "functional fleet must drain");
        assert!(fleet.stats().rebalances >= 1, "migration must fire");
        let (lease, src, dst, progress) = fleet.migrations()[0];
        assert_ne!(src, dst);
        assert!(
            progress < total as u64,
            "migration caught the kernel mid-flight (progress {progress})"
        );
        // The acceptance bar: a migrated kernel's hit buffer shows each
        // user block executed exactly once across both devices.
        assert_exactly_once(&hits1, total as u64);
        assert_exactly_once(&hits2, total as u64);
        assert!(matches!(
            fleet.outcome(lease),
            Some(JobOutcome::Completed { .. })
        ));
    }

    #[test]
    fn killing_one_of_three_functional_devices_loses_and_duplicates_nothing() {
        use crate::backend::DispatcherBackend;
        let mut fleet = MultiSim::with_backends(
            (0..3)
                .map(|_| {
                    Box::new(DispatcherBackend::new(DeviceConfig::tiny(4))) as Box<dyn Backend>
                })
                .collect(),
            PlacementConfig::default(),
        );
        let total: u32 = 400;
        let mut buffers = Vec::new();
        for s in 1..=3u64 {
            let (kernel, hits) = counter_kernel(total, 30);
            buffers.push(hits);
            assert!(fleet.submit(MultiJob {
                session: s,
                lease: s,
                kernel,
                task_size: 4,
                class: MM,
                sm_demand: 4,
                est_ms: Some(20),
            }));
        }
        // Round robin spread one job per device; let them get mid-flight.
        for _ in 0..4 {
            fleet.tick();
        }
        fleet.fail_device(0);
        assert_eq!(fleet.layer().health_of(0), HealthState::Failed);
        assert_eq!(fleet.stats().devices_out, 1);
        assert!(fleet.run(120_000), "survivors must absorb the dead device");
        // The acceptance bar: zero user blocks lost, zero duplicated —
        // every hit buffer shows each block executed exactly once across
        // the fleet, including the job evacuated off device 0.
        for hits in &buffers {
            assert_exactly_once(hits, total as u64);
        }
        assert!(fleet.stats().evacuations >= 1, "device 0's job moved");
        let Some(JobOutcome::Completed { device }) = fleet.outcome(1) else {
            panic!("evacuated job must complete, got {:?}", fleet.outcome(1));
        };
        assert_ne!(device, 0, "it cannot have completed on the dead device");
        assert!(fleet
            .migrations()
            .iter()
            .any(|&(lease, src, dst, _)| lease == 1 && src == 0 && dst != 0));
    }

    #[test]
    fn recovered_device_passes_probation_before_taking_traffic() {
        let mut fleet = MultiSim::new(
            vec![DeviceConfig::tiny(8), DeviceConfig::tiny(8)],
            PlacementConfig::default(),
        );
        let (j1, _) = job(1, 1, 2_000, MM);
        assert!(fleet.submit(j1));
        assert_eq!(fleet.layer().device_of_lease(1), Some(0));
        fleet.fail_device(0);
        assert!(fleet.run(120_000), "job must finish on the survivor");
        assert_eq!(fleet.outcome(1), Some(JobOutcome::Completed { device: 1 }));
        assert_eq!(fleet.layer().eligible_devices(), 1);
        // Recovery is gated: up is not immediately eligible…
        fleet.recover_device(0);
        assert!(matches!(
            fleet.layer().health_of(0),
            HealthState::Probation { .. }
        ));
        assert_eq!(fleet.layer().eligible_devices(), 1);
        // …until the seeded probation window passes (default ≤ 8 ms of
        // logical time; heartbeats advance the layer clock).
        for _ in 0..12 {
            fleet.tick();
        }
        assert_eq!(fleet.layer().health_of(0), HealthState::Healthy);
        assert_eq!(fleet.layer().eligible_devices(), 2);
    }
}
