//! Quickstart: price options with BlackScholes through the Slate runtime.
//!
//! Shows the full client/daemon flow an application uses instead of the
//! CUDA runtime: connect, allocate device memory, upload inputs, launch the
//! kernel (which Slate transforms to persistent workers behind the scenes),
//! synchronize, download results — and validate them against the host
//! reference.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use slate_core::api::SlateClient;
use slate_core::daemon::SlateDaemon;
use slate_gpu_sim::device::DeviceConfig;
use slate_kernels::blackscholes::{black_scholes_ref, BlackScholesKernel};
use std::sync::Arc;

fn main() {
    // Start the Slate daemon over the simulated Titan Xp with 12 GB.
    let daemon = SlateDaemon::start(DeviceConfig::titan_xp(), 12 << 30);
    let client = SlateClient::new(daemon.connect("quickstart").unwrap());

    // Generate options on the host.
    let n = 100_000usize;
    let (riskfree, volatility) = (0.02f32, 0.30f32);
    let stock: Vec<f32> = (0..n).map(|i| 5.0 + (i as f32 * 0.37) % 95.0).collect();
    let strike: Vec<f32> = (0..n).map(|i| 1.0 + (i as f32 * 0.53) % 99.0).collect();
    let years: Vec<f32> = (0..n).map(|i| 0.25 + (i as f32 * 0.11) % 9.75).collect();

    // cudaMalloc equivalents.
    let bytes = (n * 4) as u64;
    let d_stock = client.malloc(bytes).unwrap();
    let d_strike = client.malloc(bytes).unwrap();
    let d_years = client.malloc(bytes).unwrap();
    let d_call = client.malloc(bytes).unwrap();
    let d_put = client.malloc(bytes).unwrap();
    println!("allocated 5 x {} KiB on the device", bytes / 1024);

    // cudaMemcpy H2D through shared buffers.
    client.upload_f32(d_stock, &stock).unwrap();
    client.upload_f32(d_strike, &strike).unwrap();
    client.upload_f32(d_years, &years).unwrap();

    // Kernel launch: the daemon resolves the pointers, transforms the
    // kernel (flattened grid + task queue + SM gate) and dispatches it.
    client
        .launch_with(
            vec![d_stock, d_strike, d_years, d_call, d_put],
            10, // SLATE_ITERS
            None,
            move |bufs| {
                Arc::new(BlackScholesKernel::new(
                    n,
                    riskfree,
                    volatility,
                    bufs[0].clone(),
                    bufs[1].clone(),
                    bufs[2].clone(),
                    bufs[3].clone(),
                    bufs[4].clone(),
                ))
            },
        )
        .unwrap();
    client.synchronize().unwrap();
    println!(
        "kernel completed ({} launches served)",
        daemon.launches_served()
    );

    // cudaMemcpy D2H and host validation.
    let call = client.download_f32(d_call, n).unwrap();
    let put = client.download_f32(d_put, n).unwrap();
    let mut max_err = 0.0f32;
    for i in (0..n).step_by(997) {
        let (c_ref, p_ref) = black_scholes_ref(stock[i], strike[i], years[i], riskfree, volatility);
        max_err = max_err
            .max((call[i] - c_ref).abs())
            .max((put[i] - p_ref).abs());
    }
    println!("max deviation from host reference: {max_err:.2e}");
    assert!(
        max_err < 1e-5,
        "device results must match the host reference"
    );

    for p in [d_stock, d_strike, d_years, d_call, d_put] {
        client.free(p).unwrap();
    }
    client.disconnect().unwrap();
    daemon.join();
    println!("priced {n} options through Slate — results verified.");
}
