//! Multi-device placement: N per-device [`ArbiterCore`]s behind one
//! deterministic routing layer.
//!
//! The paper's scope ends at one GPU; this module lifts the arbitration
//! core past it. A [`PlacementLayer`] owns one `ArbiterCore` per
//! [`DeviceConfig`] and splits a single frontend event stream into
//! per-device streams:
//!
//! ```text
//!                frontend events (one stream, logical µs)
//!                               │
//!                   PlacementLayer::feed(now, &[Event])
//!           policy on SessionOpened · sticky session/lease routes
//!           broadcast DeadlineTick/DrainBegan · migration retarget
//!            │                  │                  │
//!       ArbiterCore 0      ArbiterCore 1  …   ArbiterCore N-1
//!            │                  │                  │
//!            └──────────┬───────┴───────┬──────────┘
//!                       ▼               ▼
//!            RoutedCommand { device, command }   (+ synthesized
//!                                   Evicts from the rebalancer)
//! ```
//!
//! Three invariants make the layer as replayable as the cores beneath it:
//!
//! 1. **Sticky deterministic routing** — a session's device is chosen
//!    once, by a pure [`PlacementPolicy`], and every later event of that
//!    session (and of its leases) follows it. No wall clocks, no
//!    unordered maps.
//! 2. **Event-sourced migration** — a rebalance is an ordinary
//!    [`Command::Evict`] synthesized by the layer plus a route change for
//!    the lease: the frontend evicts (capturing absolute `slateIdx`
//!    progress), feeds the `KernelFinished {ok: false}` back (routed to
//!    the *source* core, which cleans up), then re-stages with
//!    [`WorkSpec::resuming`](crate::backend::WorkSpec::resuming) and
//!    re-feeds `KernelReady` — which now routes to the *target* core.
//! 3. **Per-core recording** — the layer's own [`replay::PlacementLog`]
//!    splits into N ordinary [`EventLog`]s
//!    ([`replay::split`]) that verify byte-identically through the
//!    existing single-device machinery.

pub mod multi;
pub mod policy;
pub mod rebalance;
pub mod replay;

pub use multi::{MultiJob, MultiSim};
pub use policy::PlacementPolicy;
pub use rebalance::{Migration, RebalanceConfig};
pub use replay::{PlacementBatch, PlacementLog};

use crate::arbiter::{ArbiterConfig, ArbiterCore, Command, Event, EventLog, Tick};
use rebalance::Rebalancer;
use serde::{Deserialize, Serialize};
use slate_gpu_sim::device::DeviceConfig;
use std::collections::BTreeMap;
use std::fmt;

/// Weight (estimated milliseconds) of one resident or waiting kernel in
/// the device-load metric, matching the arbiter's fallback per-launch
/// estimate for unprofiled work.
const LOAD_WEIGHT_MS: u64 = 10;

/// Static configuration of a [`PlacementLayer`]: the routing policy, the
/// per-core arbiter configuration (shared by all devices), and the
/// optional migration planner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PlacementConfig {
    /// How new sessions choose a device.
    pub policy: PlacementPolicy,
    /// Configuration every per-device [`ArbiterCore`] runs under.
    pub arbiter: ArbiterConfig,
    /// Cross-device rebalancing; `None` disables migration entirely.
    pub rebalance: Option<RebalanceConfig>,
}

/// A command tagged with the device whose backend must carry it out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedCommand {
    /// Index into the layer's device list.
    pub device: usize,
    /// The command itself.
    pub command: Command,
}

impl fmt::Display for RoutedCommand {
    /// Stable rendering used by placement transcripts; changing it
    /// invalidates checked-in goldens.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{} {}", self.device, self.command)
    }
}

/// Counters the placement layer accumulates; scalar and `Copy` so the
/// daemon can fold them into its metrics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlacementStats {
    /// Devices behind the layer.
    pub devices: usize,
    /// Sessions routed to a device (policy consultations).
    pub sessions_routed: u64,
    /// Cross-device migrations fired by the rebalancer.
    pub rebalances: u64,
    /// Migrations whose eviction has landed and whose lease now routes
    /// to the target device.
    pub migrations_completed: u64,
}

/// N per-device arbitration cores behind one deterministic router. See
/// the [module docs](self) for the invariants.
#[derive(Debug)]
pub struct PlacementLayer {
    cores: Vec<ArbiterCore>,
    config: PlacementConfig,
    now: Tick,
    /// Sticky session → device routes.
    session_device: BTreeMap<u64, usize>,
    /// Sticky lease → device routes (diverges from the session's device
    /// after a migration).
    lease_device: BTreeMap<u64, usize>,
    /// Lease → owning session, for cleanup when the session ends.
    lease_session: BTreeMap<u64, u64>,
    /// In-flight migrations: lease → target device. Populated when the
    /// rebalancer fires, drained when the eviction's `KernelFinished`
    /// arrives.
    migrating: BTreeMap<u64, usize>,
    rr_next: usize,
    rebalancer: Option<Rebalancer>,
    sessions_routed: u64,
    migrations_completed: u64,
    record: Option<Vec<PlacementBatch>>,
}

impl PlacementLayer {
    /// A fresh layer over `devices` (one core each) under `config`.
    ///
    /// # Panics
    /// If `devices` is empty.
    pub fn new(devices: Vec<DeviceConfig>, config: PlacementConfig) -> Self {
        assert!(!devices.is_empty(), "placement needs at least one device");
        let cores = devices
            .into_iter()
            .map(|d| ArbiterCore::new(d, config.arbiter.clone()))
            .collect();
        let rebalancer = config.rebalance.clone().map(Rebalancer::new);
        Self {
            cores,
            config,
            now: 0,
            session_device: BTreeMap::new(),
            lease_device: BTreeMap::new(),
            lease_session: BTreeMap::new(),
            migrating: BTreeMap::new(),
            rr_next: 0,
            rebalancer,
            sessions_routed: 0,
            migrations_completed: 0,
            record: None,
        }
    }

    /// Number of devices behind the layer.
    pub fn devices(&self) -> usize {
        self.cores.len()
    }

    /// The per-device core at `device`.
    pub fn core(&self, device: usize) -> &ArbiterCore {
        &self.cores[device]
    }

    /// The active configuration.
    pub fn config(&self) -> &PlacementConfig {
        &self.config
    }

    /// The device `session` is routed to, if it has been routed.
    pub fn device_of_session(&self, session: u64) -> Option<usize> {
        self.session_device.get(&session).copied()
    }

    /// The device `lease` is routed to, if known. After a migration's
    /// eviction lands this is the *target* device — frontends re-stage
    /// the evicted kernel here.
    pub fn device_of_lease(&self, lease: u64) -> Option<usize> {
        self.lease_device.get(&lease).copied()
    }

    /// The migration target of `lease` while its eviction is still in
    /// flight (`None` otherwise). Frontends use this to distinguish a
    /// rebalance eviction (re-stage on the target) from a watchdog
    /// eviction (drop).
    pub fn migration_target(&self, lease: u64) -> Option<usize> {
        self.migrating.get(&lease).copied()
    }

    /// The load metric of `device`: estimated pending milliseconds plus
    /// a fixed per-kernel weight (`LOAD_WEIGHT_MS`) per resident or
    /// waiting kernel. Used by the least-loaded policy and the
    /// rebalancer's imbalance score.
    pub fn device_load(&self, device: usize) -> u64 {
        let core = &self.cores[device];
        core.admission_stats().pending_est_ms
            + LOAD_WEIGHT_MS * (core.residents() + core.waiting()) as u64
    }

    /// Per-device load vector (see [`PlacementLayer::device_load`]).
    pub fn loads(&self) -> Vec<u64> {
        (0..self.cores.len()).map(|i| self.device_load(i)).collect()
    }

    /// Kernels resident across every device.
    pub fn residents(&self) -> usize {
        self.cores.iter().map(|c| c.residents()).sum()
    }

    /// Watchdog evictions across every device.
    pub fn evictions(&self) -> u64 {
        self.cores.iter().map(|c| c.evictions()).sum()
    }

    /// Starvation promotions across every device.
    pub fn promotions(&self) -> u64 {
        self.cores.iter().map(|c| c.promotions()).sum()
    }

    /// Reaped sessions across every device.
    pub fn reaped(&self) -> u64 {
        self.cores.iter().map(|c| c.reaped()).sum()
    }

    /// Launch-queue snapshot summed across every device's core. `capacity`
    /// is the per-core bound (the cores share one configuration), not a
    /// fleet-wide sum.
    pub fn queue_stats(&self) -> crate::queue::QueueStats {
        let mut agg = crate::queue::QueueStats::default();
        for core in &self.cores {
            let s = core.queue_stats();
            agg.depth += s.depth;
            agg.high_water += s.high_water;
            agg.admitted += s.admitted;
            agg.shed += s.shed;
            agg.capacity = s.capacity;
        }
        agg
    }

    /// Admission counters summed across every device's core.
    pub fn admission_stats(&self) -> crate::admission::AdmissionStats {
        let mut agg = crate::admission::AdmissionStats::default();
        for core in &self.cores {
            let s = core.admission_stats();
            agg.active_sessions += s.active_sessions;
            agg.sessions_admitted += s.sessions_admitted;
            agg.sessions_rejected += s.sessions_rejected;
            agg.launches_completed += s.launches_completed;
            agg.launches_failed += s.launches_failed;
            agg.deadline_rejections += s.deadline_rejections;
            agg.mallocs_shed += s.mallocs_shed;
            agg.pending_est_ms += s.pending_est_ms;
        }
        agg
    }

    /// Snapshot of the placement counters.
    pub fn stats(&self) -> PlacementStats {
        PlacementStats {
            devices: self.cores.len(),
            sessions_routed: self.sessions_routed,
            rebalances: self.rebalancer.as_ref().map_or(0, |r| r.fired()),
            migrations_completed: self.migrations_completed,
        }
    }

    /// Starts recording: the layer's own routed batches *and* each
    /// core's per-device [`EventLog`] (so one recorded run yields both
    /// the placement log and its per-core split).
    pub fn start_recording(&mut self) {
        self.record = Some(Vec::new());
        for core in &mut self.cores {
            core.start_recording();
        }
    }

    /// Takes the placement-level log (if recording was started).
    pub fn take_log(&mut self) -> Option<PlacementLog> {
        self.record.take().map(|batches| PlacementLog {
            devices: self.cores.iter().map(|c| c.device().clone()).collect(),
            config: self.config.clone(),
            batches,
        })
    }

    /// Takes each core's per-device log, in device order. Entries are
    /// `None` for cores that were never recording.
    pub fn take_core_logs(&mut self) -> Vec<Option<EventLog>> {
        self.cores.iter_mut().map(|c| c.take_log()).collect()
    }

    fn session_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.cores.len()];
        for &d in self.session_device.values() {
            counts[d] += 1;
        }
        counts
    }

    /// Routes `session` via the policy (first sight) or its sticky route.
    fn device_of_or_assign(&mut self, session: u64) -> usize {
        if let Some(&d) = self.session_device.get(&session) {
            return d;
        }
        let loads = self.loads();
        let counts = self.session_counts();
        let (d, advanced_rr) = self
            .config
            .policy
            .route(session, &loads, &counts, self.rr_next);
        if advanced_rr {
            self.rr_next += 1;
        }
        self.session_device.insert(session, d);
        self.sessions_routed += 1;
        d
    }

    /// Routes a lease-scoped event: the lease's sticky route if it has
    /// one (it diverges from the session's after a migration), else the
    /// session's.
    fn device_for_lease(&mut self, session: u64, lease: u64) -> usize {
        let d = match self.lease_device.get(&lease) {
            Some(&d) => d,
            None => {
                let d = self.device_of_or_assign(session);
                self.lease_device.insert(lease, d);
                d
            }
        };
        self.lease_session.insert(lease, session);
        d
    }

    /// Feeds one batch of frontend events at logical time `now`, routing
    /// each to its device's core, and returns every resulting command
    /// tagged with its device — including any migration eviction the
    /// rebalancer synthesized this batch. Commands come out in device
    /// order (all of device 0's, then device 1's, …), each device's in
    /// its core's emission order.
    pub fn feed(&mut self, now: Tick, events: &[Event]) -> Vec<RoutedCommand> {
        self.now = self.now.max(now);
        let n = self.cores.len();
        let mut sub: Vec<Vec<Event>> = vec![Vec::new(); n];
        let mut finished: Vec<u64> = Vec::new();
        let mut ended: Vec<u64> = Vec::new();
        for ev in events {
            match *ev {
                Event::SessionOpened { session } => {
                    let d = self.device_of_or_assign(session);
                    sub[d].push(ev.clone());
                }
                Event::SessionClosed { session } | Event::SessionSevered { session } => {
                    let d = self.session_device.get(&session).copied().unwrap_or(0);
                    sub[d].push(ev.clone());
                    ended.push(session);
                }
                Event::LaunchRequested { session, lease, .. }
                | Event::KernelReady { session, lease, .. } => {
                    let d = self.device_for_lease(session, lease);
                    sub[d].push(ev.clone());
                }
                Event::KernelFinished { lease, .. } => {
                    let d = self.lease_device.get(&lease).copied().unwrap_or(0);
                    sub[d].push(ev.clone());
                    finished.push(lease);
                }
                Event::MallocRequested { session, .. } => {
                    let d = self.device_of_or_assign(session);
                    sub[d].push(ev.clone());
                }
                Event::DeadlineTick | Event::DrainBegan => {
                    for s in sub.iter_mut() {
                        s.push(ev.clone());
                    }
                }
            }
        }
        let mut out = Vec::new();
        for (d, batch) in sub.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            for command in self.cores[d].feed(self.now, batch) {
                out.push(RoutedCommand { device: d, command });
            }
        }
        // A landed eviction completes its migration: the lease's sticky
        // route flips to the target, so the re-fed KernelReady lands there.
        for lease in finished {
            if let Some(dst) = self.migrating.remove(&lease) {
                self.lease_device.insert(lease, dst);
                self.migrations_completed += 1;
            }
        }
        for session in ended {
            self.session_device.remove(&session);
            let leases: Vec<u64> = self
                .lease_session
                .iter()
                .filter(|&(_, &s)| s == session)
                .map(|(&l, _)| l)
                .collect();
            for l in leases {
                self.lease_session.remove(&l);
                self.lease_device.remove(&l);
                self.migrating.remove(&l);
            }
        }
        if let Some(cmd) = self.maybe_rebalance() {
            out.push(cmd);
        }
        if let Some(batches) = &mut self.record {
            let heartbeat_only = events.iter().all(|e| matches!(e, Event::DeadlineTick));
            if !(heartbeat_only && out.is_empty()) {
                batches.push(PlacementBatch {
                    at: self.now,
                    events: events.to_vec(),
                    routed: out.clone(),
                });
            }
        }
        out
    }

    fn maybe_rebalance(&mut self) -> Option<RoutedCommand> {
        // One migration in flight at a time: the load vector is stale
        // until the eviction lands, so a second fire would double-move.
        if self.rebalancer.is_none() || !self.migrating.is_empty() {
            return None;
        }
        let loads = self.loads();
        let now = self.now;
        let cores = &self.cores;
        let rb = self.rebalancer.as_mut().expect("checked above");
        let m = rb.plan(now, &loads, |src| cores[src].resident_leases())?;
        self.migrating.insert(m.lease, m.dst);
        Some(RoutedCommand {
            device: m.src,
            command: Command::Evict { lease: m.lease },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::WorkloadClass::*;

    fn two_tiny() -> Vec<DeviceConfig> {
        vec![DeviceConfig::tiny(8), DeviceConfig::tiny(8)]
    }

    fn layer(policy: PlacementPolicy) -> PlacementLayer {
        PlacementLayer::new(
            two_tiny(),
            PlacementConfig {
                policy,
                ..Default::default()
            },
        )
    }

    fn ready(session: u64, lease: u64, demand: u32) -> Event {
        Event::KernelReady {
            session,
            lease,
            class: MM,
            sm_demand: demand,
            pinned_solo: false,
            deadline_ms: None,
        }
    }

    #[test]
    fn round_robin_alternates_sessions_across_devices() {
        let mut p = layer(PlacementPolicy::RoundRobin);
        p.feed(
            0,
            &[
                Event::SessionOpened { session: 1 },
                Event::SessionOpened { session: 2 },
                Event::SessionOpened { session: 3 },
            ],
        );
        assert_eq!(p.device_of_session(1), Some(0));
        assert_eq!(p.device_of_session(2), Some(1));
        assert_eq!(p.device_of_session(3), Some(0));
        assert_eq!(p.stats().sessions_routed, 3);
    }

    #[test]
    fn lease_events_follow_the_session_and_dispatch_on_its_device() {
        let mut p = layer(PlacementPolicy::RoundRobin);
        p.feed(
            0,
            &[
                Event::SessionOpened { session: 1 },
                Event::SessionOpened { session: 2 },
            ],
        );
        let out = p.feed(1, &[ready(1, 10, 8), ready(2, 20, 8)]);
        assert_eq!(
            out.iter()
                .map(|r| (r.device, r.command.clone()))
                .collect::<Vec<_>>(),
            vec![
                (
                    0,
                    Command::Dispatch {
                        lease: 10,
                        range: slate_gpu_sim::device::SmRange::all(8)
                    }
                ),
                (
                    1,
                    Command::Dispatch {
                        lease: 20,
                        range: slate_gpu_sim::device::SmRange::all(8)
                    }
                ),
            ]
        );
        assert_eq!(p.core(0).residents(), 1);
        assert_eq!(p.core(1).residents(), 1);
    }

    #[test]
    fn broadcast_events_reach_every_core() {
        let mut p = layer(PlacementPolicy::RoundRobin);
        p.feed(0, &[Event::DrainBegan]);
        assert!(p.core(0).draining());
        assert!(p.core(1).draining());
    }

    #[test]
    fn least_loaded_routes_away_from_busy_device() {
        let mut p = layer(PlacementPolicy::LeastLoaded);
        // First session lands on device 0 and queues profiled work.
        p.feed(0, &[Event::SessionOpened { session: 1 }]);
        p.feed(
            1,
            &[Event::LaunchRequested {
                session: 1,
                lease: 10,
                est_ms: Some(500),
                deadline_ms: None,
            }],
        );
        // The next session sees device 0 loaded and lands on device 1.
        p.feed(2, &[Event::SessionOpened { session: 2 }]);
        assert_eq!(p.device_of_session(2), Some(1));
    }

    #[test]
    fn session_end_clears_routes() {
        let mut p = layer(PlacementPolicy::RoundRobin);
        p.feed(0, &[Event::SessionOpened { session: 1 }]);
        p.feed(1, &[ready(1, 10, 8)]);
        assert_eq!(p.device_of_lease(10), Some(0));
        p.feed(2, &[Event::SessionClosed { session: 1 }]);
        assert_eq!(p.device_of_session(1), None);
        assert_eq!(p.device_of_lease(10), None);
    }

    #[test]
    fn rebalance_evicts_on_source_and_reroutes_lease_to_target() {
        let mut p = PlacementLayer::new(
            two_tiny(),
            PlacementConfig {
                policy: PlacementPolicy::Affinity {
                    pins: [(1u64, 0usize), (2, 0)].into_iter().collect(),
                },
                rebalance: Some(RebalanceConfig {
                    high_ms: 20,
                    low_ms: 5,
                    cooldown_us: 0,
                    seed: 1,
                }),
                ..Default::default()
            },
        );
        // Everything pinned to device 0: one resident + one waiter piles
        // 20 ms of weighted load against an idle device 1.
        p.feed(
            0,
            &[
                Event::SessionOpened { session: 1 },
                Event::SessionOpened { session: 2 },
            ],
        );
        let out = p.feed(1, &[ready(1, 10, 8), ready(2, 20, 8)]);
        let evict = out
            .iter()
            .find(|r| matches!(r.command, Command::Evict { .. }))
            .expect("imbalance fires a migration eviction");
        assert_eq!(evict.device, 0, "eviction lands on the hot device");
        let Command::Evict { lease } = evict.command else {
            unreachable!()
        };
        assert_eq!(lease, 10, "the only resident is the victim");
        assert_eq!(p.migration_target(10), Some(1));
        assert_eq!(p.stats().rebalances, 1);
        // The eviction lands: finished routes to the source core, then
        // the lease's route flips to the target.
        let out = p.feed(
            2,
            &[Event::KernelFinished {
                lease: 10,
                ok: false,
            }],
        );
        assert_eq!(p.device_of_lease(10), Some(1));
        assert_eq!(p.migration_target(10), None);
        assert_eq!(p.stats().migrations_completed, 1);
        // Source core dispatched its waiter onto the freed device.
        assert!(out
            .iter()
            .any(|r| r.device == 0 && matches!(r.command, Command::Dispatch { lease: 20, .. })));
        // Re-staged readiness dispatches on the target device.
        let out = p.feed(3, &[ready(1, 10, 8)]);
        assert!(out
            .iter()
            .any(|r| r.device == 1 && matches!(r.command, Command::Dispatch { lease: 10, .. })));
    }

    #[test]
    fn single_device_layer_degenerates_to_the_bare_core() {
        let mut p = PlacementLayer::new(vec![DeviceConfig::titan_xp()], PlacementConfig::default());
        let mut bare = ArbiterCore::new(DeviceConfig::titan_xp(), ArbiterConfig::default());
        let script: Vec<(Tick, Vec<Event>)> = vec![
            (0, vec![Event::SessionOpened { session: 1 }]),
            (1, vec![ready(1, 10, 30)]),
            (2, vec![ready(1, 11, 14)]),
            (
                3,
                vec![Event::KernelFinished {
                    lease: 10,
                    ok: true,
                }],
            ),
            (4, vec![Event::DeadlineTick]),
            (5, vec![Event::SessionClosed { session: 1 }]),
        ];
        for (at, events) in script {
            let routed = p.feed(at, &events);
            let direct = bare.feed(at, &events);
            assert_eq!(routed.iter().map(|r| r.device).max().unwrap_or(0), 0);
            assert_eq!(
                routed.into_iter().map(|r| r.command).collect::<Vec<_>>(),
                direct
            );
        }
    }
}
