//! LLM serving under mixed SLOs — the tail-latency headline experiment.
//!
//! Replays the seeded open-loop serving trace ([`llm_trace`]) — best-effort
//! prefill loops under bursts of latency-critical decode sessions — through
//! [`SlateRuntime`] twice: once with priority preemption enabled
//! (`preempt_bound_s`) and once without. With preemption off, a decode
//! burst that lands behind a ~46 ms prefill launch waits for the full
//! launch boundary; with it on, the arbiter retreats the best-effort
//! resident immediately, so decode tail latency collapses while prefill
//! throughput is preserved by work conservation plus §9 aging.

use crate::report::{f, Report, Table};
use slate_baselines::Runtime;
use slate_core::arbiter::EventLog;
use slate_core::{SlateOptions, SlateRuntime};
use slate_gpu_sim::device::DeviceConfig;
use slate_kernels::workload::{llm_trace, Benchmark, LlmTraceCfg};
use std::collections::BTreeSet;

/// Preemption bound the experiment runs under: the arbiter must dispatch a
/// latency-critical arrival or emit the displacing `Preempt` within this
/// many logical microseconds.
pub const PREEMPT_BOUND_US: u64 = 20_000;

pub use slate_core::trace::metrics::{percentile_us, LatencyStats};

/// Sessions declared latency-critical in a recorded run. Delegates to
/// [`slate_core::trace::metrics`], where the extraction moved so the
/// offline autotuner scores replays with the exact same code.
pub fn critical_sessions(log: &EventLog) -> BTreeSet<u64> {
    slate_core::trace::metrics::critical_sessions(&log.batches)
}

/// Per-launch decode latencies (ready → drained, logical µs) of the
/// latency-critical sessions in a recorded run. The runtime assigns lease
/// ids equal to session ids, and each session keeps at most one launch in
/// flight, so a lease→ready-tick map pairs every `KernelFinished {ok}`
/// with its `KernelReady`. Delegates to [`slate_core::trace::metrics`].
pub fn decode_latencies(log: &EventLog) -> Vec<u64> {
    slate_core::trace::metrics::decode_latencies(&log.batches)
}

/// Preemption latencies (logical µs from the preemptor's `KernelReady` to
/// the batch that emitted its displacing `Preempt`+`Dispatch`). The core
/// processes a batch's events before deciding, so a same-batch preemption
/// observes latency zero. Delegates to [`slate_core::trace::metrics`].
pub fn preempt_latencies(log: &EventLog) -> Vec<u64> {
    slate_core::trace::metrics::preempt_latencies(&log.batches)
}

/// Everything the experiment measured.
#[derive(Debug, Clone)]
pub struct LlmResults {
    /// Decode launch latency with preemption enabled.
    pub decode_on: LatencyStats,
    /// Decode launch latency with preemption disabled.
    pub decode_off: LatencyStats,
    /// Preemption latency (arrival → displacing command) in the enabled run.
    pub preempt: LatencyStats,
    /// Preemptions the enabled run performed.
    pub preemptions: usize,
    /// The bound the enabled run was configured with.
    pub preempt_bound_us: u64,
    /// ANTT of the enabled run against solo baselines.
    pub antt_on: f64,
    /// ANTT of the disabled run against solo baselines.
    pub antt_off: f64,
    /// Makespan of the enabled run, seconds.
    pub makespan_on_s: f64,
    /// Makespan of the disabled run, seconds.
    pub makespan_off_s: f64,
    /// Apps that finished in the enabled run (best-effort no-starvation).
    pub completed_on: usize,
    /// Total apps in the trace.
    pub apps: usize,
}

impl LlmResults {
    /// One-line machine-readable summary for the CI bench artifact. The
    /// headline metric is `p99_decode_under_load_us`.
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"p99_decode_under_load_us\":{},\"p95_decode_under_load_us\":{},\
             \"p50_decode_under_load_us\":{},\"p99_decode_no_preempt_us\":{},\
             \"preempt_max_us\":{},\"preempt_bound_us\":{},\"preemptions\":{},\
             \"antt_on\":{:.4},\"antt_off\":{:.4}}}",
            self.decode_on.p99_us,
            self.decode_on.p95_us,
            self.decode_on.p50_us,
            self.decode_off.p99_us,
            self.preempt.max_us,
            self.preempt_bound_us,
            self.preemptions,
            self.antt_on,
            self.antt_off,
        )
    }
}

/// Solo app time of one app body (zero arrival offset), for ANTT.
fn solo_time(cfg: &DeviceConfig, app: &slate_kernels::workload::AppSpec) -> f64 {
    let mut solo = app.clone();
    solo.host_setup_s = 0.0;
    let out = SlateRuntime::new(cfg.clone()).run(std::slice::from_ref(&solo));
    out.apps[0].app_time_s
}

/// Runs the mixed-SLO serving trace with preemption on and off; `scale`
/// shrinks the prefill loops the way the other experiments do.
pub fn run(cfg: &DeviceConfig, scale: u32) -> (LlmResults, Report) {
    run_seeded(cfg, scale, 0xC0FFEE)
}

/// [`run`] with an explicit arrival-jitter seed — the nightly soak sweeps
/// a seed matrix through this (`SLATE_CHAOS_SEED`); the checks must hold
/// for every seed.
pub fn run_seeded(cfg: &DeviceConfig, scale: u32, seed: u64) -> (LlmResults, Report) {
    let mut trace_cfg = LlmTraceCfg::paper(seed);
    trace_cfg.scale = scale.max(1);
    if scale > 1 {
        // Fewer bursts at test scale; the burst shape itself is preserved.
        trace_cfg.decode_sessions = (trace_cfg.decode_sessions / scale).max(8);
    }
    let apps = llm_trace(&trace_cfg);

    let on = SlateRuntime::with_options(
        cfg.clone(),
        SlateOptions {
            preempt_bound_s: Some(PREEMPT_BOUND_US as f64 / 1e6),
            ..SlateOptions::default()
        },
    );
    let off = SlateRuntime::new(cfg.clone());
    let (out_on, log_on) = on.run_recorded(&apps);
    let (out_off, log_off) = off.run_recorded(&apps);

    // ANTT solo baselines: one solo run per app kind, shared across clones.
    let pf_solo = solo_time(cfg, &apps[0]);
    let dc_solo = solo_time(cfg, &apps[apps.len() - 1]);
    let solos: Vec<f64> = apps
        .iter()
        .map(|a| {
            if a.bench == Benchmark::PF {
                pf_solo
            } else {
                dc_solo
            }
        })
        .collect();

    let preempt = LatencyStats::of(preempt_latencies(&log_on));
    let results = LlmResults {
        decode_on: LatencyStats::of(decode_latencies(&log_on)),
        decode_off: LatencyStats::of(decode_latencies(&log_off)),
        preemptions: preempt.n,
        preempt,
        preempt_bound_us: PREEMPT_BOUND_US,
        antt_on: out_on.antt(&solos),
        antt_off: out_off.antt(&solos),
        makespan_on_s: out_on.makespan_s,
        makespan_off_s: out_off.makespan_s,
        completed_on: out_on.apps.iter().filter(|a| a.end_s > 0.0).count(),
        apps: apps.len(),
    };

    let mut report = Report::new(
        "llm",
        "LLM serving: decode tail latency under SLO-aware preemption",
        "Priority preemption of best-effort prefill bounds latency-critical \
         decode arrivals: p99 decode latency drops well below the \
         no-preemption baseline while every preemption lands within the \
         configured bound and prefill still completes.",
    );

    let mut t = Table::new(
        "Decode launch latency (ready -> drained), logical time",
        &["Mode", "n", "p50 (ms)", "p95 (ms)", "p99 (ms)", "max (ms)"],
    );
    for (label, s) in [
        ("preempt on", &results.decode_on),
        ("preempt off", &results.decode_off),
    ] {
        t.row(&[
            label.into(),
            s.n.to_string(),
            f(s.p50_us as f64 / 1e3, 2),
            f(s.p95_us as f64 / 1e3, 2),
            f(s.p99_us as f64 / 1e3, 2),
            f(s.max_us as f64 / 1e3, 2),
        ]);
    }
    report.tables.push(t);

    let mut p = Table::new(
        "Preemption latency (arrival -> displacing command)",
        &[
            "Preemptions",
            "p50 (µs)",
            "p99 (µs)",
            "max (µs)",
            "bound (µs)",
        ],
    );
    p.row(&[
        results.preemptions.to_string(),
        results.preempt.p50_us.to_string(),
        results.preempt.p99_us.to_string(),
        results.preempt.max_us.to_string(),
        results.preempt_bound_us.to_string(),
    ]);
    report.tables.push(p);

    let mut a = Table::new(
        "Throughput cost of preemption",
        &["Mode", "ANTT", "Makespan (s)"],
    );
    a.row(&[
        "preempt on".into(),
        f(results.antt_on, 2),
        f(results.makespan_on_s, 2),
    ]);
    a.row(&[
        "preempt off".into(),
        f(results.antt_off, 2),
        f(results.makespan_off_s, 2),
    ]);
    report.tables.push(a);

    report.check("preemption fired under load", results.preemptions > 0);
    report.check(
        "p99 decode latency strictly below the no-preemption baseline",
        results.decode_on.p99_us < results.decode_off.p99_us,
    );
    report.check(
        "every preemption landed within the bound",
        results.preempt.max_us <= results.preempt_bound_us,
    );
    report.check(
        "all sessions (incl. best-effort prefill) completed",
        results.completed_on == results.apps,
    );
    report.note(format!(
        "p99 decode: {:.2} ms with preemption vs {:.2} ms without \
         ({} decode launches, {} preemptions, bound {} µs).",
        results.decode_on.p99_us as f64 / 1e3,
        results.decode_off.p99_us as f64 / 1e3,
        results.decode_on.n,
        results.preemptions,
        results.preempt_bound_us,
    ));

    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llm_reproduces() {
        let cfg = DeviceConfig::titan_xp();
        let (results, report) = run(&cfg, 10);
        for c in &report.checks {
            assert!(c.pass, "failed check: {}", c.desc);
        }
        assert!(results.preemptions > 0);
        let json = results.summary_json();
        assert!(json.contains("p99_decode_under_load_us"));
    }

    #[test]
    fn latency_extraction_is_deterministic() {
        let cfg = DeviceConfig::titan_xp();
        let mut tc = LlmTraceCfg::paper(7);
        tc.scale = 10;
        tc.decode_sessions = 8;
        let apps = llm_trace(&tc);
        let rt = || {
            SlateRuntime::with_options(
                cfg.clone(),
                SlateOptions {
                    preempt_bound_s: Some(0.02),
                    ..SlateOptions::default()
                },
            )
        };
        let (_, log1) = rt().run_recorded(&apps);
        let (_, log2) = rt().run_recorded(&apps);
        assert_eq!(decode_latencies(&log1), decode_latencies(&log2));
        assert_eq!(preempt_latencies(&log1), preempt_latencies(&log2));
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile_us(&v, 0.50), 5);
        assert_eq!(percentile_us(&v, 0.99), 10);
        assert_eq!(percentile_us(&[], 0.99), 0);
    }
}
