//! The device task queue (paper Listings 2 and 3) and the daemon's
//! launch-queue accounting.
//!
//! Slate flattens a user grid into `slateMax` blocks and drives execution
//! through a single scheduling index `slateIdx`: every persistent worker
//! pulls the next `SLATE_ITERS` blocks with one `atomicAdd` and executes
//! them in order. A `retreat` flag — raised when the SM partition must
//! change — makes workers finish their current task and exit; because
//! `slateIdx` counts *pulled* tasks and pulled tasks are always completed
//! before exit, the index is exactly the carry-over point for a relaunch.
//!
//! This is a faithful host-side implementation with the same atomics
//! (`fetch_add` on the index, acquire/release on the flag).
//!
//! Alongside the device-side [`TaskQueue`], this module hosts the
//! *host-side* launch-queue primitive the daemon's overload protection is
//! built on: a [`LaunchGauge`] bounds the number of in-flight launches in a
//! queue (per session or daemon-wide) with a drop-newest shed policy, and a
//! [`QueueStats`] snapshot reports depth, high-water mark and shed/admit
//! counters for observability.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A group of consecutive user blocks pulled from the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    /// First flat block index of the task.
    pub start: u64,
    /// Number of blocks in the task (clamped at the queue end, so the last
    /// task may be shorter than `SLATE_ITERS`).
    pub len: u32,
}

/// The shared task queue of one kernel execution.
#[derive(Debug)]
pub struct TaskQueue {
    slate_idx: AtomicU64,
    slate_max: u64,
    task_size: u32,
    retreat: AtomicBool,
    pulls: AtomicU64,
}

impl TaskQueue {
    /// Creates a queue over `total` blocks with the given task size
    /// (`SLATE_ITERS`; the paper's default is 10).
    pub fn new(total: u64, task_size: u32) -> Self {
        Self::with_progress(0, total, task_size)
    }

    /// Creates a queue that resumes from block `start` — what the dispatch
    /// kernel does on a relaunch after a resize.
    pub fn with_progress(start: u64, total: u64, task_size: u32) -> Self {
        assert!(task_size >= 1, "task size must be at least 1");
        assert!(start <= total, "start {start} beyond total {total}");
        Self {
            slate_idx: AtomicU64::new(start),
            slate_max: total,
            task_size,
            retreat: AtomicBool::new(false),
            pulls: AtomicU64::new(0),
        }
    }

    /// Total blocks (`slateMax`).
    pub fn total(&self) -> u64 {
        self.slate_max
    }

    /// Task size (`SLATE_ITERS`).
    pub fn task_size(&self) -> u32 {
        self.task_size
    }

    /// Atomically pulls the next task. Returns `None` once the queue is
    /// exhausted. Never returns an empty task.
    pub fn pull(&self) -> Option<Task> {
        let start = self
            .slate_idx
            .fetch_add(self.task_size as u64, Ordering::AcqRel);
        if start >= self.slate_max {
            return None;
        }
        self.pulls.fetch_add(1, Ordering::Relaxed);
        let len = (self.slate_max - start).min(self.task_size as u64) as u32;
        Some(Task { start, len })
    }

    /// Raises the retreat flag: workers finish their current task and exit.
    pub fn signal_retreat(&self) {
        self.retreat.store(true, Ordering::Release);
    }

    /// Clears the retreat flag before a relaunch.
    pub fn clear_retreat(&self) {
        self.retreat.store(false, Ordering::Release);
    }

    /// Whether workers should retreat (checked after each task).
    pub fn retreating(&self) -> bool {
        self.retreat.load(Ordering::Acquire)
    }

    /// Progress: blocks pulled (and therefore completed, since workers
    /// always finish a pulled task). Clamped to `total` because the
    /// `fetch_add` race lets the raw index overshoot.
    pub fn progress(&self) -> u64 {
        self.slate_idx.load(Ordering::Acquire).min(self.slate_max)
    }

    /// Blocks not yet pulled.
    pub fn remaining(&self) -> u64 {
        self.slate_max - self.progress()
    }

    /// Whether every block has been pulled.
    pub fn drained(&self) -> bool {
        self.remaining() == 0
    }

    /// Number of atomic task pulls performed (the overhead Slate's task
    /// grouping amortises, Table V).
    pub fn pull_count(&self) -> u64 {
        self.pulls.load(Ordering::Relaxed)
    }
}

/// Point-in-time snapshot of a bounded launch queue ([`LaunchGauge`]).
///
/// Serializable so daemon snapshots can persist gauge state and restore it
/// after a crash via [`LaunchGauge::from_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QueueStats {
    /// Launches currently admitted and not yet completed.
    pub depth: u64,
    /// Highest depth ever observed.
    pub high_water: u64,
    /// Depth bound; `None` means unbounded.
    pub capacity: Option<u64>,
    /// Launches admitted into the queue since creation.
    pub admitted: u64,
    /// Launches shed (refused at the bound) since creation — the
    /// drop-newest policy: the *arriving* launch is the one rejected.
    pub shed: u64,
}

/// A bounded in-flight launch counter with drop-newest shedding.
///
/// The daemon keeps one gauge per session and one daemon-wide: a launch is
/// admitted only if [`LaunchGauge::try_push`] succeeds on both, and popped
/// when its execution finishes (successfully or not). The gauge never
/// blocks — over-bound arrivals are shed immediately, which is what turns
/// an unbounded queue under overload into backpressure the client can see.
#[derive(Debug)]
pub struct LaunchGauge {
    capacity: Option<u64>,
    depth: AtomicU64,
    high_water: AtomicU64,
    admitted: AtomicU64,
    shed: AtomicU64,
}

impl LaunchGauge {
    /// A gauge bounded at `capacity` in-flight launches (`None` =
    /// unbounded, counting only).
    pub fn new(capacity: Option<u64>) -> Self {
        Self {
            capacity,
            depth: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Rebuilds a gauge from a [`QueueStats`] snapshot — the inverse of
    /// [`LaunchGauge::stats`], used when a crashed daemon's accounting is
    /// restored from a durable snapshot.
    pub fn from_stats(stats: QueueStats) -> Self {
        Self {
            capacity: stats.capacity,
            depth: AtomicU64::new(stats.depth),
            high_water: AtomicU64::new(stats.high_water),
            admitted: AtomicU64::new(stats.admitted),
            shed: AtomicU64::new(stats.shed),
        }
    }

    /// Tries to admit one launch. Returns `false` (and counts a shed) if
    /// the queue is at capacity; the arriving launch is the one dropped.
    pub fn try_push(&self) -> bool {
        let prev = self.depth.fetch_add(1, Ordering::AcqRel);
        if let Some(cap) = self.capacity {
            if prev >= cap {
                self.depth.fetch_sub(1, Ordering::AcqRel);
                self.shed.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.high_water.fetch_max(prev + 1, Ordering::AcqRel);
        true
    }

    /// Records a shed that happened before the depth check (e.g. an
    /// up-front deadline-feasibility rejection).
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Releases one admitted launch.
    pub fn pop(&self) {
        let prev = self.depth.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "pop without matching push");
    }

    /// Rolls back a successful [`LaunchGauge::try_push`] whose launch was
    /// ultimately shed elsewhere (e.g. this gauge admitted but the global
    /// gauge refused): the admission is undone and recounted as a shed, so
    /// `admitted` still equals completions and `admitted + shed` still
    /// equals attempts.
    pub fn cancel(&self) {
        let prev = self.depth.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "cancel without matching push");
        self.admitted.fetch_sub(1, Ordering::Relaxed);
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Current number of admitted, uncompleted launches.
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Acquire)
    }

    /// Snapshot of the gauge.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            depth: self.depth.load(Ordering::Acquire),
            high_water: self.high_water.load(Ordering::Acquire),
            capacity: self.capacity,
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_pulls_cover_exactly_once() {
        let q = TaskQueue::new(25, 10);
        let t1 = q.pull().unwrap();
        let t2 = q.pull().unwrap();
        let t3 = q.pull().unwrap();
        assert_eq!((t1.start, t1.len), (0, 10));
        assert_eq!((t2.start, t2.len), (10, 10));
        assert_eq!((t3.start, t3.len), (20, 5), "tail task clamped");
        assert!(q.pull().is_none());
        assert!(q.drained());
        assert_eq!(q.pull_count(), 3);
    }

    #[test]
    fn resume_from_progress() {
        let q = TaskQueue::with_progress(40, 100, 10);
        assert_eq!(q.progress(), 40);
        assert_eq!(q.remaining(), 60);
        let t = q.pull().unwrap();
        assert_eq!(t.start, 40);
    }

    #[test]
    fn retreat_flag_roundtrip() {
        let q = TaskQueue::new(10, 1);
        assert!(!q.retreating());
        q.signal_retreat();
        assert!(q.retreating());
        q.clear_retreat();
        assert!(!q.retreating());
    }

    #[test]
    fn progress_clamped_after_overshoot() {
        let q = TaskQueue::new(5, 10);
        assert!(q.pull().is_some());
        assert!(q.pull().is_none()); // overshoots the raw index
        assert_eq!(q.progress(), 5);
        assert!(q.drained());
    }

    #[test]
    fn concurrent_pulls_partition_the_range() {
        let q = Arc::new(TaskQueue::new(10_000, 7));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(t) = q.pull() {
                    seen.push(t);
                }
                seen
            }));
        }
        let mut all: Vec<Task> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_by_key(|t| t.start);
        // Tasks tile [0, 10000) exactly, no gaps, no overlaps.
        let mut next = 0u64;
        for t in &all {
            assert_eq!(t.start, next, "gap or overlap at {next}");
            next += t.len as u64;
        }
        assert_eq!(next, 10_000);
    }

    #[test]
    #[should_panic(expected = "task size")]
    fn rejects_zero_task_size() {
        TaskQueue::new(10, 0);
    }

    #[test]
    fn zero_block_queue_is_born_drained() {
        let q = TaskQueue::new(0, 10);
        assert!(q.drained());
        assert!(q.pull().is_none());
    }

    #[test]
    fn gauge_sheds_newest_at_capacity_and_tracks_high_water() {
        let g = LaunchGauge::new(Some(2));
        assert!(g.try_push());
        assert!(g.try_push());
        assert!(!g.try_push(), "third launch is shed, drop-newest");
        assert!(!g.try_push());
        let s = g.stats();
        assert_eq!(s.depth, 2);
        assert_eq!(s.high_water, 2);
        assert_eq!(s.admitted, 2);
        assert_eq!(s.shed, 2);
        assert_eq!(s.capacity, Some(2));
        g.pop();
        assert!(g.try_push(), "capacity freed by a pop");
        g.pop();
        g.pop();
        let s = g.stats();
        assert_eq!(s.depth, 0);
        assert_eq!(s.high_water, 2, "high-water mark persists");
        assert_eq!(s.admitted, 3);
    }

    #[test]
    fn gauge_cancel_rolls_back_an_admission() {
        let g = LaunchGauge::new(Some(4));
        assert!(g.try_push());
        assert!(g.try_push());
        g.cancel();
        let s = g.stats();
        assert_eq!(s.depth, 1);
        assert_eq!(s.admitted, 1);
        assert_eq!(s.shed, 1);
        assert_eq!(s.admitted + s.shed, 2, "attempts are conserved");
    }

    #[test]
    fn unbounded_gauge_only_counts() {
        let g = LaunchGauge::new(None);
        for _ in 0..100 {
            assert!(g.try_push());
        }
        assert_eq!(g.depth(), 100);
        assert_eq!(g.stats().shed, 0);
        g.record_shed();
        assert_eq!(g.stats().shed, 1, "explicit sheds are recorded");
    }

    #[test]
    fn gauge_is_consistent_under_concurrent_push_pop() {
        let g = Arc::new(LaunchGauge::new(Some(8)));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                let mut admitted = 0u64;
                for _ in 0..1_000 {
                    if g.try_push() {
                        admitted += 1;
                        g.pop();
                    }
                }
                admitted
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let s = g.stats();
        assert_eq!(s.depth, 0, "all pushes were popped");
        assert_eq!(s.admitted, total);
        assert_eq!(s.admitted + s.shed, 4_000);
        assert!(s.high_water <= 8, "bound never exceeded: {}", s.high_water);
    }
}
