//! The arbitration core's state machine: configuration, per-event state
//! updates, and the counters both frontends report from.
//!
//! Everything here is deterministic and I/O-free. The only collections are
//! `Vec`s and `BTreeMap`s — never a `HashMap` — so that iteration order,
//! and therefore emitted command order, is identical across runs; this is
//! what makes the golden replay test byte-stable.

use super::events::{Command, Event, RejectScope, Tick};
use super::replay::{EventLog, LoggedBatch};
use crate::admission::{AdmissionLimits, AdmissionStats};
use crate::classify::WorkloadClass;
use crate::queue::{LaunchGauge, QueueStats};
use serde::{Deserialize, Serialize};
use slate_gpu_sim::device::{DeviceConfig, SmRange};
use std::collections::{BTreeMap, VecDeque};

/// Fallback per-launch estimate (milliseconds) used for retry hints when
/// pending kernels are unprofiled.
pub(super) const DEFAULT_LAUNCH_EST_MS: u64 = 10;

/// Static policy knobs of the arbitration core. Serialized into every
/// [`EventLog`] so a replay runs under the exact configuration that
/// produced the recording.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArbiterConfig {
    /// Allow complementary kernels to co-run on disjoint SM partitions
    /// (paper Table I). Off = every kernel runs solo, CUDA-style.
    pub enable_corun: bool,
    /// Allow resizing a resident kernel's partition (retreat + relaunch,
    /// paper §III-D): shrink to admit a co-runner, regrow when it leaves.
    pub enable_resize: bool,
    /// Starvation bound in logical microseconds: a waiter older than this
    /// refuses co-run pairings device-wide and is promoted to a solo
    /// dispatch. `None` disables aging.
    pub starvation_bound_us: Option<u64>,
    /// Admission-control bounds (sessions, pending launches, memory
    /// watermark). Fully permissive by default.
    pub limits: AdmissionLimits,
}

impl Default for ArbiterConfig {
    fn default() -> Self {
        Self {
            enable_corun: true,
            enable_resize: true,
            starvation_bound_us: None,
            limits: AdmissionLimits::default(),
        }
    }
}

/// A kernel currently holding SMs. Serializable so durable daemon
/// snapshots can persist residency exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Resident {
    pub(super) lease: u64,
    #[allow(dead_code)]
    pub(super) session: u64,
    pub(super) class: WorkloadClass,
    pub(super) sm_demand: u32,
    /// Pinned residents never accept co-runners (pinned-solo launches and
    /// starvation promotions).
    pub(super) pinned: bool,
    pub(super) range: SmRange,
}

/// A ready kernel waiting for SMs. Serializable for the same reason as
/// [`Resident`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Waiter {
    pub(super) lease: u64,
    pub(super) session: u64,
    pub(super) class: WorkloadClass,
    pub(super) sm_demand: u32,
    pub(super) pinned: bool,
    pub(super) deadline_ms: Option<u64>,
    /// When the kernel became ready (queue-wait start).
    pub(super) since: Tick,
    /// Stable arrival order; the deterministic tie-break everywhere.
    pub(super) seq: u64,
}

/// The complete serializable state of one [`ArbiterCore`] — every field
/// that influences a future decision, in snapshot form. Gauges are
/// captured as [`QueueStats`] and the per-lease FIFOs as plain `Vec`s
/// (the vendored serde subset has no `VecDeque` impl); the recording
/// buffer is deliberately absent — a restored core starts a fresh log.
///
/// The crash-consistency invariant: `ArbiterCore::from_snapshot(c.snapshot())`
/// must behave byte-identically to `c` for every subsequent event batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreSnapshot {
    pub(crate) device: DeviceConfig,
    pub(crate) config: ArbiterConfig,
    pub(crate) now: Tick,
    pub(crate) next_seq: u64,
    pub(crate) draining: bool,
    pub(crate) residents: Vec<Resident>,
    pub(crate) waiters: Vec<Waiter>,
    pub(crate) last_range: BTreeMap<u64, SmRange>,
    pub(crate) deadlines: BTreeMap<u64, Tick>,
    pub(crate) sessions: BTreeMap<u64, QueueStats>,
    pub(crate) lease_session: BTreeMap<u64, u64>,
    pub(crate) pending: BTreeMap<u64, Vec<u64>>,
    pub(crate) global: QueueStats,
    pub(crate) active_sessions: usize,
    pub(crate) sessions_admitted: u64,
    pub(crate) sessions_rejected: u64,
    pub(crate) launches_completed: u64,
    pub(crate) launches_failed: u64,
    pub(crate) deadline_rejections: u64,
    pub(crate) mallocs_shed: u64,
    pub(crate) pending_est_ms: u64,
    pub(crate) promotions: u64,
    pub(crate) evictions: u64,
    pub(crate) reaped: u64,
}

/// The deterministic, I/O-free arbitration core shared by the simulated
/// runtime and the live daemon.
///
/// Feed it batches of [`Event`]s with a monotonic logical timestamp; it
/// returns the [`Command`]s the frontend must carry out. All scheduling
/// policy — Table-I partner selection, SM partitioning, dynamic resizing,
/// starvation aging, admission shedding and watchdog eviction — lives
/// behind [`ArbiterCore::feed`]; the frontends only translate events in
/// and commands out.
#[derive(Debug)]
pub struct ArbiterCore {
    pub(super) device: DeviceConfig,
    pub(super) config: ArbiterConfig,
    /// Logical clock: the max batch timestamp seen so far.
    pub(super) now: Tick,
    pub(super) next_seq: u64,
    pub(super) draining: bool,
    pub(super) residents: Vec<Resident>,
    pub(super) waiters: Vec<Waiter>,
    /// Last SM range each lease held when it finished — the in-place
    /// continuation hint (a re-ready kernel resumes its old partition
    /// without a resize).
    pub(super) last_range: BTreeMap<u64, SmRange>,
    /// Armed watchdog deadlines: lease → eviction tick.
    pub(super) deadlines: BTreeMap<u64, Tick>,
    /// Per-session pending-launch gauges.
    sessions: BTreeMap<u64, LaunchGauge>,
    lease_session: BTreeMap<u64, u64>,
    /// Per-lease FIFO of admitted solo-time estimates; popped as the
    /// lease's launches finish.
    pending: BTreeMap<u64, VecDeque<u64>>,
    /// Daemon-wide pending-launch gauge.
    global: LaunchGauge,
    active_sessions: usize,
    sessions_admitted: u64,
    sessions_rejected: u64,
    launches_completed: u64,
    launches_failed: u64,
    deadline_rejections: u64,
    mallocs_shed: u64,
    /// Sum of the solo-time estimates of every pending launch.
    pending_est_ms: u64,
    pub(super) promotions: u64,
    pub(super) evictions: u64,
    reaped: u64,
    record: Option<Vec<LoggedBatch>>,
}

impl ArbiterCore {
    /// A fresh core arbitrating `device` under `config`.
    pub fn new(device: DeviceConfig, config: ArbiterConfig) -> Self {
        let global = LaunchGauge::new(config.limits.max_pending_global);
        Self {
            device,
            config,
            now: 0,
            next_seq: 0,
            draining: false,
            residents: Vec::new(),
            waiters: Vec::new(),
            last_range: BTreeMap::new(),
            deadlines: BTreeMap::new(),
            sessions: BTreeMap::new(),
            lease_session: BTreeMap::new(),
            pending: BTreeMap::new(),
            global,
            active_sessions: 0,
            sessions_admitted: 0,
            sessions_rejected: 0,
            launches_completed: 0,
            launches_failed: 0,
            deadline_rejections: 0,
            mallocs_shed: 0,
            pending_est_ms: 0,
            promotions: 0,
            evictions: 0,
            reaped: 0,
            record: None,
        }
    }

    /// The device being arbitrated.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// The active configuration.
    pub fn config(&self) -> &ArbiterConfig {
        &self.config
    }

    /// The core's logical clock (max batch timestamp seen).
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Kernels currently holding SMs.
    pub fn residents(&self) -> usize {
        self.residents.len()
    }

    /// Leases of the kernels currently holding SMs, in stable residency
    /// order. The placement layer picks cross-device migration victims
    /// from this list, so its order must be deterministic (it is: the
    /// backing `Vec` mutates identically across replays).
    pub fn resident_leases(&self) -> Vec<u64> {
        self.residents.iter().map(|r| r.lease).collect()
    }

    /// Leases of the ready kernels still waiting for SMs, in arrival
    /// order. Deterministic for the same reason as
    /// [`ArbiterCore::resident_leases`]; evacuation moves these too, not
    /// just residents.
    pub fn waiting_leases(&self) -> Vec<u64> {
        self.waiters.iter().map(|w| w.lease).collect()
    }

    /// Ready kernels waiting for SMs.
    pub fn waiting(&self) -> usize {
        self.waiters.len()
    }

    /// Whether [`Event::DrainBegan`] has been fed.
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// Kernels evicted for blowing their deadline.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Starved waiters promoted to solo dispatch.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Severed sessions cleaned up ([`Command::Reap`]s emitted).
    pub fn reaped(&self) -> u64 {
        self.reaped
    }

    /// Snapshot of the global pending-launch gauge.
    pub fn queue_stats(&self) -> QueueStats {
        self.global.stats()
    }

    /// Snapshot of the admission counters.
    pub fn admission_stats(&self) -> AdmissionStats {
        AdmissionStats {
            active_sessions: self.active_sessions,
            sessions_admitted: self.sessions_admitted,
            sessions_rejected: self.sessions_rejected,
            launches_completed: self.launches_completed,
            launches_failed: self.launches_failed,
            deadline_rejections: self.deadline_rejections,
            mallocs_shed: self.mallocs_shed,
            pending_est_ms: self.pending_est_ms,
        }
    }

    /// Captures the core's complete decision state for a durable
    /// snapshot. The recording buffer is not captured.
    pub(crate) fn snapshot(&self) -> CoreSnapshot {
        CoreSnapshot {
            device: self.device.clone(),
            config: self.config.clone(),
            now: self.now,
            next_seq: self.next_seq,
            draining: self.draining,
            residents: self.residents.clone(),
            waiters: self.waiters.clone(),
            last_range: self.last_range.clone(),
            deadlines: self.deadlines.clone(),
            sessions: self.sessions.iter().map(|(&s, g)| (s, g.stats())).collect(),
            lease_session: self.lease_session.clone(),
            pending: self
                .pending
                .iter()
                .map(|(&l, q)| (l, q.iter().copied().collect()))
                .collect(),
            global: self.global.stats(),
            active_sessions: self.active_sessions,
            sessions_admitted: self.sessions_admitted,
            sessions_rejected: self.sessions_rejected,
            launches_completed: self.launches_completed,
            launches_failed: self.launches_failed,
            deadline_rejections: self.deadline_rejections,
            mallocs_shed: self.mallocs_shed,
            pending_est_ms: self.pending_est_ms,
            promotions: self.promotions,
            evictions: self.evictions,
            reaped: self.reaped,
        }
    }

    /// Rebuilds a core from a [`CoreSnapshot`]; the exact inverse of
    /// [`ArbiterCore::snapshot`] (recording off).
    pub(crate) fn from_snapshot(snap: CoreSnapshot) -> Self {
        Self {
            device: snap.device,
            config: snap.config,
            now: snap.now,
            next_seq: snap.next_seq,
            draining: snap.draining,
            residents: snap.residents,
            waiters: snap.waiters,
            last_range: snap.last_range,
            deadlines: snap.deadlines,
            sessions: snap
                .sessions
                .into_iter()
                .map(|(s, st)| (s, LaunchGauge::from_stats(st)))
                .collect(),
            lease_session: snap.lease_session,
            pending: snap
                .pending
                .into_iter()
                .map(|(l, v)| (l, v.into_iter().collect()))
                .collect(),
            global: LaunchGauge::from_stats(snap.global),
            active_sessions: snap.active_sessions,
            sessions_admitted: snap.sessions_admitted,
            sessions_rejected: snap.sessions_rejected,
            launches_completed: snap.launches_completed,
            launches_failed: snap.launches_failed,
            deadline_rejections: snap.deadline_rejections,
            mallocs_shed: snap.mallocs_shed,
            pending_est_ms: snap.pending_est_ms,
            promotions: snap.promotions,
            evictions: snap.evictions,
            reaped: snap.reaped,
            record: None,
        }
    }

    /// Starts recording fed batches for later [`super::replay`]. Batches
    /// that carry nothing but [`Event::DeadlineTick`]s and produce no
    /// commands are skipped (the daemon's 1 ms heartbeat would otherwise
    /// swamp the log without affecting any decision).
    pub fn start_recording(&mut self) {
        self.record = Some(Vec::new());
    }

    /// Takes the recorded log (if recording was started), packaged with
    /// the device and configuration needed to replay it.
    pub fn take_log(&mut self) -> Option<EventLog> {
        self.record.take().map(|batches| EventLog {
            device: self.device.clone(),
            config: self.config.clone(),
            batches,
        })
    }

    /// Feeds one batch of events at logical time `now` and returns the
    /// commands the frontend must carry out, in order. The clock is
    /// clamped monotonic; decisions are made once, after the whole batch
    /// is absorbed.
    pub fn feed(&mut self, now: Tick, events: &[Event]) -> Vec<Command> {
        self.now = self.now.max(now);
        let mut out = Vec::new();
        for ev in events {
            self.intake(ev, &mut out);
        }
        self.decide(&mut out);
        if let Some(batches) = &mut self.record {
            let heartbeat_only = events.iter().all(|e| matches!(e, Event::DeadlineTick));
            if !(heartbeat_only && out.is_empty()) {
                batches.push(LoggedBatch {
                    at: self.now,
                    events: events.to_vec(),
                    commands: out.clone(),
                });
            }
        }
        out
    }

    /// The retry hint for a shed request: the estimated pending work if
    /// any queued kernel is profiled, otherwise a default per-launch
    /// estimate times the queue depth. Always ≥ 1 ms.
    fn retry_after_ms(&self) -> u64 {
        if self.pending_est_ms > 0 {
            self.pending_est_ms
        } else {
            self.global
                .depth()
                .saturating_mul(DEFAULT_LAUNCH_EST_MS)
                .max(1)
        }
    }

    fn intake(&mut self, ev: &Event, out: &mut Vec<Command>) {
        match *ev {
            Event::SessionOpened { session } => self.open_session(session, out),
            Event::SessionClosed { session } => self.end_session(session, false, out),
            Event::SessionSevered { session } => self.end_session(session, true, out),
            Event::LaunchRequested {
                session,
                lease,
                est_ms,
                deadline_ms,
            } => self.admit_launch(session, lease, est_ms, deadline_ms, out),
            Event::KernelReady {
                session,
                lease,
                class,
                sm_demand,
                pinned_solo,
                deadline_ms,
            } => {
                self.lease_session.insert(lease, session);
                let seq = self.next_seq;
                self.next_seq += 1;
                self.waiters.push(Waiter {
                    lease,
                    session,
                    class,
                    sm_demand,
                    pinned: pinned_solo,
                    deadline_ms,
                    since: self.now,
                    seq,
                });
            }
            Event::KernelFinished { lease, ok } => self.finish_launch(lease, ok),
            Event::MallocRequested {
                session,
                used,
                capacity,
                bytes,
            } => {
                if let Some(w) = self.config.limits.mem_watermark {
                    let limit = (w.clamp(0.0, 1.0) * capacity as f64) as u64;
                    if used.saturating_add(bytes) > limit {
                        self.mallocs_shed += 1;
                        out.push(Command::RejectOverloaded {
                            session,
                            lease: None,
                            scope: RejectScope::Malloc,
                            retry_after_ms: self.retry_after_ms(),
                        });
                    }
                }
            }
            Event::DeadlineTick => {}
            Event::DrainBegan => self.draining = true,
            // Health transitions are decided above the core, in the
            // placement layer; to a single core they are scheduling
            // nudges — recorded in its log, fresh decide() pass, no
            // per-core state.
            Event::DeviceDown { .. } | Event::DeviceUp { .. } => {}
        }
    }

    fn open_session(&mut self, session: u64, out: &mut Vec<Command>) {
        if let Some(max) = self.config.limits.max_sessions {
            if self.active_sessions >= max {
                self.sessions_rejected += 1;
                out.push(Command::RejectOverloaded {
                    session,
                    lease: None,
                    scope: RejectScope::Session,
                    retry_after_ms: self.retry_after_ms(),
                });
                return;
            }
        }
        self.active_sessions += 1;
        self.sessions_admitted += 1;
        self.sessions.insert(
            session,
            LaunchGauge::new(self.config.limits.max_pending_per_session),
        );
    }

    fn end_session(&mut self, session: u64, severed: bool, out: &mut Vec<Command>) {
        if self.sessions.remove(&session).is_none() {
            // Never admitted (the connect was shed): nothing to clean up.
            return;
        }
        self.active_sessions -= 1;
        // Defensive sweep: a well-behaved frontend finishes every launch
        // before closing the session, but a severed client can leave
        // leases behind — drain them so the global gauge stays balanced.
        self.residents.retain(|r| r.session != session);
        self.waiters.retain(|w| w.session != session);
        let leases: Vec<u64> = self
            .lease_session
            .iter()
            .filter(|&(_, &s)| s == session)
            .map(|(&l, _)| l)
            .collect();
        for lease in leases {
            self.lease_session.remove(&lease);
            self.last_range.remove(&lease);
            self.deadlines.remove(&lease);
            if let Some(mut fifo) = self.pending.remove(&lease) {
                while let Some(est) = fifo.pop_front() {
                    self.pending_est_ms = self.pending_est_ms.saturating_sub(est);
                    self.global.pop();
                    self.launches_failed += 1;
                }
            }
        }
        if severed {
            self.reaped += 1;
            out.push(Command::Reap { session });
        }
    }

    fn admit_launch(
        &mut self,
        session: u64,
        lease: u64,
        est_ms: Option<u64>,
        deadline_ms: Option<u64>,
        out: &mut Vec<Command>,
    ) {
        if !self.sessions.contains_key(&session) {
            // Lazily admit sessions the frontend never announced, so the
            // core stays usable with partial event streams.
            self.sessions.insert(
                session,
                LaunchGauge::new(self.config.limits.max_pending_per_session),
            );
        }
        if let Some(deadline) = deadline_ms {
            let queue_wait = self.pending_est_ms;
            if queue_wait > deadline {
                // The kernel could only ever be evicted; shed it now
                // instead of wasting device time the queue needs.
                self.deadline_rejections += 1;
                self.sessions[&session].record_shed();
                self.global.record_shed();
                out.push(Command::RejectOverloaded {
                    session,
                    lease: Some(lease),
                    scope: RejectScope::Deadline,
                    retry_after_ms: queue_wait.max(1),
                });
                return;
            }
        }
        if !self.sessions[&session].try_push() {
            self.global.record_shed();
            out.push(Command::RejectOverloaded {
                session,
                lease: Some(lease),
                scope: RejectScope::Launch,
                retry_after_ms: self.retry_after_ms(),
            });
            return;
        }
        if !self.global.try_push() {
            self.sessions[&session].cancel();
            out.push(Command::RejectOverloaded {
                session,
                lease: Some(lease),
                scope: RejectScope::Launch,
                retry_after_ms: self.retry_after_ms(),
            });
            return;
        }
        let est = est_ms.unwrap_or(0);
        self.pending_est_ms += est;
        self.pending.entry(lease).or_default().push_back(est);
        self.lease_session.insert(lease, session);
    }

    fn finish_launch(&mut self, lease: u64, ok: bool) {
        if let Some(pos) = self.residents.iter().position(|r| r.lease == lease) {
            let r = self.residents.remove(pos);
            self.last_range.insert(lease, r.range);
        }
        self.deadlines.remove(&lease);
        self.waiters.retain(|w| w.lease != lease);
        if let Some(fifo) = self.pending.get_mut(&lease) {
            if let Some(est) = fifo.pop_front() {
                self.pending_est_ms = self.pending_est_ms.saturating_sub(est);
                self.global.pop();
                if let Some(s) = self.lease_session.get(&lease) {
                    if let Some(g) = self.sessions.get(s) {
                        g.pop();
                    }
                }
                if ok {
                    self.launches_completed += 1;
                } else {
                    self.launches_failed += 1;
                }
            }
            if self.pending[&lease].is_empty() {
                self.pending.remove(&lease);
            }
        }
    }
}
