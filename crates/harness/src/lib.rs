//! # slate-harness
//!
//! Experiment drivers that regenerate every table and figure of the Slate
//! paper's evaluation (§V) on the simulated Titan Xp, each returning both
//! structured data and a [`report::Report`] with paper-vs-measured tables
//! and qualitative shape checks. The `slate-repro` binary runs them all and
//! emits the material for `EXPERIMENTS.md`.

#![warn(missing_docs)]

pub mod ablation;
pub mod fig1;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod llm;
pub mod oracle;
pub mod portability;
pub mod report;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

pub use report::Report;
