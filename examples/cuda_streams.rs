//! CUDA streams through Slate: per-(process, stream) queues.
//!
//! The paper's runtime "builds a queue for each process and CUDA stream".
//! This example runs one client with four streams: launches on the same
//! stream are ordered, launches on different streams execute concurrently
//! through the daemon's per-stream lanes — each backed by a Hyper-Q
//! connection on the funnelled server context — and `synchronize()` fences
//! them all.
//!
//! It also demonstrates `#pragma slate solo` pinning: the "library" GEMM is
//! launched with `launch_solo_with` and therefore never co-scheduled.
//!
//! ```text
//! cargo run --release --example cuda_streams
//! ```

use slate_core::api::SlateClient;
use slate_core::daemon::SlateDaemon;
use slate_core::pragma::{inject_with_pragmas, Directive};
use slate_gpu_sim::device::DeviceConfig;
use slate_kernels::sgemm::SgemmKernel;
use slate_kernels::transpose::TransposeKernel;
use slate_kernels::GpuKernel;
use std::sync::Arc;

const LIBRARY_SRC: &str = r#"
#pragma slate solo
__global__ void library_gemm(float* C, const float* A, const float* B, int n) {
    // heavily optimized library kernel: transformed but never co-run
    C[blockIdx.y * n + blockIdx.x] = 0.f;
}
"#;

fn main() {
    // Show the pragma front-end resolving the solo directive.
    let plans = inject_with_pragmas(LIBRARY_SRC, 10).unwrap();
    assert_eq!(plans[0].directive, Directive::Solo);
    println!(
        "pragma front-end: kernel `{}` resolved to {:?}\n",
        plans[0].name, plans[0].directive
    );

    let daemon = SlateDaemon::start(DeviceConfig::titan_xp(), 4 << 30);
    let client = SlateClient::new(daemon.connect("stream-demo").unwrap());

    // Four independent transpose pipelines, one per stream. Each stream
    // transposes twice (involution): the result must equal the input, which
    // is only true if same-stream launches stay ordered.
    let (rows, cols) = (256u32, 192u32);
    let n = (rows * cols) as usize;
    let mut inputs = Vec::new();
    for s in 1..=4u32 {
        let d_in = client.malloc((n * 4) as u64).unwrap();
        let d_tmp = client.malloc((n * 4) as u64).unwrap();
        let d_out = client.malloc((n * 4) as u64).unwrap();
        let host: Vec<f32> = (0..n).map(|i| (i as f32) + s as f32 * 0.1).collect();
        client.upload_f32(d_in, &host).unwrap();
        client
            .launch_on_stream(s, vec![d_in, d_tmp], 10, move |bufs| {
                Arc::new(TransposeKernel::new(
                    rows,
                    cols,
                    bufs[0].clone(),
                    bufs[1].clone(),
                )) as Arc<dyn GpuKernel>
            })
            .unwrap();
        client
            .launch_on_stream(s, vec![d_tmp, d_out], 10, move |bufs| {
                Arc::new(TransposeKernel::new(
                    cols,
                    rows,
                    bufs[0].clone(),
                    bufs[1].clone(),
                )) as Arc<dyn GpuKernel>
            })
            .unwrap();
        inputs.push((s, host, d_out));
    }

    // Meanwhile, a solo-pinned "library" GEMM on the default stream.
    let dim = 128u32;
    let gn = (dim * dim) as usize;
    let d_a = client.malloc((gn * 4) as u64).unwrap();
    let d_b = client.malloc((gn * 4) as u64).unwrap();
    let d_c = client.malloc((gn * 4) as u64).unwrap();
    let ident: Vec<f32> = (0..gn)
        .map(|i| {
            if i % (dim as usize + 1) == 0 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    let a_host: Vec<f32> = (0..gn).map(|i| (i % 97) as f32 * 0.5).collect();
    client.upload_f32(d_a, &a_host).unwrap();
    client.upload_f32(d_b, &ident).unwrap();
    client
        .launch_solo_with(
            vec![d_a, d_b, d_c],
            10,
            Some(LIBRARY_SRC.to_string()),
            move |bufs| {
                Arc::new(SgemmKernel::new(
                    dim,
                    dim,
                    dim,
                    bufs[0].clone(),
                    bufs[1].clone(),
                    bufs[2].clone(),
                )) as Arc<dyn GpuKernel>
            },
        )
        .unwrap();

    // One fence for all streams.
    client.synchronize().unwrap();

    for (s, host, d_out) in &inputs {
        let out = client.download_f32(*d_out, n).unwrap();
        assert_eq!(&out, host, "stream {s}: double transpose must be identity");
        println!("stream {s}: double transpose verified ({n} elements)");
    }
    let c_out = client.download_f32(d_c, gn).unwrap();
    assert_eq!(c_out, a_host, "GEMM with identity must return A");
    println!("solo-pinned GEMM verified (A x I = A)");

    println!(
        "\ndaemon: {} launches over {} Hyper-Q lanes, injection cache {:?}",
        daemon.launches_served(),
        daemon.hyperq_lanes(),
        daemon.injection_stats()
    );
    assert_eq!(daemon.launches_served(), 9);
    assert!(daemon.hyperq_lanes() >= 5, "default stream + 4 lanes");
    client.disconnect().unwrap();
    daemon.join();
}
