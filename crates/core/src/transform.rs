//! Kernel transformation `K(B, T) → K*(B*, T)` (paper §III-A, Fig. 3,
//! Listing 2).
//!
//! Slate flattens a 1-D or 2-D user grid into a 1-D queue of blocks without
//! touching the inner block geometry, and reconstructs the user-visible
//! `blockIdx` from the flat scheduling index. To stay cheap at runtime it
//! performs *one* div/mod per task and then increments the 2-D coordinate
//! with a rollover, instead of dividing per block — the optimisation the
//! paper credits for beating the transformation of Pai et al. \[16\].
//!
//! The transformation is semantics-preserving by construction: executing
//! every flat index exactly once, in any order and under any grouping,
//! touches exactly the user's block set. The property tests in this module
//! (and the crate's proptest suite) verify that.

use crate::queue::Task;
use slate_kernels::grid::{BlockCoord, GridDim};
use slate_kernels::kernel::GpuKernel;
use std::sync::Arc;

/// A user kernel wrapped with Slate's grid transformation.
#[derive(Clone)]
pub struct TransformedKernel {
    inner: Arc<dyn GpuKernel>,
    grid: GridDim,
}

impl TransformedKernel {
    /// Transforms a user kernel. The flat queue length is
    /// `grid.total_blocks()` (`slateMax`).
    pub fn new(inner: Arc<dyn GpuKernel>) -> Self {
        let grid = inner.grid();
        Self { inner, grid }
    }

    /// The user grid.
    pub fn grid(&self) -> GridDim {
        self.grid
    }

    /// `slateMax`: total flat blocks.
    pub fn slate_max(&self) -> u64 {
        self.grid.total_blocks()
    }

    /// The wrapped kernel.
    pub fn inner(&self) -> &Arc<dyn GpuKernel> {
        &self.inner
    }

    /// Executes one pulled task: the user blocks
    /// `[task.start, task.start + task.len)` in flat order, reconstructing
    /// each 2-D `blockIdx` incrementally as in Listing 2.
    pub fn run_task(&self, task: Task) {
        debug_assert!(task.start + task.len as u64 <= self.slate_max());
        let gx = self.grid.x as u64;
        // Listing 2: one div/mod for the task, then increment-with-rollover
        // per block. The listing seeds x at (start % gx) - 1 and
        // pre-increments; we fold the pre-increment into the loop head.
        let mut x = task.start % gx;
        let mut y = task.start / gx;
        for _ in 0..task.len {
            // ORIGINAL USER CODE with blockIdx/gridDim replaced:
            self.inner.run_block(BlockCoord {
                x: x as u32,
                y: y as u32,
            });
            x += 1;
            if x == gx {
                // roll over to the next Y index
                x = 0;
                y += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slate_gpu_sim::buffer::GpuBuffer;
    use slate_gpu_sim::perf::KernelPerf;

    /// Records how many times each block coordinate executes.
    struct Counter {
        grid: GridDim,
        hits: Arc<GpuBuffer>,
    }

    impl Counter {
        fn new(grid: GridDim) -> (Arc<Self>, Arc<GpuBuffer>) {
            let hits = Arc::new(GpuBuffer::new(grid.total_blocks() as usize * 4));
            (
                Arc::new(Self {
                    grid,
                    hits: hits.clone(),
                }),
                hits,
            )
        }
    }

    impl GpuKernel for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn grid(&self) -> GridDim {
            self.grid
        }
        fn perf(&self) -> KernelPerf {
            KernelPerf::synthetic("counter", 100.0, 4.0)
        }
        fn run_block(&self, b: BlockCoord) {
            assert!(
                b.x < self.grid.x && b.y < self.grid.y,
                "out-of-grid block {b:?}"
            );
            self.hits.fetch_add_u32(self.grid.flat_of(b) as usize, 1);
        }
    }

    #[test]
    fn one_task_covering_whole_grid() {
        let (k, hits) = Counter::new(GridDim::d2(7, 5));
        let t = TransformedKernel::new(k);
        t.run_task(Task { start: 0, len: 35 });
        for i in 0..35 {
            assert_eq!(hits.load_u32(i), 1, "block {i}");
        }
    }

    #[test]
    fn tasks_partition_into_exact_cover() {
        let grid = GridDim::d2(13, 9); // 117 blocks
        let (k, hits) = Counter::new(grid);
        let t = TransformedKernel::new(k);
        // Pull with task size 10 -> 12 tasks, last of length 7.
        let q = crate::queue::TaskQueue::new(t.slate_max(), 10);
        while let Some(task) = q.pull() {
            t.run_task(task);
        }
        for i in 0..117 {
            assert_eq!(hits.load_u32(i), 1, "block {i}");
        }
    }

    #[test]
    fn rollover_crosses_row_boundaries_mid_task() {
        let grid = GridDim::d2(4, 4);
        let (k, hits) = Counter::new(grid);
        let t = TransformedKernel::new(k);
        // Task [2, 9): spans rows 0, 1 and 2.
        t.run_task(Task { start: 2, len: 7 });
        for i in 0..16u64 {
            let expect = u32::from((2..9).contains(&i));
            assert_eq!(hits.load_u32(i as usize), expect, "block {i}");
        }
    }

    #[test]
    fn one_d_grid_passthrough() {
        let grid = GridDim::d1(23);
        let (k, hits) = Counter::new(grid);
        let t = TransformedKernel::new(k);
        t.run_task(Task { start: 20, len: 3 });
        assert_eq!(hits.load_u32(20), 1);
        assert_eq!(hits.load_u32(22), 1);
        assert_eq!(hits.load_u32(19), 0);
    }

    #[test]
    fn incremental_index_matches_div_mod() {
        // The rollover arithmetic must agree with coord_of everywhere.
        let grid = GridDim::d2(7, 11);
        struct Probe {
            grid: GridDim,
            seen: parking_lot::Mutex<Vec<BlockCoord>>,
        }
        impl GpuKernel for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn grid(&self) -> GridDim {
                self.grid
            }
            fn perf(&self) -> KernelPerf {
                KernelPerf::synthetic("probe", 1.0, 0.0)
            }
            fn run_block(&self, b: BlockCoord) {
                self.seen.lock().push(b);
            }
        }
        let p = Arc::new(Probe {
            grid,
            seen: parking_lot::Mutex::new(Vec::new()),
        });
        let t = TransformedKernel::new(p.clone());
        t.run_task(Task { start: 5, len: 30 });
        let seen = p.seen.lock();
        for (i, b) in seen.iter().enumerate() {
            assert_eq!(*b, grid.coord_of(5 + i as u64));
        }
    }
}
