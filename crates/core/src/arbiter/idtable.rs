//! Dense-id interning for the decision hot path.
//!
//! External session and lease ids are opaque `u64`s chosen by clients —
//! sparse, unbounded, and unordered. Every decision-path structure that
//! used to key a `BTreeMap` on them now indexes a plain `Vec` with a
//! dense `u32` *slot* instead, and [`IdTable`] is the mapping between
//! the two worlds: `intern` hands out the lowest-numbered reusable slot,
//! `release` returns it to a LIFO free list, and an open-addressed
//! `u64 → u32` index answers reverse lookups without touching the
//! allocator in steady state.
//!
//! Two invariants make the table safe under the replay discipline
//! (see `DESIGN.md` §17):
//!
//! 1. **Slot numbers never leak into output.** Commands, transcripts and
//!    snapshots speak external ids only; anything that iterates slots and
//!    emits commands must order by external id first. Slot assignment is
//!    deterministic anyway (LIFO reuse of a deterministic event stream),
//!    but correctness must not depend on it — a core restored from a
//!    snapshot re-interns in ascending external-id order, which permutes
//!    slots without permuting behavior.
//! 2. **Steady-state interning does not allocate.** The index uses
//!    backward-shift deletion instead of tombstones, so a workload that
//!    interns and releases in balance never degrades the probe sequences
//!    and never forces a rehash; the free list guarantees the slot arena
//!    stops growing once it has seen the high-water mark of concurrently
//!    live ids.

/// Sentinel marking an empty index bucket (`u32::MAX` is never a valid
/// slot: the arena is bounded far below it by memory).
const EMPTY: u32 = u32::MAX;

/// Multiplier for Fibonacci hashing: `2^64 / φ`, the classic
/// golden-ratio constant. High bits of `id * K` are well mixed even for
/// sequential ids, which client session/lease ids usually are.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// An open-addressed `u64 → u32` hash index: power-of-two capacity,
/// linear probing, backward-shift deletion (no tombstones). Private to
/// the interner — the rest of the crate speaks [`IdTable`].
#[derive(Debug, Clone)]
struct U64Index {
    /// `(key, slot)` buckets; `slot == EMPTY` marks a free bucket.
    buckets: Vec<(u64, u32)>,
    /// Live entries.
    len: usize,
    /// `buckets.len() - 1`; capacity is always a power of two.
    mask: usize,
    /// `64 - log2(capacity)`: Fibonacci hashing takes the *high* bits.
    shift: u32,
}

impl U64Index {
    fn with_capacity(at_least: usize) -> Self {
        let cap = at_least.next_power_of_two().max(8);
        Self {
            buckets: vec![(0, EMPTY); cap],
            len: 0,
            mask: cap - 1,
            shift: 64 - cap.trailing_zeros(),
        }
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(FIB) >> self.shift) as usize
    }

    fn get(&self, key: u64) -> Option<u32> {
        let mut i = self.home(key);
        loop {
            let (k, s) = self.buckets[i];
            if s == EMPTY {
                return None;
            }
            if k == key {
                return Some(s);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts `key → slot`. The caller guarantees `key` is absent.
    fn insert(&mut self, key: u64, slot: u32) {
        if (self.len + 1) * 4 > self.buckets.len() * 3 {
            self.grow();
        }
        let mut i = self.home(key);
        while self.buckets[i].1 != EMPTY {
            debug_assert_ne!(self.buckets[i].0, key, "duplicate index insert");
            i = (i + 1) & self.mask;
        }
        self.buckets[i] = (key, slot);
        self.len += 1;
    }

    /// Removes `key`, compacting the probe chain behind it (backward
    /// shift) so no tombstone is left to slow later probes or force a
    /// rehash. Returns the slot it mapped to.
    fn remove(&mut self, key: u64) -> Option<u32> {
        let mut i = self.home(key);
        loop {
            let (k, s) = self.buckets[i];
            if s == EMPTY {
                return None;
            }
            if k == key {
                self.buckets[i].1 = EMPTY;
                self.len -= 1;
                // Backward shift: walk the chain after the hole; any
                // entry whose home position lies outside the cyclic
                // interval (i, j] may be moved back into the hole.
                let mut j = i;
                loop {
                    j = (j + 1) & self.mask;
                    let (jk, js) = self.buckets[j];
                    if js == EMPTY {
                        break;
                    }
                    let h = self.home(jk);
                    let dist_home = j.wrapping_sub(h) & self.mask;
                    let dist_hole = j.wrapping_sub(i) & self.mask;
                    if dist_home >= dist_hole {
                        self.buckets[i] = (jk, js);
                        self.buckets[j].1 = EMPTY;
                        i = j;
                    }
                }
                return Some(s);
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let old = std::mem::replace(&mut self.buckets, vec![(0, EMPTY); 0]);
        let cap = (old.len() * 2).max(8);
        self.buckets = vec![(0, EMPTY); cap];
        self.mask = cap - 1;
        self.shift = 64 - cap.trailing_zeros();
        self.len = 0;
        for (k, s) in old {
            if s != EMPTY {
                self.insert(k, s);
            }
        }
    }
}

/// A stable, replay-deterministic interner from external `u64` ids to
/// dense `u32` slots with LIFO free-list reuse. See the [module
/// docs](self) for the invariants.
#[derive(Debug, Clone)]
pub struct IdTable {
    /// Slot → external id for live slots; for released slots the cell is
    /// repurposed as an intrusive free-list link (the previous free
    /// head, as `u64`). Liveness of slot `s` is `index.get(ext[s]) ==
    /// Some(s)`: a freed slot's cell holds either a stale id that left
    /// the index (or re-interned into a *different* slot) or a link
    /// value, and the index never maps anything to a free slot — so the
    /// round-trip matches live slots exactly. Threading the free list
    /// through `ext` keeps the whole table at two allocations (arena +
    /// index) with no separate liveness or free vectors.
    ext: Vec<u64>,
    /// Most recently released slot ([`EMPTY`] when none): LIFO reuse.
    free_head: u32,
    /// External id → slot, for the live slots exactly.
    index: U64Index,
}

impl Default for IdTable {
    fn default() -> Self {
        Self::new()
    }
}

impl IdTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty table with room for `n` concurrently live ids before any
    /// allocation.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            ext: Vec::with_capacity(n),
            free_head: EMPTY,
            index: U64Index::with_capacity(n * 2),
        }
    }

    /// Interns `id`, returning `(slot, fresh)`: the existing slot with
    /// `fresh == false` when `id` is already live, otherwise a reused or
    /// newly grown slot with `fresh == true`. Callers must reset any
    /// parallel per-slot state when `fresh` — the slot may have belonged
    /// to a released id.
    pub fn intern(&mut self, id: u64) -> (u32, bool) {
        if let Some(slot) = self.index.get(id) {
            return (slot, false);
        }
        let slot = if self.free_head != EMPTY {
            let s = self.free_head;
            self.free_head = self.ext[s as usize] as u32;
            self.ext[s as usize] = id;
            s
        } else {
            let s = self.ext.len() as u32;
            self.ext.push(id);
            s
        };
        self.index.insert(id, slot);
        (slot, true)
    }

    /// The live slot of `id`, if interned.
    #[inline]
    pub fn get(&self, id: u64) -> Option<u32> {
        self.index.get(id)
    }

    /// Whether `id` is currently interned.
    #[inline]
    pub fn contains(&self, id: u64) -> bool {
        self.index.get(id).is_some()
    }

    /// Releases `id`, pushing its slot onto the free list. Returns the
    /// slot, or `None` if `id` was not interned.
    pub fn release(&mut self, id: u64) -> Option<u32> {
        let slot = self.index.remove(id)?;
        self.ext[slot as usize] = self.free_head as u64;
        self.free_head = slot;
        Some(slot)
    }

    /// The external id occupying `slot`. Panics on a dead or
    /// out-of-range slot in debug builds; meaningful only for live slots.
    #[inline]
    pub fn ext(&self, slot: u32) -> u64 {
        debug_assert_eq!(
            self.index.get(self.ext[slot as usize]),
            Some(slot),
            "ext() of a dead slot"
        );
        self.ext[slot as usize]
    }

    /// Live ids.
    pub fn len(&self) -> usize {
        self.index.len
    }

    /// Whether no id is live.
    pub fn is_empty(&self) -> bool {
        self.index.len == 0
    }

    /// Total slots ever handed out (live + free). Parallel per-slot
    /// tables size themselves to this.
    pub fn slot_count(&self) -> usize {
        self.ext.len()
    }

    /// Live `(slot, external id)` pairs in ascending *slot* order.
    /// Output-affecting iteration must sort by external id — slot order
    /// is an implementation detail (invariant 1 in the module docs).
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.ext
            .iter()
            .enumerate()
            .filter(|&(s, &e)| self.index.get(e) == Some(s as u32))
            .map(|(s, &e)| (s as u32, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_get_release_roundtrip() {
        let mut t = IdTable::new();
        let (a, fresh) = t.intern(100);
        assert!(fresh);
        assert_eq!(t.get(100), Some(a));
        assert_eq!(t.intern(100), (a, false), "re-intern is idempotent");
        assert_eq!(t.len(), 1);
        assert_eq!(t.release(100), Some(a));
        assert_eq!(t.get(100), None);
        assert!(t.is_empty());
        assert_eq!(t.release(100), None, "double release is a no-op");
    }

    #[test]
    fn slots_are_dense_and_reused_lifo() {
        let mut t = IdTable::new();
        let (a, _) = t.intern(10);
        let (b, _) = t.intern(20);
        let (c, _) = t.intern(30);
        assert_eq!((a, b, c), (0, 1, 2), "fresh slots are dense from zero");
        t.release(20);
        t.release(10);
        // LIFO: the most recently released slot comes back first.
        assert_eq!(t.intern(40), (a, true));
        assert_eq!(t.intern(50), (b, true));
        assert_eq!(t.intern(60), (3, true), "exhausted free list grows");
        assert_eq!(t.slot_count(), 4);
    }

    #[test]
    fn zero_and_max_are_valid_ids() {
        let mut t = IdTable::new();
        let (z, _) = t.intern(0);
        let (m, _) = t.intern(u64::MAX);
        assert_eq!(t.get(0), Some(z));
        assert_eq!(t.get(u64::MAX), Some(m));
        t.release(0);
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(u64::MAX), Some(m));
    }

    #[test]
    fn iter_lists_live_slots_only() {
        let mut t = IdTable::new();
        t.intern(5);
        t.intern(6);
        t.intern(7);
        t.release(6);
        let pairs: Vec<(u32, u64)> = t.iter().collect();
        assert_eq!(pairs, vec![(0, 5), (2, 7)]);
        assert_eq!(t.ext(0), 5);
        assert_eq!(t.ext(2), 7);
    }

    #[test]
    fn index_survives_heavy_churn_without_losing_entries() {
        let mut t = IdTable::new();
        // Interleave interning and releasing across several growth
        // boundaries; backward-shift deletion must keep every live probe
        // chain intact.
        for round in 0u64..50 {
            for i in 0..40 {
                t.intern(round * 1000 + i);
            }
            for i in 0..40 {
                if i % 3 != 0 {
                    assert!(t.release(round * 1000 + i).is_some());
                }
            }
        }
        for round in 0u64..50 {
            for i in 0..40 {
                let id = round * 1000 + i;
                assert_eq!(t.contains(id), i % 3 == 0, "id {id}");
            }
        }
        // High-water slots stay bounded by peak liveness, not total ids.
        assert!(t.slot_count() <= 40 + 14 * 50);
    }

    #[test]
    fn clustered_keys_probe_correctly_after_removals() {
        // Sequential ids are the common case (atomic counters); force
        // long probe chains and then punch holes in the middle of them.
        let mut t = IdTable::new();
        for i in 0u64..64 {
            t.intern(i);
        }
        for i in (0u64..64).step_by(2) {
            t.release(i);
        }
        for i in 0u64..64 {
            assert_eq!(t.contains(i), i % 2 == 1, "id {i}");
        }
        for i in (0u64..64).step_by(2) {
            let (_, fresh) = t.intern(i);
            assert!(fresh);
        }
        for i in 0u64..64 {
            assert!(t.contains(i));
        }
    }
}
