//! Transpose (TR) — tiled out-of-place matrix transpose, from the NVIDIA
//! CUDA samples.
//!
//! Pure data movement: reads a 32x32 tile through shared memory and writes
//! it transposed, performing zero floating-point work. Table II classifies
//! it Low compute / High memory (0 GFLOP/s, 568.6 GB/s of global requests —
//! above DRAM bandwidth thanks to L2 hits). As the most memory-hungry
//! kernel it pairs only with RG under the heuristic policy.

use crate::grid::{BlockCoord, GridDim};
use crate::kernel::GpuKernel;
use slate_gpu_sim::buffer::GpuBuffer;
use slate_gpu_sim::perf::KernelPerf;
use std::sync::Arc;

/// Tile edge (the CUDA sample's `TILE_DIM`).
pub const TILE: u32 = 32;

/// Paper problem size: square matrix dimension.
pub const PAPER_DIM: u32 = 16_384;

/// The tiled transpose kernel: `out[j][i] = in[i][j]` for an
/// `rows x cols` input.
pub struct TransposeKernel {
    rows: u32,
    cols: u32,
    input: Arc<GpuBuffer>,
    output: Arc<GpuBuffer>,
}

impl TransposeKernel {
    /// Binds the kernel: `input` is `rows x cols` row-major, `output` must
    /// hold `cols x rows`.
    pub fn new(rows: u32, cols: u32, input: Arc<GpuBuffer>, output: Arc<GpuBuffer>) -> Self {
        assert!(input.len_words() >= (rows * cols) as usize);
        assert!(output.len_words() >= (rows * cols) as usize);
        Self {
            rows,
            cols,
            input,
            output,
        }
    }
}

impl GpuKernel for TransposeKernel {
    fn name(&self) -> &str {
        "Transpose"
    }

    fn grid(&self) -> GridDim {
        GridDim::d2(self.cols.div_ceil(TILE), self.rows.div_ceil(TILE))
    }

    fn perf(&self) -> KernelPerf {
        paper_perf()
    }

    fn run_block(&self, block: BlockCoord) {
        let (rows, cols) = (self.rows as usize, self.cols as usize);
        let r0 = block.y as usize * TILE as usize;
        let c0 = block.x as usize * TILE as usize;
        // Tile staging models the shared-memory transpose: read row-major,
        // write transposed — both sides coalesced in the original.
        let mut tile = [[0.0f32; TILE as usize]; TILE as usize];
        for (tr, tile_row) in tile.iter_mut().enumerate() {
            let r = r0 + tr;
            if r >= rows {
                break;
            }
            for (tc, cell) in tile_row.iter_mut().enumerate() {
                let c = c0 + tc;
                if c >= cols {
                    break;
                }
                *cell = self.input.load_f32(r * cols + c);
            }
        }
        for (tr, tile_row) in tile.iter().enumerate() {
            let r = r0 + tr;
            if r >= rows {
                break;
            }
            for (tc, &v) in tile_row.iter().enumerate() {
                let c = c0 + tc;
                if c >= cols {
                    break;
                }
                self.output.store_f32(c * rows + r, v);
            }
        }
    }
}

/// Calibrated profile reproducing Table II: ≈569 GB/s global request
/// bandwidth while DRAM saturates at its 480 GB/s cap (the request excess
/// is L2-hit traffic).
pub fn paper_perf() -> KernelPerf {
    KernelPerf {
        name: "Transpose".into(),
        threads_per_block: 256,
        regs_per_thread: 32,
        smem_per_block: TILE * (TILE + 1) * 4, // padded tile, bank-conflict free
        compute_cycles_per_block: 500.0,
        insts_per_block: 300.0,
        flops_per_block: 0.0,
        mem_request_bytes_per_block: (TILE * TILE * 4 * 2) as f64, // read + write
        dram_bytes_inorder: 6500.0,
        dram_bytes_scattered: 6920.0,
        l2_footprint_bytes: 0.3e6,
        inject_insts_per_block: 18.0,
        inject_cycles_per_block: 15.0,
        max_concurrent_blocks: None,
    }
}

/// Blocks per launch at the paper problem size (512 x 512 tiles).
pub fn paper_blocks() -> u64 {
    (PAPER_DIM as u64 / TILE as u64).pow(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{run_parallel, run_reference};

    fn setup(rows: u32, cols: u32) -> (TransposeKernel, Arc<GpuBuffer>, Arc<GpuBuffer>) {
        let n = (rows * cols) as usize;
        let input = Arc::new(GpuBuffer::new(n * 4));
        let output = Arc::new(GpuBuffer::new(n * 4));
        for i in 0..n {
            input.store_f32(i, i as f32);
        }
        (
            TransposeKernel::new(rows, cols, input.clone(), output.clone()),
            input,
            output,
        )
    }

    fn check(rows: u32, cols: u32, input: &GpuBuffer, output: &GpuBuffer) {
        for r in 0..rows as usize {
            for c in 0..cols as usize {
                assert_eq!(
                    output.load_f32(c * rows as usize + r),
                    input.load_f32(r * cols as usize + c),
                    "mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn transposes_square_matrix() {
        let (k, i, o) = setup(64, 64);
        run_reference(&k);
        check(64, 64, &i, &o);
    }

    #[test]
    fn transposes_rectangular_with_ragged_tiles() {
        let (k, i, o) = setup(70, 45); // not multiples of 32
        run_reference(&k);
        check(70, 45, &i, &o);
        assert_eq!(k.grid(), GridDim::d2(2, 3));
    }

    #[test]
    fn parallel_matches_reference() {
        let (k1, _, o1) = setup(128, 96);
        run_reference(&k1);
        let (k2, _, o2) = setup(128, 96);
        run_parallel(&k2);
        for i in 0..(128 * 96) as usize {
            assert_eq!(o1.load_f32(i), o2.load_f32(i));
        }
    }

    #[test]
    fn double_transpose_is_identity() {
        let (k, input, mid) = setup(96, 64);
        run_reference(&k);
        let back = Arc::new(GpuBuffer::new(96 * 64 * 4));
        let k2 = TransposeKernel::new(64, 96, mid, back.clone());
        run_reference(&k2);
        for i in 0..96 * 64 {
            assert_eq!(back.load_f32(i), input.load_f32(i));
        }
    }

    #[test]
    fn paper_profile_is_pure_memory() {
        let p = paper_perf();
        p.validate().unwrap();
        assert_eq!(p.flops_per_block, 0.0);
        // Requests exceed DRAM traffic (L2 hits).
        assert!(p.mem_request_bytes_per_block > p.dram_bytes_scattered);
        assert_eq!(paper_blocks(), 512 * 512);
    }
}
