//! Perf-regression gate over two `hotpaths` reports.
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [--warn-pct 10] [--fail-pct 25]
//!            [--summary <path>]
//! ```
//!
//! Compares each baseline bench against the current run by name:
//!
//! * any bench slower than `warn-pct` prints a warning (soft gate — CI
//!   stays green so noisy runners don't block PRs);
//! * a **gated** bench (`"gated": true` in the report — the arbiter feed
//!   throughput) slower than `fail-pct` fails the run (exit 1);
//! * a gated bench missing from the current report also fails: a deleted
//!   measurement must not silently pass the gate.
//!
//! Warnings use the `::warning::` workflow-command syntax so they surface
//! as annotations on the GitHub PR. With `--summary <path>` the gate
//! also *appends* a baseline-vs-current markdown delta table to `path` —
//! CI points it at `$GITHUB_STEP_SUMMARY` so every run shows its numbers
//! on the workflow page without digging through logs.

use slate_bench::{Report, REPORT_SCHEMA};
use std::process::ExitCode;

fn load(path: &str) -> Report {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let report: Report =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"));
    assert_eq!(
        report.schema, REPORT_SCHEMA,
        "{path}: report schema {} but this gate expects {REPORT_SCHEMA}",
        report.schema
    );
    report
}

fn pct_arg(args: &[String], flag: &str, default: f64) -> f64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse::<f64>()
                .unwrap_or_else(|e| panic!("{flag} {v}: {e}"))
        })
        .unwrap_or(default)
}

fn str_arg<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// One comparison row: name, gated, baseline ns/iter, `Some((current
/// ns/iter, delta %))` or `None` when the bench vanished, and a verdict.
type Row = (String, bool, f64, Option<(f64, f64)>, &'static str);

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Positionals are whatever is left after dropping each `--flag` together
    // with its value.
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a.starts_with("--") {
            let _ = it.next();
        } else {
            positional.push(a);
        }
    }
    let [baseline_path, current_path] = positional[..] else {
        eprintln!(
            "usage: bench_gate <baseline.json> <current.json> \
             [--warn-pct 10] [--fail-pct 25] [--summary <path>]"
        );
        return ExitCode::from(2);
    };
    let warn_pct = pct_arg(&args, "--warn-pct", 10.0);
    let fail_pct = pct_arg(&args, "--fail-pct", 25.0);
    let summary_path = str_arg(&args, "--summary");
    let baseline = load(baseline_path);
    let current = load(current_path);

    let mut rows: Vec<Row> = Vec::new();
    let mut failures = 0u32;
    for base in &baseline.benches {
        let Some(cur) = current.get(&base.name) else {
            println!(
                "::error::bench '{}' is in the baseline but missing from the current report",
                base.name
            );
            failures += 1;
            rows.push((
                base.name.clone(),
                base.gated,
                base.ns_per_iter,
                None,
                "MISSING",
            ));
            continue;
        };
        let delta_pct = (cur.ns_per_iter / base.ns_per_iter - 1.0) * 100.0;
        let verdict = if base.gated && delta_pct > fail_pct {
            failures += 1;
            "FAIL"
        } else if delta_pct > warn_pct {
            println!(
                "::warning::bench '{}' regressed {delta_pct:.1}% ({:.1} -> {:.1} ns/iter)",
                base.name, base.ns_per_iter, cur.ns_per_iter
            );
            "warn"
        } else {
            "ok"
        };
        println!(
            "{:<20} {:>12.1} -> {:>12.1} ns/iter  {delta_pct:>+7.1}%  [{verdict}]",
            base.name, base.ns_per_iter, cur.ns_per_iter
        );
        if verdict == "FAIL" {
            println!(
                "::error::gated bench '{}' regressed {delta_pct:.1}% (fail threshold {fail_pct}%)",
                base.name
            );
        }
        rows.push((
            base.name.clone(),
            base.gated,
            base.ns_per_iter,
            Some((cur.ns_per_iter, delta_pct)),
            verdict,
        ));
    }
    for cur in &current.benches {
        if baseline.get(&cur.name).is_none() {
            println!(
                "{:<20} (new bench, no baseline: {:.1} ns/iter)",
                cur.name, cur.ns_per_iter
            );
            rows.push((
                cur.name.clone(),
                cur.gated,
                f64::NAN,
                Some((cur.ns_per_iter, f64::NAN)),
                "new",
            ));
        }
    }

    if let Some(path) = summary_path {
        let md = render_summary(&rows, warn_pct, fail_pct, failures);
        // Append, not truncate: $GITHUB_STEP_SUMMARY may already hold
        // output from earlier steps of the job.
        use std::io::Write as _;
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(md.as_bytes()))
            .unwrap_or_else(|e| panic!("write summary {path}: {e}"));
    }

    if failures > 0 {
        println!("bench gate: {failures} hard failure(s)");
        return ExitCode::FAILURE;
    }
    println!("bench gate: ok (warn > {warn_pct}%, fail > {fail_pct}% on gated benches)");
    ExitCode::SUCCESS
}

/// The markdown delta table appended to the GitHub step summary.
fn render_summary(rows: &[Row], warn_pct: f64, fail_pct: f64, failures: u32) -> String {
    use std::fmt::Write as _;
    let mut md = String::new();
    let _ = writeln!(md, "### Bench gate: baseline vs current\n");
    let _ = writeln!(
        md,
        "| bench | gated | baseline ns/iter | current ns/iter | delta | verdict |"
    );
    let _ = writeln!(md, "|---|---|---:|---:|---:|---|");
    for (name, gated, base_ns, cur, verdict) in rows {
        let gate = if *gated { "yes" } else { "" };
        let icon = match *verdict {
            "ok" => "✅ ok",
            "warn" => "⚠️ warn",
            "new" => "🆕 new",
            _ => "❌ fail",
        };
        match cur {
            Some((cur_ns, _)) if base_ns.is_nan() => {
                let _ = writeln!(md, "| `{name}` | {gate} | — | {cur_ns:.1} | — | {icon} |");
            }
            Some((cur_ns, delta)) => {
                let _ = writeln!(
                    md,
                    "| `{name}` | {gate} | {base_ns:.1} | {cur_ns:.1} | {delta:+.1}% | {icon} |"
                );
            }
            None => {
                let _ = writeln!(md, "| `{name}` | {gate} | {base_ns:.1} | — | — | {icon} |");
            }
        }
    }
    let _ = writeln!(
        md,
        "\nThresholds: warn > {warn_pct}%, fail > {fail_pct}% on gated benches. \
         {}\n",
        if failures > 0 {
            format!("**{failures} hard failure(s).**")
        } else {
            "Gate passed.".to_string()
        }
    );
    md
}
