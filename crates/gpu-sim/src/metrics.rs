//! Performance counters and `nvprof`-style reports.
//!
//! [`SliceReport`] is what the engine hands back for every grid slice:
//! blocks completed, active/stall time, instructions, flops and bytes.
//! Derived metrics (IPC, GFLOP/s, achieved bandwidth, memory-throttle stall
//! percentage) match the counters the paper reports in Tables II–IV.
//! [`KernelMetrics`] aggregates many slices of one logical kernel execution
//! (e.g. across resize relaunches or repetition loops).

use crate::device::SmRange;
use serde::{Deserialize, Serialize};

/// Accumulated counters of one grid slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SliceReport {
    /// Kernel name.
    pub kernel: String,
    /// Caller-assigned attribution tag.
    pub tag: u64,
    /// SM range the slice ran on.
    pub sm_range: SmRange,
    /// Blocks the slice was created with.
    pub blocks_total: u64,
    /// Blocks actually completed (≤ `blocks_total`; less if removed early).
    pub blocks_done: u64,
    /// Whether the slice drained completely.
    pub drained: bool,
    /// Seconds spent actively executing (excludes launch lead-in).
    pub active_s: f64,
    /// Seconds-equivalent spent stalled on memory throttling.
    pub stall_s: f64,
    /// Dynamic instructions executed (including injected ones).
    pub insts: f64,
    /// Single-precision flops executed.
    pub flops: f64,
    /// Global load+store request bytes (the nvprof gld+gst metric).
    pub request_bytes: f64,
    /// DRAM bytes actually moved.
    pub dram_bytes: f64,
    /// Task-queue atomic pulls performed (Slate mode only).
    pub queue_pulls: f64,
    /// SM cycles elapsed while active (`active_s * clock`).
    pub cycles: f64,
    /// Number of SMs in the range.
    pub sms: u32,
}

impl SliceReport {
    /// Instructions per cycle per SM — the nvprof `ipc` metric.
    pub fn ipc(&self) -> f64 {
        if self.cycles <= 0.0 || self.sms == 0 {
            0.0
        } else {
            self.insts / (self.cycles * self.sms as f64)
        }
    }

    /// Achieved compute rate in GFLOP/s.
    pub fn gflops(&self) -> f64 {
        if self.active_s <= 0.0 {
            0.0
        } else {
            self.flops / self.active_s / 1e9
        }
    }

    /// Achieved global load+store request bandwidth in GB/s.
    pub fn request_bw(&self) -> f64 {
        if self.active_s <= 0.0 {
            0.0
        } else {
            self.request_bytes / self.active_s / 1e9
        }
    }

    /// Achieved DRAM bandwidth in GB/s.
    pub fn dram_bw(&self) -> f64 {
        if self.active_s <= 0.0 {
            0.0
        } else {
            self.dram_bytes / self.active_s / 1e9
        }
    }

    /// Fraction of active time stalled on memory throttling, in `[0, 1]`.
    pub fn stall_fraction(&self) -> f64 {
        if self.active_s <= 0.0 {
            0.0
        } else {
            (self.stall_s / self.active_s).clamp(0.0, 1.0)
        }
    }
}

/// Aggregate of many slices belonging to one logical kernel execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelMetrics {
    /// Kernel name (taken from the first merged report).
    pub kernel: String,
    /// Total blocks completed.
    pub blocks_done: u64,
    /// Total active seconds (sums slice activity; overlapping slices of the
    /// same kernel double-count, which matches per-kernel nvprof semantics).
    pub active_s: f64,
    /// Total stall seconds.
    pub stall_s: f64,
    /// Total instructions.
    pub insts: f64,
    /// Total flops.
    pub flops: f64,
    /// Total request bytes.
    pub request_bytes: f64,
    /// Total DRAM bytes.
    pub dram_bytes: f64,
    /// Total queue pulls.
    pub queue_pulls: f64,
    /// SM-cycles (cycles x SMs) accumulated, for IPC.
    pub sm_cycles: f64,
    /// Number of slices merged.
    pub slices: u32,
}

impl KernelMetrics {
    /// Creates an empty aggregate for a kernel name.
    pub fn new(kernel: &str) -> Self {
        Self {
            kernel: kernel.to_string(),
            ..Default::default()
        }
    }

    /// Merges one slice report into the aggregate.
    pub fn merge(&mut self, rep: &SliceReport) {
        if self.kernel.is_empty() {
            self.kernel = rep.kernel.clone();
        }
        self.blocks_done += rep.blocks_done;
        self.active_s += rep.active_s;
        self.stall_s += rep.stall_s;
        self.insts += rep.insts;
        self.flops += rep.flops;
        self.request_bytes += rep.request_bytes;
        self.dram_bytes += rep.dram_bytes;
        self.queue_pulls += rep.queue_pulls;
        self.sm_cycles += rep.cycles * rep.sms as f64;
        self.slices += 1;
    }

    /// Instructions per cycle per SM across all merged slices.
    pub fn ipc(&self) -> f64 {
        if self.sm_cycles <= 0.0 {
            0.0
        } else {
            self.insts / self.sm_cycles
        }
    }

    /// GFLOP/s over active time.
    pub fn gflops(&self) -> f64 {
        if self.active_s <= 0.0 {
            0.0
        } else {
            self.flops / self.active_s / 1e9
        }
    }

    /// Request bandwidth (GB/s) over active time.
    pub fn request_bw(&self) -> f64 {
        if self.active_s <= 0.0 {
            0.0
        } else {
            self.request_bytes / self.active_s / 1e9
        }
    }

    /// Stall fraction over active time.
    pub fn stall_fraction(&self) -> f64 {
        if self.active_s <= 0.0 {
            0.0
        } else {
            (self.stall_s / self.active_s).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SliceReport {
        SliceReport {
            kernel: "k".into(),
            tag: 0,
            sm_range: SmRange::new(0, 29),
            blocks_total: 100,
            blocks_done: 100,
            drained: true,
            active_s: 2.0,
            stall_s: 0.5,
            insts: 60e9,
            flops: 20e9,
            request_bytes: 800e9,
            dram_bytes: 600e9,
            queue_pulls: 10.0,
            cycles: 2.0 * 1.48e9,
            sms: 30,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert!((r.gflops() - 10.0).abs() < 1e-9);
        assert!((r.request_bw() - 400.0).abs() < 1e-9);
        assert!((r.dram_bw() - 300.0).abs() < 1e-9);
        assert!((r.stall_fraction() - 0.25).abs() < 1e-12);
        let ipc = r.insts / (r.cycles * 30.0);
        assert!((r.ipc() - ipc).abs() < 1e-12);
    }

    #[test]
    fn zero_time_reports_zero() {
        let mut r = report();
        r.active_s = 0.0;
        r.cycles = 0.0;
        assert_eq!(r.gflops(), 0.0);
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.stall_fraction(), 0.0);
    }

    #[test]
    fn aggregate_merges_two_slices() {
        let mut agg = KernelMetrics::new("k");
        agg.merge(&report());
        agg.merge(&report());
        assert_eq!(agg.slices, 2);
        assert_eq!(agg.blocks_done, 200);
        assert!(
            (agg.gflops() - 10.0).abs() < 1e-9,
            "rates unchanged by merging equal slices"
        );
        assert!((agg.ipc() - report().ipc()).abs() < 1e-12);
    }

    #[test]
    fn merge_fills_kernel_name() {
        let mut agg = KernelMetrics::default();
        agg.merge(&report());
        assert_eq!(agg.kernel, "k");
    }
}
