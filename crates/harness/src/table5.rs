//! Table V — Slate-introduced operations and their measured cost.
//!
//! The paper's overhead taxonomy, quantified on our reproduction:
//!
//! * inside kernel execution — injected instructions (~3% extra for
//!   BlackScholes: 4M on 157.5M per launch) and the serialized task-queue
//!   atomics (one per `SLATE_ITERS` blocks);
//! * outside kernel execution — dynamic code injection + compilation
//!   (~1.5% of application time, cached per user) and client-daemon
//!   communication (~4% of application time);
//! * offline — first-run kernel profiling into the lookup table.

use crate::report::{f, pct, Report, Table};
use slate_baselines::Runtime;
use slate_core::SlateRuntime;
use slate_gpu_sim::device::DeviceConfig;
use slate_kernels::workload::Benchmark;

/// Measured overhead summary.
#[derive(Debug, Clone)]
pub struct Overheads {
    /// Injected-instruction overhead for BS (fraction of its own count).
    pub inject_inst_frac: f64,
    /// Queue pulls per launch for BS at the default task size.
    pub pulls_per_launch: f64,
    /// Slate communication as a fraction of application time (BS solo).
    pub comm_frac: f64,
    /// Injection + compilation as a fraction of application time (BS solo).
    pub inject_frac: f64,
}

/// Measures Table V's quantities.
pub fn run(cfg: &DeviceConfig, scale: u32) -> (Overheads, Report) {
    let app = Benchmark::BS.app().scaled_down(scale);
    let p = &app.perf;
    let inject_inst_frac = p.inject_insts_per_block / p.insts_per_block;
    let real_blocks = app.blocks_per_launch / app.batch as u64;
    let pulls_per_launch = real_blocks as f64 / app.task_size as f64;

    let out = SlateRuntime::new(cfg.clone()).run(std::slice::from_ref(&app));
    let r = &out.apps[0];
    let comm_frac = r.comm_s / r.app_time_s;
    let inject_frac = r.inject_s / r.app_time_s;

    let mut report = Report::new(
        "table5",
        "Slate-introduced operations and their scope",
        "Inside kernel execution: injected instructions (~3% more for BS) \
         and atomic task-queue pulls. Outside kernel execution: dynamic code \
         injection and compilation (~1.5% of app time) and client-daemon \
         communication (~4%). Offline: first-run kernel profiling.",
    );
    let mut t = Table::new(
        "Measured overheads (BlackScholes)",
        &["Scope", "Operation", "Measured"],
    );
    t.row(&[
        "Inside kernel exec".into(),
        "Injected instructions".into(),
        format!("{} of kernel instructions", pct(inject_inst_frac)),
    ]);
    t.row(&[
        "Inside kernel exec".into(),
        "Atomic ops on the task queue".into(),
        format!(
            "{} pulls per launch (task size {})",
            f(pulls_per_launch, 0),
            app.task_size
        ),
    ]);
    t.row(&[
        "Outside kernel exec".into(),
        "Code injection & compilation".into(),
        format!("{} of application time", pct(inject_frac)),
    ]);
    t.row(&[
        "Outside kernel exec".into(),
        "Client-daemon communication".into(),
        format!("{} of application time", pct(comm_frac)),
    ]);
    t.row(&[
        "Offline".into(),
        "Kernel profiling to build lookup table".into(),
        "first run only, cached in the profile table".into(),
    ]);
    report.tables.push(t);

    report.check(
        "injected instructions are ~2-4% of BS's own count (paper: ~3%)",
        (0.02..0.04).contains(&inject_inst_frac),
    );
    report.check(
        "one atomic pull per task (blocks / task size)",
        (pulls_per_launch - real_blocks as f64 / 10.0).abs() < 1.0,
    );
    report.check(
        "communication costs a few percent of application time (paper: ~4%)",
        (0.005..0.08).contains(&comm_frac),
    );
    report.check(
        "injection + compilation cost ~0.5-3% of application time (paper: ~1.5%)",
        (0.002..0.04).contains(&inject_frac),
    );
    (
        Overheads {
            inject_inst_frac,
            pulls_per_launch,
            comm_frac,
            inject_frac,
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_reproduces() {
        let (_, report) = run(&DeviceConfig::titan_xp(), 8);
        assert!(report.all_pass(), "{}", report.to_text());
    }
}
