//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides a
//! reduced, source-compatible subset of the serde surface the workspace
//! uses: `#[derive(Serialize, Deserialize)]` on plain structs and enums,
//! serialized through a single JSON data model. The `serde_json` stub in
//! `vendor/serde_json` exposes the familiar `to_string` / `to_string_pretty`
//! / `from_str` entry points over these traits.
//!
//! Numbers are kept as their original text (`JsonValue::Num(String)`), so
//! `u64` values round-trip exactly instead of being squeezed through `f64`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as raw text for lossless integer round-trips.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

/// Error raised by deserialization or parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

/// Serialization half of the reduced serde pair.
pub trait Serialize {
    /// Appends `self` as JSON text.
    fn serialize_json(&self, out: &mut String);
}

/// Deserialization half of the reduced serde pair.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a parsed JSON value.
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError>;
}

/// Appends a quoted, escaped JSON string.
pub fn ser_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `"key":`.
pub fn ser_key(out: &mut String, key: &str) {
    ser_str(out, key);
    out.push(':');
}

/// Looks up and deserializes an object field (derive helper).
pub fn field<T: Deserialize>(v: &JsonValue, name: &str) -> Result<T, JsonError> {
    match v {
        JsonValue::Obj(entries) => match entries.iter().find(|(k, _)| k == name) {
            Some((_, fv)) => T::deserialize_json(fv),
            None => Err(JsonError(format!("missing field {name}"))),
        },
        other => Err(JsonError(format!(
            "expected object with field {name}, found {other:?}"
        ))),
    }
}

/// Looks up `name` like [`field`], but a *missing* field deserializes
/// as `T::default()` (derive helper for `#[serde(default)]` — the
/// forward-compat escape hatch that lets configs grow fields without
/// invalidating previously recorded JSON). A present-but-malformed
/// field is still an error.
pub fn field_or_default<T: Deserialize + Default>(
    v: &JsonValue,
    name: &str,
) -> Result<T, JsonError> {
    match v {
        JsonValue::Obj(entries) => match entries.iter().find(|(k, _)| k == name) {
            Some((_, fv)) => T::deserialize_json(fv),
            None => Ok(T::default()),
        },
        other => Err(JsonError(format!(
            "expected object with field {name}, found {other:?}"
        ))),
    }
}

/// Splits an externally tagged enum value `{"Variant": {...}}` (derive helper).
pub fn variant(v: &JsonValue) -> Result<(&str, &JsonValue), JsonError> {
    match v {
        JsonValue::Obj(entries) if entries.len() == 1 => Ok((entries[0].0.as_str(), &entries[0].1)),
        other => Err(JsonError(format!(
            "expected single-key enum object, found {other:?}"
        ))),
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
                match v {
                    JsonValue::Num(raw) => raw.parse().map_err(|e| {
                        JsonError(format!("bad {} literal {raw}: {e}", stringify!($t)))
                    }),
                    other => Err(JsonError(format!(
                        "expected number, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    // `{:?}` is Rust's shortest round-trip float form.
                    out.push_str(&format!("{self:?}"));
                } else {
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
                match v {
                    JsonValue::Num(raw) => raw.parse().map_err(|e| {
                        JsonError(format!("bad {} literal {raw}: {e}", stringify!($t)))
                    }),
                    JsonValue::Null => Ok(<$t>::NAN),
                    other => Err(JsonError(format!(
                        "expected number, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(JsonError(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        ser_str(out, self);
    }
}

impl Serialize for &str {
    fn serialize_json(&self, out: &mut String) {
        ser_str(out, self);
    }
}

impl Deserialize for String {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Str(s) => Ok(s.clone()),
            other => Err(JsonError(format!("expected string, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Arr(items) => items.iter().map(T::deserialize_json).collect(),
            other => Err(JsonError(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(x) => x.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Null => Ok(None),
            other => Ok(Some(T::deserialize_json(other)?)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_json(&self, out: &mut String) {
        // Sort keys so serialized tables are deterministic.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        out.push('{');
        for (i, k) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            ser_key(out, k);
            self[*k].serialize_json(out);
        }
        out.push('}');
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Obj(entries) => entries
                .iter()
                .map(|(k, fv)| Ok((k.clone(), V::deserialize_json(fv)?)))
                .collect(),
            other => Err(JsonError(format!("expected object, found {other:?}"))),
        }
    }
}

/// A type usable as a JSON object key (strings, plus integers rendered
/// as decimal strings — the JSON convention for numeric map keys).
pub trait JsonKey: Sized {
    /// Renders the key as the JSON object-key string.
    fn to_key(&self) -> String;
    /// Parses the key back from the JSON object-key string.
    fn from_key(s: &str) -> Result<Self, JsonError>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, JsonError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_json_key_int {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, JsonError> {
                s.parse().map_err(|e| {
                    JsonError(format!("bad {} map key {s}: {e}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_json_key_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl<K: JsonKey + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        // BTreeMap iteration is already key-ordered, so serialized maps
        // are deterministic without an extra sort.
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            ser_key(out, &k.to_key());
            v.serialize_json(out);
        }
        out.push('}');
    }
}

impl<K: JsonKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Obj(entries) => entries
                .iter()
                .map(|(k, fv)| Ok((K::from_key(k)?, V::deserialize_json(fv)?)))
                .collect(),
            other => Err(JsonError(format!("expected object, found {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
                match v {
                    JsonValue::Arr(items) => {
                        let expect = [$($n,)+].len();
                        if items.len() != expect {
                            return Err(JsonError(format!(
                                "expected {expect}-tuple, found {} items", items.len()
                            )));
                        }
                        Ok(($($t::deserialize_json(&items[$n])?,)+))
                    }
                    other => Err(JsonError(format!("expected array, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Parses JSON text into a [`JsonValue`].
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError(format!("trailing garbage at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err(JsonError("unexpected end of input".into()));
    };
    match c {
        b'{' => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(JsonError(format!("expected ':' at byte {pos}")));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                entries.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(entries));
                    }
                    _ => return Err(JsonError(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(JsonError(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        b'"' => Ok(JsonValue::Str(parse_string(b, pos)?)),
        b't' => expect_lit(b, pos, "true", JsonValue::Bool(true)),
        b'f' => expect_lit(b, pos, "false", JsonValue::Bool(false)),
        b'n' => expect_lit(b, pos, "null", JsonValue::Null),
        _ => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            if start == *pos {
                return Err(JsonError(format!("unexpected byte {c} at {pos}")));
            }
            Ok(JsonValue::Num(
                std::str::from_utf8(&b[start..*pos]).unwrap().to_string(),
            ))
        }
    }
}

fn expect_lit(
    b: &[u8],
    pos: &mut usize,
    lit: &str,
    val: JsonValue,
) -> Result<JsonValue, JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(val)
    } else {
        Err(JsonError(format!("bad literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(JsonError(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = Vec::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out)
                    .map_err(|e| JsonError(format!("invalid utf8 in string: {e}")));
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| JsonError("bad \\u escape".into()))?,
                            16,
                        )
                        .map_err(|_| JsonError("bad \\u escape".into()))?;
                        let c = char::from_u32(code)
                            .ok_or_else(|| JsonError("bad \\u code point".into()))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(JsonError(format!("bad escape at byte {pos}"))),
                }
                *pos += 1;
            }
            c => {
                out.push(c);
                *pos += 1;
            }
        }
    }
    Err(JsonError("unterminated string".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        let mut s = String::new();
        18446744073709551615u64.serialize_json(&mut s);
        assert_eq!(s, "18446744073709551615");
        let v = parse(&s).unwrap();
        assert_eq!(u64::deserialize_json(&v).unwrap(), u64::MAX);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" \\ slash \u{1}".to_string();
        let mut s = String::new();
        original.serialize_json(&mut s);
        let v = parse(&s).unwrap();
        assert_eq!(String::deserialize_json(&v).unwrap(), original);
    }

    #[test]
    fn map_is_deterministic_and_roundtrips() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        let mut s = String::new();
        m.serialize_json(&mut s);
        assert_eq!(s, r#"{"a":1,"b":2}"#);
        let v = parse(&s).unwrap();
        assert_eq!(HashMap::<String, u32>::deserialize_json(&v).unwrap(), m);
    }

    #[test]
    fn tuple_and_float_roundtrip() {
        let t = ("bw".to_string(), 12.5f64);
        let mut s = String::new();
        t.serialize_json(&mut s);
        assert_eq!(s, r#"["bw",12.5]"#);
        let v = parse(&s).unwrap();
        let back: (String, f64) = Deserialize::deserialize_json(&v).unwrap();
        assert_eq!(back, t);
    }
}
