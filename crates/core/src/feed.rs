//! Allocation-free batched event-feed primitives: a bounded lock-free
//! SPSC ring and a reusable event batch.
//!
//! The daemon's hot path is "hand one small batch of [`Event`]s to the
//! arbitration layer and read back its commands". Holding one big mutex
//! across the whole of that (feed + WAL append + command application)
//! serializes every producer behind the arbiter's work; allocating a
//! fresh `Vec` per batch puts the allocator on the per-launch path. The
//! two types here remove both:
//!
//! * [`EventBatch`] — an events-in / replies-out buffer pair that is
//!   cleared and refilled, never reallocated: steady state it holds its
//!   high-water capacity and a feed touches no heap.
//! * [`ring`] — a bounded single-producer single-consumer ring. The
//!   producer side hands filled batches to the consuming arbiter thread
//!   with two atomic operations and no lock; backpressure is the ring
//!   filling up (the producer waits or, for fire-and-forget heartbeats,
//!   drops the tick).
//!
//! The daemon (`daemon.rs`) runs the full arrangement: pooled
//! `Arc`-wrapped batches travel producer → ring → arbiter thread → back
//! to the pool, so a steady-state submission allocates nothing. The
//! single-threaded [`SlateRuntime`](crate::runtime::SlateRuntime) reuses
//! just [`EventBatch`] as its feed scratch. Ordering discipline —
//! *when* batches may be reordered and when not — is documented in
//! `DESIGN.md` §17.
//!
//! The ring is SPSC by construction, not by convention: [`ring`] returns
//! distinct [`RingProducer`]/[`RingConsumer`] handles, neither clonable,
//! and every operation takes `&mut self` — two threads can't race one
//! side without already having broken Rust's aliasing rules. (The daemon
//! serializes its many submitting threads through a tiny mutex around
//! the producer handle, which is what makes it "logically SPSC".)

use crate::arbiter::Event;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A reusable feed batch: the events handed to an arbitration layer and
/// the replies (commands) it produced. Both buffers keep their capacity
/// across [`EventBatch::clear`], so a pool of warmed batches feeds
/// without touching the allocator.
#[derive(Debug)]
pub struct EventBatch<C> {
    /// Events to feed, in order.
    pub events: Vec<Event>,
    /// Replies the consumer produced for this batch, in order.
    pub replies: Vec<C>,
}

impl<C> EventBatch<C> {
    /// An empty batch (buffers grow to their working size on first use).
    pub fn new() -> Self {
        Self {
            events: Vec::new(),
            replies: Vec::new(),
        }
    }

    /// A batch pre-sized for `events` events and `replies` replies.
    pub fn with_capacity(events: usize, replies: usize) -> Self {
        Self {
            events: Vec::with_capacity(events),
            replies: Vec::with_capacity(replies),
        }
    }

    /// Empties both buffers, keeping their capacity.
    pub fn clear(&mut self) {
        self.events.clear();
        self.replies.clear();
    }
}

impl<C> Default for EventBatch<C> {
    fn default() -> Self {
        Self::new()
    }
}

/// Shared storage of one SPSC ring: a power-of-two slot array indexed by
/// free-running head/tail counters (Lamport's construction). `head` is
/// owned by the consumer, `tail` by the producer; each side publishes
/// its counter with a release store after touching a slot, and reads the
/// other's with an acquire load before touching one — that pairing is
/// the entire synchronization.
struct RingInner<T> {
    slots: Box<[UnsafeCell<Option<T>>]>,
    mask: usize,
    /// Next slot to pop (consumer-owned).
    head: AtomicUsize,
    /// Next slot to push (producer-owned).
    tail: AtomicUsize,
}

// One producer and one consumer may touch the ring from different
// threads; slot access is partitioned by the head/tail protocol above.
unsafe impl<T: Send> Send for RingInner<T> {}
unsafe impl<T: Send> Sync for RingInner<T> {}

/// Creates a bounded SPSC ring of at least `capacity` slots (rounded up
/// to a power of two, minimum 2), returning the two endpoint handles.
pub fn ring<T>(capacity: usize) -> (RingProducer<T>, RingConsumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let inner = Arc::new(RingInner {
        slots: (0..cap).map(|_| UnsafeCell::new(None)).collect(),
        mask: cap - 1,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        RingProducer {
            inner: inner.clone(),
        },
        RingConsumer { inner },
    )
}

/// The push side of a ring built by [`ring`]. Not clonable; push takes
/// `&mut self`, so exactly one thread at a time can produce.
pub struct RingProducer<T> {
    inner: Arc<RingInner<T>>,
}

impl<T> RingProducer<T> {
    /// Pushes `v`, or returns it if the ring is full (backpressure is
    /// the caller's policy: wait, retry, or drop).
    pub fn push(&mut self, v: T) -> Result<(), T> {
        let r = &*self.inner;
        let tail = r.tail.load(Ordering::Relaxed);
        let head = r.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > r.mask {
            return Err(v);
        }
        // Sole producer (`&mut self`) and the slot is vacated: the
        // consumer's head (acquire-read above) is past it.
        unsafe { *r.slots[tail & r.mask].get() = Some(v) };
        r.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        let r = &*self.inner;
        r.tail
            .load(Ordering::Relaxed)
            .wrapping_sub(r.head.load(Ordering::Acquire))
    }

    /// Whether the ring currently holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a push would currently fail.
    pub fn is_full(&self) -> bool {
        self.len() > self.inner.mask
    }

    /// The ring's slot count.
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }
}

/// The pop side of a ring built by [`ring`]. Not clonable; pop takes
/// `&mut self`, so exactly one thread at a time can consume.
pub struct RingConsumer<T> {
    inner: Arc<RingInner<T>>,
}

impl<T> RingConsumer<T> {
    /// Pops the oldest item, or `None` if the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        let r = &*self.inner;
        let head = r.head.load(Ordering::Relaxed);
        let tail = r.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // Sole consumer (`&mut self`) and the slot is filled: the
        // producer's tail (acquire-read above) is past it.
        let v = unsafe { (*r.slots[head & r.mask].get()).take() };
        r.head.store(head.wrapping_add(1), Ordering::Release);
        v
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        let r = &*self.inner;
        r.tail
            .load(Ordering::Acquire)
            .wrapping_sub(r.head.load(Ordering::Relaxed))
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's slot count.
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity_bound() {
        let (mut tx, mut rx) = ring::<u64>(4);
        assert_eq!(tx.capacity(), 4);
        for i in 0..4 {
            tx.push(i).expect("fits");
        }
        assert!(tx.is_full());
        assert_eq!(tx.push(99), Err(99), "full ring rejects");
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i), "FIFO order");
        }
        assert_eq!(rx.pop(), None);
        assert!(rx.is_empty());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = ring::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = ring::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn interleaved_push_pop_wraps_the_index_space() {
        let (mut tx, mut rx) = ring::<usize>(2);
        // Many more operations than slots: indices wrap many times.
        for i in 0..1000 {
            tx.push(i).expect("room");
            tx.push(i + 1_000_000).expect("room");
            assert_eq!(rx.pop(), Some(i));
            assert_eq!(rx.pop(), Some(i + 1_000_000));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn drop_releases_undrained_items() {
        let item = Arc::new(());
        let (mut tx, rx) = ring::<Arc<()>>(4);
        tx.push(item.clone()).expect("room");
        tx.push(item.clone()).expect("room");
        assert_eq!(Arc::strong_count(&item), 3);
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&item), 1, "ring drop frees queued items");
    }

    #[test]
    fn event_batch_clear_keeps_capacity() {
        let mut b = EventBatch::<u32>::with_capacity(8, 8);
        b.events.push(Event::DeadlineTick);
        b.replies.extend([1, 2, 3]);
        let (ce, cr) = (b.events.capacity(), b.replies.capacity());
        b.clear();
        assert!(b.events.is_empty() && b.replies.is_empty());
        assert_eq!(b.events.capacity(), ce);
        assert_eq!(b.replies.capacity(), cr);
    }

    /// Two real threads, a ring much smaller than the item count, and a
    /// seeded, deterministic pattern of consumer stalls: every item must
    /// arrive exactly once, in order, through full-ring backpressure.
    #[test]
    fn threaded_stress_exactly_once_in_order() {
        const N: u64 = 100_000;
        let (mut tx, mut rx) = ring::<u64>(8);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let consumer = std::thread::spawn(move || {
            // xorshift-seeded stall pattern: occasionally sleep so the
            // ring oscillates between full and empty.
            let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
            let mut expect = 0u64;
            while expect < N {
                match rx.pop() {
                    Some(v) => {
                        assert_eq!(v, expect, "in-order, exactly once");
                        expect += 1;
                    }
                    None => std::thread::yield_now(),
                }
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                if rng % 4096 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
            }
            assert_eq!(rx.pop(), None, "nothing after the last item");
        });
        producer.join().expect("producer");
        consumer.join().expect("consumer");
    }

    /// Shutdown drain: producer stops, consumer drains the remainder —
    /// nothing is lost, nothing is duplicated.
    #[test]
    fn shutdown_drains_exactly_once() {
        let (mut tx, mut rx) = ring::<u64>(16);
        let mut sent = Vec::new();
        for i in 0..10 {
            tx.push(i).expect("room");
            sent.push(i);
        }
        drop(tx); // producer gone; queued items must still drain
        let mut got = Vec::new();
        while let Some(v) = rx.pop() {
            got.push(v);
        }
        assert_eq!(got, sent);
        assert_eq!(rx.pop(), None);
    }
}
