//! The deterministic arbitration core (paper §III-B/§III-D) shared by the
//! simulated runtime and the live daemon.
//!
//! Everything Slate decides centrally — Table-I concurrent-kernel
//! selection, SM partitioning, dynamic resizing, starvation aging,
//! admission shedding and watchdog eviction — lives in one event-driven
//! state machine, [`ArbiterCore`]. Frontends own the clocks, threads and
//! devices; the core owns the decisions:
//!
//! ```text
//!   SlateRuntime (simulated time)          SlateDaemon (wall-clock)
//!        │  engine events                       │  session threads, 1 ms scanner
//!        ▼                                      ▼
//!   Event { SessionOpened, LaunchRequested, KernelReady, KernelFinished,
//!           MallocRequested, DeadlineTick, SessionSevered, DrainBegan, … }
//!        │               ArbiterCore::feed(now, &[Event])
//!        ▼
//!   Command { Dispatch, Resize, RejectOverloaded, PromoteStarved, Evict, Reap }
//!        │                                      │
//!        ▼  launch/resize sim slices            ▼  dispatch/retreat kernels, wire errors
//! ```
//!
//! Because the core is pure (no clocks, no locks, no I/O) and iterates
//! only ordered collections, the same event log always yields the same
//! command sequence — see [`replay`] for the recording format and the
//! golden-transcript machinery built on that guarantee.

pub mod events;
pub mod idtable;
pub mod replay;

mod decide;
mod state;

pub use events::{Command, Event, RejectScope, Tick};
pub use idtable::IdTable;
pub use replay::{EventLog, LoggedBatch};
pub use state::{ArbiterConfig, ArbiterCore, CoreSnapshot};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionLimits;
    use crate::classify::WorkloadClass::{self, *};
    use slate_gpu_sim::device::{DeviceConfig, SmRange};

    fn core_with(config: ArbiterConfig) -> ArbiterCore {
        ArbiterCore::new(DeviceConfig::titan_xp(), config)
    }

    fn core() -> ArbiterCore {
        core_with(ArbiterConfig::default())
    }

    fn ready(session: u64, lease: u64, class: WorkloadClass, sm_demand: u32) -> Event {
        Event::KernelReady {
            session,
            lease,
            class,
            sm_demand,
            pinned_solo: false,
            deadline_ms: None,
        }
    }

    fn fin(lease: u64) -> Event {
        Event::KernelFinished { lease, ok: true }
    }

    fn launch(session: u64, lease: u64, est_ms: Option<u64>, deadline_ms: Option<u64>) -> Event {
        Event::LaunchRequested {
            session,
            lease,
            est_ms,
            deadline_ms,
        }
    }

    fn full() -> SmRange {
        SmRange::all(30)
    }

    #[test]
    fn empty_device_dispatches_fifo_head_on_full_range() {
        let mut a = core();
        let out = a.feed(0, &[ready(1, 10, MM, 30)]);
        assert_eq!(
            out,
            vec![Command::Dispatch {
                lease: 10,
                range: full()
            }]
        );
        // A non-complementary second kernel waits.
        let out = a.feed(1, &[ready(1, 11, MM, 30)]);
        assert_eq!(out, vec![]);
        assert_eq!(a.residents(), 1);
        assert_eq!(a.waiting(), 1);
        // When the resident leaves, the waiter takes the whole device.
        let out = a.feed(2, &[fin(10)]);
        assert_eq!(
            out,
            vec![Command::Dispatch {
                lease: 11,
                range: full()
            }]
        );
    }

    #[test]
    fn complementary_waiter_joins_with_partition_and_resize() {
        let mut a = core();
        a.feed(0, &[ready(1, 1, MM, 30)]);
        // LC demand 14 joining MM demand 30: partition grants the small
        // kernel its demand, the rest stays with the resident.
        let out = a.feed(1, &[ready(2, 2, LC, 14)]);
        assert_eq!(
            out,
            vec![
                Command::Resize {
                    lease: 1,
                    range: SmRange::new(0, 15)
                },
                Command::Dispatch {
                    lease: 2,
                    range: SmRange::new(16, 29)
                },
            ]
        );
        assert_eq!(a.residents(), 2);
        // The survivor regrows when its partner departs.
        let out = a.feed(2, &[fin(2)]);
        assert_eq!(
            out,
            vec![Command::Resize {
                lease: 1,
                range: full()
            }]
        );
    }

    #[test]
    fn sliced_kernel_resumes_its_partition_in_place() {
        let mut a = core();
        a.feed(0, &[ready(1, 1, MM, 30)]);
        a.feed(1, &[ready(2, 2, LC, 14)]);
        // Lease 1 finishes a slice and is immediately ready again: it
        // resumes its old [0..15] — no resize, no fresh selection.
        let out = a.feed(2, &[fin(1), ready(1, 1, MM, 30)]);
        assert_eq!(
            out,
            vec![Command::Dispatch {
                lease: 1,
                range: SmRange::new(0, 15)
            }]
        );
        assert_eq!(a.residents(), 2);
    }

    #[test]
    fn corun_disabled_serializes_everything() {
        let mut a = core_with(ArbiterConfig {
            enable_corun: false,
            ..ArbiterConfig::default()
        });
        a.feed(0, &[ready(1, 1, MM, 30)]);
        let out = a.feed(1, &[ready(2, 2, LC, 14)]);
        assert_eq!(out, vec![], "no join with corun disabled");
        let out = a.feed(2, &[fin(1)]);
        assert_eq!(
            out,
            vec![Command::Dispatch {
                lease: 2,
                range: full()
            }]
        );
    }

    #[test]
    fn pinned_solo_kernel_neither_joins_nor_accepts_partners() {
        let mut a = core();
        let out = a.feed(
            0,
            &[Event::KernelReady {
                session: 1,
                lease: 1,
                class: MM,
                sm_demand: 30,
                pinned_solo: true,
                deadline_ms: None,
            }],
        );
        assert_eq!(
            out,
            vec![Command::Dispatch {
                lease: 1,
                range: full()
            }]
        );
        let out = a.feed(1, &[ready(2, 2, LC, 14)]);
        assert_eq!(out, vec![], "pinned resident accepts no partner");
    }

    #[test]
    fn starved_waiter_blocks_joins_and_is_promoted() {
        let mut a = core_with(ArbiterConfig {
            starvation_bound_us: Some(1_000),
            ..ArbiterConfig::default()
        });
        a.feed(0, &[ready(1, 1, MM, 30)]);
        // A same-class waiter queues (no corun possible) and starves.
        a.feed(10, &[ready(2, 2, MM, 30)]);
        // A fresh complementary kernel arrives after the bound: the join
        // must be refused — it would push the starved waiter further back.
        let out = a.feed(2_000, &[ready(3, 3, LC, 14)]);
        assert_eq!(out, vec![], "starved waiter blocks fresh pairings");
        // Device frees: the starved head is promoted, pinned solo.
        let out = a.feed(2_100, &[fin(1)]);
        assert_eq!(
            out,
            vec![
                Command::PromoteStarved { lease: 2 },
                Command::Dispatch {
                    lease: 2,
                    range: full()
                },
            ]
        );
        assert_eq!(a.promotions(), 1);
        // Nothing may join the promoted kernel, starved or not.
        assert_eq!(a.feed(2_200, &[Event::DeadlineTick]), vec![]);
    }

    #[test]
    fn overdue_resident_is_evicted_once() {
        let mut a = core();
        let out = a.feed(
            0,
            &[Event::KernelReady {
                session: 1,
                lease: 1,
                class: MM,
                sm_demand: 30,
                pinned_solo: false,
                deadline_ms: Some(5),
            }],
        );
        assert_eq!(
            out,
            vec![Command::Dispatch {
                lease: 1,
                range: full()
            }]
        );
        assert_eq!(a.feed(4_999, &[Event::DeadlineTick]), vec![]);
        let out = a.feed(5_000, &[Event::DeadlineTick]);
        assert_eq!(out, vec![Command::Evict { lease: 1 }]);
        assert_eq!(a.evictions(), 1);
        // The deadline is disarmed: no double eviction while the retreat
        // is in flight.
        assert_eq!(a.feed(6_000, &[Event::DeadlineTick]), vec![]);
        a.feed(
            6_100,
            &[Event::KernelFinished {
                lease: 1,
                ok: false,
            }],
        );
        assert_eq!(a.residents(), 0);
    }

    #[test]
    fn drain_blocks_new_pairings_but_keeps_dispatching() {
        let mut a = core();
        a.feed(0, &[ready(1, 1, MM, 30)]);
        a.feed(1, &[Event::DrainBegan]);
        let out = a.feed(2, &[ready(2, 2, LC, 14)]);
        assert_eq!(out, vec![], "no new co-run pairs while draining");
        let out = a.feed(3, &[fin(1)]);
        assert_eq!(
            out,
            vec![Command::Dispatch {
                lease: 2,
                range: full()
            }],
            "queued work still drains solo"
        );
    }

    #[test]
    fn severed_session_is_reaped_and_partner_regrows() {
        let mut a = core();
        a.feed(
            0,
            &[
                Event::SessionOpened { session: 1 },
                Event::SessionOpened { session: 2 },
            ],
        );
        a.feed(1, &[ready(1, 1, MM, 30)]);
        a.feed(2, &[ready(2, 2, LC, 14)]);
        assert_eq!(a.residents(), 2);
        let out = a.feed(3, &[Event::SessionSevered { session: 2 }]);
        assert_eq!(
            out,
            vec![
                Command::Reap { session: 2 },
                Command::Resize {
                    lease: 1,
                    range: full()
                },
            ]
        );
        assert_eq!(a.reaped(), 1);
        assert_eq!(a.admission_stats().active_sessions, 1);
    }

    // ---- admission control (migrated from the old AdmissionController) ----

    fn limits(limits: AdmissionLimits) -> ArbiterConfig {
        ArbiterConfig {
            limits,
            ..ArbiterConfig::default()
        }
    }

    fn reject_of(out: &[Command]) -> Option<(Option<u64>, RejectScope, u64)> {
        out.iter().find_map(|c| match c {
            Command::RejectOverloaded {
                lease,
                scope,
                retry_after_ms,
                ..
            } => Some((*lease, *scope, *retry_after_ms)),
            _ => None,
        })
    }

    #[test]
    fn session_limit_sheds_with_positive_hint() {
        let mut a = core_with(limits(AdmissionLimits {
            max_sessions: Some(2),
            ..Default::default()
        }));
        assert_eq!(a.feed(0, &[Event::SessionOpened { session: 1 }]), vec![]);
        assert_eq!(a.feed(1, &[Event::SessionOpened { session: 2 }]), vec![]);
        let out = a.feed(2, &[Event::SessionOpened { session: 3 }]);
        let (lease, scope, retry) = reject_of(&out).expect("third session shed");
        assert_eq!(lease, None);
        assert_eq!(scope, RejectScope::Session);
        assert!(retry >= 1);
        a.feed(3, &[Event::SessionClosed { session: 1 }]);
        assert_eq!(a.feed(4, &[Event::SessionOpened { session: 4 }]), vec![]);
        let s = a.admission_stats();
        assert_eq!(s.active_sessions, 2);
        assert_eq!(s.sessions_admitted, 3);
        assert_eq!(s.sessions_rejected, 1);
    }

    #[test]
    fn per_session_bound_sheds_before_the_global_bound() {
        let mut a = core_with(limits(AdmissionLimits {
            max_pending_per_session: Some(1),
            max_pending_global: Some(10),
            ..Default::default()
        }));
        a.feed(0, &[Event::SessionOpened { session: 1 }]);
        let out = a.feed(1, &[launch(1, 7, Some(5), None)]);
        assert!(reject_of(&out).is_none());
        let out = a.feed(2, &[launch(1, 7, Some(5), None)]);
        assert_eq!(reject_of(&out).map(|r| r.1), Some(RejectScope::Launch));
        assert_eq!(a.queue_stats().shed, 1, "global gauge counts the shed too");
        a.feed(3, &[fin(7)]);
        let s = a.admission_stats();
        assert_eq!(s.launches_completed, 1);
        assert_eq!(s.pending_est_ms, 0);
    }

    #[test]
    fn global_bound_rolls_back_the_session_admission() {
        let mut a = core_with(limits(AdmissionLimits {
            max_pending_global: Some(1),
            ..Default::default()
        }));
        a.feed(
            0,
            &[
                Event::SessionOpened { session: 1 },
                Event::SessionOpened { session: 2 },
            ],
        );
        assert!(reject_of(&a.feed(1, &[launch(1, 10, None, None)])).is_none());
        let out = a.feed(2, &[launch(2, 20, None, None)]);
        assert_eq!(reject_of(&out).map(|r| r.1), Some(RejectScope::Launch));
        a.feed(
            3,
            &[Event::KernelFinished {
                lease: 10,
                ok: false,
            }],
        );
        let s = a.admission_stats();
        assert_eq!(s.launches_failed, 1);
        assert_eq!(a.queue_stats().depth, 0);
    }

    #[test]
    fn infeasible_deadline_is_rejected_up_front() {
        let mut a = core();
        a.feed(0, &[Event::SessionOpened { session: 1 }]);
        // 500 ms of profiled work is already pending.
        assert!(reject_of(&a.feed(1, &[launch(1, 1, Some(500), None)])).is_none());
        // A 100 ms deadline can never be met behind that queue.
        let out = a.feed(2, &[launch(1, 2, Some(1), Some(100))]);
        let (lease, scope, retry) = reject_of(&out).expect("deadline shed");
        assert_eq!(lease, Some(2));
        assert_eq!(scope, RejectScope::Deadline);
        assert_eq!(retry, 500, "hint is the pending estimate");
        assert_eq!(a.admission_stats().deadline_rejections, 1);
        // A 1000 ms deadline is feasible.
        assert!(reject_of(&a.feed(3, &[launch(1, 3, Some(1), Some(1000))])).is_none());
        a.feed(4, &[fin(1)]);
        a.feed(5, &[fin(3)]);
        assert_eq!(a.admission_stats().pending_est_ms, 0);
    }

    #[test]
    fn memory_watermark_sheds_above_the_line() {
        let mut a = core_with(limits(AdmissionLimits {
            mem_watermark: Some(0.5),
            ..Default::default()
        }));
        a.feed(0, &[Event::SessionOpened { session: 1 }]);
        // Capacity 1000, watermark 500.
        let ok = a.feed(
            1,
            &[Event::MallocRequested {
                session: 1,
                used: 0,
                capacity: 1000,
                bytes: 400,
            }],
        );
        assert!(reject_of(&ok).is_none());
        let out = a.feed(
            2,
            &[Event::MallocRequested {
                session: 1,
                used: 400,
                capacity: 1000,
                bytes: 200,
            }],
        );
        assert_eq!(reject_of(&out).map(|r| r.1), Some(RejectScope::Malloc));
        assert_eq!(a.admission_stats().mallocs_shed, 1);
        // Without a watermark everything passes.
        let mut open = core();
        let out = open.feed(
            0,
            &[Event::MallocRequested {
                session: 1,
                used: 999,
                capacity: 1000,
                bytes: 10_000,
            }],
        );
        assert!(reject_of(&out).is_none());
    }

    #[test]
    fn retry_hint_tracks_pending_estimates() {
        let mut a = core_with(limits(AdmissionLimits {
            max_pending_global: Some(2),
            ..Default::default()
        }));
        a.feed(0, &[Event::SessionOpened { session: 1 }]);
        a.feed(1, &[launch(1, 1, Some(30), None)]);
        a.feed(2, &[launch(1, 2, Some(40), None)]);
        let out = a.feed(3, &[launch(1, 3, Some(5), None)]);
        let (_, _, retry) = reject_of(&out).expect("third launch shed");
        assert_eq!(retry, 70, "hint is the pending estimate");
    }

    #[test]
    fn default_limits_admit_everything() {
        let mut a = core();
        for s in 0..100 {
            assert!(reject_of(&a.feed(s, &[Event::SessionOpened { session: s }])).is_none());
        }
        for l in 0..1_000 {
            assert!(reject_of(&a.feed(l, &[launch(1, l, None, None)])).is_none());
        }
        for l in 0..1_000 {
            a.feed(1_000 + l, &[fin(l)]);
        }
        let s = a.admission_stats();
        assert_eq!(s.sessions_rejected, 0);
        assert_eq!(s.launches_completed, 1_000);
        assert_eq!(a.queue_stats().shed, 0);
        assert_eq!(a.queue_stats().depth, 0);
    }

    // ---- SLO preemption ----

    use slate_kernels::workload::SloClass;

    fn slo(session: u64, class: SloClass) -> Event {
        Event::SloArrival { session, class }
    }

    fn preempting() -> ArbiterCore {
        core_with(ArbiterConfig {
            preempt_bound_us: Some(1_000),
            ..ArbiterConfig::default()
        })
    }

    #[test]
    fn latency_critical_arrival_preempts_best_effort_resident() {
        let mut a = preempting();
        // HC x HM never co-runs under the symmetric Table I closure, so
        // without preemption the arrival would wait out the resident.
        a.feed(0, &[ready(1, 1, HC, 30)]);
        let out = a.feed(5, &[slo(2, SloClass::LatencyCritical), ready(2, 2, HM, 9)]);
        assert_eq!(out[0], Command::Preempt { lease: 1 });
        assert!(
            matches!(out[1], Command::Resize { lease: 1, .. }),
            "the resident retreats: {out:?}"
        );
        assert!(
            matches!(out[2], Command::Dispatch { lease: 2, .. }),
            "the arrival lands in the same batch: {out:?}"
        );
        assert_eq!(a.residents(), 2);
        assert_eq!(a.preemptions(), 1);
        // The survivor regrows when the arrival departs.
        let out = a.feed(10, &[fin(2), Event::SessionClosed { session: 2 }]);
        assert_eq!(
            out,
            vec![Command::Resize {
                lease: 1,
                range: full()
            }]
        );
    }

    #[test]
    fn preemption_requires_the_bound_and_spares_critical_residents() {
        // Without the bound the same trace just queues the arrival.
        let mut a = core();
        a.feed(0, &[ready(1, 1, HC, 30)]);
        let out = a.feed(5, &[slo(2, SloClass::LatencyCritical), ready(2, 2, HM, 9)]);
        assert_eq!(out, vec![], "no preemption without a bound");
        assert_eq!(a.waiting(), 1);

        // A latency-critical resident is never displaced by a peer.
        let mut a = preempting();
        a.feed(0, &[slo(1, SloClass::LatencyCritical), ready(1, 1, HC, 30)]);
        let out = a.feed(5, &[slo(2, SloClass::LatencyCritical), ready(2, 2, HM, 9)]);
        assert_eq!(out, vec![], "critical residents are not preempted");
        assert_eq!(a.preemptions(), 0);
    }

    #[test]
    fn starved_best_effort_waiter_blocks_preemption() {
        // Aging outranks SLO: once any waiter is past the starvation
        // bound, the next free device goes to the queue head, and no
        // preemption jumps the arrival past it.
        let mut a = core_with(ArbiterConfig {
            preempt_bound_us: Some(1_000),
            starvation_bound_us: Some(10_000),
            ..ArbiterConfig::default()
        });
        a.feed(0, &[ready(1, 1, HC, 30)]);
        a.feed(1, &[ready(2, 2, HC, 30)]); // best-effort, queued
        let out = a.feed(
            20_000,
            &[slo(3, SloClass::LatencyCritical), ready(3, 3, HM, 9)],
        );
        assert_eq!(out, vec![], "a starved queue freezes preemption");
        // When the device frees, the starved best-effort head dispatches
        // ahead of the latency-critical arrival.
        let out = a.feed(20_001, &[fin(1), Event::SessionClosed { session: 1 }]);
        assert_eq!(out[0], Command::PromoteStarved { lease: 2 });
        assert!(matches!(out[1], Command::Dispatch { lease: 2, .. }));
    }

    #[test]
    fn critical_class_survives_snapshot_roundtrip() {
        let mut a = preempting();
        a.feed(0, &[slo(7, SloClass::LatencyCritical)]);
        a.feed(1, &[ready(1, 1, HC, 30)]);
        let snap = a.snapshot();
        let json = serde_json::to_string(&snap).expect("snapshot serializes");
        let back: CoreSnapshot = serde_json::from_str(&json).expect("snapshot deserializes");
        let mut b = ArbiterCore::from_snapshot(back);
        assert_eq!(b.session_slo(7), SloClass::LatencyCritical);
        assert_eq!(b.session_slo(1), SloClass::BestEffort);
        // The restored core still preempts for the declared session.
        let out = b.feed(5, &[ready(7, 9, HM, 9)]);
        assert_eq!(out[0], Command::Preempt { lease: 1 });
        assert_eq!(b.preemptions(), a.preemptions() + 1);
    }

    // ---- recording and replay ----

    #[test]
    fn recorded_run_replays_identically_and_roundtrips_json() {
        let mut a = core_with(ArbiterConfig {
            starvation_bound_us: Some(50_000),
            limits: AdmissionLimits {
                max_pending_per_session: Some(4),
                ..Default::default()
            },
            ..ArbiterConfig::default()
        });
        a.start_recording();
        a.feed(
            0,
            &[
                Event::SessionOpened { session: 1 },
                Event::SessionOpened { session: 2 },
            ],
        );
        a.feed(
            10,
            &[
                launch(1, 1, Some(20), None),
                launch(2, 2, Some(5), Some(500)),
            ],
        );
        a.feed(20, &[ready(1, 1, MM, 30)]);
        a.feed(30, &[ready(2, 2, LC, 14)]);
        a.feed(1_000, &[Event::DeadlineTick]); // heartbeat no-op: not recorded
        a.feed(2_000, &[fin(2), ready(2, 2, LC, 14)]);
        a.feed(3_000, &[fin(1)]);
        a.feed(4_000, &[fin(2), Event::SessionClosed { session: 2 }]);
        a.feed(5_000, &[Event::SessionClosed { session: 1 }]);
        let log = a.take_log().expect("recording was on");
        assert!(
            log.batches.iter().all(|b| {
                !(b.commands.is_empty()
                    && b.events.iter().all(|e| matches!(e, Event::DeadlineTick)))
            }),
            "no-op heartbeats are not recorded"
        );
        replay::verify(&log).expect("replay reproduces the recording");

        let json = serde_json::to_string_pretty(&log).expect("log serializes");
        let back: EventLog = serde_json::from_str(&json).expect("log deserializes");
        assert_eq!(back, log);
        replay::verify(&back).expect("deserialized log still verifies");
        assert_eq!(
            replay::transcript(&replay::replay(&log)),
            replay::transcript(&log.batches),
            "replay transcript is byte-identical"
        );
    }
}
