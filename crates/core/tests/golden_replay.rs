//! Golden replay of the arbitration core.
//!
//! A checked-in JSON recording of an arbitration run (`tests/data/`) must
//! replay through `slate_core::arbiter::replay` to the byte-identical
//! command transcript, release after release — any diff here is a
//! behavioral change to the scheduler and must be deliberate. A fresh
//! simulated run of the same workload must also reproduce the checked-in
//! log exactly, proving the whole frontend-plus-core stack deterministic,
//! not just the core.
//!
//! After an *intended* arbiter change, regenerate the fixtures with
//! `cargo test -p slate-core --test golden_replay -- --ignored`.

use slate_core::arbiter::{replay, Command, Event, EventLog};
use slate_core::runtime::{SlateOptions, SlateRuntime};
use slate_gpu_sim::device::DeviceConfig;
use slate_kernels::workload::{llm_trace, Benchmark, LlmTraceCfg};

const LOG_JSON: &str = include_str!("data/arbiter_log.json");
const GOLDEN_TRANSCRIPT: &str = include_str!("data/arbiter_transcript.txt");
const SLO_LOG_JSON: &str = include_str!("data/slo_log.json");
const SLO_GOLDEN_TRANSCRIPT: &str = include_str!("data/slo_transcript.txt");

/// The fixed workload behind the fixtures: a complementary pair (BS-RG
/// co-runs, partitions, and resizes) plus a solo-policy third process, so
/// the log exercises dispatch, co-run join, in-place continuation, and
/// survivor regrow.
fn record_fixture_run() -> EventLog {
    let slate = SlateRuntime::new(DeviceConfig::titan_xp());
    let apps = [
        Benchmark::BS.app().scaled_down(30),
        Benchmark::RG.app().scaled_down(30),
        Benchmark::MM.app().scaled_down(30),
    ];
    let (_, log) = slate.run_recorded(&apps);
    log
}

/// The fixed workload behind the mixed-SLO fixtures: a small scaled LLM
/// serving trace — best-effort prefill under bursts of latency-critical
/// decode — run with preemption enabled, so the log pins the
/// `SloArrival` → `Preempt`/`Resize`/`Dispatch` decision sequence.
fn record_slo_fixture_run() -> EventLog {
    let slate = SlateRuntime::with_options(
        DeviceConfig::titan_xp(),
        SlateOptions {
            preempt_bound_s: Some(0.02),
            ..SlateOptions::default()
        },
    );
    let mut cfg = LlmTraceCfg::paper(0x510);
    cfg.scale = 30;
    cfg.decode_sessions = 6;
    cfg.decode_launches = 2;
    let (_, log) = slate.run_recorded(&llm_trace(&cfg));
    log
}

#[test]
fn checked_in_log_replays_to_the_golden_transcript() {
    let log: EventLog = serde_json::from_str(LOG_JSON).expect("fixture parses");
    replay::verify(&log).expect("checked-in log replays to its own commands");
    let transcript = replay::transcript(&replay::replay(&log));
    assert_eq!(
        transcript, GOLDEN_TRANSCRIPT,
        "replay transcript diverged from the golden fixture"
    );
}

#[test]
fn fixture_log_contains_the_interesting_decisions() {
    // Guards against the fixture silently degenerating into a trivial log.
    let log: EventLog = serde_json::from_str(LOG_JSON).expect("fixture parses");
    let commands = || log.batches.iter().flat_map(|b| b.commands.iter());
    assert!(commands().any(|c| matches!(c, Command::Dispatch { .. })));
    assert!(
        commands().any(|c| matches!(c, Command::Resize { .. })),
        "the fixture workload must exercise dynamic resizing"
    );
}

#[test]
fn live_sim_run_reproduces_the_checked_in_log() {
    // The simulated frontend is deterministic end to end: running the
    // fixture workload again yields the very same event log — same
    // batches, same timestamps, same commands.
    let log: EventLog = serde_json::from_str(LOG_JSON).expect("fixture parses");
    let fresh = record_fixture_run();
    assert_eq!(
        replay::transcript(&replay::replay(&fresh)),
        GOLDEN_TRANSCRIPT,
        "a fresh run diverged from the golden transcript"
    );
    assert_eq!(fresh, log, "a fresh run diverged from the checked-in log");
}

#[test]
fn checked_in_log_drives_both_backends_to_identical_transcripts() {
    // The recorded command stream is not just replayable through the
    // arbiter — executed through the `Backend` seam, the simulation
    // engine and the real persistent-worker dispatcher must produce the
    // same observable transcript (per-lease staging completions, full
    // block coverage). This pins the execution contract the refactor
    // carved out against the checked-in fixture.
    use slate_core::backend::{testkit, DispatcherBackend, SimBackend};

    let log: EventLog = serde_json::from_str(LOG_JSON).expect("fixture parses");
    let mut sim = SimBackend::new(log.device.clone());
    let mut disp = DispatcherBackend::new(log.device.clone());
    let a = testkit::replay_transcript(&log, &mut sim);
    let b = testkit::replay_transcript(&log, &mut disp);
    assert!(!a.is_empty(), "the fixture must contain dispatches");
    assert_eq!(
        a, b,
        "sim and dispatcher transcripts diverged on the fixture"
    );
    // Every staging the fixture dispatched ran to a clean drain (the
    // fixture contains no evictions), at full progress per staging.
    for (lease, stagings) in &a {
        assert!(!stagings.is_empty(), "lease {lease} never completed");
        for (progress, ok) in stagings {
            assert!(ok, "lease {lease} staging did not drain cleanly");
            assert!(*progress > 0);
        }
    }
}

#[test]
fn log_survives_a_json_roundtrip() {
    let log: EventLog = serde_json::from_str(LOG_JSON).expect("fixture parses");
    let json = serde_json::to_string_pretty(&log).expect("log serializes");
    let back: EventLog = serde_json::from_str(&json).expect("roundtrip parses");
    assert_eq!(back, log);
}

// ---- mixed-SLO fixture ----

#[test]
fn checked_in_slo_log_replays_to_the_golden_transcript() {
    let log: EventLog = serde_json::from_str(SLO_LOG_JSON).expect("fixture parses");
    replay::verify(&log).expect("checked-in slo log replays to its own commands");
    let transcript = replay::transcript(&replay::replay(&log));
    assert_eq!(
        transcript, SLO_GOLDEN_TRANSCRIPT,
        "slo replay transcript diverged from the golden fixture"
    );
}

#[test]
fn slo_fixture_log_contains_the_interesting_decisions() {
    // Guards against the fixture silently degenerating: it must declare
    // SLO classes and actually preempt for them.
    let log: EventLog = serde_json::from_str(SLO_LOG_JSON).expect("fixture parses");
    assert!(
        log.config.preempt_bound_us.is_some(),
        "the fixture must run with preemption enabled"
    );
    assert!(log
        .batches
        .iter()
        .flat_map(|b| b.events.iter())
        .any(|e| matches!(e, Event::SloArrival { .. })));
    let commands = || log.batches.iter().flat_map(|b| b.commands.iter());
    assert!(
        commands().any(|c| matches!(c, Command::Preempt { .. })),
        "the fixture workload must exercise priority preemption"
    );
    assert!(commands().any(|c| matches!(c, Command::Resize { .. })));
}

#[test]
fn live_sim_run_reproduces_the_checked_in_slo_log() {
    let log: EventLog = serde_json::from_str(SLO_LOG_JSON).expect("fixture parses");
    let fresh = record_slo_fixture_run();
    assert_eq!(
        replay::transcript(&replay::replay(&fresh)),
        SLO_GOLDEN_TRANSCRIPT,
        "a fresh mixed-SLO run diverged from the golden transcript"
    );
    assert_eq!(
        fresh, log,
        "a fresh mixed-SLO run diverged from the checked-in log"
    );
}

#[test]
fn checked_in_slo_log_drives_both_backends_to_identical_transcripts() {
    // The preemption command stream — retreat, resize, relaunch — executes
    // identically through the simulation engine and the persistent-worker
    // dispatcher.
    use slate_core::backend::{testkit, DispatcherBackend, SimBackend};

    let log: EventLog = serde_json::from_str(SLO_LOG_JSON).expect("fixture parses");
    let mut sim = SimBackend::new(log.device.clone());
    let mut disp = DispatcherBackend::new(log.device.clone());
    let a = testkit::replay_transcript(&log, &mut sim);
    let b = testkit::replay_transcript(&log, &mut disp);
    assert!(!a.is_empty(), "the slo fixture must contain dispatches");
    assert_eq!(
        a, b,
        "sim and dispatcher transcripts diverged on the slo fixture"
    );
}

#[test]
fn slo_log_survives_a_json_roundtrip() {
    let log: EventLog = serde_json::from_str(SLO_LOG_JSON).expect("fixture parses");
    let json = serde_json::to_string_pretty(&log).expect("log serializes");
    let back: EventLog = serde_json::from_str(&json).expect("roundtrip parses");
    assert_eq!(back, log);
}

#[test]
#[ignore = "regenerates tests/data fixtures; run after an intended arbiter change"]
fn regenerate_golden_fixtures() {
    let log = record_fixture_run();
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data");
    std::fs::create_dir_all(dir).expect("fixture dir");
    let json = serde_json::to_string_pretty(&log).expect("log serializes");
    std::fs::write(format!("{dir}/arbiter_log.json"), json).expect("write log");
    let transcript = replay::transcript(&replay::replay(&log));
    std::fs::write(format!("{dir}/arbiter_transcript.txt"), transcript).expect("write transcript");
}

#[test]
#[ignore = "regenerates tests/data fixtures; run after an intended arbiter change"]
fn regenerate_slo_fixtures() {
    let log = record_slo_fixture_run();
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data");
    std::fs::create_dir_all(dir).expect("fixture dir");
    let json = serde_json::to_string_pretty(&log).expect("log serializes");
    std::fs::write(format!("{dir}/slo_log.json"), json).expect("write log");
    let transcript = replay::transcript(&replay::replay(&log));
    std::fs::write(format!("{dir}/slo_transcript.txt"), transcript).expect("write transcript");
}
