//! LLM decode (DC) — batched attention-weighted value gather, one token
//! step per launch.
//!
//! Decode generates one token at a time: each step streams the whole KV
//! cache once to produce a single output row per sequence, so the kernel
//! is short, its grid is small, and nearly every byte it touches is used
//! exactly once. Calibrated to classify High memory (`H_M`) — the
//! latency-critical half of the LLM serving workload family, arriving in
//! bursts (see `workload::llm_trace`) behind long prefill launches.

use crate::grid::{BlockCoord, GridDim};
use crate::kernel::GpuKernel;
use slate_gpu_sim::buffer::GpuBuffer;
use slate_gpu_sim::perf::KernelPerf;
use std::sync::Arc;

/// Output columns computed per block.
pub const TILE: u32 = 16;

/// Paper-scale problem: KV-cache context length.
pub const PAPER_CTX: u32 = 2048;

/// Paper-scale problem: model (value) dimension.
pub const PAPER_DIM: u32 = 1024;

/// Paper-scale problem: sequences decoded per batched step.
pub const PAPER_BATCH: u32 = 32;

/// The decode kernel: for each sequence `s` in the batch,
/// `out[s][c] = sum_t w[s][t] * v[t][c]` — an attention-weighted gather
/// over the value cache (`ctx x dim`), one output row per sequence.
pub struct DecodeKernel {
    ctx: u32,
    dim: u32,
    batch: u32,
    w: Arc<GpuBuffer>,
    v: Arc<GpuBuffer>,
    out: Arc<GpuBuffer>,
}

impl DecodeKernel {
    /// Binds the kernel: `w` is `batch x ctx` attention weights, `v` is the
    /// `ctx x dim` value cache, `out` must hold `batch x dim`. `dim` must
    /// be a multiple of [`TILE`].
    pub fn new(
        ctx: u32,
        dim: u32,
        batch: u32,
        w: Arc<GpuBuffer>,
        v: Arc<GpuBuffer>,
        out: Arc<GpuBuffer>,
    ) -> Self {
        assert!(dim % TILE == 0, "dim must be a multiple of {TILE}");
        assert!(w.len_words() >= (batch * ctx) as usize);
        assert!(v.len_words() >= (ctx * dim) as usize);
        assert!(out.len_words() >= (batch * dim) as usize);
        Self {
            ctx,
            dim,
            batch,
            w,
            v,
            out,
        }
    }
}

impl GpuKernel for DecodeKernel {
    fn name(&self) -> &str {
        "Decode"
    }

    fn grid(&self) -> GridDim {
        GridDim::d2(self.dim / TILE, self.batch)
    }

    fn perf(&self) -> KernelPerf {
        paper_perf()
    }

    fn run_block(&self, block: BlockCoord) {
        let (ctx, dim) = (self.ctx as usize, self.dim as usize);
        let seq = block.y as usize;
        let col0 = block.x as usize * TILE as usize;
        // Stream the value cache once; every element is used exactly once
        // per sequence — the single-use traffic that makes decode H_M.
        let mut acc = [0.0f32; TILE as usize];
        for t in 0..ctx {
            let wv = self.w.load_f32(seq * ctx + t);
            for (x, a) in acc.iter_mut().enumerate() {
                *a += wv * self.v.load_f32(t * dim + col0 + x);
            }
        }
        for (x, &a) in acc.iter().enumerate() {
            self.out.store_f32(seq * dim + col0 + x, a);
        }
    }
}

/// Calibrated profile: ≈535 GB/s of global requests against the 480 GB/s
/// DRAM cap (the excess is L2 hits on value rows shared across the batch)
/// at ≈250 GFLOP/s — High memory (`H_M`). Each block streams its TILE
/// value columns plus one weight row once: `ctx * (TILE*4 + 4)` request
/// bytes for `2 * TILE * ctx` flops.
pub fn paper_perf() -> KernelPerf {
    KernelPerf {
        name: "Decode".into(),
        threads_per_block: 256,
        regs_per_thread: 32,
        smem_per_block: 0,
        compute_cycles_per_block: 2_600.0,
        insts_per_block: 20_000.0,
        // TILE outputs x 2*ctx flops each.
        flops_per_block: 2.0 * TILE as f64 * PAPER_CTX as f64,
        mem_request_bytes_per_block: PAPER_CTX as f64 * (TILE as f64 * 4.0 + 4.0),
        dram_bytes_inorder: 110_000.0,
        dram_bytes_scattered: 125_000.0,
        l2_footprint_bytes: 2.0e6,
        inject_insts_per_block: 18.0,
        inject_cycles_per_block: 15.0,
        max_concurrent_blocks: None,
    }
}

/// Blocks per batched decode step at the paper problem size.
pub fn paper_blocks() -> u64 {
    (PAPER_DIM as u64 / TILE as u64) * PAPER_BATCH as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{run_parallel, run_reference};

    fn setup(ctx: u32, dim: u32, batch: u32) -> (DecodeKernel, Vec<f32>, Arc<GpuBuffer>) {
        let (c, d, b) = (ctx as usize, dim as usize, batch as usize);
        let w_host: Vec<f32> = (0..b * c).map(|i| ((i * 7) % 11) as f32 * 0.1).collect();
        let v_host: Vec<f32> = (0..c * d)
            .map(|i| ((i * 3) % 29) as f32 * 0.5 - 7.0)
            .collect();
        let w = Arc::new(GpuBuffer::new(b * c * 4));
        let v = Arc::new(GpuBuffer::new(c * d * 4));
        let out = Arc::new(GpuBuffer::new(b * d * 4));
        w.write_f32_slice(0, &w_host);
        v.write_f32_slice(0, &v_host);
        let mut expect = vec![0.0f32; b * d];
        for s in 0..b {
            for col in 0..d {
                let mut acc = 0.0f32;
                for t in 0..c {
                    acc += w_host[s * c + t] * v_host[t * d + col];
                }
                expect[s * d + col] = acc;
            }
        }
        (
            DecodeKernel::new(ctx, dim, batch, w, v, out.clone()),
            expect,
            out,
        )
    }

    #[test]
    fn gather_matches_reference() {
        let (kern, expect, out) = setup(40, 32, 3);
        run_reference(&kern);
        for (i, &e) in expect.iter().enumerate() {
            let got = out.load_f32(i);
            assert!(
                (got - e).abs() < 1e-2 * e.abs().max(1.0),
                "out[{i}] {got} vs {e}"
            );
        }
    }

    #[test]
    fn parallel_matches_reference() {
        let (kern, expect, out) = setup(64, 48, 5);
        run_parallel(&kern);
        for (i, &e) in expect.iter().enumerate() {
            let got = out.load_f32(i);
            assert!((got - e).abs() < 1e-2 * e.abs().max(1.0), "out[{i}]");
        }
    }

    #[test]
    fn grid_is_one_row_per_sequence() {
        let (kern, _, _) = setup(64, 48, 5);
        assert_eq!(kern.grid(), GridDim::d2(3, 5));
        assert_eq!(paper_blocks(), 64 * 32);
    }

    #[test]
    fn paper_profile_is_memory_bound() {
        let p = paper_perf();
        p.validate().unwrap();
        // Requests exceed DRAM traffic (L2 hits on shared value rows), and
        // the kernel moves more bytes than it computes flops.
        assert!(p.mem_request_bytes_per_block > p.dram_bytes_scattered);
        assert!(p.mem_request_bytes_per_block / p.flops_per_block > 2.0);
    }
}
