//! End-to-end integration: every benchmark kernel runs functionally through
//! the full Slate pipeline (client API → daemon → injection → profiling →
//! transformation → persistent workers) and produces results identical to
//! the untransformed reference execution.

use slate_core::api::SlateClient;
use slate_core::daemon::SlateDaemon;
use slate_core::dispatch::Dispatcher;
use slate_core::transform::TransformedKernel;
use slate_gpu_sim::buffer::GpuBuffer;
use slate_gpu_sim::device::{DeviceConfig, SmRange};
use slate_kernels::gaussian::GaussianSolver;
use slate_kernels::kernel::{run_reference, GpuKernel};
use slate_kernels::sgemm::SgemmKernel;
use slate_kernels::stream::StreamKernel;
use slate_kernels::transpose::TransposeKernel;
use std::sync::Arc;

fn device() -> DeviceConfig {
    DeviceConfig::tiny(4)
}

/// Runs a kernel through Slate's transformation + dispatch and through the
/// plain reference path, then compares the given output buffers.
fn assert_transform_preserves<K, F>(make: F, outputs: usize)
where
    K: GpuKernel + 'static,
    F: Fn() -> (K, Vec<Arc<GpuBuffer>>),
{
    let (k_ref, out_ref) = make();
    run_reference(&k_ref);

    let (k_slate, out_slate) = make();
    let d = Dispatcher::new(
        device(),
        TransformedKernel::new(Arc::new(k_slate)),
        7,
        SmRange::all(4),
    );
    let res = d.run();
    assert!(res.blocks > 0);

    assert_eq!(out_ref.len(), outputs);
    for (b_ref, b_slate) in out_ref.iter().zip(out_slate.iter()) {
        assert_eq!(b_ref.len_words(), b_slate.len_words());
        for i in 0..b_ref.len_words() {
            assert_eq!(
                b_ref.load_u32(i),
                b_slate.load_u32(i),
                "divergence at word {i}"
            );
        }
    }
}

#[test]
fn sgemm_transform_preserves_semantics() {
    assert_transform_preserves(
        || {
            let n = 96usize;
            let a = Arc::new(GpuBuffer::new(n * n * 4));
            let b = Arc::new(GpuBuffer::new(n * n * 4));
            let c = Arc::new(GpuBuffer::new(n * n * 4));
            for i in 0..n * n {
                a.store_f32(i, ((i * 31) % 19) as f32 * 0.5 - 4.0);
                b.store_f32(i, ((i * 17) % 13) as f32 * 0.25 - 1.5);
            }
            (
                SgemmKernel::new(n as u32, n as u32, n as u32, a, b, c.clone()),
                vec![c],
            )
        },
        1,
    );
}

#[test]
fn transpose_transform_preserves_semantics() {
    assert_transform_preserves(
        || {
            let (rows, cols) = (130u32, 67u32); // ragged tiles
            let n = (rows * cols) as usize;
            let input = Arc::new(GpuBuffer::new(n * 4));
            let output = Arc::new(GpuBuffer::new(n * 4));
            for i in 0..n {
                input.store_f32(i, (i as f32).sin());
            }
            (
                TransposeKernel::new(rows, cols, input, output.clone()),
                vec![output],
            )
        },
        1,
    );
}

#[test]
fn stream_transform_preserves_semantics() {
    assert_transform_preserves(
        || {
            let n = 50_000u64;
            let input = Arc::new(GpuBuffer::new(n as usize * 4));
            for i in 0..n as usize {
                input.store_f32(i, ((i % 101) as f32) * 0.125);
            }
            let blocks = n.div_ceil(slate_kernels::stream::ELEMS_PER_BLOCK as u64);
            let sums = Arc::new(GpuBuffer::new(blocks as usize * 4));
            (StreamKernel::new(n, input, sums.clone()), vec![sums])
        },
        1,
    );
}

/// Gaussian's launch *sequence* (2(n-1) dependent kernels) under Slate
/// dispatch must solve the system correctly.
#[test]
fn gaussian_sequence_solves_under_slate_dispatch() {
    let n = 64u32;
    let nn = n as usize;
    let mut a = vec![0.0f32; nn * nn];
    let x_true: Vec<f32> = (0..nn).map(|i| 1.0 + (i % 5) as f32 * 0.25).collect();
    for i in 0..nn {
        for j in 0..nn {
            a[i * nn + j] = if i == j {
                nn as f32 + 3.0
            } else {
                0.2 + ((i * 7 + j * 3) % 11) as f32 * 0.05
            };
        }
    }
    let b: Vec<f32> = (0..nn)
        .map(|i| (0..nn).map(|j| a[i * nn + j] * x_true[j]).sum())
        .collect();
    let solver = GaussianSolver::new(n, &a, &b);
    // Run every launch of the sequence through the real transformation and
    // task queue (the launches are Arc-owned kernels).
    for kernel in solver.launches() {
        let t = TransformedKernel::new(kernel);
        let q = slate_core::queue::TaskQueue::new(t.slate_max(), 5);
        while let Some(task) = q.pull() {
            t.run_task(task);
        }
    }
    let x = solver.back_substitute();
    for i in 0..nn {
        assert!(
            (x[i] - x_true[i]).abs() < 2e-2,
            "x[{i}] = {} vs {}",
            x[i],
            x_true[i]
        );
    }
}

/// The daemon path exercised with the injection pipeline attached.
#[test]
fn daemon_launch_with_source_populates_injection_cache() {
    let daemon = SlateDaemon::start(device(), 1 << 24);
    let client = SlateClient::new(daemon.connect("sourcey").unwrap());
    let n = 20_000u64;
    let src = r#"__global__ void stream_sum(float* sums, const float* in, int n) {
        int i = blockIdx.x; sums[i] = in[i];
    }"#;
    let input = client.malloc(n * 4).unwrap();
    let blocks = n.div_ceil(slate_kernels::stream::ELEMS_PER_BLOCK as u64);
    let sums = client.malloc(blocks * 4).unwrap();
    for rep in 0..3 {
        client
            .launch_with(vec![input, sums], 10, Some(src.to_string()), move |bufs| {
                Arc::new(StreamKernel::new(n, bufs[0].clone(), bufs[1].clone()))
                    as Arc<dyn GpuKernel>
            })
            .unwrap();
        let _ = rep;
    }
    client.synchronize().unwrap();
    let (hits, misses) = daemon.injection_stats();
    assert_eq!(misses, 1, "source compiled once");
    assert_eq!(hits, 2, "subsequent launches hit the cache");
    client.disconnect().unwrap();
    daemon.join();
}
