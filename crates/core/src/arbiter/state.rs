//! The arbitration core's state machine: configuration, per-event state
//! updates, and the counters both frontends report from.
//!
//! Everything here is deterministic and I/O-free. Decision-path state is
//! held in dense slot tables indexed by interned ids (see [`super::idtable`])
//! plus plain `Vec`s — never a `HashMap` whose iteration order could leak
//! into output. Wherever iteration order *does* reach the command stream,
//! the core orders by external id explicitly (the armed-deadline list is
//! kept sorted by lease id), which is what keeps the golden replay test
//! byte-stable across both runs and internal-representation changes.
//! That is the dense-slot rule of `DESIGN.md` §17: slot numbers are an
//! implementation detail and must never order anything a transcript,
//! command stream, or snapshot can observe.

use super::events::{Command, Event, RejectScope, Tick};
use super::idtable::IdTable;
use super::replay::{EventLog, LoggedBatch};
use crate::admission::{AdmissionLimits, AdmissionStats};
use crate::classify::WorkloadClass;
use crate::queue::{LaunchGauge, QueueStats};
use crate::select::PartnerCandidate;
use serde::{Deserialize, Serialize};
use slate_gpu_sim::device::{DeviceConfig, SmRange};
use slate_kernels::workload::SloClass;
use std::collections::{BTreeMap, VecDeque};

/// Fallback per-launch estimate (milliseconds) used for retry hints when
/// pending kernels are unprofiled.
pub(super) const DEFAULT_LAUNCH_EST_MS: u64 = 10;

/// Static policy knobs of the arbitration core. Serialized into every
/// [`EventLog`] so a replay runs under the exact configuration that
/// produced the recording.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArbiterConfig {
    /// Allow complementary kernels to co-run on disjoint SM partitions
    /// (paper Table I). Off = every kernel runs solo, CUDA-style.
    pub enable_corun: bool,
    /// Allow resizing a resident kernel's partition (retreat + relaunch,
    /// paper §III-D): shrink to admit a co-runner, regrow when it leaves.
    pub enable_resize: bool,
    /// Starvation bound in logical microseconds: a waiter older than this
    /// refuses co-run pairings device-wide and is promoted to a solo
    /// dispatch. `None` disables aging.
    pub starvation_bound_us: Option<u64>,
    /// SLO preemption bound in logical microseconds: when set, a
    /// latency-critical arrival behind a best-effort resident forces a
    /// partition split via the retreat/resize path, and the frontends
    /// contract to land the preemption within this many ticks of the
    /// arrival (the core itself reacts in the same decide pass — the
    /// bound is the acceptance ceiling tests assert against). `None`
    /// disables SLO priority entirely; absent in logs recorded before
    /// the SLO dimension existed.
    #[serde(default)]
    pub preempt_bound_us: Option<u64>,
    /// Admission-control bounds (sessions, pending launches, memory
    /// watermark). Fully permissive by default.
    pub limits: AdmissionLimits,
}

impl Default for ArbiterConfig {
    fn default() -> Self {
        Self {
            enable_corun: true,
            enable_resize: true,
            starvation_bound_us: None,
            preempt_bound_us: None,
            limits: AdmissionLimits::default(),
        }
    }
}

/// A kernel currently holding SMs. Serializable so durable daemon
/// snapshots can persist residency exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Resident {
    pub(super) lease: u64,
    #[allow(dead_code)]
    pub(super) session: u64,
    pub(super) class: WorkloadClass,
    pub(super) sm_demand: u32,
    /// Pinned residents never accept co-runners (pinned-solo launches and
    /// starvation promotions).
    pub(super) pinned: bool,
    pub(super) range: SmRange,
    /// The owning session's SLO class at dispatch time; best-effort
    /// residents are the preemption victims.
    #[serde(default)]
    pub(super) slo: SloClass,
}

/// A ready kernel waiting for SMs. Serializable for the same reason as
/// [`Resident`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Waiter {
    pub(super) lease: u64,
    pub(super) session: u64,
    pub(super) class: WorkloadClass,
    pub(super) sm_demand: u32,
    pub(super) pinned: bool,
    pub(super) deadline_ms: Option<u64>,
    /// When the kernel became ready (queue-wait start).
    pub(super) since: Tick,
    /// Stable arrival order; the deterministic tie-break everywhere.
    pub(super) seq: u64,
    /// The owning session's SLO class at ready time; latency-critical
    /// waiters get dispatch priority and may trigger a preemption.
    #[serde(default)]
    pub(super) slo: SloClass,
}

/// The complete serializable state of one [`ArbiterCore`] — every field
/// that influences a future decision, in snapshot form. Gauges are
/// captured as [`QueueStats`] and the per-lease FIFOs as plain `Vec`s
/// (the vendored serde subset has no `VecDeque` impl); the recording
/// buffer is deliberately absent — a restored core starts a fresh log.
///
/// The snapshot speaks *external* ids in ordered maps — the dense slot
/// tables behind [`ArbiterCore`] are an in-memory representation only,
/// converted at this boundary. That keeps the serialized shape identical
/// to the pre-interning format (old snapshots restore unchanged) and
/// keeps slot numbering out of anything durable.
///
/// The crash-consistency invariant: `ArbiterCore::from_snapshot(c.snapshot())`
/// must behave byte-identically to `c` for every subsequent event batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreSnapshot {
    pub(crate) device: DeviceConfig,
    pub(crate) config: ArbiterConfig,
    pub(crate) now: Tick,
    pub(crate) next_seq: u64,
    pub(crate) draining: bool,
    pub(crate) residents: Vec<Resident>,
    pub(crate) waiters: Vec<Waiter>,
    pub(crate) last_range: BTreeMap<u64, SmRange>,
    pub(crate) deadlines: BTreeMap<u64, Tick>,
    pub(crate) sessions: BTreeMap<u64, QueueStats>,
    pub(crate) lease_session: BTreeMap<u64, u64>,
    pub(crate) pending: BTreeMap<u64, Vec<u64>>,
    pub(crate) global: QueueStats,
    pub(crate) active_sessions: usize,
    pub(crate) sessions_admitted: u64,
    pub(crate) sessions_rejected: u64,
    pub(crate) launches_completed: u64,
    pub(crate) launches_failed: u64,
    pub(crate) deadline_rejections: u64,
    pub(crate) mallocs_shed: u64,
    pub(crate) pending_est_ms: u64,
    pub(crate) promotions: u64,
    pub(crate) evictions: u64,
    pub(crate) reaped: u64,
    /// Declared SLO classes by external session id; only non-default
    /// (latency-critical) entries are stored, so pre-SLO snapshots — and
    /// snapshots of purely best-effort populations — are byte-identical
    /// to the old format.
    #[serde(default)]
    pub(crate) slo: BTreeMap<u64, SloClass>,
    #[serde(default)]
    pub(crate) preemptions: u64,
}

/// The deterministic, I/O-free arbitration core shared by the simulated
/// runtime and the live daemon.
///
/// Feed it batches of [`Event`]s with a monotonic logical timestamp; it
/// returns the [`Command`]s the frontend must carry out. All scheduling
/// policy — Table-I partner selection, SM partitioning, dynamic resizing,
/// starvation aging, admission shedding and watchdog eviction — lives
/// behind [`ArbiterCore::feed`]; the frontends only translate events in
/// and commands out.
///
/// Per-session and per-lease state is slot-indexed through two
/// [`IdTable`] interners; steady-state feeding performs no heap
/// allocation (slot tables, FIFOs and scratch buffers all reuse their
/// high-water capacity).
#[derive(Debug)]
pub struct ArbiterCore {
    pub(super) device: DeviceConfig,
    pub(super) config: ArbiterConfig,
    /// Logical clock: the max batch timestamp seen so far.
    pub(super) now: Tick,
    pub(super) next_seq: u64,
    pub(super) draining: bool,
    pub(super) residents: Vec<Resident>,
    pub(super) waiters: Vec<Waiter>,
    /// Lease interner: one live slot per lease the core still tracks
    /// (released when the owning session ends).
    pub(super) leases: IdTable,
    /// Session interner, parallel to `gauges`.
    session_ids: IdTable,
    /// Last SM range each lease held when it finished — the in-place
    /// continuation hint (a re-ready kernel resumes its old partition
    /// without a resize). Indexed by lease slot.
    pub(super) last_range: Vec<Option<SmRange>>,
    /// Armed watchdog deadlines as `(external lease id, eviction tick)`,
    /// kept sorted by lease id — the scan emits `Evict`s in ascending
    /// lease order, exactly as the old ordered-map iteration did.
    pub(super) armed: Vec<(u64, Tick)>,
    /// Per-session pending-launch gauges, indexed by session slot.
    gauges: Vec<LaunchGauge>,
    /// Owning session of each lease (external id), indexed by lease slot.
    lease_session: Vec<u64>,
    /// Per-lease FIFO of admitted solo-time estimates, indexed by lease
    /// slot; popped as the lease's launches finish. FIFOs are reused
    /// across slot generations — an empty FIFO is "no pending entry".
    pending: Vec<VecDeque<u64>>,
    /// Daemon-wide pending-launch gauge.
    global: LaunchGauge,
    active_sessions: usize,
    sessions_admitted: u64,
    sessions_rejected: u64,
    launches_completed: u64,
    launches_failed: u64,
    deadline_rejections: u64,
    mallocs_shed: u64,
    /// Sum of the solo-time estimates of every pending launch.
    pending_est_ms: u64,
    pub(super) promotions: u64,
    pub(super) evictions: u64,
    pub(super) preemptions: u64,
    reaped: u64,
    /// Declared SLO class per session, indexed by session slot; reset to
    /// best-effort when a slot is (re)interned.
    slo: Vec<SloClass>,
    /// Whether the session passed admission, indexed by session slot. A
    /// session interned by a bare [`Event::SloArrival`] (declared but
    /// never opened) must not decrement `active_sessions` on close.
    opened: Vec<bool>,
    /// Reused by the session-end sweep (external lease ids).
    scratch_ids: Vec<u64>,
    /// Reused by the co-run partner selection each decide pass.
    pub(super) scratch_cands: Vec<PartnerCandidate>,
    pub(super) scratch_idxs: Vec<usize>,
    record: Option<Vec<LoggedBatch>>,
}

impl ArbiterCore {
    /// A fresh core arbitrating `device` under `config`.
    pub fn new(device: DeviceConfig, config: ArbiterConfig) -> Self {
        let global = LaunchGauge::new(config.limits.max_pending_global);
        // Pre-size the dense tables for a typical concurrent population:
        // one up-front allocation per table instead of a doubling ladder
        // on the first wave of sessions (a fresh core's first feeds stay
        // off the allocator's hot path too, not just steady state).
        const LEASES: usize = 16;
        const SESSIONS: usize = 8;
        Self {
            device,
            config,
            now: 0,
            next_seq: 0,
            draining: false,
            residents: Vec::with_capacity(4),
            waiters: Vec::with_capacity(8),
            leases: IdTable::with_capacity(LEASES),
            session_ids: IdTable::with_capacity(SESSIONS),
            last_range: Vec::with_capacity(LEASES),
            // Lazy: only deadline-bearing workloads ever arm a timer.
            armed: Vec::new(),
            gauges: Vec::with_capacity(SESSIONS),
            opened: Vec::with_capacity(SESSIONS),
            lease_session: Vec::with_capacity(LEASES),
            pending: Vec::with_capacity(SESSIONS),
            global,
            active_sessions: 0,
            sessions_admitted: 0,
            sessions_rejected: 0,
            launches_completed: 0,
            launches_failed: 0,
            deadline_rejections: 0,
            mallocs_shed: 0,
            pending_est_ms: 0,
            promotions: 0,
            evictions: 0,
            preemptions: 0,
            reaped: 0,
            slo: Vec::with_capacity(SESSIONS),
            scratch_ids: Vec::with_capacity(8),
            scratch_cands: Vec::with_capacity(8),
            scratch_idxs: Vec::with_capacity(8),
            record: None,
        }
    }

    /// The device being arbitrated.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// The active configuration.
    pub fn config(&self) -> &ArbiterConfig {
        &self.config
    }

    /// The core's logical clock (max batch timestamp seen).
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Kernels currently holding SMs.
    pub fn residents(&self) -> usize {
        self.residents.len()
    }

    /// Leases of the kernels currently holding SMs, in stable residency
    /// order. The placement layer picks cross-device migration victims
    /// from this list, so its order must be deterministic (it is: the
    /// backing `Vec` mutates identically across replays).
    pub fn resident_leases(&self) -> Vec<u64> {
        self.residents.iter().map(|r| r.lease).collect()
    }

    /// Leases of the ready kernels still waiting for SMs, in arrival
    /// order. Deterministic for the same reason as
    /// [`ArbiterCore::resident_leases`]; evacuation moves these too, not
    /// just residents.
    pub fn waiting_leases(&self) -> Vec<u64> {
        self.waiters.iter().map(|w| w.lease).collect()
    }

    /// Ready kernels waiting for SMs.
    pub fn waiting(&self) -> usize {
        self.waiters.len()
    }

    /// Whether [`Event::DrainBegan`] has been fed.
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// Kernels evicted for blowing their deadline.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Starved waiters promoted to solo dispatch.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Best-effort residents displaced by latency-critical arrivals.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// The declared SLO class of `session` (best-effort when the session
    /// never declared one, or is unknown).
    pub fn session_slo(&self, session: u64) -> SloClass {
        self.session_ids
            .get(session)
            .map(|slot| self.slo[slot as usize])
            .unwrap_or_default()
    }

    /// SMs not granted to any resident right now. The placement layer's
    /// SLO-aware tie-break routes latency-critical sessions toward the
    /// device with the most free SMs.
    pub fn free_sms(&self) -> u32 {
        let used: u32 = self
            .residents
            .iter()
            .map(|r| r.range.hi - r.range.lo + 1)
            .sum();
        self.device.num_sms.saturating_sub(used)
    }

    /// Severed sessions cleaned up ([`Command::Reap`]s emitted).
    pub fn reaped(&self) -> u64 {
        self.reaped
    }

    /// Snapshot of the global pending-launch gauge.
    pub fn queue_stats(&self) -> QueueStats {
        self.global.stats()
    }

    /// Snapshot of the admission counters.
    pub fn admission_stats(&self) -> AdmissionStats {
        AdmissionStats {
            active_sessions: self.active_sessions,
            sessions_admitted: self.sessions_admitted,
            sessions_rejected: self.sessions_rejected,
            launches_completed: self.launches_completed,
            launches_failed: self.launches_failed,
            deadline_rejections: self.deadline_rejections,
            mallocs_shed: self.mallocs_shed,
            pending_est_ms: self.pending_est_ms,
        }
    }

    /// Captures the core's complete decision state for a durable
    /// snapshot. The recording buffer is not captured. Slot tables are
    /// converted back to external-id ordered maps here — snapshots never
    /// see slot numbers.
    pub(crate) fn snapshot(&self) -> CoreSnapshot {
        CoreSnapshot {
            device: self.device.clone(),
            config: self.config.clone(),
            now: self.now,
            next_seq: self.next_seq,
            draining: self.draining,
            residents: self.residents.clone(),
            waiters: self.waiters.clone(),
            last_range: self
                .leases
                .iter()
                .filter_map(|(s, ext)| self.last_range[s as usize].map(|r| (ext, r)))
                .collect(),
            deadlines: self.armed.iter().copied().collect(),
            sessions: self
                .session_ids
                .iter()
                .map(|(s, ext)| (ext, self.gauges[s as usize].stats()))
                .collect(),
            lease_session: self
                .leases
                .iter()
                .map(|(s, ext)| (ext, self.lease_session[s as usize]))
                .collect(),
            pending: self
                .leases
                .iter()
                .filter(|&(s, _)| !self.pending[s as usize].is_empty())
                .map(|(s, ext)| (ext, self.pending[s as usize].iter().copied().collect()))
                .collect(),
            global: self.global.stats(),
            active_sessions: self.active_sessions,
            sessions_admitted: self.sessions_admitted,
            sessions_rejected: self.sessions_rejected,
            launches_completed: self.launches_completed,
            launches_failed: self.launches_failed,
            deadline_rejections: self.deadline_rejections,
            mallocs_shed: self.mallocs_shed,
            pending_est_ms: self.pending_est_ms,
            promotions: self.promotions,
            evictions: self.evictions,
            reaped: self.reaped,
            slo: self
                .session_ids
                .iter()
                .filter(|&(slot, _)| self.slo[slot as usize] != SloClass::BestEffort)
                .map(|(slot, ext)| (ext, self.slo[slot as usize]))
                .collect(),
            preemptions: self.preemptions,
        }
    }

    /// Rebuilds a core from a [`CoreSnapshot`]; the behavioral inverse of
    /// [`ArbiterCore::snapshot`] (recording off). Ids are re-interned in
    /// ascending external order, which may permute slot numbers relative
    /// to the snapshotted core — behaviorally invisible, because no
    /// decision depends on slot numbering (the dense-slot rule).
    pub(crate) fn from_snapshot(snap: CoreSnapshot) -> Self {
        let mut core = ArbiterCore::new(snap.device, snap.config);
        core.now = snap.now;
        core.next_seq = snap.next_seq;
        core.draining = snap.draining;
        core.residents = snap.residents;
        core.waiters = snap.waiters;
        for (session, st) in snap.sessions {
            let slot = core.session_slot(session);
            core.gauges[slot] = LaunchGauge::from_stats(st);
            // Declare-then-open is atomic within a batch and snapshots
            // are cut between batches, so every snapshotted session was
            // admitted.
            core.opened[slot] = true;
        }
        for (session, class) in snap.slo {
            let slot = core.session_slot(session);
            core.slo[slot] = class;
        }
        // `lease_session` is the authoritative live-lease set; the other
        // maps are per-lease attributes of it.
        for (lease, session) in snap.lease_session {
            core.lease_slot(lease, session);
        }
        for (lease, range) in snap.last_range {
            if let Some(slot) = core.leases.get(lease) {
                core.last_range[slot as usize] = Some(range);
            }
        }
        core.armed = snap.deadlines.into_iter().collect();
        for (lease, fifo) in snap.pending {
            if let Some(slot) = core.leases.get(lease) {
                core.pending[slot as usize] = fifo.into_iter().collect();
            }
        }
        core.global = LaunchGauge::from_stats(snap.global);
        core.active_sessions = snap.active_sessions;
        core.sessions_admitted = snap.sessions_admitted;
        core.sessions_rejected = snap.sessions_rejected;
        core.launches_completed = snap.launches_completed;
        core.launches_failed = snap.launches_failed;
        core.deadline_rejections = snap.deadline_rejections;
        core.mallocs_shed = snap.mallocs_shed;
        core.pending_est_ms = snap.pending_est_ms;
        core.promotions = snap.promotions;
        core.evictions = snap.evictions;
        core.preemptions = snap.preemptions;
        core.reaped = snap.reaped;
        core
    }

    /// Starts recording fed batches for later [`super::replay`]. Batches
    /// that carry nothing but [`Event::DeadlineTick`]s and produce no
    /// commands are skipped (the daemon's 1 ms heartbeat would otherwise
    /// swamp the log without affecting any decision).
    pub fn start_recording(&mut self) {
        self.record = Some(Vec::new());
    }

    /// Takes the recorded log (if recording was started), packaged with
    /// the device and configuration needed to replay it.
    pub fn take_log(&mut self) -> Option<EventLog> {
        self.record.take().map(|batches| EventLog {
            device: self.device.clone(),
            config: self.config.clone(),
            batches,
        })
    }

    /// Feeds one batch of events at logical time `now` and returns the
    /// commands the frontend must carry out, in order. The clock is
    /// clamped monotonic; decisions are made once, after the whole batch
    /// is absorbed.
    pub fn feed(&mut self, now: Tick, events: &[Event]) -> Vec<Command> {
        let mut out = Vec::new();
        self.feed_into(now, events, &mut out);
        out
    }

    /// Allocation-free variant of [`ArbiterCore::feed`]: clears `out` and
    /// fills it with this batch's commands, reusing its capacity. The
    /// hot-path entry point for callers that own a reusable batch buffer.
    pub fn feed_into(&mut self, now: Tick, events: &[Event], out: &mut Vec<Command>) {
        out.clear();
        self.now = self.now.max(now);
        for ev in events {
            self.intake(ev, out);
        }
        self.decide(out);
        if let Some(batches) = &mut self.record {
            let heartbeat_only = events.iter().all(|e| matches!(e, Event::DeadlineTick));
            if !(heartbeat_only && out.is_empty()) {
                batches.push(LoggedBatch {
                    at: self.now,
                    events: events.to_vec(),
                    commands: out.clone(),
                });
            }
        }
    }

    /// The retry hint for a shed request: the estimated pending work if
    /// any queued kernel is profiled, otherwise a default per-launch
    /// estimate times the queue depth. Always ≥ 1 ms.
    fn retry_after_ms(&self) -> u64 {
        if self.pending_est_ms > 0 {
            self.pending_est_ms
        } else {
            self.global
                .depth()
                .saturating_mul(DEFAULT_LAUNCH_EST_MS)
                .max(1)
        }
    }

    /// Interns `session` and sizes the gauge table to its slot. The gauge
    /// itself is the caller's to (re)initialize.
    fn session_slot(&mut self, session: u64) -> usize {
        let (slot, fresh) = self.session_ids.intern(session);
        let slot = slot as usize;
        if slot >= self.gauges.len() {
            self.gauges.resize_with(slot + 1, || LaunchGauge::new(None));
            self.slo.resize(slot + 1, SloClass::BestEffort);
            self.opened.resize(slot + 1, false);
        }
        if fresh {
            // A reused slot must not leak the previous occupant's state:
            // SLO class reverts to the default and the gauge to a neutral
            // one (callers that admit the session re-initialize it with
            // the configured limit).
            self.slo[slot] = SloClass::BestEffort;
            self.gauges[slot] = LaunchGauge::new(None);
            self.opened[slot] = false;
        }
        slot
    }

    /// Interns `lease` owned by `session` and sizes the per-lease tables
    /// to its slot, resetting slot state on fresh (possibly reused) slots.
    fn lease_slot(&mut self, lease: u64, session: u64) -> usize {
        let (slot, fresh) = self.leases.intern(lease);
        let slot = slot as usize;
        if slot >= self.lease_session.len() {
            self.lease_session.resize(slot + 1, 0);
            self.last_range.resize(slot + 1, None);
            self.pending.resize_with(slot + 1, VecDeque::new);
        }
        if fresh {
            self.last_range[slot] = None;
            debug_assert!(self.pending[slot].is_empty(), "released slot kept a FIFO");
        }
        self.lease_session[slot] = session;
        slot
    }

    /// Arms (or re-arms) the watchdog deadline of `lease`, keeping the
    /// armed list sorted by external lease id.
    pub(super) fn arm_deadline(&mut self, lease: u64, at: Tick) {
        match self.armed.binary_search_by_key(&lease, |&(l, _)| l) {
            Ok(i) => self.armed[i].1 = at,
            Err(i) => self.armed.insert(i, (lease, at)),
        }
    }

    /// Disarms the watchdog deadline of `lease`, if armed.
    fn disarm_deadline(&mut self, lease: u64) {
        if let Ok(i) = self.armed.binary_search_by_key(&lease, |&(l, _)| l) {
            self.armed.remove(i);
        }
    }

    fn intake(&mut self, ev: &Event, out: &mut Vec<Command>) {
        match *ev {
            Event::SessionOpened { session } => self.open_session(session, out),
            Event::SessionClosed { session } => self.end_session(session, false, out),
            Event::SessionSevered { session } => self.end_session(session, true, out),
            Event::LaunchRequested {
                session,
                lease,
                est_ms,
                deadline_ms,
            } => self.admit_launch(session, lease, est_ms, deadline_ms, out),
            Event::KernelReady {
                session,
                lease,
                class,
                sm_demand,
                pinned_solo,
                deadline_ms,
            } => {
                self.lease_slot(lease, session);
                let slo = self.session_slo(session);
                let seq = self.next_seq;
                self.next_seq += 1;
                self.waiters.push(Waiter {
                    lease,
                    session,
                    class,
                    sm_demand,
                    pinned: pinned_solo,
                    deadline_ms,
                    since: self.now,
                    seq,
                    slo,
                });
            }
            Event::KernelFinished { lease, ok } => self.finish_launch(lease, ok),
            Event::MallocRequested {
                session,
                used,
                capacity,
                bytes,
            } => {
                if let Some(w) = self.config.limits.mem_watermark {
                    let limit = (w.clamp(0.0, 1.0) * capacity as f64) as u64;
                    if used.saturating_add(bytes) > limit {
                        self.mallocs_shed += 1;
                        out.push(Command::RejectOverloaded {
                            session,
                            lease: None,
                            scope: RejectScope::Malloc,
                            retry_after_ms: self.retry_after_ms(),
                        });
                    }
                }
            }
            Event::DeadlineTick => {}
            Event::DrainBegan => self.draining = true,
            // Health transitions are decided above the core, in the
            // placement layer; to a single core they are scheduling
            // nudges — recorded in its log, fresh decide() pass, no
            // per-core state.
            Event::DeviceDown { .. } | Event::DeviceUp { .. } => {}
            Event::SloArrival { session, class } => {
                let slot = self.session_slot(session);
                self.slo[slot] = class;
            }
        }
    }

    fn open_session(&mut self, session: u64, out: &mut Vec<Command>) {
        if let Some(max) = self.config.limits.max_sessions {
            if self.active_sessions >= max {
                self.sessions_rejected += 1;
                // A shed connect leaves no state behind — including a slot
                // the session's SLO declaration may have interned ahead of
                // the open.
                self.session_ids.release(session);
                out.push(Command::RejectOverloaded {
                    session,
                    lease: None,
                    scope: RejectScope::Session,
                    retry_after_ms: self.retry_after_ms(),
                });
                return;
            }
        }
        self.active_sessions += 1;
        self.sessions_admitted += 1;
        let limit = self.config.limits.max_pending_per_session;
        let slot = self.session_slot(session);
        self.gauges[slot] = LaunchGauge::new(limit);
        self.opened[slot] = true;
    }

    fn end_session(&mut self, session: u64, severed: bool, out: &mut Vec<Command>) {
        let Some(slot) = self.session_ids.release(session) else {
            // Never admitted (the connect was shed): nothing to clean up.
            return;
        };
        if std::mem::take(&mut self.opened[slot as usize]) {
            self.active_sessions -= 1;
        }
        // Defensive sweep: a well-behaved frontend finishes every launch
        // before closing the session, but a severed client can leave
        // leases behind — drain them so the global gauge stays balanced.
        self.residents.retain(|r| r.session != session);
        self.waiters.retain(|w| w.session != session);
        let mut sweep = std::mem::take(&mut self.scratch_ids);
        sweep.clear();
        sweep.extend(
            self.leases
                .iter()
                .filter(|&(slot, _)| self.lease_session[slot as usize] == session)
                .map(|(_, ext)| ext),
        );
        // Per-lease cleanup commutes (the counters are sums), so slot
        // order here is fine — nothing below emits a command.
        for &lease in &sweep {
            let slot = self.leases.release(lease).expect("swept lease is live") as usize;
            self.last_range[slot] = None;
            self.disarm_deadline(lease);
            while let Some(est) = self.pending[slot].pop_front() {
                self.pending_est_ms = self.pending_est_ms.saturating_sub(est);
                self.global.pop();
                self.launches_failed += 1;
            }
        }
        self.scratch_ids = sweep;
        if severed {
            self.reaped += 1;
            out.push(Command::Reap { session });
        }
    }

    fn admit_launch(
        &mut self,
        session: u64,
        lease: u64,
        est_ms: Option<u64>,
        deadline_ms: Option<u64>,
        out: &mut Vec<Command>,
    ) {
        let sslot = match self.session_ids.get(session) {
            Some(s) => s as usize,
            None => {
                // Lazily admit sessions the frontend never announced, so
                // the core stays usable with partial event streams.
                let limit = self.config.limits.max_pending_per_session;
                let slot = self.session_slot(session);
                self.gauges[slot] = LaunchGauge::new(limit);
                slot
            }
        };
        if let Some(deadline) = deadline_ms {
            let queue_wait = self.pending_est_ms;
            if queue_wait > deadline {
                // The kernel could only ever be evicted; shed it now
                // instead of wasting device time the queue needs.
                self.deadline_rejections += 1;
                self.gauges[sslot].record_shed();
                self.global.record_shed();
                out.push(Command::RejectOverloaded {
                    session,
                    lease: Some(lease),
                    scope: RejectScope::Deadline,
                    retry_after_ms: queue_wait.max(1),
                });
                return;
            }
        }
        if !self.gauges[sslot].try_push() {
            self.global.record_shed();
            out.push(Command::RejectOverloaded {
                session,
                lease: Some(lease),
                scope: RejectScope::Launch,
                retry_after_ms: self.retry_after_ms(),
            });
            return;
        }
        if !self.global.try_push() {
            self.gauges[sslot].cancel();
            out.push(Command::RejectOverloaded {
                session,
                lease: Some(lease),
                scope: RejectScope::Launch,
                retry_after_ms: self.retry_after_ms(),
            });
            return;
        }
        let est = est_ms.unwrap_or(0);
        self.pending_est_ms += est;
        let lslot = self.lease_slot(lease, session);
        self.pending[lslot].push_back(est);
    }

    fn finish_launch(&mut self, lease: u64, ok: bool) {
        if let Some(pos) = self.residents.iter().position(|r| r.lease == lease) {
            let r = self.residents.remove(pos);
            if let Some(slot) = self.leases.get(lease) {
                self.last_range[slot as usize] = Some(r.range);
            }
        }
        self.disarm_deadline(lease);
        self.waiters.retain(|w| w.lease != lease);
        if let Some(slot) = self.leases.get(lease) {
            let slot = slot as usize;
            if let Some(est) = self.pending[slot].pop_front() {
                self.pending_est_ms = self.pending_est_ms.saturating_sub(est);
                self.global.pop();
                let session = self.lease_session[slot];
                if let Some(ss) = self.session_ids.get(session) {
                    self.gauges[ss as usize].pop();
                }
                if ok {
                    self.launches_completed += 1;
                } else {
                    self.launches_failed += 1;
                }
            }
        }
    }
}
