//! Fig. 6 — solo application execution time under CUDA, MPS and Slate,
//! with the host / kernel / communication / injection breakdown.
//!
//! Solo runs expose each runtime's overhead structure: MPS apps run
//! slightly longer than CUDA (daemon proxy); Slate matches or beats both —
//! up to 28% faster for GS — while paying ~4% of application time for
//! client-daemon communication and ~1.5% for injection and runtime
//! compilation.

use crate::report::{f, pct, Report, Table};
use slate_baselines::{AppResult, CudaRuntime, MpsRuntime, Runtime};
use slate_core::SlateRuntime;
use slate_gpu_sim::device::DeviceConfig;
use slate_kernels::workload::Benchmark;

/// Breakdown of one app under one runtime.
#[derive(Debug, Clone)]
pub struct Breakdown {
    /// Runtime label.
    pub runtime: &'static str,
    /// Total application time (s).
    pub app_s: f64,
    /// Kernel execution time (s).
    pub kernel_s: f64,
    /// Host time (setup, transfers, waits) (s).
    pub host_s: f64,
    /// Client-daemon communication (s).
    pub comm_s: f64,
    /// Injection + compilation (s).
    pub inject_s: f64,
}

fn breakdown(runtime: &'static str, r: &AppResult) -> Breakdown {
    Breakdown {
        runtime,
        app_s: r.app_time_s,
        kernel_s: r.kernel_busy_s,
        host_s: (r.app_time_s - r.kernel_busy_s - r.comm_s - r.inject_s).max(0.0),
        comm_s: r.comm_s,
        inject_s: r.inject_s,
    }
}

/// Per-benchmark breakdowns for the three runtimes.
pub fn run(cfg: &DeviceConfig, scale: u32) -> (Vec<(Benchmark, [Breakdown; 3])>, Report) {
    let cuda = CudaRuntime::new(cfg.clone());
    let mps = MpsRuntime::new(cfg.clone());
    let slate = SlateRuntime::new(cfg.clone());
    let mut report = Report::new(
        "fig6",
        "Solo application time with CUDA, MPS and Slate",
        "In the worst case Slate matches CUDA and MPS; in the best case (GS) \
         it is 28% faster. MPS app time is slightly larger than CUDA's. \
         Slate spends ~4% of app time on client-daemon communication and \
         ~1.5% on injection and dynamic compilation.",
    );
    let mut t = Table::new(
        "Solo application breakdown (seconds)",
        &[
            "App", "Runtime", "App time", "Kernel", "Host", "Comm", "Inject",
        ],
    );
    let mut out = Vec::new();
    for b in Benchmark::ALL {
        let app = b.app().scaled_down(scale);
        let rc = breakdown("CUDA", &cuda.run(std::slice::from_ref(&app)).apps[0]);
        let rm = breakdown("MPS", &mps.run(std::slice::from_ref(&app)).apps[0]);
        let rs = breakdown("Slate", &slate.run(std::slice::from_ref(&app)).apps[0]);
        for r in [&rc, &rm, &rs] {
            t.row(&[
                b.abbrev().into(),
                r.runtime.into(),
                f(r.app_s, 2),
                f(r.kernel_s, 2),
                f(r.host_s, 2),
                f(r.comm_s, 2),
                f(r.inject_s, 2),
            ]);
        }
        out.push((b, [rc, rm, rs]));
    }
    report.tables.push(t);

    // Shape checks. A benchmark missing from the sweep is a failed
    // (labelled) check, not a panic.
    match out.iter().find(|(x, _)| *x == Benchmark::GS) {
        Some((_, gs)) => report.check(
            "GS: Slate app time is much lower than CUDA (paper: -28%; one-time \
             injection excluded to stay scale-independent)",
            gs[0].app_s / (gs[2].app_s - gs[2].inject_s) > 1.10,
        ),
        None => report.check("solo sweep produced a GS result", false),
    }
    for (b, [rc, rm, _rs]) in &out {
        report.check(
            &format!("{}: MPS app time >= CUDA app time", b.abbrev()),
            rm.app_s >= rc.app_s * 0.999,
        );
    }
    // One-time injection is excluded from the worst-case comparison so the
    // check is independent of how far the repetition loop was scaled down.
    let worst = out
        .iter()
        .map(|(_, r)| (r[2].app_s - r[2].inject_s) / r[0].app_s)
        .fold(0.0f64, f64::max);
    report.check(
        "worst case: Slate stays within ~10% of CUDA app time (paper: equal; \
         our BS pays task-size imbalance plus comm)",
        worst < 1.10,
    );
    let comm_fracs: Vec<f64> = out.iter().map(|(_, r)| r[2].comm_s / r[2].app_s).collect();
    let avg_comm = comm_fracs.iter().sum::<f64>() / comm_fracs.len() as f64;
    report.note(format!("average Slate comm fraction: {}", pct(avg_comm)));
    report.check(
        "Slate comm is a few percent of app time (paper: ~4%)",
        (0.005..0.08).contains(&avg_comm),
    );
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_reproduces() {
        // Scale 1 keeps full setup costs against ~1/8 of the kernel loop,
        // preserving the host/kernel proportions well enough for the checks.
        let (rows, report) = run(&DeviceConfig::titan_xp(), 8);
        assert_eq!(rows.len(), 5);
        assert!(report.all_pass(), "{}", report.to_text());
    }
}
