//! Concurrent kernel selection (paper §III-B, Fig. 4).
//!
//! When kernel `J_k` is active and others wait, Slate examines the waiting
//! queue in order for a kernel whose workload class is complementary to the
//! active one under the heuristic policy (Table I); if none is found, `J_k`
//! runs solo on the whole device. The complementarity criterion is ANTT:
//! co-running wins when `max(T'_k, T'_{k+1}) < T_k + T_{k+1}`.

use crate::classify::WorkloadClass;
use crate::policy::should_corun;

/// ANTT of consecutive solo executions (the CUDA default): `T_k + T_{k+1}`.
pub fn antt_consecutive(t_a: f64, t_b: f64) -> f64 {
    t_a + t_b
}

/// ANTT of concurrent execution: `max(T'_k, T'_{k+1})`.
pub fn antt_concurrent(t_a_corun: f64, t_b_corun: f64) -> f64 {
    t_a_corun.max(t_b_corun)
}

/// The paper's complementarity criterion: concurrent execution must beat
/// consecutive execution.
pub fn corun_is_profitable(t_a: f64, t_b: f64, t_a_corun: f64, t_b_corun: f64) -> bool {
    antt_concurrent(t_a_corun, t_b_corun) < antt_consecutive(t_a, t_b)
}

/// Margin used when deriving a policy from measurements: a co-run must beat
/// consecutive execution by at least this fraction to be worth the
/// scheduling risk (break-even pairs default to solo).
pub const PROFIT_MARGIN: f64 = 0.02;

/// The policy-derivation criterion: concurrent execution must clearly beat
/// consecutive execution (by [`PROFIT_MARGIN`]).
pub fn corun_clearly_profitable(t_a: f64, t_b: f64, t_a_corun: f64, t_b_corun: f64) -> bool {
    antt_concurrent(t_a_corun, t_b_corun) < antt_consecutive(t_a, t_b) * (1.0 - PROFIT_MARGIN)
}

/// Scans `waiting` (in queue order, starting at `cursor` for round-robin
/// fairness) for the first kernel complementary to `active`; returns its
/// index into `waiting`.
pub fn find_partner(
    active: WorkloadClass,
    waiting: &[WorkloadClass],
    cursor: usize,
) -> Option<usize> {
    let n = waiting.len();
    (0..n)
        .map(|k| (cursor + k) % n.max(1))
        .find(|&i| should_corun(active, waiting[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::WorkloadClass::*;

    #[test]
    fn antt_criterion_matches_paper_definition() {
        // Solo 10s each; corun stretches both to 12s: 12 < 20 -> profitable.
        assert!(corun_is_profitable(10.0, 10.0, 12.0, 12.0));
        // Corun doubles both: 20 == 20 -> not profitable (strict).
        assert!(!corun_is_profitable(10.0, 10.0, 20.0, 20.0));
        // Asymmetric: the slower co-runner decides.
        assert!(!corun_is_profitable(10.0, 10.0, 21.0, 5.0));
        assert!(corun_is_profitable(10.0, 10.0, 19.0, 5.0));
    }

    #[test]
    fn margin_criterion_rejects_break_even() {
        assert!(corun_is_profitable(10.0, 10.0, 19.9, 19.9));
        assert!(!corun_clearly_profitable(10.0, 10.0, 19.9, 19.9));
        assert!(corun_clearly_profitable(10.0, 10.0, 15.0, 15.0));
    }

    #[test]
    fn finds_first_complementary_in_queue_order() {
        // Active M_M: M_M no, H_M no, L_C yes.
        let waiting = [MM, HM, LC];
        assert_eq!(find_partner(MM, &waiting, 0), Some(2));
    }

    #[test]
    fn returns_none_when_nothing_complementary() {
        let waiting = [MM, HM, HM];
        assert_eq!(find_partner(MM, &waiting, 0), None);
        assert_eq!(find_partner(MM, &[], 0), None);
    }

    #[test]
    fn cursor_rotates_the_scan() {
        // Two complementary candidates; the cursor picks fairly.
        let waiting = [LC, MM, LC];
        assert_eq!(find_partner(MM, &waiting, 0), Some(0));
        assert_eq!(find_partner(MM, &waiting, 1), Some(2));
        assert_eq!(find_partner(MM, &waiting, 2), Some(2));
    }
}
