//! [`ChaosBackend`]: a test-only decorator perturbing the command stream
//! of any inner backend from a seeded [`FaultPlan`].
//!
//! The conformance properties (each block exactly once, progress carried
//! over retreat, exactly one completion per staging) must hold not just on
//! the happy path but under the arbiter racing commands against
//! completions. This decorator manufactures those races deterministically:
//! each armed [`FaultKind`] at [`FaultSite::Command`] is reinterpreted as
//! a *semantics-preserving* perturbation of the command about to be
//! applied —
//!
//! | armed kind | perturbation |
//! |---|---|
//! | [`FaultKind::MemcpyStall`] | delay: advance the backend `millis` ms first |
//! | [`FaultKind::LaunchFault`] | duplicate: apply the command twice |
//! | [`FaultKind::KernelHang`] | detour: resizes go via a different range first |
//! | [`FaultKind::ChannelDrop`] | nothing (a dropped perturbation) |
//!
//! Every perturbation ends with the real command applied, so a conforming
//! inner backend must absorb the churn: duplicates hit the no-op
//! contract, detours are extra retreat/relaunch cycles, delays shift
//! completions across command boundaries.

use super::{Backend, Completion, WorkSpec};
use crate::arbiter::Command;
use slate_gpu_sim::device::{DeviceConfig, SmRange};
use slate_gpu_sim::fault::{FaultKind, FaultPlan, FaultSite};

/// A backend decorator injecting seeded command-stream chaos.
pub struct ChaosBackend<B> {
    inner: B,
    plan: FaultPlan,
}

impl<B: Backend> ChaosBackend<B> {
    /// Wraps `inner`, perturbing commands per `plan`'s
    /// [`FaultSite::Command`] rules (see [`FaultPlan::command_chaos`]).
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        Self { inner, plan }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// How many perturbations have fired so far.
    pub fn faults_fired(&self) -> usize {
        self.plan.fired()
    }

    /// A valid SM range different from `range` whenever the device allows
    /// one (deterministic, so chaos runs replay).
    fn detour(range: SmRange, num_sms: u32) -> SmRange {
        if range.len() > 1 {
            SmRange::new(range.lo, range.hi - 1)
        } else if range.hi + 1 < num_sms {
            SmRange::new(range.lo, range.hi + 1)
        } else if range.lo > 0 {
            SmRange::new(range.lo - 1, range.hi)
        } else {
            range // single-SM device: the detour degenerates to a duplicate
        }
    }
}

impl<B: Backend> Backend for ChaosBackend<B> {
    fn name(&self) -> &'static str {
        "chaos"
    }

    fn device(&self) -> &DeviceConfig {
        self.inner.device()
    }

    fn stage(&mut self, lease: u64, spec: WorkSpec) {
        self.inner.stage(lease, spec);
    }

    fn apply(&mut self, cmd: &Command) {
        match self.plan.fire(FaultSite::Command, None) {
            Some(FaultKind::MemcpyStall { millis }) => self.inner.advance(millis),
            Some(FaultKind::LaunchFault) => self.inner.apply(cmd),
            Some(FaultKind::KernelHang) => {
                if let Command::Resize { lease, range } = cmd {
                    let via = Self::detour(*range, self.inner.device().num_sms);
                    self.inner.apply(&Command::Resize {
                        lease: *lease,
                        range: via,
                    });
                }
            }
            Some(FaultKind::ChannelDrop) | None => {}
        }
        self.inner.apply(cmd);
    }

    fn poll(&mut self) -> Option<Completion> {
        self.inner.poll()
    }

    fn advance(&mut self, millis: u64) {
        self.inner.advance(millis);
    }

    fn progress(&self, lease: u64) -> u64 {
        self.inner.progress(lease)
    }

    fn held_range(&self, lease: u64) -> Option<SmRange> {
        self.inner.held_range(lease)
    }

    fn is_functional(&self) -> bool {
        self.inner.is_functional()
    }

    fn wait_completion(&mut self, timeout_ms: u64) -> Option<Completion> {
        self.inner.wait_completion(timeout_ms)
    }

    fn drive_until(&mut self, lease: u64, timeout_ms: u64) -> Vec<Completion> {
        self.inner.drive_until(lease, timeout_ms)
    }
}
