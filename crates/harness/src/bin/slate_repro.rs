//! `slate-repro` — regenerates every table and figure of the Slate paper's
//! evaluation on the simulated Titan Xp.
//!
//! ```text
//! slate-repro all                 # every experiment, full scale
//! slate-repro fig7 --scale 4      # one experiment, reduced repetitions
//! slate-repro all --md EXPERIMENTS.md
//! slate-repro trace slo_log.json -o trace.json   # log -> Perfetto trace
//! slate-repro tune slo_log.json --md tune.md     # offline config search
//! ```

use serde::Deserialize;
use slate_core::arbiter::replay::EventLog;
use slate_core::placement::replay::PlacementLog;
use slate_core::trace::{export, tune, validate, TraceSchema};
use slate_gpu_sim::device::DeviceConfig;
use slate_harness::report::Report;
use slate_harness::{
    ablation, fig1, fig5, fig6, fig7, llm, oracle, portability, table1, table2, table3, table4,
    table5,
};

const EXPERIMENTS: [&str; 13] = [
    "fig1",
    "table1",
    "table2",
    "table3",
    "table4",
    "fig5",
    "fig6",
    "fig7",
    "table5",
    "ablation",
    "portability",
    "oracle",
    "llm",
];

fn usage() -> ! {
    eprintln!(
        "usage: slate-repro <all|{}> [--scale N] [--md PATH] [--json PATH] [--summary PATH]\n\
         \x20      slate-repro trace <log.json> [-o PATH] [--schema PATH]\n\
         \x20      slate-repro tune <log.json> [--grid SPEC] [--json PATH] [--md PATH] \
         [--serial] [--assert-improves]",
        EXPERIMENTS.join("|")
    );
    std::process::exit(2);
}

/// A recorded log, whichever layer recorded it: single-device logs carry
/// a top-level `device`, placement logs a `devices` list.
enum AnyLog {
    Arbiter(EventLog),
    Placement(PlacementLog),
}

fn load_log(path: &str) -> Result<AnyLog, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let value = serde::parse(&text).map_err(|e| format!("{path}: not valid JSON: {e:?}"))?;
    let keys: Vec<&str> = match &value {
        serde::JsonValue::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
        _ => return Err(format!("{path}: expected a JSON object")),
    };
    if keys.contains(&"devices") {
        PlacementLog::deserialize_json(&value)
            .map(AnyLog::Placement)
            .map_err(|e| format!("{path}: not a placement log: {e:?}"))
    } else if keys.contains(&"device") {
        EventLog::deserialize_json(&value)
            .map(AnyLog::Arbiter)
            .map_err(|e| format!("{path}: not an arbiter log: {e:?}"))
    } else {
        Err(format!(
            "{path}: neither an arbiter log (`device`) nor a placement log (`devices`)"
        ))
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("slate-repro: {msg}");
    std::process::exit(1);
}

/// `slate-repro trace <log> [-o out] [--schema schema.json]`: convert a
/// recorded log to Perfetto JSON (re-deriving commands via replay),
/// validate the emitted bytes, write them out.
fn cmd_trace(args: &[String]) -> ! {
    let mut log_path: Option<&str> = None;
    let mut out = "trace.json".to_string();
    let mut schema = TraceSchema::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--out" => out = it.next().cloned().unwrap_or_else(|| usage()),
            "--schema" => {
                let p = it.next().unwrap_or_else(|| usage());
                let text =
                    std::fs::read_to_string(p).unwrap_or_else(|e| fail(&format!("read {p}: {e}")));
                schema = TraceSchema::from_json(&text).unwrap_or_else(|e| fail(&e));
            }
            other if log_path.is_none() && !other.starts_with('-') => log_path = Some(a),
            _ => usage(),
        }
    }
    let log_path = log_path.unwrap_or_else(|| usage());
    let trace = match load_log(log_path).unwrap_or_else(|e| fail(&e)) {
        AnyLog::Arbiter(log) => export::trace_event_log(&log),
        AnyLog::Placement(log) => export::trace_placement_log(&log),
    }
    .unwrap_or_else(|e| fail(&e));
    let json = trace.to_json();
    let stats = validate::validate(&json, &schema)
        .unwrap_or_else(|e| fail(&format!("emitted trace failed validation: {e}")));
    std::fs::write(&out, &json).unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
    println!("trace: {stats}");
    println!("wrote {out} ({} bytes)", json.len());
    std::process::exit(0);
}

/// `slate-repro tune <log> [--grid SPEC] ...`: replay the log under a
/// config grid, rank variants on command-derived tail metrics, report.
fn cmd_tune(args: &[String]) -> ! {
    let mut log_path: Option<&str> = None;
    let mut grid_spec: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut md_path: Option<String> = None;
    let mut parallel = true;
    let mut assert_improves = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--grid" => {
                let spec = it.next().cloned().unwrap_or_else(|| usage());
                if spec != "default" {
                    grid_spec = Some(spec);
                }
            }
            "--json" => json_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--md" => md_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--serial" => parallel = false,
            "--assert-improves" => assert_improves = true,
            other if log_path.is_none() && !other.starts_with('-') => log_path = Some(a),
            _ => usage(),
        }
    }
    let log_path = log_path.unwrap_or_else(|| usage());
    let report = match load_log(log_path).unwrap_or_else(|e| fail(&e)) {
        AnyLog::Arbiter(log) => {
            let grid = match &grid_spec {
                Some(spec) => tune::parse_grid(spec, &log.config).unwrap_or_else(|e| fail(&e)),
                None => tune::default_grid(&log.config),
            };
            println!(
                "tune: {} batches, {} variants ({})",
                log.batches.len(),
                grid.len(),
                if parallel { "parallel" } else { "serial" }
            );
            tune::tune(&log, &grid, parallel)
        }
        AnyLog::Placement(log) => {
            let grid = match &grid_spec {
                Some(spec) => tune::parse_grid(spec, &log.config.arbiter)
                    .unwrap_or_else(|e| fail(&e))
                    .into_iter()
                    .map(|v| {
                        let mut config = log.config.clone();
                        config.arbiter = v.config;
                        tune::PlacementVariant {
                            name: v.name,
                            config,
                        }
                    })
                    .collect(),
                None => tune::default_placement_grid(&log.config),
            };
            println!(
                "tune: {} placement batches, {} variants ({})",
                log.batches.len(),
                grid.len(),
                if parallel { "parallel" } else { "serial" }
            );
            tune::tune_placement(&log, &grid, parallel)
        }
    };
    print!("{}", report.to_markdown());
    println!(
        "best: {} (baseline: {})",
        report.best().name,
        report.baseline().name
    );
    if let Some(path) = &json_path {
        std::fs::write(path, report.to_json())
            .unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
        println!("wrote {path}");
    }
    if let Some(path) = &md_path {
        std::fs::write(path, report.to_markdown())
            .unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
        println!("wrote {path}");
    }
    if assert_improves && !report.best_not_worse_than_baseline() {
        fail("best variant scored worse than the recorded baseline");
    }
    std::process::exit(0);
}

fn run_one(id: &str, cfg: &DeviceConfig, scale: u32) -> Report {
    match id {
        "fig1" => fig1::run(cfg, scale as u64).1,
        "table1" => table1::run(cfg).1,
        "table2" => table2::run(cfg).1,
        "table3" => table3::run(cfg, scale).1,
        "table4" => table4::run(cfg, scale).1,
        "fig5" => fig5::run(cfg).1,
        "fig6" => fig6::run(cfg, scale).1,
        "fig7" => fig7::run(cfg, scale).1,
        "table5" => table5::run(cfg, scale).1,
        "ablation" => ablation::run(cfg, scale.max(4)).1,
        "portability" => portability::run(scale.max(4)).1,
        "oracle" => oracle::run(cfg, scale.max(4)).1,
        "llm" => llm::run(cfg, scale).1,
        other => {
            eprintln!("unknown experiment: {other}");
            usage()
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    match args[0].as_str() {
        "trace" => cmd_trace(&args[1..]),
        "tune" => cmd_tune(&args[1..]),
        _ => {}
    }
    let mut scale: u32 = 1;
    let mut md_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut summary_path: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                if scale == 0 {
                    usage();
                }
            }
            "--md" => md_path = Some(it.next().unwrap_or_else(|| usage())),
            "--json" => json_path = Some(it.next().unwrap_or_else(|| usage())),
            "--summary" => summary_path = Some(it.next().unwrap_or_else(|| usage())),
            "all" => targets.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            other if EXPERIMENTS.contains(&other) => targets.push(other.to_string()),
            _ => usage(),
        }
    }
    if targets.is_empty() {
        usage();
    }

    let cfg = DeviceConfig::titan_xp();
    println!(
        "slate-repro: device = {}, {} SMs, scale = 1/{scale}\n",
        cfg.name, cfg.num_sms
    );

    let mut reports = Vec::new();
    let mut failed = 0usize;
    for id in &targets {
        let t0 = std::time::Instant::now();
        // The llm experiment carries the CI headline metric
        // (`p99_decode_under_load_us`); `--summary` captures it as a small
        // machine-readable artifact without the full report JSON.
        let report = if id == "llm" {
            let (results, report) = llm::run(&cfg, scale);
            if let Some(path) = &summary_path {
                std::fs::write(path, results.summary_json()).expect("write summary");
                println!("wrote {path}");
            }
            report
        } else {
            run_one(id, &cfg, scale)
        };
        println!("{}", report.to_text());
        println!("({} completed in {:.2?})\n", id, t0.elapsed());
        failed += report.checks.iter().filter(|c| !c.pass).count();
        reports.push(report);
    }

    if let Some(path) = &json_path {
        let json = serde_json::to_string_pretty(&reports).expect("reports serialize");
        std::fs::write(path, json).expect("write json");
        println!("wrote {path}");
    }
    if let Some(path) = md_path {
        let mut md = String::from(
            "# EXPERIMENTS — paper vs measured\n\n\
             Every table and figure of *Slate: Enabling Workload-Aware \
             Efficient Multiprocessing for Modern GPGPUs* (Allen, Feng, Ge — \
             IPDPS 2019), regenerated by `slate-repro` on the simulated \
             Titan Xp substrate. Absolute numbers come from the calibrated \
             simulator; the shape checks assert what must carry over: who \
             wins, by roughly what factor, and where the crossovers fall. \
             Known deviations from the paper are catalogued in DESIGN.md \
             §7 (our RG pairings gain more; the solo-alternate pairings \
             cluster at ±2% of MPS; Table III absolute bandwidths follow \
             Table II's calibration).\n\n",
        );
        for r in &reports {
            md.push_str(&r.to_markdown());
            md.push('\n');
        }
        std::fs::write(&path, md).expect("write markdown");
        println!("wrote {path}");
    }

    let total: usize = reports.iter().map(|r| r.checks.len()).sum();
    println!(
        "shape checks: {}/{} passed across {} experiments",
        total - failed,
        total,
        reports.len()
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
