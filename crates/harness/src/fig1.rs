//! Fig. 1 — Stream bandwidth vs SM count.
//!
//! The motivating observation: global-memory read bandwidth of the Stream
//! benchmark (6 GB problem) grows with the number of SMs it may use, peaks
//! at nine SMs on the Titan Xp, and stays flat after — so a memory-bound
//! kernel wastes two thirds of the device, and those SMs can be given to a
//! co-runner for free.

use crate::report::{f, BarChart, Report, Table};
use slate_gpu_sim::device::{DeviceConfig, SmRange};
use slate_gpu_sim::engine::{Engine, Event, SliceSpec};
use slate_gpu_sim::perf::ExecMode;
use slate_kernels::stream;

/// One point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// SMs the kernel was bound to.
    pub sms: u32,
    /// Achieved read bandwidth in GB/s.
    pub bandwidth_gbs: f64,
}

/// Measures stream bandwidth bound to `sms` SMs.
pub fn measure(cfg: &DeviceConfig, sms: u32, blocks: u64) -> Point {
    let mut e = Engine::new(cfg.clone());
    let id = e
        .add_slice(SliceSpec {
            perf: stream::paper_perf(),
            sm_range: SmRange::new(0, sms - 1),
            blocks,
            mode: ExecMode::Hardware,
            extra_lead_s: 0.0,
            batch: 1,
            tag: 0,
        })
        .expect("stream launch");
    e.run_until(|ev| matches!(ev, Event::SliceDrained(_)))
        .expect("completes");
    let rep = e.remove_slice(id);
    Point {
        sms,
        bandwidth_gbs: rep.dram_bw(),
    }
}

/// Runs the full sweep (1..=num_sms). `scale` divides the problem size for
/// fast test runs; use 1 for the paper's 6 GB.
pub fn run(cfg: &DeviceConfig, scale: u64) -> (Vec<Point>, Report) {
    let blocks = (stream::paper_blocks() / scale).max(50_000);
    let points: Vec<Point> = (1..=cfg.num_sms).map(|s| measure(cfg, s, blocks)).collect();

    let mut report = Report::new(
        "fig1",
        "Stream bandwidth vs number of SMs",
        "Bandwidth increases quickly, reaches its peak at 9 SMs, and does \
         not further increase with more SMs (6 GB problem, Titan Xp).",
    );
    let mut t = Table::new("Stream read bandwidth", &["SMs", "GB/s"]);
    for p in &points {
        t.row(&[p.sms.to_string(), f(p.bandwidth_gbs, 1)]);
    }
    report.tables.push(t);
    let mut chart = BarChart::new("Bandwidth vs SM count (GB/s)", "");
    for p in points.iter().filter(|p| p.sms % 3 == 0 || p.sms == 1) {
        chart.row(&format!("{:>2} SMs", p.sms), p.bandwidth_gbs);
    }
    report.charts.push(chart);

    let peak = points
        .iter()
        .map(|p| p.bandwidth_gbs)
        .fold(0.0f64, f64::max);
    let knee = points
        .iter()
        .find(|p| p.bandwidth_gbs >= 0.99 * peak)
        .map(|p| p.sms)
        .unwrap_or(cfg.num_sms);
    report.note(format!("peak {peak:.1} GB/s reached at {knee} SMs"));
    // A sweep over a tiny device (fewer than 4 SMs) can't support the
    // shape checks; report that as a failed check instead of panicking.
    match (points.first(), points.get(3), points.last()) {
        (Some(first), Some(fourth), Some(last)) => {
            let p1 = first.bandwidth_gbs;
            let p4 = fourth.bandwidth_gbs;
            let last = last.bandwidth_gbs;
            report.check(
                "bandwidth grows ~linearly in the early region (4 SMs ≈ 4x 1 SM)",
                (p4 / p1 - 4.0).abs() < 0.4,
            );
            report.check(
                "saturation knee at 8-10 SMs (paper: 9)",
                (8..=10).contains(&knee),
            );
            report.check(
                "flat after the knee (30 SMs within 2% of peak)",
                (last - peak).abs() / peak < 0.02,
            );
        }
        _ => report.check(
            "sweep produced at least 4 points (device has ≥4 SMs)",
            false,
        ),
    }
    (points, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_paper_shape() {
        let cfg = DeviceConfig::titan_xp();
        let (points, report) = run(&cfg, 100);
        assert_eq!(points.len(), 30);
        assert!(report.all_pass(), "{}", report.to_text());
        // Monotone non-decreasing up to tail-imbalance noise (<1%).
        for w in points.windows(2) {
            assert!(w[1].bandwidth_gbs >= w[0].bandwidth_gbs * 0.99);
        }
    }
}
