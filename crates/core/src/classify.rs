//! Workload classification (paper §III-B2).
//!
//! Slate characterises kernels by two intensities — compute (C) and memory
//! (M) — each at three levels (L/M/H), derived from the profiled solo
//! GFLOP/s and global-memory bandwidth. Memory intensity takes priority:
//! a kernel with high or medium memory intensity is classified `H_M` or
//! `M_M` regardless of its compute level; only memory-light kernels are
//! distinguished by compute (`L_C`, `M_C`, `H_C`).

use serde::{Deserialize, Serialize};
use slate_kernels::workload::Intensity;

/// GFLOP/s below this is Low compute intensity.
pub const COMPUTE_LOW_GFLOPS: f64 = 100.0;
/// GFLOP/s at or above this is High compute intensity.
pub const COMPUTE_HIGH_GFLOPS: f64 = 1000.0;
/// GB/s below this is Low memory intensity.
pub const MEMORY_LOW_GBS: f64 = 200.0;
/// GB/s at or above this is High memory intensity.
pub const MEMORY_HIGH_GBS: f64 = 450.0;

/// The five workload classes of the heuristic policy (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Low compute, low memory.
    LC,
    /// Medium compute, low memory.
    MC,
    /// High compute, low memory.
    HC,
    /// Medium memory (any compute level).
    MM,
    /// High memory (any compute level).
    HM,
}

impl WorkloadClass {
    /// All classes in Table I order.
    pub const ALL: [WorkloadClass; 5] = [
        WorkloadClass::LC,
        WorkloadClass::MC,
        WorkloadClass::HC,
        WorkloadClass::MM,
        WorkloadClass::HM,
    ];

    /// Paper notation (`L_C`, `M_M`, ...).
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadClass::LC => "L_C",
            WorkloadClass::MC => "M_C",
            WorkloadClass::HC => "H_C",
            WorkloadClass::MM => "M_M",
            WorkloadClass::HM => "H_M",
        }
    }
}

impl std::fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Compute intensity level from profiled GFLOP/s.
pub fn compute_intensity(gflops: f64) -> Intensity {
    if gflops < COMPUTE_LOW_GFLOPS {
        Intensity::Low
    } else if gflops < COMPUTE_HIGH_GFLOPS {
        Intensity::Med
    } else {
        Intensity::High
    }
}

/// Memory intensity level from profiled global request bandwidth (GB/s).
pub fn memory_intensity(gbs: f64) -> Intensity {
    if gbs < MEMORY_LOW_GBS {
        Intensity::Low
    } else if gbs < MEMORY_HIGH_GBS {
        Intensity::Med
    } else {
        Intensity::High
    }
}

/// Combines the two intensities into a workload class with memory priority
/// (paper: "Slate gives a higher priority to memory intensity over
/// computation intensity").
pub fn classify(compute: Intensity, memory: Intensity) -> WorkloadClass {
    match memory {
        Intensity::High => WorkloadClass::HM,
        Intensity::Med => WorkloadClass::MM,
        Intensity::Low => match compute {
            Intensity::Low => WorkloadClass::LC,
            Intensity::Med => WorkloadClass::MC,
            Intensity::High => WorkloadClass::HC,
        },
    }
}

/// Classifies directly from profiled figures.
pub fn classify_measured(gflops: f64, gbs: f64) -> WorkloadClass {
    classify(compute_intensity(gflops), memory_intensity(gbs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use slate_kernels::workload::Benchmark;

    #[test]
    fn thresholds_partition_the_axis() {
        assert_eq!(compute_intensity(0.0), Intensity::Low);
        assert_eq!(compute_intensity(99.9), Intensity::Low);
        assert_eq!(compute_intensity(100.0), Intensity::Med);
        assert_eq!(compute_intensity(999.9), Intensity::Med);
        assert_eq!(compute_intensity(1000.0), Intensity::High);
        assert_eq!(memory_intensity(199.9), Intensity::Low);
        assert_eq!(memory_intensity(200.0), Intensity::Med);
        assert_eq!(memory_intensity(450.0), Intensity::High);
    }

    #[test]
    fn memory_takes_priority() {
        use Intensity::*;
        assert_eq!(classify(High, High), WorkloadClass::HM);
        assert_eq!(classify(High, Med), WorkloadClass::MM);
        assert_eq!(classify(Low, Med), WorkloadClass::MM);
        assert_eq!(classify(High, Low), WorkloadClass::HC);
        assert_eq!(classify(Med, Low), WorkloadClass::MC);
        assert_eq!(classify(Low, Low), WorkloadClass::LC);
    }

    /// The paper's Table II measurements must classify exactly as the paper
    /// uses them: BS/GS/MM -> M_M, RG -> L_C, TR -> H_M.
    #[test]
    fn paper_benchmarks_classify_as_expected() {
        let expect = [
            (Benchmark::BS, WorkloadClass::MM),
            (Benchmark::GS, WorkloadClass::MM),
            (Benchmark::MM, WorkloadClass::MM),
            (Benchmark::RG, WorkloadClass::LC),
            (Benchmark::TR, WorkloadClass::HM),
        ];
        for (b, class) in expect {
            let (gf, gb) = b.paper_reference();
            assert_eq!(classify_measured(gf, gb), class, "{b:?}");
        }
    }

    #[test]
    fn labels_are_paper_notation() {
        assert_eq!(WorkloadClass::LC.label(), "L_C");
        assert_eq!(WorkloadClass::HM.to_string(), "H_M");
    }
}
