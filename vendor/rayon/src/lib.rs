//! Offline stand-in for `rayon`, covering the subset this workspace uses:
//! `rayon::scope` with `Scope::spawn`, and `into_par_iter().for_each(..)`
//! over integer ranges. Tasks run on a bounded pool of std threads, so a
//! scope spawning hundreds of logical workers (one per simulated GPU
//! worker block) does not create hundreds of OS threads.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

type Task<'s> = Box<dyn FnOnce(&Scope<'s>) + Send + 's>;

pub struct Scope<'s> {
    /// Pending tasks plus the number currently executing; workers exit only
    /// when both are zero (a running task may spawn more).
    state: Mutex<(VecDeque<Task<'s>>, usize)>,
    ready: Condvar,
}

impl<'s> Scope<'s> {
    fn new() -> Self {
        Self {
            state: Mutex::new((VecDeque::new(), 0)),
            ready: Condvar::new(),
        }
    }

    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'s>) + Send + 's,
    {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .0
            .push_back(Box::new(f));
        self.ready.notify_one();
    }

    fn work(&self) {
        loop {
            let task = {
                let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(t) = st.0.pop_front() {
                        st.1 += 1;
                        break t;
                    }
                    if st.1 == 0 {
                        return;
                    }
                    st = self.ready.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            task(self);
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            st.1 -= 1;
            if st.1 == 0 && st.0.is_empty() {
                drop(st);
                self.ready.notify_all();
            }
        }
    }
}

fn pool_size() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Runs `op`, then executes every task it (transitively) spawned on a
/// bounded thread pool; returns once all tasks have finished.
pub fn scope<'s, R>(op: impl FnOnce(&Scope<'s>) -> R) -> R {
    let sc = Scope::new();
    let result = op(&sc);
    let workers = {
        let st = sc.state.lock().unwrap_or_else(|e| e.into_inner());
        pool_size().min(st.0.len())
    };
    if workers > 0 {
        std::thread::scope(|ts| {
            for _ in 0..workers {
                ts.spawn(|| sc.work());
            }
        });
    }
    result
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

pub trait ParallelIterator: Sized {
    type Item: Send;
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync;
}

pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

pub struct RangePar<T> {
    start: u64,
    end: u64,
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_range_par {
    ($t:ty) => {
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = RangePar<$t>;
            fn into_par_iter(self) -> RangePar<$t> {
                RangePar {
                    start: self.start as u64,
                    end: self.end as u64,
                    _marker: std::marker::PhantomData,
                }
            }
        }

        impl ParallelIterator for RangePar<$t> {
            type Item = $t;
            fn for_each<F>(self, f: F)
            where
                F: Fn($t) + Send + Sync,
            {
                let len = self.end.saturating_sub(self.start);
                if len == 0 {
                    return;
                }
                let threads = crate::pool_size().min(len as usize).max(1) as u64;
                let chunk = len.div_ceil(threads);
                let f = &f;
                std::thread::scope(|ts| {
                    for w in 0..threads {
                        let lo = self.start + w * chunk;
                        let hi = (lo + chunk).min(self.end);
                        ts.spawn(move || {
                            for i in lo..hi {
                                f(i as $t);
                            }
                        });
                    }
                });
            }
        }
    };
}

impl_range_par!(u32);
impl_range_par!(u64);
impl_range_par!(usize);

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn par_range_visits_each_index_once() {
        let n = 10_000usize;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        (0..n).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn scope_runs_many_spawns_bounded() {
        let count = AtomicU64::new(0);
        super::scope(|s| {
            for _ in 0..500 {
                let count = &count;
                s.spawn(move |_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn nested_spawns_complete() {
        let count = AtomicU64::new(0);
        super::scope(|s| {
            let count = &count;
            s.spawn(move |inner| {
                count.fetch_add(1, Ordering::Relaxed);
                inner.spawn(move |_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn empty_range_is_noop() {
        (5u64..5).into_par_iter().for_each(|_| panic!("no items"));
    }
}
