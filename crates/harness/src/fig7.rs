//! Fig. 7 — overall multiprocessing performance: all 15 application
//! pairings under vanilla CUDA, MPS and Slate.
//!
//! The paper's headline result: normalized application execution time
//! (ANTT against the CUDA solo baseline) for every pairing of the five
//! benchmarks. MPS beats CUDA by ~6%; Slate beats CUDA on every pairing and
//! MPS on all but MM-BS (−2%), with +11% average and +35% best (RG-GS).

use crate::report::{f, pct, BarChart, Report, Table};
use slate_baselines::{CudaRuntime, MpsRuntime, Runtime};
use slate_core::SlateRuntime;
use slate_gpu_sim::device::DeviceConfig;
use slate_kernels::workload::Benchmark;

/// Results for one pairing.
#[derive(Debug, Clone)]
pub struct Pairing {
    /// The two benchmarks.
    pub pair: (Benchmark, Benchmark),
    /// ANTT under each runtime (CUDA, MPS, Slate), normalized to CUDA solo.
    pub antt: [f64; 3],
    /// Slate's throughput gain over MPS (ANTT ratio − 1).
    pub slate_vs_mps: f64,
    /// Slate's throughput gain over CUDA.
    pub slate_vs_cuda: f64,
}

/// Runs all 15 pairings. `scale` shrinks every app's repetition loop.
pub fn run(cfg: &DeviceConfig, scale: u32) -> (Vec<Pairing>, Report) {
    let cuda = CudaRuntime::new(cfg.clone());
    let mps = MpsRuntime::new(cfg.clone());
    let slate = SlateRuntime::new(cfg.clone());

    // CUDA solo baselines per benchmark.
    let solo: Vec<f64> = Benchmark::ALL
        .iter()
        .map(|b| cuda.solo_time(&b.app().scaled_down(scale)))
        .collect();
    let solo_of = |b: Benchmark| solo[Benchmark::ALL.iter().position(|&x| x == b).unwrap()];

    let mut report = Report::new(
        "fig7",
        "All 15 pairings: normalized execution time (lower is better)",
        "MPS ≈ 6% better than CUDA; Slate beats CUDA on all pairings and MPS \
         on all but MM-BS (−2%); average +11% over MPS, +18% over CUDA; best \
         case RG-GS +35% over MPS; GS-GS gains 24% from in-order scheduling \
         alone.",
    );
    let mut t = Table::new(
        "Pairing ANTT normalized to CUDA solo",
        &[
            "Pair",
            "CUDA",
            "MPS",
            "Slate",
            "Slate vs MPS",
            "Slate vs CUDA",
        ],
    );

    let mut pairings = Vec::new();
    for (a, b) in Benchmark::all_pairings() {
        let apps = [a.app().scaled_down(scale), b.app().scaled_down(scale)];
        let solos = [solo_of(a), solo_of(b)];
        let antt_c = cuda.run(&apps).antt(&solos);
        let antt_m = mps.run(&apps).antt(&solos);
        let antt_s = slate.run(&apps).antt(&solos);
        let p = Pairing {
            pair: (a, b),
            antt: [antt_c, antt_m, antt_s],
            slate_vs_mps: antt_m / antt_s - 1.0,
            slate_vs_cuda: antt_c / antt_s - 1.0,
        };
        t.row(&[
            format!("{}-{}", a.abbrev(), b.abbrev()),
            f(antt_c, 3),
            f(antt_m, 3),
            f(antt_s, 3),
            pct(p.slate_vs_mps),
            pct(p.slate_vs_cuda),
        ]);
        pairings.push(p);
    }
    report.tables.push(t);
    let mut chart = BarChart::new("Slate gain over MPS by pairing", "%");
    for p in &pairings {
        chart.row(
            &format!("{}-{}", p.pair.0.abbrev(), p.pair.1.abbrev()),
            p.slate_vs_mps * 100.0,
        );
    }
    report.charts.push(chart);

    let mean =
        |f: &dyn Fn(&Pairing) -> f64| pairings.iter().map(f).sum::<f64>() / pairings.len() as f64;
    let avg_vs_mps = mean(&|p| p.slate_vs_mps);
    let avg_vs_cuda = mean(&|p| p.slate_vs_cuda);
    let avg_mps_vs_cuda = mean(&|p| p.antt[0] / p.antt[1] - 1.0);
    let find = |a: Benchmark, b: Benchmark| {
        pairings
            .iter()
            .find(|p| p.pair == (a, b) || p.pair == (b, a))
            .unwrap()
    };
    report.note(format!(
        "averages: Slate vs MPS {}, Slate vs CUDA {}, MPS vs CUDA {}",
        pct(avg_vs_mps),
        pct(avg_vs_cuda),
        pct(avg_mps_vs_cuda)
    ));

    report.check(
        "Slate beats CUDA on every pairing",
        pairings.iter().all(|p| p.slate_vs_cuda > 0.0),
    );
    report.check(
        "Slate beats or matches MPS on all pairings except possibly MM-BS",
        pairings
            .iter()
            .filter(|p| {
                p.pair != (Benchmark::BS, Benchmark::MM) && p.pair != (Benchmark::MM, Benchmark::BS)
            })
            .all(|p| p.slate_vs_mps > -0.005),
    );
    report.check(
        "MM-BS: Slate within a few percent of MPS (paper: −2%)",
        (-0.06..0.06).contains(&find(Benchmark::MM, Benchmark::BS).slate_vs_mps),
    );
    report.note(
        "our RG pairings gain more than the paper's (the parallelism-cap \
         model lets RG keep full speed on its partition; see DESIGN.md §7)",
    );
    report.check(
        "average Slate gain over MPS is positive and sizable (paper: 11%; \
         ours runs higher, driven by the RG pairings)",
        (0.08..0.30).contains(&avg_vs_mps),
    );
    report.check(
        "average Slate gain over CUDA exceeds the MPS gain (paper: 18% vs 11%)",
        avg_vs_cuda > avg_vs_mps && (0.10..0.35).contains(&avg_vs_cuda),
    );
    report.check(
        "MPS is a few percent better than CUDA on average (paper: 6%)",
        (0.02..0.12).contains(&avg_mps_vs_cuda),
    );
    report.check(
        "the best pairing is an RG pairing, and RG-GS gains 20-50% \
         (bracketing the paper's +35% best case)",
        {
            let best = pairings
                .iter()
                .max_by(|x, y| x.slate_vs_mps.total_cmp(&y.slate_vs_mps))
                .unwrap();
            let best_is_rg = best.pair.0 == Benchmark::RG || best.pair.1 == Benchmark::RG;
            let rg_gs = find(Benchmark::GS, Benchmark::RG);
            best_is_rg && (0.20..0.50).contains(&rg_gs.slate_vs_mps)
        },
    );
    report.check(
        "the weakest pairing is in the solo-alternate set containing MM-BS, \
         and MM-BS sits within a few percent of MPS (paper: -2%)",
        {
            let worst = pairings
                .iter()
                .min_by(|x, y| x.slate_vs_mps.total_cmp(&y.slate_vs_mps))
                .unwrap();
            let solo_set = [
                (Benchmark::BS, Benchmark::MM),
                (Benchmark::BS, Benchmark::BS),
                (Benchmark::MM, Benchmark::MM),
            ];
            solo_set.contains(&worst.pair)
                && (-0.04..0.04).contains(&find(Benchmark::MM, Benchmark::BS).slate_vs_mps)
        },
    );
    report.check(
        "every RG pairing coruns with a clear gain over MPS (paper: RG coruns with all)",
        pairings
            .iter()
            .filter(|p| p.pair.0 == Benchmark::RG || p.pair.1 == Benchmark::RG)
            .all(|p| p.slate_vs_mps > 0.05),
    );
    report.check(
        "GS-GS gains ~15-35% from software scheduling alone (paper: 24%)",
        (0.15..0.35).contains(&find(Benchmark::GS, Benchmark::GS).slate_vs_mps),
    );
    (pairings, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_reproduces() {
        let (pairings, report) = run(&DeviceConfig::titan_xp(), 8);
        assert_eq!(pairings.len(), 15);
        assert!(report.all_pass(), "{}", report.to_text());
    }
}
