//! Admission control and overload protection for the Slate daemon.
//!
//! The daemon serves kernels from many independent host processes (paper
//! §III); without limits a burst of clients grows unbounded pending-launch
//! queues and wedges the arbiter. The [`AdmissionController`] is the
//! daemon-wide gatekeeper: it enforces configurable bounds on concurrent
//! sessions, pending launches (per session and globally, through
//! [`LaunchGauge`]s), and device-memory pressure, shedding over-limit
//! requests with [`SlateError::Overloaded`] whose `retry_after_ms` hint is
//! computed from the work currently queued. Deadline-carrying launches are
//! rejected up front when the estimated queue wait (from
//! [`ProfileTable`](crate::profile::ProfileTable) solo times) already
//! exceeds the deadline — the kernel could only ever time out, so running
//! it would waste device time that on-time work needs.
//!
//! The controller also aggregates the daemon's observable counters into a
//! single [`DaemonMetrics`] snapshot, the one stable surface future
//! observability work builds on.

use crate::error::SlateError;
use crate::queue::{LaunchGauge, QueueStats};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Fallback per-launch estimate (milliseconds) used for retry hints when
/// pending kernels are unprofiled.
const DEFAULT_LAUNCH_EST_MS: u64 = 10;

/// Configurable admission limits. The default is fully permissive —
/// admission control is opt-in and the daemon behaves exactly as before
/// unless a bound is set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AdmissionLimits {
    /// Maximum concurrently connected sessions; further `connect`s are
    /// shed with [`SlateError::Overloaded`].
    pub max_sessions: Option<usize>,
    /// Maximum pending (admitted, uncompleted) launches per session.
    pub max_pending_per_session: Option<u64>,
    /// Maximum pending launches across all sessions.
    pub max_pending_global: Option<u64>,
    /// Memory-pressure watermark as a fraction of pool capacity in
    /// `(0, 1]`: an allocation that would push usage past
    /// `watermark * capacity` is shed (distinct from a hard
    /// [`SlateError::OutOfMemory`], which means the pool itself refused).
    pub mem_watermark: Option<f64>,
}

/// Proof that a launch passed admission; consumed by
/// [`AdmissionController::complete_launch`] when the launch finishes. Not
/// `Copy`/`Clone` on purpose: exactly one completion per admission keeps
/// the counters balanced.
#[derive(Debug)]
#[must_use = "an admitted launch must be completed or the counters drift"]
pub struct LaunchTicket {
    est_ms: u64,
}

/// Point-in-time snapshot of the admission counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Sessions currently connected.
    pub active_sessions: usize,
    /// Sessions admitted since the daemon started.
    pub sessions_admitted: u64,
    /// Sessions shed at the `max_sessions` bound.
    pub sessions_rejected: u64,
    /// Admitted launches that finished successfully.
    pub launches_completed: u64,
    /// Admitted launches that finished with an error (fault, eviction).
    pub launches_failed: u64,
    /// Deadline-carrying launches rejected up front because the estimated
    /// queue wait already exceeded their deadline.
    pub deadline_rejections: u64,
    /// Allocations shed at the memory watermark.
    pub mallocs_shed: u64,
    /// Estimated milliseconds of profiled work currently pending.
    pub pending_est_ms: u64,
}

/// One stable snapshot of everything the daemon can report about itself:
/// queue backlog, admission counters, and the fault-tolerance counters
/// that already existed as individual accessors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaemonMetrics {
    /// Daemon-wide launch-queue snapshot (the global [`LaunchGauge`]).
    pub queue: QueueStats,
    /// Admission counters.
    pub admission: AdmissionStats,
    /// Kernel launches fully served since start.
    pub launches_served: u64,
    /// Live device allocations across all sessions.
    pub live_allocations: usize,
    /// Hardware work-queue lanes registered on the funnelled context.
    pub hyperq_lanes: usize,
    /// Kernels currently resident on the device.
    pub arbiter_residents: usize,
    /// Kernels evicted by the watchdog.
    pub watchdog_evictions: u64,
    /// Sessions torn down because the client vanished.
    pub reaped_sessions: u64,
    /// Starved waiters the arbiter promoted to solo dispatch.
    pub starvation_promotions: u64,
    /// Fault-plan rules that have fired (0 outside injection tests).
    pub faults_fired: usize,
}

/// The daemon-wide admission gatekeeper. All methods are lock-free and
/// callable from any session or lane thread.
#[derive(Debug)]
pub struct AdmissionController {
    limits: AdmissionLimits,
    /// Daemon-wide pending-launch gauge (bounded by
    /// [`AdmissionLimits::max_pending_global`]).
    global: LaunchGauge,
    active_sessions: AtomicUsize,
    sessions_admitted: AtomicU64,
    sessions_rejected: AtomicU64,
    launches_completed: AtomicU64,
    launches_failed: AtomicU64,
    deadline_rejections: AtomicU64,
    mallocs_shed: AtomicU64,
    /// Sum of the solo-time estimates of every pending launch — the
    /// daemon's best guess at the current queue wait.
    pending_est_ms: AtomicU64,
}

impl AdmissionController {
    /// A controller enforcing `limits`.
    pub fn new(limits: AdmissionLimits) -> Self {
        Self {
            limits,
            global: LaunchGauge::new(limits.max_pending_global),
            active_sessions: AtomicUsize::new(0),
            sessions_admitted: AtomicU64::new(0),
            sessions_rejected: AtomicU64::new(0),
            launches_completed: AtomicU64::new(0),
            launches_failed: AtomicU64::new(0),
            deadline_rejections: AtomicU64::new(0),
            mallocs_shed: AtomicU64::new(0),
            pending_est_ms: AtomicU64::new(0),
        }
    }

    /// The limits this controller enforces.
    pub fn limits(&self) -> AdmissionLimits {
        self.limits
    }

    /// A fresh per-session launch gauge bounded by
    /// [`AdmissionLimits::max_pending_per_session`].
    pub fn new_session_gauge(&self) -> Arc<LaunchGauge> {
        Arc::new(LaunchGauge::new(self.limits.max_pending_per_session))
    }

    /// The daemon's retry hint, in milliseconds: the estimated pending
    /// work if any kernel is profiled, otherwise a default per-launch
    /// estimate times the queue depth. Always ≥ 1 so a shed is
    /// distinguishable from "retry immediately".
    fn retry_after_ms(&self) -> u64 {
        let est = self.pending_est_ms.load(Ordering::Relaxed);
        if est > 0 {
            est
        } else {
            (self.global.depth().saturating_mul(DEFAULT_LAUNCH_EST_MS)).max(1)
        }
    }

    fn overloaded(&self) -> SlateError {
        SlateError::Overloaded {
            retry_after_ms: self.retry_after_ms(),
        }
    }

    /// Admits a new session, or sheds it at the `max_sessions` bound.
    pub fn admit_session(&self) -> Result<(), SlateError> {
        if let Some(max) = self.limits.max_sessions {
            let raced = self
                .active_sessions
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                    (n < max).then_some(n + 1)
                })
                .is_err();
            if raced {
                self.sessions_rejected.fetch_add(1, Ordering::Relaxed);
                return Err(self.overloaded());
            }
        } else {
            self.active_sessions.fetch_add(1, Ordering::AcqRel);
        }
        self.sessions_admitted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Releases an admitted session (clean disconnect and reap alike).
    pub fn end_session(&self) {
        let prev = self.active_sessions.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "end_session without matching admit");
    }

    /// Admits one launch against the session's gauge and the global gauge,
    /// with an up-front deadline-feasibility check. `est_ms` is the
    /// kernel's estimated solo time (from the profile table; `None` on
    /// first run — unprofiled kernels are admitted optimistically).
    /// `deadline_ms` is the launch's watchdog deadline, if it carries one.
    pub fn admit_launch(
        &self,
        session: &LaunchGauge,
        est_ms: Option<u64>,
        deadline_ms: Option<u64>,
    ) -> Result<LaunchTicket, SlateError> {
        if let Some(deadline) = deadline_ms {
            let queue_wait = self.pending_est_ms.load(Ordering::Relaxed);
            if queue_wait > deadline {
                // The kernel could only ever be evicted; shed it now
                // instead of wasting device time the queue needs.
                self.deadline_rejections.fetch_add(1, Ordering::Relaxed);
                session.record_shed();
                self.global.record_shed();
                return Err(SlateError::Overloaded {
                    retry_after_ms: queue_wait.max(1),
                });
            }
        }
        if !session.try_push() {
            self.global.record_shed();
            return Err(self.overloaded());
        }
        if !self.global.try_push() {
            session.cancel();
            return Err(self.overloaded());
        }
        let est_ms = est_ms.unwrap_or(0);
        self.pending_est_ms.fetch_add(est_ms, Ordering::Relaxed);
        Ok(LaunchTicket { est_ms })
    }

    /// Completes an admitted launch: releases both gauges and counts the
    /// outcome.
    pub fn complete_launch(&self, session: &LaunchGauge, ticket: LaunchTicket, ok: bool) {
        session.pop();
        self.global.pop();
        // Saturating: concurrent completions can interleave with loads,
        // but the counter can never go negative.
        let _ = self.pending_est_ms.fetch_update(
            Ordering::Relaxed,
            Ordering::Relaxed,
            |v| Some(v.saturating_sub(ticket.est_ms)),
        );
        if ok {
            self.launches_completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.launches_failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Applies the memory-pressure watermark to an allocation request:
    /// `used + requested` may not exceed `watermark * capacity`. Without a
    /// watermark every request passes (the pool itself still enforces
    /// capacity with a hard [`SlateError::OutOfMemory`]).
    pub fn admit_malloc(
        &self,
        used: u64,
        capacity: u64,
        requested: u64,
    ) -> Result<(), SlateError> {
        if let Some(w) = self.limits.mem_watermark {
            let limit = (w.clamp(0.0, 1.0) * capacity as f64) as u64;
            if used.saturating_add(requested) > limit {
                self.mallocs_shed.fetch_add(1, Ordering::Relaxed);
                return Err(self.overloaded());
            }
        }
        Ok(())
    }

    /// Snapshot of the daemon-wide launch queue.
    pub fn queue_stats(&self) -> QueueStats {
        self.global.stats()
    }

    /// Snapshot of the admission counters.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            active_sessions: self.active_sessions.load(Ordering::Acquire),
            sessions_admitted: self.sessions_admitted.load(Ordering::Relaxed),
            sessions_rejected: self.sessions_rejected.load(Ordering::Relaxed),
            launches_completed: self.launches_completed.load(Ordering::Relaxed),
            launches_failed: self.launches_failed.load(Ordering::Relaxed),
            deadline_rejections: self.deadline_rejections.load(Ordering::Relaxed),
            mallocs_shed: self.mallocs_shed.load(Ordering::Relaxed),
            pending_est_ms: self.pending_est_ms.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounded(limits: AdmissionLimits) -> AdmissionController {
        AdmissionController::new(limits)
    }

    #[test]
    fn session_limit_sheds_with_positive_hint() {
        let ac = bounded(AdmissionLimits {
            max_sessions: Some(2),
            ..Default::default()
        });
        ac.admit_session().unwrap();
        ac.admit_session().unwrap();
        let err = ac.admit_session().unwrap_err();
        match err {
            SlateError::Overloaded { retry_after_ms } => assert!(retry_after_ms >= 1),
            other => panic!("expected Overloaded, got {other}"),
        }
        ac.end_session();
        ac.admit_session().unwrap();
        let s = ac.stats();
        assert_eq!(s.active_sessions, 2);
        assert_eq!(s.sessions_admitted, 3);
        assert_eq!(s.sessions_rejected, 1);
    }

    #[test]
    fn per_session_bound_sheds_before_the_global_bound() {
        let ac = bounded(AdmissionLimits {
            max_pending_per_session: Some(1),
            max_pending_global: Some(10),
            ..Default::default()
        });
        let g = ac.new_session_gauge();
        let t = ac.admit_launch(&g, Some(5), None).unwrap();
        assert!(ac.admit_launch(&g, Some(5), None).is_err());
        assert_eq!(g.stats().shed, 1);
        assert_eq!(ac.queue_stats().shed, 1, "global gauge counts the shed too");
        ac.complete_launch(&g, t, true);
        assert_eq!(ac.stats().launches_completed, 1);
        assert_eq!(ac.stats().pending_est_ms, 0);
    }

    #[test]
    fn global_bound_rolls_back_the_session_admission() {
        let ac = bounded(AdmissionLimits {
            max_pending_global: Some(1),
            ..Default::default()
        });
        let ga = ac.new_session_gauge();
        let gb = ac.new_session_gauge();
        let t = ac.admit_launch(&ga, None, None).unwrap();
        let err = ac.admit_launch(&gb, None, None).unwrap_err();
        assert!(matches!(err, SlateError::Overloaded { .. }));
        let sb = gb.stats();
        assert_eq!(sb.depth, 0, "session admission rolled back");
        assert_eq!(sb.admitted, 0);
        assert_eq!(sb.shed, 1);
        ac.complete_launch(&ga, t, false);
        assert_eq!(ac.stats().launches_failed, 1);
        assert_eq!(ac.queue_stats().depth, 0);
    }

    #[test]
    fn infeasible_deadline_is_rejected_up_front() {
        let ac = bounded(AdmissionLimits::default());
        let g = ac.new_session_gauge();
        // 500 ms of profiled work is already pending.
        let t = ac.admit_launch(&g, Some(500), None).unwrap();
        // A 100 ms deadline can never be met behind that queue.
        let err = ac.admit_launch(&g, Some(1), Some(100)).unwrap_err();
        assert_eq!(err, SlateError::Overloaded { retry_after_ms: 500 });
        assert_eq!(ac.stats().deadline_rejections, 1);
        // A 1000 ms deadline is feasible.
        let t2 = ac.admit_launch(&g, Some(1), Some(1000)).unwrap();
        ac.complete_launch(&g, t, true);
        ac.complete_launch(&g, t2, true);
        assert_eq!(ac.stats().pending_est_ms, 0);
    }

    #[test]
    fn memory_watermark_sheds_above_the_line() {
        let ac = bounded(AdmissionLimits {
            mem_watermark: Some(0.5),
            ..Default::default()
        });
        // Capacity 1000, watermark 500.
        ac.admit_malloc(0, 1000, 400).unwrap();
        let err = ac.admit_malloc(400, 1000, 200).unwrap_err();
        assert!(matches!(err, SlateError::Overloaded { .. }));
        assert_eq!(ac.stats().mallocs_shed, 1);
        // Without a watermark everything passes.
        let open = bounded(AdmissionLimits::default());
        open.admit_malloc(999, 1000, 10_000).unwrap();
    }

    #[test]
    fn retry_hint_tracks_pending_estimates() {
        let ac = bounded(AdmissionLimits {
            max_pending_global: Some(2),
            ..Default::default()
        });
        let g = ac.new_session_gauge();
        let t1 = ac.admit_launch(&g, Some(30), None).unwrap();
        let t2 = ac.admit_launch(&g, Some(40), None).unwrap();
        match ac.admit_launch(&g, Some(5), None).unwrap_err() {
            SlateError::Overloaded { retry_after_ms } => {
                assert_eq!(retry_after_ms, 70, "hint is the pending estimate");
            }
            other => panic!("expected Overloaded, got {other}"),
        }
        ac.complete_launch(&g, t1, true);
        ac.complete_launch(&g, t2, true);
    }

    #[test]
    fn default_limits_admit_everything() {
        let ac = bounded(AdmissionLimits::default());
        let g = ac.new_session_gauge();
        for _ in 0..1_000 {
            ac.admit_session().unwrap();
        }
        let tickets: Vec<_> = (0..1_000)
            .map(|_| ac.admit_launch(&g, None, None).unwrap())
            .collect();
        for t in tickets {
            ac.complete_launch(&g, t, true);
        }
        let s = ac.stats();
        assert_eq!(s.sessions_rejected, 0);
        assert_eq!(s.launches_completed, 1_000);
        assert_eq!(ac.queue_stats().shed, 0);
    }
}
