//! Record and replay of arbitration decisions.
//!
//! Because [`ArbiterCore`] is deterministic and
//! I/O-free, a recording of its inputs is a complete specification of its
//! outputs: replaying an [`EventLog`] through a fresh core must reproduce
//! the logged commands exactly, batch by batch. The golden replay test
//! checks a committed log's [`transcript`] byte-for-byte, which turns any
//! unintended policy drift into a test failure with a readable diff.

use super::events::{Event, Tick};
use super::state::ArbiterConfig;
use super::ArbiterCore;
use crate::arbiter::Command;
use serde::{Deserialize, Serialize};
use slate_gpu_sim::device::DeviceConfig;
use std::fmt::Write as _;

/// One recorded [`ArbiterCore::feed`] call: the batch timestamp, the
/// events fed, and the commands the core returned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoggedBatch {
    /// The core's (clamped) logical clock when the batch was absorbed.
    pub at: Tick,
    /// The events fed, in order.
    pub events: Vec<Event>,
    /// The commands returned, in order.
    pub commands: Vec<Command>,
}

/// A self-contained recording of an arbitration run: the device and
/// configuration plus every decision-relevant batch, in feed order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    /// The device that was arbitrated.
    pub device: DeviceConfig,
    /// The configuration the core ran under.
    pub config: ArbiterConfig,
    /// The recorded batches.
    pub batches: Vec<LoggedBatch>,
}

/// Replays `log` through a fresh core, returning each batch with the
/// commands the *replay* produced (the logged commands are ignored).
pub fn replay(log: &EventLog) -> Vec<LoggedBatch> {
    let mut core = ArbiterCore::new(log.device.clone(), log.config.clone());
    log.batches
        .iter()
        .map(|b| LoggedBatch {
            at: b.at,
            events: b.events.clone(),
            commands: core.feed(b.at, &b.events),
        })
        .collect()
}

/// Replays `log`'s *events* through a fresh core running `config` instead
/// of the recorded configuration, returning the batches the counterfactual
/// core produced.
///
/// This is open-loop what-if replay, the primitive behind the offline
/// autotuner ([`crate::trace::tune`]): the event stream — arrivals, ready
/// kernels, finish times — is held fixed while the policy knobs vary, so
/// every variant sees *identical* inputs and differences in the command
/// stream are attributable to the configuration alone. The events are not
/// re-simulated (a kernel still finishes when the recording says it did,
/// even if the variant dispatched it elsewhere or not at all); the core
/// tolerates finish/resize references to leases it never dispatched, so
/// any configuration replays cleanly. With `config == log.config` this is
/// exactly [`replay`].
pub fn replay_under(log: &EventLog, config: ArbiterConfig) -> Vec<LoggedBatch> {
    let mut core = ArbiterCore::new(log.device.clone(), config);
    log.batches
        .iter()
        .map(|b| LoggedBatch {
            at: b.at,
            events: b.events.clone(),
            commands: core.feed(b.at, &b.events),
        })
        .collect()
}

/// Incremental replay verification: recorded batches are pushed one at a
/// time against a fresh core and checked as they arrive.
///
/// Memory use is bounded by the largest single batch — the verifier holds
/// the core, one reusable command buffer, and nothing else — so callers
/// streaming batches off disk (a WAL tail, a log too large to
/// materialize) verify in O(batch), not O(log). [`verify`] is this
/// verifier driven over an in-memory log.
pub struct StreamVerifier {
    core: ArbiterCore,
    scratch: Vec<Command>,
    batches: usize,
}

impl StreamVerifier {
    /// A verifier replaying against a fresh core over `device` under
    /// `config` — the same starting state [`replay`] uses.
    pub fn new(device: DeviceConfig, config: ArbiterConfig) -> Self {
        Self {
            core: ArbiterCore::new(device, config),
            scratch: Vec::new(),
            batches: 0,
        }
    }

    /// A verifier for `log`'s device and configuration.
    pub fn for_log(log: &EventLog) -> Self {
        Self::new(log.device.clone(), log.config.clone())
    }

    /// Replays one recorded batch and checks the commands it produces
    /// against the logged ones, reporting a divergence exactly as
    /// [`verify`] would.
    pub fn push(&mut self, batch: &LoggedBatch) -> Result<(), String> {
        let i = self.batches;
        self.batches += 1;
        self.core
            .feed_into(batch.at, &batch.events, &mut self.scratch);
        if self.scratch != batch.commands {
            return Err(format!(
                "batch {i} (at {}) diverged:\n  logged:\n{}  replayed:\n{}",
                batch.at,
                render_commands(&batch.commands),
                render_commands(&self.scratch),
            ));
        }
        Ok(())
    }

    /// Batches verified so far.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// The replayed core, positioned after every pushed batch — e.g. to
    /// snapshot the verified state.
    pub fn into_core(self) -> ArbiterCore {
        self.core
    }
}

/// Replays `log` and checks the produced commands against the logged ones,
/// reporting the first divergence (batch index, expected and actual
/// commands) as a human-readable error. Streaming: holds one batch's
/// replayed commands at a time (see [`StreamVerifier`]), never a second
/// copy of the log.
pub fn verify(log: &EventLog) -> Result<(), String> {
    let mut v = StreamVerifier::for_log(log);
    for b in &log.batches {
        v.push(b)?;
    }
    Ok(())
}

fn render_commands(commands: &[Command]) -> String {
    let mut s = String::new();
    for c in commands {
        let _ = writeln!(s, "    ! {c}");
    }
    s
}

/// Renders batches as a stable, line-oriented transcript: one `@tick`
/// header per batch, `>` lines for events, `!` lines for commands. The
/// format is hand-written (not `Debug`-derived) so the checked-in golden
/// only changes when the *decisions* change.
pub fn transcript(batches: &[LoggedBatch]) -> String {
    let mut s = String::new();
    for b in batches {
        let _ = writeln!(s, "@{}", b.at);
        for e in &b.events {
            let _ = writeln!(s, "  > {e}");
        }
        for c in &b.commands {
            let _ = writeln!(s, "  ! {c}");
        }
    }
    s
}
