//! Gaussian elimination (GS) — from the Rodinia benchmark suite.
//!
//! Rodinia's `gaussian` solves `A x = b` by forward elimination with two
//! kernels per column `t`: `Fan1` computes the multiplier column
//! `m[i] = a[i][t] / a[t][t]`, and `Fan2` (a 2-D grid) updates the trailing
//! submatrix `a[i][j] -= m[i] * a[t][j]` and the right-hand side. The
//! application launches `2(n-1)` kernels.
//!
//! GS is the paper's star kernel: Low compute / Med memory (Table II:
//! 19.6 GFLOP/s, 340.9 GB/s), with *regular* inter-block access patterns.
//! Under the hardware scheduler its scattered block order wastes L2
//! locality and the kernel stalls on memory throttle 26.1% of the time;
//! Slate's in-order task execution removes the throttle entirely and speeds
//! the kernel up 28% (Table III).

use crate::grid::{BlockCoord, GridDim};
use crate::kernel::GpuKernel;
use slate_gpu_sim::buffer::GpuBuffer;
use slate_gpu_sim::perf::KernelPerf;
use std::sync::Arc;

/// Threads per block for Fan1 (1-D).
pub const FAN1_THREADS: u32 = 256;
/// Square tile edge for Fan2 (16 x 16 threads).
pub const FAN2_TILE: u32 = 16;

/// Paper problem size: matrix dimension per solve.
pub const PAPER_N: u32 = 2048;

/// `Fan1` kernel for column `t`: computes multipliers for rows `t+1..n`.
pub struct Fan1Kernel {
    n: u32,
    t: u32,
    a: Arc<GpuBuffer>,
    m: Arc<GpuBuffer>,
}

impl Fan1Kernel {
    /// Creates the Fan1 launch for elimination step `t` on an `n`x`n`
    /// matrix `a` (row-major) and multiplier storage `m` (same shape).
    pub fn new(n: u32, t: u32, a: Arc<GpuBuffer>, m: Arc<GpuBuffer>) -> Self {
        assert!(t + 1 < n, "Fan1 needs at least one row below the pivot");
        assert!(a.len_words() >= (n * n) as usize && m.len_words() >= (n * n) as usize);
        Self { n, t, a, m }
    }
}

impl GpuKernel for Fan1Kernel {
    fn name(&self) -> &str {
        "Gaussian_Fan1"
    }

    fn grid(&self) -> GridDim {
        GridDim::d1((self.n - self.t - 1).div_ceil(FAN1_THREADS).max(1))
    }

    fn perf(&self) -> KernelPerf {
        paper_perf()
    }

    fn run_block(&self, block: BlockCoord) {
        let n = self.n as usize;
        let t = self.t as usize;
        let base = block.x as usize * FAN1_THREADS as usize;
        for local in 0..FAN1_THREADS as usize {
            let row = t + 1 + base + local;
            if row >= n {
                break;
            }
            let pivot = self.a.load_f32(t * n + t);
            let mult = self.a.load_f32(row * n + t) / pivot;
            self.m.store_f32(row * n + t, mult);
        }
    }
}

/// `Fan2` kernel for column `t`: subtracts the pivot row from the trailing
/// submatrix (and updates `b`).
pub struct Fan2Kernel {
    n: u32,
    t: u32,
    a: Arc<GpuBuffer>,
    b: Arc<GpuBuffer>,
    m: Arc<GpuBuffer>,
}

impl Fan2Kernel {
    /// Creates the Fan2 launch for elimination step `t`.
    pub fn new(n: u32, t: u32, a: Arc<GpuBuffer>, b: Arc<GpuBuffer>, m: Arc<GpuBuffer>) -> Self {
        assert!(t + 1 < n);
        assert!(a.len_words() >= (n * n) as usize);
        assert!(b.len_words() >= n as usize);
        Self { n, t, a, b, m }
    }
}

impl GpuKernel for Fan2Kernel {
    fn name(&self) -> &str {
        "Gaussian_Fan2"
    }

    fn grid(&self) -> GridDim {
        let rows = self.n - self.t - 1; // rows below the pivot
        let cols = self.n - self.t; // columns from the pivot right
        GridDim::d2(
            cols.div_ceil(FAN2_TILE).max(1),
            rows.div_ceil(FAN2_TILE).max(1),
        )
    }

    fn perf(&self) -> KernelPerf {
        paper_perf()
    }

    fn run_block(&self, block: BlockCoord) {
        let n = self.n as usize;
        let t = self.t as usize;
        for ty in 0..FAN2_TILE as usize {
            let row = t + 1 + block.y as usize * FAN2_TILE as usize + ty;
            if row >= n {
                break;
            }
            let mult = self.m.load_f32(row * n + t);
            for tx in 0..FAN2_TILE as usize {
                let col = t + block.x as usize * FAN2_TILE as usize + tx;
                if col >= n {
                    break;
                }
                let v = self.a.load_f32(row * n + col) - mult * self.a.load_f32(t * n + col);
                self.a.store_f32(row * n + col, v);
                // First column of the tile also updates b (one thread per row
                // does it in the CUDA original).
                if col == t && tx == 0 && block.x == 0 {
                    let bv = self.b.load_f32(row) - mult * self.b.load_f32(t);
                    self.b.store_f32(row, bv);
                }
            }
        }
    }
}

/// Host-side driver: runs the full forward elimination as the Rodinia app
/// does (2(n-1) kernel launches), then back-substitutes on the host.
pub struct GaussianSolver {
    n: u32,
    /// Device matrix (row-major n*n).
    pub a: Arc<GpuBuffer>,
    /// Device right-hand side (n).
    pub b: Arc<GpuBuffer>,
    /// Device multiplier matrix (n*n).
    pub m: Arc<GpuBuffer>,
}

impl GaussianSolver {
    /// Allocates device state and uploads the system.
    pub fn new(n: u32, a_host: &[f32], b_host: &[f32]) -> Self {
        assert_eq!(a_host.len(), (n * n) as usize);
        assert_eq!(b_host.len(), n as usize);
        let a = Arc::new(GpuBuffer::new((n * n) as usize * 4));
        let b = Arc::new(GpuBuffer::new(n as usize * 4));
        let m = Arc::new(GpuBuffer::new((n * n) as usize * 4));
        a.write_f32_slice(0, a_host);
        b.write_f32_slice(0, b_host);
        Self { n, a, b, m }
    }

    /// The launch sequence of the application: Fan1 then Fan2 per column.
    pub fn launches(&self) -> Vec<Arc<dyn GpuKernel>> {
        let mut v: Vec<Arc<dyn GpuKernel>> = Vec::with_capacity(2 * (self.n as usize - 1));
        for t in 0..self.n - 1 {
            v.push(Arc::new(Fan1Kernel::new(
                self.n,
                t,
                self.a.clone(),
                self.m.clone(),
            )));
            v.push(Arc::new(Fan2Kernel::new(
                self.n,
                t,
                self.a.clone(),
                self.b.clone(),
                self.m.clone(),
            )));
        }
        v
    }

    /// Runs the whole elimination with the given per-kernel executor
    /// (reference, parallel, or a Slate-transformed execution) and returns
    /// the solution vector by host back-substitution.
    pub fn solve_with(&self, mut exec: impl FnMut(&dyn GpuKernel)) -> Vec<f32> {
        for k in self.launches() {
            exec(k.as_ref());
        }
        self.back_substitute()
    }

    /// Host back-substitution on the eliminated (upper-triangular) system.
    pub fn back_substitute(&self) -> Vec<f32> {
        let n = self.n as usize;
        let mut x = vec![0.0f32; n];
        for i in (0..n).rev() {
            let mut acc = self.b.load_f32(i);
            for (j, xj) in x.iter().enumerate().take(n).skip(i + 1) {
                acc -= self.a.load_f32(i * n + j) * xj;
            }
            x[i] = acc / self.a.load_f32(i * n + i);
        }
        x
    }

    /// Total Fan2 blocks across a full solve of dimension `n` — the figure
    /// the aggregate timing profile uses.
    pub fn total_fan2_blocks(n: u32) -> u64 {
        (0..n - 1)
            .map(|t| {
                let rows = (n - t - 1).div_ceil(FAN2_TILE).max(1) as u64;
                let cols = (n - t).div_ceil(FAN2_TILE).max(1) as u64;
                rows * cols
            })
            .sum()
    }
}

/// Calibrated aggregate profile (dominated by Fan2) reproducing Tables II
/// and III: solo CUDA ≈341 GB/s request bandwidth with a 26% memory
/// throttle; Slate's in-order execution removes the throttle and runs ~30%
/// faster.
pub fn paper_perf() -> KernelPerf {
    KernelPerf {
        name: "Gaussian".into(),
        threads_per_block: 256,
        regs_per_thread: 32,
        smem_per_block: 0,
        compute_cycles_per_block: 729.0,
        insts_per_block: 384.0,
        flops_per_block: 471.0,
        mem_request_bytes_per_block: 8192.0,
        dram_bytes_inorder: 8192.0,
        dram_bytes_scattered: 11526.0,
        l2_footprint_bytes: 2.2e6,
        inject_insts_per_block: 23.0,
        inject_cycles_per_block: 92.0,
        max_concurrent_blocks: None,
    }
}

/// Blocks per simulated launch at the paper problem size (one full solve).
pub fn paper_blocks() -> u64 {
    GaussianSolver::total_fan2_blocks(PAPER_N)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{run_parallel, run_reference};

    /// Builds a diagonally dominant system with a known solution.
    fn system(n: u32) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let nn = n as usize;
        let mut a = vec![0.0f32; nn * nn];
        let x_true: Vec<f32> = (0..nn).map(|i| 1.0 + (i % 7) as f32 * 0.5).collect();
        for i in 0..nn {
            for j in 0..nn {
                a[i * nn + j] = if i == j {
                    nn as f32 + 2.0
                } else {
                    0.3 + ((i * 31 + j * 17) % 10) as f32 * 0.05
                };
            }
        }
        let b: Vec<f32> = (0..nn)
            .map(|i| (0..nn).map(|j| a[i * nn + j] * x_true[j]).sum())
            .collect();
        (a, b, x_true)
    }

    #[test]
    fn solves_small_system_reference() {
        let n = 48;
        let (a, b, x_true) = system(n);
        let solver = GaussianSolver::new(n, &a, &b);
        let x = solver.solve_with(|k| run_reference(k));
        for i in 0..n as usize {
            assert!(
                (x[i] - x_true[i]).abs() < 1e-2,
                "x[{i}] = {} vs {}",
                x[i],
                x_true[i]
            );
        }
    }

    #[test]
    fn parallel_fan2_matches_reference() {
        let n = 64;
        let (a, b, x_true) = system(n);
        let solver = GaussianSolver::new(n, &a, &b);
        let x = solver.solve_with(|k| run_parallel(k));
        for i in 0..n as usize {
            assert!((x[i] - x_true[i]).abs() < 1e-2, "x[{i}]");
        }
    }

    #[test]
    fn grid_shapes_shrink_with_t() {
        let n = 256;
        let (a, b, _) = system(n);
        let s = GaussianSolver::new(n, &a, &b);
        let f2_first = Fan2Kernel::new(n, 0, s.a.clone(), s.b.clone(), s.m.clone());
        let f2_last = Fan2Kernel::new(n, n - 2, s.a.clone(), s.b.clone(), s.m.clone());
        assert!(f2_first.grid().total_blocks() > f2_last.grid().total_blocks());
        assert_eq!(f2_last.grid().total_blocks(), 1);
    }

    #[test]
    fn total_fan2_blocks_closed_form_sanity() {
        // For n a multiple of 16, sum of ceil((n-t-1)/16)*ceil((n-t)/16)
        // must be close to n^3 / (3*256).
        let n = 512;
        let total = GaussianSolver::total_fan2_blocks(n);
        let approx = (n as u64).pow(3) / (3 * 256);
        let ratio = total as f64 / approx as f64;
        assert!((0.9..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn paper_profile_has_locality_gap_and_l2_footprint() {
        let p = paper_perf();
        p.validate().unwrap();
        assert!(p.dram_bytes_scattered > p.dram_bytes_inorder * 1.3);
        assert!(p.l2_footprint_bytes > 1e6);
        assert!(
            paper_blocks() > 10_000_000,
            "paper solve is big: {}",
            paper_blocks()
        );
    }

    #[test]
    fn launch_count_is_2n_minus_2() {
        let n = 32;
        let (a, b, _) = system(n);
        let s = GaussianSolver::new(n, &a, &b);
        assert_eq!(s.launches().len(), 2 * (n as usize - 1));
    }
}
