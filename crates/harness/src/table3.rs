//! Table III — detailed metrics of Gaussian (GS), CUDA vs Slate.
//!
//! Slate's in-order task execution restores the inter-block locality the
//! hardware scheduler destroys: memory bandwidth rises ~38%, the memory
//! throttle stall disappears entirely, IPC rises ~30%, and the kernel runs
//! ~28% faster. The IPC improvement slightly exceeds the time reduction
//! because the Slate version also executes injected instructions.

use crate::report::{f, pct, Report, Table};
use slate_baselines::{CudaRuntime, Runtime};
use slate_core::SlateRuntime;
use slate_gpu_sim::device::DeviceConfig;
use slate_gpu_sim::metrics::KernelMetrics;
use slate_kernels::workload::Benchmark;

/// Measured GS metrics under one runtime.
#[derive(Debug, Clone)]
pub struct GsMetrics {
    /// IPC per SM.
    pub ipc: f64,
    /// Achieved request bandwidth GB/s.
    pub bw_gbs: f64,
    /// Memory-throttle stall percentage.
    pub stall_pct: f64,
    /// Kernel execution time (s).
    pub time_s: f64,
}

fn extract(m: &KernelMetrics, time: f64) -> GsMetrics {
    GsMetrics {
        ipc: m.ipc(),
        bw_gbs: m.request_bw(),
        stall_pct: m.stall_fraction() * 100.0,
        time_s: time,
    }
}

/// Runs GS solo under CUDA and Slate; `scale` shrinks the repetition loop.
pub fn run(cfg: &DeviceConfig, scale: u32) -> ((GsMetrics, GsMetrics), Report) {
    let app = Benchmark::GS.app().scaled_down(scale);
    let cuda_out = CudaRuntime::new(cfg.clone()).run(std::slice::from_ref(&app));
    let slate_out = SlateRuntime::new(cfg.clone()).run(std::slice::from_ref(&app));
    let c = extract(&cuda_out.apps[0].metrics, cuda_out.apps[0].kernel_busy_s);
    let s = extract(&slate_out.apps[0].metrics, slate_out.apps[0].kernel_busy_s);

    let mut report = Report::new(
        "table3",
        "Gaussian detailed metrics, CUDA vs Slate",
        "IPC 0.36 -> 0.47 (+30%); memory access bandwidth 287 -> 396 GB/s \
         (+38%); memory-throttle stalls 26.1% -> 0%; execution time 24.7 s \
         -> 18.9 s (+28% speedup).",
    );
    let mut t = Table::new(
        "GS under CUDA and Slate",
        &["Metric", "CUDA", "Slate", "Δ%"],
    );
    t.row(&[
        "IPC".into(),
        f(c.ipc, 2),
        f(s.ipc, 2),
        pct(s.ipc / c.ipc - 1.0),
    ]);
    t.row(&[
        "Mem. Access BW (GB/s)".into(),
        f(c.bw_gbs, 0),
        f(s.bw_gbs, 0),
        pct(s.bw_gbs / c.bw_gbs - 1.0),
    ]);
    t.row(&[
        "% Stalls: Mem Throttle".into(),
        f(c.stall_pct, 1),
        f(s.stall_pct, 1),
        format!("{:+.1}", s.stall_pct - c.stall_pct),
    ]);
    t.row(&[
        "Kernel Time (s)".into(),
        f(c.time_s, 2),
        f(s.time_s, 2),
        pct(c.time_s / s.time_s - 1.0),
    ]);
    report.tables.push(t);

    report.check(
        "Slate speeds GS up 20-40% (paper: +28%)",
        (1.20..1.40).contains(&(c.time_s / s.time_s)),
    );
    report.check(
        "bandwidth improves 20-45% (paper: +38%)",
        (1.20..1.45).contains(&(s.bw_gbs / c.bw_gbs)),
    );
    report.check(
        "memory throttle: substantial under CUDA (paper: 26.1%)",
        (15.0..35.0).contains(&c.stall_pct),
    );
    report.check(
        "memory throttle: eliminated under Slate (paper: 0%)",
        s.stall_pct < 2.0,
    );
    report.check(
        "IPC improves and slightly exceeds the time reduction (injected instructions)",
        s.ipc / c.ipc > c.time_s / s.time_s - 0.02,
    );
    report.check(
        "CUDA IPC in the paper's regime (~0.36)",
        (0.25..0.50).contains(&c.ipc),
    );
    ((c, s), report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_reproduces() {
        let (_, report) = run(&DeviceConfig::titan_xp(), 10);
        assert!(report.all_pass(), "{}", report.to_text());
    }
}
