//! The trace vocabulary: a deterministic, Perfetto-loadable event model.
//!
//! The model is the JSON half of the Chrome trace-event format, which
//! Perfetto's legacy importer (and `chrome://tracing`) load directly:
//! an object with a `traceEvents` array of per-event objects. Emission
//! is hand-written over the vendored serde helpers — like the replay
//! [`transcript`](crate::arbiter::replay::transcript), the bytes are a
//! pure function of the events, field order is fixed, and nothing
//! (timestamps of emission, map iteration order, float formatting
//! drift) can leak nondeterminism into the output. That is what lets
//! tests compare whole traces byte-for-byte and CI re-generate the same
//! artifact from the same fixture on every run.
//!
//! Phases used (a deliberate subset of the format):
//!
//! | ph  | meaning                | used for                              |
//! |-----|------------------------|---------------------------------------|
//! | `M` | metadata               | process (device) and track names      |
//! | `X` | complete slice         | queued and running lease episodes     |
//! | `i` | instant                | resizes, preempts, evicts, sheds      |
//! | `C` | counter sample         | SM occupancy, residents, ready queue  |
//! | `s` | flow start             | migration departure (source device)   |
//! | `f` | flow finish (`bp: e`)  | migration arrival (target device)     |

use crate::arbiter::Tick;
use serde::{ser_key, ser_str};

/// A typed argument value; rendered into the event's `args` object.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer.
    U64(u64),
    /// A boolean flag.
    Bool(bool),
    /// A string.
    Str(String),
}

impl ArgValue {
    fn emit(&self, out: &mut String) {
        match self {
            ArgValue::U64(v) => out.push_str(&v.to_string()),
            ArgValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            ArgValue::Str(s) => ser_str(out, s),
        }
    }
}

/// One trace event. Field meanings follow the Chrome trace-event format;
/// `ts` is in microseconds — the same unit as the arbiter's logical
/// [`Tick`], so no scaling happens between a log and its trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (slice label, counter name, metadata kind).
    pub name: String,
    /// Category; SLO class for lease slices, `migration` for flows.
    pub cat: String,
    /// Phase character (see the module table).
    pub ph: char,
    /// Timestamp in microseconds of logical time.
    pub ts: Tick,
    /// Duration in microseconds; complete (`X`) slices only.
    pub dur: Option<u64>,
    /// Process id — the device index.
    pub pid: u32,
    /// Thread id — the track within the device (0 = arbiter track,
    /// 1.. = session tracks in ascending session-id order).
    pub tid: u32,
    /// Flow id; `s`/`f` events only.
    pub id: Option<u64>,
    /// `true` renders `"bp":"e"` (flow finish binds to the enclosing
    /// slice); `f` events only.
    pub bind_enclosing: bool,
    /// Chrome color name hint (Perfetto may ignore it; harmless).
    pub cname: Option<&'static str>,
    /// Ordered argument list, rendered as the `args` object verbatim —
    /// insertion order is emission order, so keep it deterministic.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    fn emit(&self, out: &mut String) {
        out.push('{');
        ser_key(out, "name");
        ser_str(out, &self.name);
        out.push(',');
        ser_key(out, "cat");
        ser_str(out, &self.cat);
        out.push(',');
        ser_key(out, "ph");
        let mut phbuf = [0u8; 4];
        ser_str(out, self.ph.encode_utf8(&mut phbuf));
        out.push(',');
        ser_key(out, "ts");
        out.push_str(&self.ts.to_string());
        if let Some(dur) = self.dur {
            out.push(',');
            ser_key(out, "dur");
            out.push_str(&dur.to_string());
        }
        out.push(',');
        ser_key(out, "pid");
        out.push_str(&self.pid.to_string());
        out.push(',');
        ser_key(out, "tid");
        out.push_str(&self.tid.to_string());
        if let Some(id) = self.id {
            out.push(',');
            ser_key(out, "id");
            // Flow ids are rendered as strings: the format allows either,
            // and strings survive any JSON reader's number handling.
            ser_str(out, &id.to_string());
        }
        if self.bind_enclosing {
            out.push(',');
            ser_key(out, "bp");
            ser_str(out, "e");
        }
        if self.ph == 'i' {
            // Instant scope: thread-scoped, the narrow tick mark.
            out.push(',');
            ser_key(out, "s");
            ser_str(out, "t");
        }
        if let Some(cname) = self.cname {
            out.push(',');
            ser_key(out, "cname");
            ser_str(out, cname);
        }
        if !self.args.is_empty() {
            out.push(',');
            ser_key(out, "args");
            out.push('{');
            for (i, (k, v)) in self.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                ser_key(out, k);
                v.emit(out);
            }
            out.push('}');
        }
        out.push('}');
    }
}

/// A complete trace: an ordered event list plus the emitter producing
/// the Perfetto-loadable JSON document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Events in emission order: metadata first, then data events sorted
    /// by timestamp (stable within a timestamp). The exporter guarantees
    /// this ordering; [`Trace::to_json`] emits it verbatim.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Renders the Perfetto-loadable JSON document. Byte-deterministic:
    /// same events in, same bytes out.
    pub fn to_json(&self) -> String {
        // ~160 bytes per event is a comfortable over-estimate.
        let mut out = String::with_capacity(64 + self.events.len() * 160);
        out.push_str("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            e.emit(&mut out);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emission_is_deterministic_and_escapes() {
        let t = Trace {
            events: vec![TraceEvent {
                name: "l\"1\" HM".into(),
                cat: "best-effort".into(),
                ph: 'X',
                ts: 10,
                dur: Some(5),
                pid: 0,
                tid: 1,
                id: None,
                bind_enclosing: false,
                cname: None,
                args: vec![("lease", ArgValue::U64(1)), ("ok", ArgValue::Bool(true))],
            }],
        };
        let a = t.to_json();
        let b = t.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\\\"1\\\""));
        assert!(a.contains("\"args\":{\"lease\":1,\"ok\":true}"));
        // The emitted document parses back as JSON.
        serde::parse(&a).expect("trace json parses");
    }
}
