//! Hyper-Q hardware work queues (paper §I).
//!
//! Kepler-and-later devices expose multiple hardware work queues
//! ("connections") between host and device, letting streams of **one CUDA
//! context** launch concurrently. Two facts about them shape the designs
//! the paper discusses:
//!
//! * all queues must belong to a single context — which is exactly why MPS
//!   (and Slate's daemon) funnel many processes into one context to get
//!   cross-process concurrency at all;
//! * the number of connections is limited (32 architecturally, 8 by default
//!   via `CUDA_DEVICE_MAX_CONNECTIONS`); when more streams exist than
//!   connections, streams alias onto the same queue and become **falsely
//!   serialized** even though the programmer declared them independent.
//!
//! This module models connection assignment and the resulting concurrency
//! verdicts. The Slate daemon assigns each (session, stream) lane a
//! connection through it.

use std::collections::HashMap;

/// Architectural maximum number of hardware work queues.
pub const MAX_CONNECTIONS: u32 = 32;
/// Driver default (`CUDA_DEVICE_MAX_CONNECTIONS`).
pub const DEFAULT_CONNECTIONS: u32 = 8;

/// Why two launches can or cannot proceed concurrently through the
/// hardware front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Concurrency {
    /// Different queues of the same context: the hardware may overlap them.
    Concurrent,
    /// Same queue: launches serialize even across "independent" streams
    /// (false serialization from connection aliasing).
    FalselySerialized,
    /// Different contexts: without MPS the device time-slices contexts;
    /// no concurrency at all.
    CrossContext,
}

/// The Hyper-Q connection allocator of one device.
#[derive(Debug)]
pub struct HyperQ {
    connections: u32,
    assignments: HashMap<(u64, u32), u32>,
    next: u32,
}

impl HyperQ {
    /// Creates the allocator with `connections` hardware queues (clamped to
    /// the architectural maximum; at least 1).
    pub fn new(connections: u32) -> Self {
        Self {
            connections: connections.clamp(1, MAX_CONNECTIONS),
            assignments: HashMap::new(),
            next: 0,
        }
    }

    /// The allocator with the driver-default connection count.
    pub fn with_default_connections() -> Self {
        Self::new(DEFAULT_CONNECTIONS)
    }

    /// Number of hardware queues.
    pub fn connections(&self) -> u32 {
        self.connections
    }

    /// Returns the queue serving `(context, stream)`, assigning one
    /// round-robin on first use (aliasing once queues run out — the source
    /// of false serialization).
    pub fn assign(&mut self, context: u64, stream: u32) -> u32 {
        let connections = self.connections;
        let next = &mut self.next;
        *self
            .assignments
            .entry((context, stream))
            .or_insert_with(|| {
                let q = *next % connections;
                *next += 1;
                q
            })
    }

    /// Queues currently in use.
    pub fn queues_in_use(&self) -> u32 {
        self.assignments.len().min(self.connections as usize) as u32
    }

    /// Distinct (context, stream) pairs registered.
    pub fn lanes(&self) -> usize {
        self.assignments.len()
    }

    /// Retires every lane whose `(context, stream)` key satisfies `pred`,
    /// returning its hardware queue to the pool. The daemon calls this when
    /// reaping a dead session so its lanes stop aliasing live streams.
    /// Returns the number of lanes retired.
    pub fn retire_lanes(&mut self, mut pred: impl FnMut(u64, u32) -> bool) -> usize {
        let before = self.assignments.len();
        self.assignments
            .retain(|&(ctx, stream), _| !pred(ctx, stream));
        before - self.assignments.len()
    }

    /// Concurrency verdict for launches from two (context, stream) lanes.
    /// Both lanes are assigned if not yet seen.
    pub fn concurrency(&mut self, a: (u64, u32), b: (u64, u32)) -> Concurrency {
        if a.0 != b.0 {
            return Concurrency::CrossContext;
        }
        let qa = self.assign(a.0, a.1);
        let qb = self.assign(b.0, b.1);
        if a == b || qa == qb {
            Concurrency::FalselySerialized
        } else {
            Concurrency::Concurrent
        }
    }
}

impl Default for HyperQ {
    fn default() -> Self {
        Self::with_default_connections()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_stable() {
        let mut hq = HyperQ::new(8);
        let q1 = hq.assign(1, 0);
        let q2 = hq.assign(1, 1);
        assert_ne!(q1, q2, "distinct streams get distinct queues while free");
        assert_eq!(hq.assign(1, 0), q1, "re-assignment is stable");
        assert_eq!(hq.lanes(), 2);
    }

    #[test]
    fn streams_within_connection_budget_are_concurrent() {
        let mut hq = HyperQ::new(8);
        for s in 0..8u32 {
            for t in 0..s {
                assert_eq!(
                    hq.concurrency((1, s), (1, t)),
                    Concurrency::Concurrent,
                    "streams {s} and {t}"
                );
            }
        }
    }

    #[test]
    fn excess_streams_alias_and_falsely_serialize() {
        let mut hq = HyperQ::new(2);
        // Round-robin by first use: the third stream wraps onto queue 0.
        let q0 = hq.assign(1, 0);
        let q1 = hq.assign(1, 1);
        let q2 = hq.assign(1, 2);
        assert_ne!(q0, q1);
        assert_eq!(q0, q2, "third stream aliases the first queue");
        assert_eq!(
            hq.concurrency((1, 0), (1, 2)),
            Concurrency::FalselySerialized
        );
        // 0 and 1 are on different queues.
        assert_eq!(hq.concurrency((1, 0), (1, 1)), Concurrency::Concurrent);
    }

    #[test]
    fn cross_context_never_concurrent() {
        // The hardware limitation that motivates context funnelling: two
        // processes' contexts cannot share the queues.
        let mut hq = HyperQ::new(32);
        assert_eq!(hq.concurrency((1, 0), (2, 0)), Concurrency::CrossContext);
        assert_eq!(hq.concurrency((1, 3), (2, 7)), Concurrency::CrossContext);
    }

    #[test]
    fn same_lane_serializes_with_itself() {
        let mut hq = HyperQ::new(8);
        assert_eq!(
            hq.concurrency((1, 5), (1, 5)),
            Concurrency::FalselySerialized
        );
    }

    #[test]
    fn connection_count_clamped() {
        assert_eq!(HyperQ::new(0).connections(), 1);
        assert_eq!(HyperQ::new(1000).connections(), MAX_CONNECTIONS);
        assert_eq!(HyperQ::default().connections(), DEFAULT_CONNECTIONS);
    }

    #[test]
    fn retired_lanes_free_their_queues() {
        let mut hq = HyperQ::new(8);
        hq.assign(1, 10);
        hq.assign(1, 11);
        hq.assign(1, 20);
        assert_eq!(hq.lanes(), 3);
        // Reap "session" whose streams are 10..19.
        let retired = hq.retire_lanes(|ctx, stream| ctx == 1 && (10..20).contains(&stream));
        assert_eq!(retired, 2);
        assert_eq!(hq.lanes(), 1);
        // Surviving lane keeps its assignment.
        let q = hq.assign(1, 20);
        assert_eq!(hq.lanes(), 1);
        let _ = q;
    }

    #[test]
    fn funnelled_contexts_regain_concurrency() {
        // The MPS/Slate trick: map two processes onto ONE server context;
        // their streams become distinct lanes of the same context and may
        // overlap.
        let mut hq = HyperQ::new(8);
        let server_ctx = 42u64;
        // daemon maps client A -> stream 1, client B -> stream 2.
        assert_eq!(
            hq.concurrency((server_ctx, 1), (server_ctx, 2)),
            Concurrency::Concurrent
        );
    }
}
