//! Kernel transformation demo: the source-injection pipeline and the
//! semantics-preserving execution transformation.
//!
//! Part 1 feeds a CUDA kernel source through Slate's scanner + injector and
//! prints the generated worker/dispatch source (what the paper hands to
//! NVRTC). Part 2 runs a real kernel three ways — untransformed reference,
//! Slate persistent workers, and Slate with a mid-flight resize — and
//! verifies all three produce identical results.
//!
//! ```text
//! cargo run --example kernel_transform
//! ```

use slate_core::dispatch::Dispatcher;
use slate_core::injector::inject_source;
use slate_core::transform::TransformedKernel;
use slate_gpu_sim::buffer::GpuBuffer;
use slate_gpu_sim::device::{DeviceConfig, SmRange};
use slate_kernels::kernel::run_reference;
use slate_kernels::sgemm::SgemmKernel;
use std::sync::Arc;

const USER_SOURCE: &str = r#"
__global__ void sgemm_tile(float* C, const float* A, const float* B, int n, int k) {
    int row = blockIdx.y * 16 + threadIdx.y;
    int col = blockIdx.x * 16 + threadIdx.x;
    float acc = 0.f;
    for (int t = 0; t < k; ++t) acc += A[row * k + t] * B[t * n + col];
    if (row < gridDim.y * 16 && col < n) C[row * n + col] = acc;
}
"#;

fn main() {
    // ---- Part 1: source injection (scanner + injector, §IV-B) ----
    let injected = inject_source(USER_SOURCE, 10);
    let k = &injected[0];
    println!("=== injected source for `{}` ===", k.name);
    println!(
        "(replaced {} blockIdx and {} gridDim uses)\n",
        k.block_idx_replaced, k.grid_dim_replaced
    );
    println!("{}", k.source);

    // ---- Part 2: semantics preservation under transformation ----
    let dim = 128u32;
    let n = (dim * dim) as usize;
    let make = || {
        let a = Arc::new(GpuBuffer::new(n * 4));
        let b = Arc::new(GpuBuffer::new(n * 4));
        let c = Arc::new(GpuBuffer::new(n * 4));
        for i in 0..n {
            a.store_f32(i, ((i * 13) % 17) as f32 * 0.25 - 2.0);
            b.store_f32(i, ((i * 7) % 23) as f32 * 0.125 - 1.0);
        }
        (SgemmKernel::new(dim, dim, dim, a, b, c.clone()), c)
    };

    // Reference: untransformed grid order.
    let (k_ref, c_ref) = make();
    run_reference(&k_ref);

    // Slate: persistent workers over the flattened task queue.
    let device = DeviceConfig::tiny(4);
    let (k_slate, c_slate) = make();
    let d = Dispatcher::new(
        device.clone(),
        TransformedKernel::new(Arc::new(k_slate)),
        10,
        SmRange::all(4),
    );
    let out = d.run();
    println!(
        "slate execution: {} worker launch(es), {} blocks, {} queue pulls",
        out.launches, out.blocks, out.queue_pulls
    );

    // Slate with a resize mid-flight (dispatch-kernel relaunch).
    let (k_resize, c_resize) = make();
    let d2 = Dispatcher::new(
        device,
        TransformedKernel::new(Arc::new(k_resize)),
        5,
        SmRange::all(4),
    );
    let handle = d2.handle();
    let resizer = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_micros(300));
        handle.resize(SmRange::new(0, 1));
    });
    let out2 = d2.run();
    resizer.join().unwrap();
    println!(
        "resized execution: {} worker launch(es), {} blocks",
        out2.launches, out2.blocks
    );

    // All three executions must agree bit-for-bit.
    for i in 0..n {
        assert_eq!(
            c_slate.load_f32(i),
            c_ref.load_f32(i),
            "slate vs ref at {i}"
        );
        assert_eq!(
            c_resize.load_f32(i),
            c_ref.load_f32(i),
            "resize vs ref at {i}"
        );
    }
    println!("\nall {n} output elements identical across reference, Slate, and resized Slate.");
}
